//! Micro-benchmarks of the Uncertainty Estimation Index itself: grid
//! lookups, mapping construction, index-point rescoring (Algorithm 2 line
//! 17 — runs on every iteration), and the full select-and-load step.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use uei_index::config::UeiConfig;
use uei_index::grid::Grid;
use uei_index::mapping::ChunkMapping;
use uei_index::points::IndexPoints;
use uei_index::uei::UeiIndex;
use uei_learn::strategy::UncertaintyMeasure;
use uei_learn::Classifier;
use uei_storage::io::{DiskTracker, IoProfile};
use uei_storage::store::{ColumnStore, StoreConfig};
use uei_types::{DataPoint, Rng, Schema};

struct Sigmoid;
impl Classifier for Sigmoid {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        1.0 / (1.0 + (-(x[0] - 1024.0) / 200.0).exp())
    }
    fn dims(&self) -> usize {
        5
    }
}

fn sdss_rows(n: usize) -> Vec<DataPoint> {
    uei_explore::synth::generate_sdss_like(&uei_explore::synth::SynthConfig {
        rows: n,
        ..Default::default()
    })
}

fn bench_grid(c: &mut Criterion) {
    let schema = Schema::sdss();
    let grid = Grid::new(&schema, 5).unwrap();
    let mut rng = Rng::new(1);
    let points: Vec<Vec<f64>> = (0..1000)
        .map(|_| schema.attributes().iter().map(|a| rng.range_f64(a.min, a.max)).collect())
        .collect();
    let mut group = c.benchmark_group("grid");
    group.bench_function("cell_of_1k_points", |b| {
        b.iter(|| points.iter().map(|p| grid.cell_of(p).unwrap()).sum::<usize>())
    });
    group.bench_function("cell_region_all_3125", |b| {
        b.iter(|| grid.cell_ids().map(|id| grid.cell_region(id).unwrap().volume()).sum::<f64>())
    });
    group.finish();
}

fn bench_index(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("uei-bench-index-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let rows = sdss_rows(50_000);
    let tracker = DiskTracker::new(IoProfile::instant());
    let store = Arc::new(
        ColumnStore::create(
            &dir,
            Schema::sdss(),
            &rows,
            StoreConfig { chunk_target_bytes: 32 * 1024 },
            tracker,
        )
        .unwrap(),
    );

    let mut group = c.benchmark_group("index");
    group.bench_function("mapping_build_5x5", |b| {
        let grid = Grid::new(store.schema(), 5).unwrap();
        b.iter(|| ChunkMapping::build(&grid, store.manifest()).unwrap())
    });
    group.bench_function("update_uncertainty_3125_points", |b| {
        let grid = Grid::new(store.schema(), 5).unwrap();
        let mut points = IndexPoints::from_grid(&grid).unwrap();
        b.iter(|| {
            points.update(&Sigmoid, UncertaintyMeasure::LeastConfidence);
            points.mean_uncertainty()
        })
    });
    group.sample_size(20);
    group.bench_function("select_and_load", |b| {
        let mut index = UeiIndex::build(
            Arc::clone(&store),
            UeiConfig { cells_per_dim: 5, ..UeiConfig::default() },
        )
        .unwrap();
        index.update_uncertainty(&Sigmoid);
        b.iter(|| index.select_and_load().unwrap().rows.len())
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_grid, bench_index);
criterion_main!(benches);
