//! Criterion micro-benchmarks of the batch scoring layer: the old
//! single-point `predict_proba` chain vs. `predict_proba_batch` on the
//! paper's default estimator (DWkNN), at and above the |P| = 4096 scale
//! the acceptance criteria name.

use criterion::{criterion_group, criterion_main, Criterion};
use uei_learn::strategy::UncertaintyMeasure;
use uei_learn::{Classifier, EstimatorKind};
use uei_types::{Label, Rng};

fn examples(n: usize, seed: u64) -> Vec<(Vec<f64>, Label)> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|_| {
            let x: Vec<f64> = (0..3).map(|_| rng.range_f64(-1.0, 1.0)).collect();
            (x.clone(), Label::from_bool(x.iter().sum::<f64>() > 0.0))
        })
        .collect()
}

fn bench_scoring(c: &mut Criterion) {
    let model = EstimatorKind::Dwknn { k: 5 }.train(&examples(200, 11)).unwrap();
    let measure = UncertaintyMeasure::LeastConfidence;
    let mut rng = Rng::new(29);
    let pool: Vec<Vec<f64>> =
        (0..4096).map(|_| (0..3).map(|_| rng.range_f64(-1.0, 1.0)).collect()).collect();
    let refs: Vec<&[f64]> = pool.iter().map(|p| p.as_slice()).collect();

    let mut group = c.benchmark_group("scoring_4096");
    group.bench_function("sequential", |b| {
        b.iter(|| pool.iter().map(|p| measure.score(model.predict_proba(p))).collect::<Vec<f64>>())
    });
    group.bench_function("batch", |b| b.iter(|| measure.score_points(model.as_ref(), &refs)));
    group.finish();
}

criterion_group!(benches, bench_scoring);
criterion_main!(benches);
