//! Criterion micro-benchmarks of the region-load modes: cold (no cache),
//! warm shared cache (prefetched by a background handle), and delta
//! reconstruction (reuse of the previous region's decoded chunks).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use uei_index::grid::Grid;
use uei_index::loader::RegionLoader;
use uei_index::mapping::ChunkMapping;
use uei_storage::cache::SharedChunkCache;
use uei_storage::io::{DiskTracker, IoProfile};
use uei_storage::source::ChunkSource;
use uei_storage::store::{ColumnStore, StoreConfig};
use uei_types::{AttributeDef, DataPoint, Rng, Schema};

fn schema2() -> Schema {
    Schema::new(vec![
        AttributeDef::new("x", 0.0, 100.0).unwrap(),
        AttributeDef::new("y", 0.0, 100.0).unwrap(),
    ])
    .unwrap()
}

fn src(store: &Arc<ColumnStore>) -> Arc<dyn ChunkSource> {
    Arc::clone(store) as Arc<dyn ChunkSource>
}

fn fixture(n: usize) -> (Arc<ColumnStore>, Grid, ChunkMapping, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("uei-bench-regload-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut rng = Rng::new(41);
    let rows: Vec<DataPoint> = (0..n)
        .map(|i| {
            DataPoint::new(i as u64, vec![rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)])
        })
        .collect();
    let store = ColumnStore::create(
        &dir,
        schema2(),
        &rows,
        StoreConfig { chunk_target_bytes: 2048 },
        DiskTracker::new(IoProfile::instant()),
    )
    .unwrap();
    let grid = Grid::new(store.schema(), 4).unwrap();
    let mapping = ChunkMapping::build(&grid, store.manifest()).unwrap();
    (Arc::new(store), grid, mapping, dir)
}

/// Four orthogonally adjacent cells (one serpentine turn).
const WALK: [usize; 4] = [0, 1, 5, 4];

fn bench_region_load_modes(c: &mut Criterion) {
    let (store, grid, mapping, dir) = fixture(20_000);
    let mut group = c.benchmark_group("region_load");

    group.bench_function("cold_walk_4_cells", |b| {
        b.iter(|| {
            let mut loader = RegionLoader::new(src(&store), 0);
            WALK.iter()
                .map(|&cell| loader.load_cell(&grid, &mapping, cell).unwrap().0.len())
                .sum::<usize>()
        })
    });

    group.bench_function("warm_shared_walk_4_cells", |b| {
        let cache = Arc::new(SharedChunkCache::new(256 << 20, 8));
        let mut warmer = RegionLoader::with_shared(src(&store), Arc::clone(&cache), false);
        for &cell in &WALK {
            warmer.load_cell(&grid, &mapping, cell).unwrap();
        }
        b.iter(|| {
            let mut loader = RegionLoader::with_shared(src(&store), Arc::clone(&cache), false);
            WALK.iter()
                .map(|&cell| loader.load_cell(&grid, &mapping, cell).unwrap().0.len())
                .sum::<usize>()
        })
    });

    group.bench_function("delta_walk_4_cells", |b| {
        b.iter(|| {
            let cache = Arc::new(SharedChunkCache::new(0, 8));
            let mut loader = RegionLoader::with_shared(src(&store), cache, true);
            WALK.iter()
                .map(|&cell| loader.load_cell(&grid, &mapping, cell).unwrap().0.len())
                .sum::<usize>()
        })
    });

    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_region_load_modes);
criterion_main!(benches);
