//! Micro-benchmarks of the active-learning toolkit: kd-tree build/query,
//! DWKNN training and prediction (the per-iteration costs of the
//! uncertainty estimator), SVM training, and strategy selection.

use criterion::{criterion_group, criterion_main, Criterion};
use uei_learn::kdtree::KdTree;
use uei_learn::strategy::{QueryStrategy, UncertaintyMeasure, UncertaintySampling};
use uei_learn::{Classifier, Dwknn, EstimatorKind, LinearSvm};
use uei_types::{DataPoint, Label, Rng};

fn labeled_examples(n: usize, seed: u64) -> Vec<(Vec<f64>, Label)> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|_| {
            let x: Vec<f64> = (0..5).map(|_| rng.range_f64(0.0, 1.0)).collect();
            let label = Label::from_bool(x.iter().sum::<f64>() > 2.5);
            (x, label)
        })
        .collect()
}

fn bench_kdtree(c: &mut Criterion) {
    let mut rng = Rng::new(7);
    let points: Vec<Vec<f64>> =
        (0..10_000).map(|_| (0..5).map(|_| rng.range_f64(0.0, 1.0)).collect()).collect();
    let tree = KdTree::build(points.clone()).unwrap();

    let mut group = c.benchmark_group("kdtree");
    group.bench_function("build_10k_5d", |b| {
        b.iter(|| KdTree::build(points.clone()).unwrap().len())
    });
    group.bench_function("knn5_query", |b| {
        let mut qrng = Rng::new(8);
        b.iter(|| {
            let q: Vec<f64> = (0..5).map(|_| qrng.range_f64(0.0, 1.0)).collect();
            tree.nearest(&q, 5).unwrap().len()
        })
    });
    group.finish();
}

fn bench_dwknn(c: &mut Criterion) {
    let examples = labeled_examples(200, 1);
    let model = Dwknn::fit(5, &examples).unwrap();

    let mut group = c.benchmark_group("dwknn");
    group.bench_function("fit_200_examples", |b| {
        b.iter(|| Dwknn::fit(5, &examples).unwrap().num_examples())
    });
    group.bench_function("predict_proba", |b| {
        let mut qrng = Rng::new(2);
        b.iter(|| {
            let q: Vec<f64> = (0..5).map(|_| qrng.range_f64(0.0, 1.0)).collect();
            model.predict_proba(&q)
        })
    });
    // The dominant per-iteration CPU cost of the DBMS scheme: scoring a
    // whole pool with the estimator.
    group.bench_function("score_10k_pool", |b| {
        let mut qrng = Rng::new(3);
        let pool: Vec<Vec<f64>> =
            (0..10_000).map(|_| (0..5).map(|_| qrng.range_f64(0.0, 1.0)).collect()).collect();
        b.iter(|| pool.iter().map(|q| model.predict_proba(q)).sum::<f64>())
    });
    group.finish();
}

fn bench_svm_and_strategy(c: &mut Criterion) {
    let examples = labeled_examples(500, 4);
    let mut group = c.benchmark_group("svm_strategy");
    group.sample_size(20);
    group.bench_function("svm_fit_500x30epochs", |b| {
        b.iter(|| LinearSvm::fit(&examples, 30, 1e-3, 1).unwrap().dims())
    });
    group.bench_function("uncertainty_select_2k_pool", |b| {
        let model = EstimatorKind::Dwknn { k: 5 }.train(&examples).unwrap();
        let mut rng = Rng::new(5);
        let pool: Vec<DataPoint> = (0..2000)
            .map(|i| DataPoint::new(i as u64, (0..5).map(|_| rng.range_f64(0.0, 1.0)).collect()))
            .collect();
        let mut strategy = UncertaintySampling::new(UncertaintyMeasure::LeastConfidence);
        b.iter(|| strategy.select(&model, &pool).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_kdtree, bench_dwknn, bench_svm_and_strategy);
criterion_main!(benches);
