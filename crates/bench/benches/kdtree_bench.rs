//! Criterion micro-benchmarks of the flat SoA kd-tree against the legacy
//! `Vec<Vec<f64>>` recursive layout: build and query throughput at the
//! mid-size grid point (n = 4096, d = 4) plus the extremes.

use criterion::{criterion_group, criterion_main, Criterion};
use uei_bench::kdtree::baseline::{OldKdTree, OldScratch};
use uei_learn::kdtree::{KdTree, NearestScratch};
use uei_types::Rng;

fn points(n: usize, dims: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| (0..dims).map(|_| rng.range_f64(0.0, 1.0)).collect()).collect()
}

fn bench_layouts(c: &mut Criterion) {
    for (n, dims) in [(4096usize, 4usize), (256, 2), (65536, 8)] {
        let pts = points(n, dims, 42);
        let queries = points(512, dims, 77);
        let old = OldKdTree::build(pts.clone());
        let flat = KdTree::build(pts.clone()).unwrap();

        let mut group = c.benchmark_group(format!("kdtree_n{n}_d{dims}"));
        group.bench_function("build_old", |b| b.iter(|| OldKdTree::build(pts.clone()).len()));
        group
            .bench_function("build_flat", |b| b.iter(|| KdTree::build(pts.clone()).unwrap().len()));
        group.bench_function("query_old", |b| {
            let mut scratch = OldScratch::default();
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                old.nearest_with(&mut scratch, q, 5)[0].1
            })
        });
        group.bench_function("query_flat", |b| {
            let mut scratch = NearestScratch::new();
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                flat.nearest_with(&mut scratch, q, 5).unwrap()[0].1
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_layouts);
criterion_main!(benches);
