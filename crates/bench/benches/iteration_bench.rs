//! End-to-end benchmark of one exploration iteration per scheme — the
//! quantity Figure 6 plots. Wall-clock here; the modeled response times
//! are produced by the `experiments` binary.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use uei_dbms::buffer::BufferPool;
use uei_dbms::table::Table;
use uei_explore::backend::{DbmsBackend, ExplorationBackend, UeiBackend};
use uei_explore::synth::{generate_sdss_like, SynthConfig};
use uei_index::config::UeiConfig;
use uei_learn::dataset::LabeledSet;
use uei_learn::strategy::UncertaintyMeasure;
use uei_learn::{EstimatorKind, MinMaxScaler, ScaledClassifier};
use uei_storage::io::{DiskTracker, IoProfile};
use uei_storage::store::{ColumnStore, StoreConfig};
use uei_types::{Label, Rng, Schema};

const ROWS: usize = 30_000;

fn trained_model(rows_hint: &[(Vec<f64>, Label)]) -> ScaledClassifier {
    ScaledClassifier::train(
        EstimatorKind::Dwknn { k: 5 },
        MinMaxScaler::from_schema(&Schema::sdss()),
        rows_hint,
    )
    .unwrap()
}

fn examples() -> Vec<(Vec<f64>, Label)> {
    let rows = generate_sdss_like(&SynthConfig { rows: 60, ..Default::default() });
    rows.iter().map(|p| (p.values.clone(), Label::from_bool(p.values[2] < 180.0))).collect()
}

fn bench_uei_iteration(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("uei-bench-iter-u-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let rows = generate_sdss_like(&SynthConfig { rows: ROWS, ..Default::default() });
    let tracker = DiskTracker::new(IoProfile::instant());
    let store = Arc::new(
        ColumnStore::create(
            &dir,
            Schema::sdss(),
            &rows,
            StoreConfig { chunk_target_bytes: 16 * 1024 },
            tracker,
        )
        .unwrap(),
    );
    let mut rng = Rng::new(1);
    let mut backend = UeiBackend::new(
        store,
        UeiConfig { cells_per_dim: 5, ..UeiConfig::default() },
        UncertaintyMeasure::LeastConfidence,
        1000,
        &mut rng,
    )
    .unwrap();
    let model = trained_model(&examples());
    let labeled = LabeledSet::new();

    let mut group = c.benchmark_group("iteration");
    group.sample_size(20);
    group.bench_function("uei_select_next_30k", |b| {
        b.iter(|| backend.select_next(&model, &labeled).unwrap().map(|(p, _)| p.id))
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_dbms_iteration(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("uei-bench-iter-d-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let rows = generate_sdss_like(&SynthConfig { rows: ROWS, ..Default::default() });
    let tracker = DiskTracker::new(IoProfile::instant());
    let table = Table::create(&dir, Schema::sdss(), &rows, &tracker).unwrap();
    let pool = BufferPool::new(4, tracker).unwrap();
    let mut backend = DbmsBackend::with_pool(table, pool, UncertaintyMeasure::LeastConfidence);
    let model = trained_model(&examples());
    let labeled = LabeledSet::new();

    let mut group = c.benchmark_group("iteration");
    group.sample_size(10);
    group.bench_function("dbms_exhaustive_scan_30k", |b| {
        b.iter(|| backend.select_next(&model, &labeled).unwrap().map(|(p, _)| p.id))
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_uei_iteration, bench_dbms_iteration);
criterion_main!(benches);
