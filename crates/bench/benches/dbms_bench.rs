//! Micro-benchmarks of the MySQL-like baseline: page operations, buffer
//! pool behaviour, full scans (cold and warm), and B+-tree ops.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use uei_dbms::btree::BPlusTree;
use uei_dbms::buffer::BufferPool;
use uei_dbms::page::Page;
use uei_dbms::table::Table;
use uei_storage::io::{DiskTracker, IoProfile};
use uei_types::{AttributeDef, DataPoint, Rng, Schema};

fn schema2() -> Schema {
    Schema::new(vec![
        AttributeDef::new("x", 0.0, 100.0).unwrap(),
        AttributeDef::new("y", 0.0, 100.0).unwrap(),
    ])
    .unwrap()
}

fn bench_page(c: &mut Criterion) {
    let mut group = c.benchmark_group("page");
    group.bench_function("fill_with_24b_tuples", |b| {
        let tuple = [7u8; 24];
        b.iter(|| {
            let mut p = Page::new(0);
            let mut n = 0;
            while p.insert(&tuple).is_some() {
                n += 1;
            }
            n
        })
    });
    group.bench_function("serialize_roundtrip", |b| {
        let mut p = Page::new(1);
        while p.insert(&[1u8; 64]).is_some() {}
        b.iter(|| {
            let bytes = p.to_bytes();
            Page::from_bytes(1, &bytes).unwrap().num_slots()
        })
    });
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("uei-bench-dbms-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut rng = Rng::new(1);
    let rows: Vec<DataPoint> = (0..50_000)
        .map(|i| {
            DataPoint::new(i as u64, vec![rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)])
        })
        .collect();
    let tracker = DiskTracker::new(IoProfile::instant());
    let table = Table::create(&dir, schema2(), &rows, &tracker).unwrap();

    let mut group = c.benchmark_group("table_scan");
    group.throughput(Throughput::Bytes(table.size_bytes()));
    group.sample_size(20);
    group.bench_function("cold_scan_tiny_pool", |b| {
        // Pool of 1 page: every page read goes to the (real) file.
        let mut pool = BufferPool::new(1, tracker.clone()).unwrap();
        b.iter(|| {
            let mut count = 0u64;
            table.scan(&mut pool, |_| count += 1).unwrap();
            count
        })
    });
    group.bench_function("warm_scan_full_pool", |b| {
        let mut pool = BufferPool::new(table.num_pages() as usize + 1, tracker.clone()).unwrap();
        table.scan(&mut pool, |_| {}).unwrap(); // warm it
        b.iter(|| {
            let mut count = 0u64;
            table.scan(&mut pool, |_| count += 1).unwrap();
            count
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    group.bench_function("insert_10k", |b| {
        let mut rng = Rng::new(9);
        let values: Vec<f64> = (0..10_000).map(|_| rng.range_f64(0.0, 1000.0)).collect();
        b.iter(|| {
            let mut t = BPlusTree::new(32).unwrap();
            for (i, &v) in values.iter().enumerate() {
                t.insert(v, i as u64).unwrap();
            }
            t.len()
        })
    });
    group.bench_function("range_1pct_of_100k", |b| {
        let mut rng = Rng::new(10);
        let mut t = BPlusTree::new(64).unwrap();
        for i in 0..100_000u64 {
            t.insert(rng.range_f64(0.0, 1000.0), i).unwrap();
        }
        b.iter(|| t.range(500.0, 510.0).len())
    });
    group.finish();
}

criterion_group!(benches, bench_page, bench_scan, bench_btree);
criterion_main!(benches);
