//! Criterion micro-benchmarks of incremental index-point rescoring: one
//! full tracked rescore vs. one delta-pruned incremental pass on the
//! paper's default estimator (DWkNN) at the Table-1 grid size (5⁵ = 3125
//! index points), after the model gained one boundary-local label.

use criterion::{criterion_group, criterion_main, Criterion};
use uei_index::grid::Grid;
use uei_index::points::IndexPoints;
use uei_learn::strategy::UncertaintyMeasure;
use uei_learn::EstimatorKind;
use uei_types::{AttributeDef, Label, Rng, Schema};

fn schema5() -> Schema {
    Schema::new(
        (0..5).map(|i| AttributeDef::new(format!("a{i}"), 0.0, 1.0).unwrap()).collect::<Vec<_>>(),
    )
    .unwrap()
}

fn examples(n: usize, seed: u64) -> Vec<(Vec<f64>, Label)> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|_| {
            let x: Vec<f64> = (0..5).map(|_| rng.range_f64(0.0, 1.0)).collect();
            let label = Label::from_bool(x.iter().sum::<f64>() > 2.5);
            (x, label)
        })
        .collect()
}

fn bench_rescore(c: &mut Criterion) {
    let measure = UncertaintyMeasure::LeastConfidence;
    let grid = Grid::new(&schema5(), 5).unwrap();
    let mut train = examples(300, 11);
    let old_model = EstimatorKind::Dwknn { k: 5 }.train(&train).unwrap();

    // One new boundary-local label, then a retrained model: the state an
    // exploration iteration hands to the rescoring layer.
    let added_point = vec![0.55, 0.45, 0.52, 0.48, 0.50];
    train.push((added_point.clone(), Label::Positive));
    let model = EstimatorKind::Dwknn { k: 5 }.train(&train).unwrap();
    let added: [&[f64]; 1] = [added_point.as_slice()];

    let mut seeded = IndexPoints::from_grid(&grid).unwrap();
    seeded.update_tracked(old_model.as_ref(), measure);

    let mut group = c.benchmark_group("rescore_3125");
    group.bench_function("full", |b| {
        let mut points = IndexPoints::from_grid(&grid).unwrap();
        b.iter(|| points.update_tracked(model.as_ref(), measure))
    });
    group.bench_function("incremental", |b| {
        // Clone the warm cache each iteration so every measured pass prunes
        // against the same pre-label radii.
        b.iter_batched(
            || seeded.clone(),
            |mut points| points.update_incremental(model.as_ref(), measure, &added, 0.0, 0),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_rescore);
criterion_main!(benches);
