//! Micro-benchmarks of the inverted columnar store: chunk codec, store
//! initialization (the paper's one-off index-initialization phase), row
//! fetches, full scans, and subspace reconstruction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use uei_storage::chunk::{Chunk, ChunkId};
use uei_storage::io::{DiskTracker, IoProfile};
use uei_storage::merge::reconstruct_region;
use uei_storage::postings::PostingList;
use uei_storage::store::{ColumnStore, StoreConfig};
use uei_types::{AttributeDef, DataPoint, Region, Rng, Schema};

fn schema3() -> Schema {
    Schema::new(vec![
        AttributeDef::new("x", 0.0, 100.0).unwrap(),
        AttributeDef::new("y", 0.0, 100.0).unwrap(),
        AttributeDef::new("z", 0.0, 100.0).unwrap(),
    ])
    .unwrap()
}

fn random_rows(n: usize, seed: u64) -> Vec<DataPoint> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|i| {
            DataPoint::new(
                i as u64,
                vec![
                    rng.range_f64(0.0, 100.0),
                    rng.range_f64(0.0, 100.0),
                    rng.range_f64(0.0, 100.0),
                ],
            )
        })
        .collect()
}

fn sample_chunk(entries: usize) -> Chunk {
    let postings: Vec<PostingList> = (0..entries)
        .map(|i| PostingList::new(i as f64, vec![i as u64 * 3, i as u64 * 3 + 1]).unwrap())
        .collect();
    Chunk::new(ChunkId::new(0, 0), postings).unwrap()
}

fn bench_chunk_codec(c: &mut Criterion) {
    let chunk = sample_chunk(2_000);
    let encoded = chunk.encode().unwrap();
    let mut group = c.benchmark_group("chunk_codec");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_2k_entries", |b| b.iter(|| chunk.encode().unwrap()));
    group.bench_function("decode_2k_entries", |b| b.iter(|| Chunk::decode(&encoded).unwrap()));
    group.finish();
}

fn bench_store_init(c: &mut Criterion) {
    let rows = random_rows(20_000, 1);
    let mut group = c.benchmark_group("store_init");
    group.sample_size(10);
    group.bench_function("create_20k_rows", |b| {
        let mut i = 0u32;
        b.iter_batched(
            || {
                i += 1;
                let dir =
                    std::env::temp_dir().join(format!("uei-bench-init-{}-{i}", std::process::id()));
                let _ = std::fs::remove_dir_all(&dir);
                dir
            },
            |dir| {
                let tracker = DiskTracker::new(IoProfile::instant());
                let store = ColumnStore::create(
                    &dir,
                    schema3(),
                    &rows,
                    StoreConfig { chunk_target_bytes: 32 * 1024 },
                    tracker,
                )
                .unwrap();
                let n = store.num_rows();
                std::fs::remove_dir_all(&dir).ok();
                n
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_store_reads(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("uei-bench-reads-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let rows = random_rows(50_000, 2);
    let tracker = DiskTracker::new(IoProfile::instant());
    let store = ColumnStore::create(
        &dir,
        schema3(),
        &rows,
        StoreConfig { chunk_target_bytes: 32 * 1024 },
        tracker,
    )
    .unwrap();

    let mut group = c.benchmark_group("store_reads");
    group.bench_function("fetch_100_scattered_rows", |b| {
        let mut rng = Rng::new(3);
        b.iter(|| {
            let mut ids: Vec<u64> = (0..100).map(|_| rng.below(store.num_rows())).collect();
            ids.sort_unstable();
            ids.dedup();
            store.fetch_rows(&ids).unwrap()
        })
    });
    group.bench_function("scan_all_50k", |b| {
        b.iter(|| {
            let mut count = 0u64;
            store.scan_all(|_| count += 1).unwrap();
            count
        })
    });
    group.bench_function("reconstruct_10pct_region", |b| {
        let region = Region::new(vec![20.0, 0.0, 0.0], vec![30.0, 100.0, 100.0]).unwrap();
        b.iter(|| reconstruct_region(&store, &region, None).unwrap().0.len())
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_chunk_codec, bench_store_init, bench_store_reads);
criterion_main!(benches);
