//! Concurrent multi-session exploration over one shared [`EngineCore`].
//!
//! Measures the tentpole claim of the engine/session split (DESIGN.md
//! §10): N independent exploration sessions can run on N threads over a
//! *single* engine — one on-disk store, one shared chunk cache, zero data
//! copies — and the shared cache gets *more* effective as sessions are
//! added, because the sessions' working sets overlap. For each N the
//! bench reports per-iteration wall-time percentiles and the engine's
//! aggregate cache hit ratio; acceptance requires the N = 4 ratio to be
//! at least the single-session ratio.
//!
//! Results serialize to the `BENCH_multi_session.json` shape documented
//! in `BENCH_SCHEMA.json` at the repository root.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;
use uei_explore::multi::{run_sessions_concurrently, SessionSpec};
use uei_explore::oracle::Oracle;
use uei_explore::session::SessionConfig;
use uei_explore::synth::{generate_sdss_like, SynthConfig};
use uei_explore::workload::generate_target_region_fraction;
use uei_index::config::UeiConfig;
use uei_index::engine::EngineCore;
use uei_storage::io::{DiskTracker, IoProfile};
use uei_storage::store::{ColumnStore, StoreConfig};
use uei_types::{Rng, Schema};

/// Fixture and measurement knobs.
#[derive(Debug, Clone)]
pub struct MultiSessionConfig {
    /// Dataset rows (SDSS-like synthetic).
    pub rows: usize,
    /// Grid resolution of the engine.
    pub cells_per_dim: usize,
    /// Chunk size of the column store.
    pub chunk_target_bytes: usize,
    /// Shared-cache budget of each engine.
    pub chunk_cache_bytes: usize,
    /// Session counts to measure; a fresh engine (fresh cache, fresh
    /// physical ledger) is built over the same on-disk store for each.
    pub session_counts: Vec<usize>,
    /// Labels per session.
    pub max_labels: usize,
    /// Bootstrap labels per session.
    pub bootstrap_size: usize,
    /// Evaluation-sample size per session.
    pub eval_sample: usize,
    /// Unlabeled-pool sample size γ per session.
    pub gamma: usize,
    /// Target-region cardinality as a fraction of the dataset.
    pub target_fraction: f64,
    /// Seed for the dataset, the target region, and the session seeds.
    pub seed: u64,
}

impl Default for MultiSessionConfig {
    fn default() -> Self {
        MultiSessionConfig {
            rows: 20_000,
            cells_per_dim: 3,
            chunk_target_bytes: 8192,
            chunk_cache_bytes: 64 << 20,
            session_counts: vec![1, 2, 4, 8],
            max_labels: 25,
            bootstrap_size: 150,
            eval_sample: 300,
            gamma: 200,
            target_fraction: 0.02,
            seed: 71,
        }
    }
}

/// One measured session count.
#[derive(Debug, Clone, Serialize)]
pub struct MultiSessionCase {
    /// Concurrent sessions run over the engine.
    pub sessions: usize,
    /// Iterations completed across all sessions.
    pub iterations: usize,
    /// Labels consumed across all sessions.
    pub labels_used: usize,
    /// Median per-iteration wall time across all sessions, milliseconds.
    pub wall_p50_ms: f64,
    /// 95th-percentile per-iteration wall time, milliseconds.
    pub wall_p95_ms: f64,
    /// End-to-end wall time of the whole concurrent run, milliseconds.
    pub total_wall_ms: f64,
    /// Aggregate shared-cache hits across all sessions.
    pub cache_hits: u64,
    /// Aggregate shared-cache misses (admitted fills).
    pub cache_misses: u64,
    /// `hits / (hits + misses + bypasses)` of the engine's shared cache.
    pub cache_hit_ratio: f64,
    /// Unique physical bytes billed to the engine's ledger (reads that
    /// actually hit the store; shared-cache hits cost nothing here).
    pub physical_bytes_read: u64,
}

/// The full report written to `BENCH_multi_session.json`.
#[derive(Debug, Clone, Serialize)]
pub struct MultiSessionReport {
    /// Dataset rows of the fixture.
    pub dataset_rows: usize,
    /// Store chunk size.
    pub chunk_target_bytes: usize,
    /// Shared-cache budget per engine.
    pub chunk_cache_bytes: usize,
    /// Labels per session.
    pub max_labels: usize,
    /// Unlabeled-pool sample size γ per session.
    pub gamma: usize,
    /// One case per measured session count.
    pub cases: Vec<MultiSessionCase>,
}

/// Nearest-rank percentile of an unsorted sample, `q` in `[0, 1]`.
fn percentile_ms(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

fn session_specs(config: &MultiSessionConfig, n: usize) -> Vec<SessionSpec> {
    (0..n as u64)
        .map(|i| SessionSpec {
            session: SessionConfig {
                max_labels: config.max_labels,
                bootstrap_size: config.bootstrap_size,
                eval_sample: config.eval_sample,
                seed: config.seed.wrapping_mul(1_000) + i,
                ..SessionConfig::default()
            },
            sample_seed: config.seed.wrapping_mul(2_000) + i,
            gamma: config.gamma,
            journal_dir: None,
            postmortem_dir: None,
        })
        .collect()
}

/// Runs the session-count sweep over one on-disk fixture.
pub fn run_multi_session_bench(config: &MultiSessionConfig) -> MultiSessionReport {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "uei-multi-session-bench-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let rows = generate_sdss_like(&SynthConfig { rows: config.rows, ..Default::default() });
    let mut rng = Rng::new(config.seed);
    let target =
        generate_target_region_fraction(&rows, &Schema::sdss(), config.target_fraction, &mut rng)
            .expect("target region");
    let oracle = Oracle::new(target);

    // The store is created once; every engine below re-opens the same
    // files, so no case pays index-initialization and no data is copied.
    ColumnStore::create(
        &dir,
        Schema::sdss(),
        &rows,
        StoreConfig { chunk_target_bytes: config.chunk_target_bytes },
        DiskTracker::new(IoProfile::nvme()),
    )
    .expect("create fixture store");

    let mut cases = Vec::new();
    for &n in &config.session_counts {
        let store = Arc::new(
            ColumnStore::open(&dir, DiskTracker::new(IoProfile::nvme()))
                .expect("open fixture store"),
        );
        let engine = EngineCore::new(
            store,
            UeiConfig {
                cells_per_dim: config.cells_per_dim,
                chunk_cache_bytes: config.chunk_cache_bytes,
                prefetch: false,
                ..UeiConfig::default()
            },
        )
        .expect("engine over fixture store");

        let specs = session_specs(config, n);
        let wall_start = Instant::now();
        let results =
            run_sessions_concurrently(&engine, &oracle, &specs).expect("concurrent sessions");
        let total_wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;

        let mut walls: Vec<f64> =
            results.iter().flat_map(|r| r.traces.iter().map(|t| t.response_wall_ms)).collect();
        let stats = engine.cache_stats();
        let lookups = stats.hits + stats.misses + stats.bypasses;
        cases.push(MultiSessionCase {
            sessions: n,
            iterations: walls.len(),
            labels_used: results.iter().map(|r| r.labels_used).sum(),
            wall_p50_ms: percentile_ms(&mut walls, 0.50),
            wall_p95_ms: percentile_ms(&mut walls, 0.95),
            total_wall_ms,
            cache_hits: stats.hits,
            cache_misses: stats.misses,
            cache_hit_ratio: if lookups == 0 { 0.0 } else { stats.hits as f64 / lookups as f64 },
            physical_bytes_read: engine.io_ledger().stats().bytes_read,
        });
    }

    std::fs::remove_dir_all(&dir).ok();
    MultiSessionReport {
        dataset_rows: config.rows,
        chunk_target_bytes: config.chunk_target_bytes,
        chunk_cache_bytes: config.chunk_cache_bytes,
        max_labels: config.max_labels,
        gamma: config.gamma,
        cases,
    }
}

/// Panics unless the report upholds the acceptance criteria: every case
/// completed its sessions, and sharing the cache across 4 sessions yields
/// an aggregate hit ratio at least as good as a single session's.
pub fn validate_multi_session(report: &MultiSessionReport) {
    assert!(!report.cases.is_empty(), "report has no cases");
    for c in &report.cases {
        assert!(c.iterations > 0, "{} sessions completed no iterations", c.sessions);
        assert!(
            c.labels_used >= c.sessions * report.max_labels.min(1),
            "{} sessions consumed no labels",
            c.sessions
        );
        assert!(
            (0.0..=1.0).contains(&c.cache_hit_ratio),
            "hit ratio out of range for {} sessions",
            c.sessions
        );
    }
    let ratio = |n: usize| {
        report
            .cases
            .iter()
            .find(|c| c.sessions == n)
            .unwrap_or_else(|| panic!("report is missing the {n}-session case"))
            .cache_hit_ratio
    };
    assert!(
        ratio(4) >= ratio(1),
        "4-session aggregate hit ratio ({:.4}) fell below single-session ({:.4})",
        ratio(4),
        ratio(1)
    );
}

/// The default full-size run: N ∈ {1, 2, 4, 8}.
pub fn full_multi_session_report() -> MultiSessionReport {
    run_multi_session_bench(&MultiSessionConfig::default())
}

/// A seconds-scale smoke run used by CI. Panics if any acceptance
/// criterion fails.
pub fn smoke_multi_session_report() -> MultiSessionReport {
    let report = run_multi_session_bench(&MultiSessionConfig {
        rows: 2_500,
        session_counts: vec![1, 4],
        max_labels: 8,
        bootstrap_size: 80,
        eval_sample: 150,
        gamma: 120,
        ..MultiSessionConfig::default()
    });
    validate_multi_session(&report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let mut v = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile_ms(&mut v, 0.50), 2.0);
        assert_eq!(percentile_ms(&mut v, 0.95), 4.0);
        assert_eq!(percentile_ms(&mut [], 0.5), 0.0);
    }

    #[test]
    fn smoke_run_upholds_acceptance_criteria() {
        let report = smoke_multi_session_report();
        assert_eq!(report.cases.len(), 2);
        let four = report.cases.iter().find(|c| c.sessions == 4).unwrap();
        let one = report.cases.iter().find(|c| c.sessions == 1).unwrap();
        assert!(four.iterations > one.iterations);
        assert!(four.cache_hit_ratio >= one.cache_hit_ratio);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"cache_hit_ratio\""));
    }
}
