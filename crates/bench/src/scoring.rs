//! Sequential vs. batch scoring micro-benchmark.
//!
//! Measures the tentpole claim of the batch-scoring layer: rescoring all
//! index points / pool points through [`Classifier::predict_proba_batch`]
//! is at least as fast as the old chain of single-point `predict_proba`
//! calls, and substantially faster on multi-core hosts for `|P| ≥ 4096`.
//! Every timed comparison also bit-compares the two result vectors, so a
//! speedup that silently changed the scores would fail loudly.
//!
//! Results serialize to the `BENCH_scoring.json` schema documented in
//! `BENCH_SCHEMA.json` at the repository root.

use std::time::Instant;

use serde::Serialize;
use uei_index::grid::Grid;
use uei_index::points::IndexPoints;
use uei_learn::strategy::UncertaintyMeasure;
use uei_learn::{Classifier, Committee, EstimatorKind};
use uei_types::{AttributeDef, Label, Rng, Schema};

/// One timed sequential-vs-batch comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ScoringCase {
    /// What was rescored: `"classifier-pool"` (raw probability scoring of
    /// a candidate pool) or `"index-points"` (`IndexPoints::update`).
    pub scope: String,
    /// Estimator name (`dwknn`, `knn`, `svm`, `naive-bayes`, `committee`).
    pub model: String,
    /// Number of points scored per call (`|P|` or pool size).
    pub n_points: usize,
    /// Best-of-`samples` wall time of the sequential path, nanoseconds.
    pub sequential_ns: u64,
    /// Best-of-`samples` wall time of the batch path, nanoseconds.
    pub batch_ns: u64,
    /// `sequential_ns / batch_ns`.
    pub speedup: f64,
    /// Whether the two paths produced bit-identical scores (must be true).
    pub identical: bool,
}

/// The full report written to `BENCH_scoring.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ScoringReport {
    /// Rayon worker count at run time; a 1 means every "batch" number is
    /// the sequential fallback plus scratch reuse, not thread fan-out.
    pub threads: usize,
    /// Timing samples per case (min is reported).
    pub samples: usize,
    pub cases: Vec<ScoringCase>,
}

fn schema3() -> Schema {
    Schema::new(vec![
        AttributeDef::new("x", -1.0, 1.0).unwrap(),
        AttributeDef::new("y", -1.0, 1.0).unwrap(),
        AttributeDef::new("z", -1.0, 1.0).unwrap(),
    ])
    .unwrap()
}

fn training_examples(n: usize, seed: u64) -> Vec<(Vec<f64>, Label)> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|_| {
            let x: Vec<f64> = (0..3).map(|_| rng.range_f64(-1.0, 1.0)).collect();
            let label = Label::from_bool(x.iter().sum::<f64>() > 0.0);
            (x, label)
        })
        .collect()
}

fn pool_points(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| (0..3).map(|_| rng.range_f64(-1.0, 1.0)).collect()).collect()
}

fn time_best<T>(samples: usize, mut f: impl FnMut() -> T) -> (u64, T) {
    let mut best = u64::MAX;
    let mut out = None;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        let value = f();
        best = best.min(start.elapsed().as_nanos() as u64);
        out = Some(value);
    }
    (best, out.expect("at least one sample"))
}

fn models() -> Vec<(&'static str, Box<dyn Classifier>)> {
    let examples = training_examples(200, 11);
    let mut out: Vec<(&'static str, Box<dyn Classifier>)> = Vec::new();
    for kind in [
        EstimatorKind::Dwknn { k: 5 },
        EstimatorKind::Knn { k: 5 },
        EstimatorKind::NaiveBayes,
        EstimatorKind::LinearSvm { epochs: 10, lambda: 1e-2 },
    ] {
        out.push((kind.name(), kind.train(&examples).unwrap()));
    }
    out.push((
        "committee",
        Box::new(Committee::train(EstimatorKind::Dwknn { k: 5 }, 4, &examples, 13).unwrap()),
    ));
    out
}

fn classifier_case(
    name: &str,
    model: &dyn Classifier,
    points: &[Vec<f64>],
    measure: UncertaintyMeasure,
    samples: usize,
) -> ScoringCase {
    let refs: Vec<&[f64]> = points.iter().map(|p| p.as_slice()).collect();
    let (sequential_ns, seq) = time_best(samples, || {
        points.iter().map(|p| measure.score(model.predict_proba(p))).collect::<Vec<f64>>()
    });
    let (batch_ns, batch) = time_best(samples, || measure.score_points(model, &refs));
    let identical =
        seq.len() == batch.len() && seq.iter().zip(&batch).all(|(a, b)| a.to_bits() == b.to_bits());
    ScoringCase {
        scope: "classifier-pool".to_string(),
        model: name.to_string(),
        n_points: points.len(),
        sequential_ns,
        batch_ns,
        speedup: sequential_ns as f64 / batch_ns.max(1) as f64,
        identical,
    }
}

fn index_points_case(
    name: &str,
    model: &dyn Classifier,
    cells_per_dim: usize,
    measure: UncertaintyMeasure,
    samples: usize,
) -> ScoringCase {
    let grid = Grid::new(&schema3(), cells_per_dim).unwrap();
    let mut points = IndexPoints::from_grid(&grid).unwrap();
    let n = points.len();
    let scores_of = |p: &IndexPoints| -> Vec<u64> {
        (0..n).map(|i| p.uncertainty(i).unwrap().to_bits()).collect()
    };
    let (sequential_ns, _) = time_best(samples, || points.update_sequential(model, measure));
    let seq_scores = scores_of(&points);
    let (batch_ns, _) = time_best(samples, || points.update(model, measure));
    let identical = scores_of(&points) == seq_scores;
    ScoringCase {
        scope: "index-points".to_string(),
        model: name.to_string(),
        n_points: n,
        sequential_ns,
        batch_ns,
        speedup: sequential_ns as f64 / batch_ns.max(1) as f64,
        identical,
    }
}

/// Runs the full sequential-vs-batch comparison.
///
/// `pool_sizes` are the candidate-pool sizes for the classifier-level
/// cases; `cells_per_dim` values define the index-point grids (`|P| =
/// cells³`); `samples` is the number of timing repetitions (min wins).
pub fn run_scoring_bench(
    pool_sizes: &[usize],
    cells_per_dim: &[usize],
    samples: usize,
) -> ScoringReport {
    let measure = UncertaintyMeasure::LeastConfidence;
    let models = models();
    let mut cases = Vec::new();
    for &n in pool_sizes {
        let points = pool_points(n, 29);
        for (name, model) in &models {
            cases.push(classifier_case(name, model.as_ref(), &points, measure, samples));
        }
    }
    for &cells in cells_per_dim {
        // DWkNN is the paper's default estimator; it is also the case the
        // shared-scratch batch override targets, so it anchors the
        // index-point numbers.
        let (name, model) = &models[0];
        cases.push(index_points_case(name, model.as_ref(), cells, measure, samples));
    }
    ScoringReport { threads: rayon::current_num_threads(), samples: samples.max(1), cases }
}

/// The default full-size run: pools up to 16 384 points and grids up to
/// `|P| = 16³ = 4096` index points.
pub fn full_report(samples: usize) -> ScoringReport {
    run_scoring_bench(&[256, 1024, 4096, 16_384], &[8, 16], samples)
}

/// A seconds-scale smoke run used by CI: one sample, small sizes. Panics
/// if any case's batch scores diverge from the sequential path.
pub fn smoke_report() -> ScoringReport {
    let report = run_scoring_bench(&[64, 512], &[4], 1);
    for case in &report.cases {
        assert!(case.identical, "{} {} diverged", case.scope, case.model);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_completes_and_scores_agree() {
        let report = smoke_report();
        // 2 pool sizes × 5 models + 1 grid.
        assert_eq!(report.cases.len(), 11);
        assert!(report.cases.iter().all(|c| c.identical));
        assert!(report.threads >= 1);
    }

    #[test]
    fn report_serializes() {
        let report = smoke_report();
        let json = serde_json::to_vec_pretty(&report).unwrap();
        let text = String::from_utf8(json).unwrap();
        assert!(text.contains("\"scope\""));
        assert!(text.contains("classifier-pool"));
        assert!(text.contains("index-points"));
    }
}
