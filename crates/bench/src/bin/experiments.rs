//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p uei-bench --release --bin experiments -- all
//! cargo run -p uei-bench --release --bin experiments -- fig6 --quick
//! cargo run -p uei-bench --release --bin experiments -- fig3 fig4 fig5
//! ```
//!
//! Subcommands: `table1`, `fig3`, `fig4`, `fig5`, `fig6`, `complexity`,
//! `ablation-grid`, `ablation-gamma`, `ablation-estimator`,
//! `ablation-prefetch`, `ablation-chunk`, `telemetry`, `all`.
//! Flags: `--quick` (CI-size runs), `--rows N`, `--runs R`,
//! `--out DIR` (default `results/`), `--data DIR` (fixture cache,
//! default `target/uei-experiments`).
//!
//! The `telemetry` subcommand runs one telemetry-enabled engine session
//! and exports the observability artifacts (DESIGN.md §15):
//! `--metrics-out PATH` (metrics snapshot JSON, default
//! `<out>/metrics.json`), `--prom-out PATH` (Prometheus text, default
//! `<out>/metrics.prom`), and `--flight-out PATH` (flight-recorder dump,
//! default `<out>/flight.json`). `--cells N` sets the grid resolution
//! per dimension (default 5, i.e. 3 125 index points on the 5-D SDSS
//! schema) so the phase breakdown can be compared across plane sizes.

use std::path::PathBuf;
use std::sync::Arc;

use uei_bench::experiments::{
    ablation_batch, ablation_chunk_size, ablation_estimator, ablation_gamma, ablation_grid,
    ablation_prefetch, ablation_regions, ablation_strategy, complexity, fig6_response_time,
    fig_accuracy, table1, AccuracyFigure, ResponseTimeFigure,
};
use uei_bench::fixture::{ExperimentScale, Fixture};
use uei_explore::workload::RegionSize;

struct Options {
    commands: Vec<String>,
    quick: bool,
    rows: Option<usize>,
    runs: Option<usize>,
    out: PathBuf,
    data: PathBuf,
    metrics_out: Option<PathBuf>,
    prom_out: Option<PathBuf>,
    flight_out: Option<PathBuf>,
    cells: Option<usize>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        commands: Vec::new(),
        quick: false,
        rows: None,
        runs: None,
        out: PathBuf::from("results"),
        data: PathBuf::from("target/uei-experiments"),
        metrics_out: None,
        prom_out: None,
        flight_out: None,
        cells: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--rows" => {
                opts.rows = args.next().and_then(|v| v.parse().ok());
            }
            "--runs" => {
                opts.runs = args.next().and_then(|v| v.parse().ok());
            }
            "--out" => {
                if let Some(v) = args.next() {
                    opts.out = PathBuf::from(v);
                }
            }
            "--data" => {
                if let Some(v) = args.next() {
                    opts.data = PathBuf::from(v);
                }
            }
            "--metrics-out" => {
                opts.metrics_out = args.next().map(PathBuf::from);
            }
            "--prom-out" => {
                opts.prom_out = args.next().map(PathBuf::from);
            }
            "--flight-out" => {
                opts.flight_out = args.next().map(PathBuf::from);
            }
            "--cells" => {
                opts.cells = args.next().and_then(|v| v.parse().ok());
            }
            other => opts.commands.push(other.to_string()),
        }
    }
    if opts.commands.is_empty() {
        opts.commands.push("all".to_string());
    }
    opts
}

fn apply_overrides(mut scale: ExperimentScale, opts: &Options) -> ExperimentScale {
    if let Some(rows) = opts.rows {
        scale.rows = rows;
    }
    if let Some(runs) = opts.runs {
        scale.runs = runs;
    }
    scale
}

fn accuracy_scale(opts: &Options) -> ExperimentScale {
    let base = if opts.quick { ExperimentScale::quick() } else { ExperimentScale::accuracy() };
    apply_overrides(base, opts)
}

fn response_scale(opts: &Options) -> ExperimentScale {
    let base = if opts.quick { ExperimentScale::quick() } else { ExperimentScale::response_time() };
    apply_overrides(base, opts)
}

fn save_json<T: serde::Serialize>(opts: &Options, name: &str, value: &T) {
    std::fs::create_dir_all(&opts.out).expect("create results dir");
    let path = opts.out.join(format!("{name}.json"));
    let json = serde_json::to_vec_pretty(value).expect("serialize results");
    std::fs::write(&path, json).expect("write results");
    println!("  [saved {}]", path.display());
}

fn print_accuracy(fig: &AccuracyFigure) {
    println!();
    println!(
        "=== {} — UEI Accuracy ({} target region, {:.3} % of data, {} runs) ===",
        fig.figure,
        fig.region_size,
        fig.region_fraction_mean * 100.0,
        fig.uei.runs
    );
    println!("{:>8} {:>12} {:>12}", "labels", "UEI F", "MySQL F");
    let step = (fig.uei.series.len() / 20).max(1);
    for point in fig.uei.series.iter().step_by(step) {
        let dbms_f = fig
            .dbms
            .series
            .iter()
            .find(|p| p.labels == point.labels)
            .map(|p| p.f_measure_mean)
            .unwrap_or(f64::NAN);
        println!("{:>8} {:>12.4} {:>12.4}", point.labels, point.f_measure_mean, dbms_f);
    }
    println!(
        "final F (exact, full retrieval): UEI {:.4}  MySQL {:.4}",
        fig.uei.final_f_measure_mean, fig.dbms.final_f_measure_mean
    );
    println!(
        "labels to reach F>=0.8: UEI {:?}  MySQL {:?}",
        fig.uei_labels_to_f80, fig.dbms_labels_to_f80
    );
}

fn print_fig6(fig: &ResponseTimeFigure) {
    println!();
    println!("=== fig6 — UEI Response Time (modeled NVMe, 3.4 GB/s) ===");
    println!(
        "{:>12} {:>10} {:>16} {:>16} {:>20} {:>10}",
        "scheme", "region", "mean resp (ms)", "p95 resp (ms)", "bytes/iter", "<500ms"
    );
    for row in &fig.rows {
        println!(
            "{:>12} {:>10} {:>16.2} {:>16.2} {:>20.0} {:>10}",
            row.scheme,
            row.region_size,
            row.mean_response_ms,
            row.p95_response_ms,
            row.mean_bytes_per_iteration,
            if row.sub_500ms { "yes" } else { "NO" }
        );
    }
    println!(
        "UEI speedup over MySQL-like: {:.1}x   (paper: >50x; dataset is {:.0}x the memory budget)",
        fig.speedup, fig.data_over_memory
    );
}

fn main() {
    let opts = parse_args();
    let started = std::time::Instant::now();

    for command in opts.commands.clone() {
        match command.as_str() {
            "table1" => run_table1(&opts),
            "fig3" => run_fig(&opts, RegionSize::Small),
            "fig4" => run_fig(&opts, RegionSize::Medium),
            "fig5" => run_fig(&opts, RegionSize::Large),
            "fig6" => run_fig6(&opts),
            "complexity" => run_complexity(&opts),
            "ablation-grid" => run_ablation_grid(&opts),
            "ablation-gamma" => run_ablation_gamma(&opts),
            "ablation-estimator" => run_ablation_estimator(&opts),
            "ablation-prefetch" => run_ablation_prefetch(&opts),
            "ablation-batch" => run_ablation_batch(&opts),
            "ablation-regions" => run_ablation_regions(&opts),
            "ablation-strategy" => run_ablation_strategy(&opts),
            "ablation-chunk" => run_ablation_chunk(&opts),
            "telemetry" => run_telemetry(&opts),
            "all" => {
                run_table1(&opts);
                run_fig(&opts, RegionSize::Small);
                run_fig(&opts, RegionSize::Medium);
                run_fig(&opts, RegionSize::Large);
                run_fig6(&opts);
                run_complexity(&opts);
                run_ablation_grid(&opts);
                run_ablation_gamma(&opts);
                run_ablation_estimator(&opts);
                run_ablation_prefetch(&opts);
                run_ablation_batch(&opts);
                run_ablation_regions(&opts);
                run_ablation_strategy(&opts);
                run_ablation_chunk(&opts);
            }
            other => {
                eprintln!("unknown command: {other}");
                std::process::exit(2);
            }
        }
    }
    println!("\n(total {:.1}s)", started.elapsed().as_secs_f64());
}

fn run_table1(opts: &Options) {
    let scale = accuracy_scale(opts);
    println!("\n=== Table 1 — PARAMETERS ===");
    for (k, v) in table1(&scale) {
        println!("{k:<42} {v}");
    }
}

fn run_fig(opts: &Options, size: RegionSize) {
    let scale = accuracy_scale(opts);
    let fixture = Fixture::build(&opts.data, scale).expect("fixture");
    let fig = fig_accuracy(&fixture, size).expect("accuracy experiment");
    print_accuracy(&fig);
    save_json(opts, &fig.figure.clone(), &fig);
}

fn run_fig6(opts: &Options) {
    let scale = response_scale(opts);
    let fixture = Fixture::build(&opts.data, scale).expect("fixture");
    let fig = fig6_response_time(&fixture).expect("response-time experiment");
    print_fig6(&fig);
    save_json(opts, "fig6", &fig);
}

fn run_complexity(opts: &Options) {
    let scale = response_scale(opts);
    let fixture = Fixture::build(&opts.data, scale).expect("fixture");
    let report = complexity(&fixture).expect("complexity experiment");
    println!("\n=== §3.3 complexity: O(kn) vs O(ke) ===");
    println!("n (dataset rows):                  {}", report.n);
    println!("DBMS tuples examined / iteration:  {:.0}", report.dbms_examined_mean);
    println!("DBMS bytes / iteration:            {:.0}", report.dbms_bytes_mean);
    println!("UEI region rows e / iteration:     {:.0}", report.uei_region_rows_mean);
    println!("UEI bytes / iteration:             {:.0}", report.uei_bytes_mean);
    println!("n / e:                             {:.1}", report.n_over_e);
    println!("byte ratio (DBMS / UEI):           {:.1}", report.byte_ratio);
    save_json(opts, "complexity", &report);
}

fn ablation_fixture(opts: &Options) -> Fixture {
    let mut scale = accuracy_scale(opts);
    // Ablations need fewer runs to stay fast but keep the shape.
    scale.runs = scale.runs.min(3);
    scale.max_labels = scale.max_labels.min(60);
    Fixture::build(&opts.data, scale).expect("fixture")
}

fn print_ablation(ab: &uei_bench::experiments::Ablation) {
    println!("\n=== ablation — {} ===", ab.parameter);
    println!("{:>16} {:>16} {:>12} {:>18}", "value", "mean resp (ms)", "final F", "bytes/iter");
    for p in &ab.points {
        println!(
            "{:>16} {:>16.3} {:>12.4} {:>18.0}",
            p.value, p.mean_response_ms, p.final_f_measure, p.bytes_per_iteration
        );
    }
}

fn run_ablation_grid(opts: &Options) {
    let fixture = ablation_fixture(opts);
    let cells = if opts.quick { vec![2, 4] } else { vec![2, 3, 5, 8] };
    let ab = ablation_grid(&fixture, &cells).expect("grid ablation");
    print_ablation(&ab);
    save_json(opts, "ablation_grid", &ab);
}

fn run_ablation_gamma(opts: &Options) {
    let fixture = ablation_fixture(opts);
    let gammas = if opts.quick { vec![200, 800] } else { vec![250, 500, 1000, 2000, 4000] };
    let ab = ablation_gamma(&fixture, &gammas).expect("gamma ablation");
    print_ablation(&ab);
    save_json(opts, "ablation_gamma", &ab);
}

fn run_ablation_estimator(opts: &Options) {
    let fixture = ablation_fixture(opts);
    let ab = ablation_estimator(&fixture).expect("estimator ablation");
    print_ablation(&ab);
    save_json(opts, "ablation_estimator", &ab);
}

fn run_ablation_prefetch(opts: &Options) {
    let fixture = ablation_fixture(opts);
    let sigmas = if opts.quick { vec![0.5] } else { vec![0.1, 0.5, 1.0] };
    let ab = ablation_prefetch(&fixture, &sigmas).expect("prefetch ablation");
    print_ablation(&ab);
    save_json(opts, "ablation_prefetch", &ab);
}

fn run_ablation_batch(opts: &Options) {
    let fixture = ablation_fixture(opts);
    let batches = if opts.quick { vec![1, 5] } else { vec![1, 3, 5, 10] };
    let ab = ablation_batch(&fixture, &batches).expect("batch ablation");
    print_ablation(&ab);
    save_json(opts, "ablation_batch", &ab);
}

fn run_ablation_regions(opts: &Options) {
    let fixture = ablation_fixture(opts);
    let counts = if opts.quick { vec![1, 4] } else { vec![1, 2, 4, 8] };
    let ab = ablation_regions(&fixture, &counts).expect("regions ablation");
    print_ablation(&ab);
    save_json(opts, "ablation_regions", &ab);
}

fn run_ablation_strategy(opts: &Options) {
    let fixture = ablation_fixture(opts);
    let ab = ablation_strategy(&fixture).expect("strategy ablation");
    print_ablation(&ab);
    save_json(opts, "ablation_strategy", &ab);
}

/// Runs one telemetry-enabled, journaled engine session over a synthetic
/// fixture and exports the three observability artifacts: a metrics
/// snapshot (diffable JSON), a Prometheus text dump, and the
/// flight-recorder contents.
fn run_telemetry(opts: &Options) {
    use uei_explore::multi::{run_one_session, SessionSpec};
    use uei_explore::oracle::Oracle;
    use uei_explore::report::average_traces;
    use uei_explore::session::SessionConfig;
    use uei_explore::synth::{generate_sdss_like, SynthConfig};
    use uei_explore::workload::generate_target_region_fraction;
    use uei_index::config::UeiConfig;
    use uei_index::engine::EngineCore;
    use uei_obs::TelemetryConfig;
    use uei_storage::io::{DiskTracker, IoProfile};
    use uei_storage::store::{ColumnStore, StoreConfig};
    use uei_types::{Rng, Schema};

    let n = opts.rows.unwrap_or(if opts.quick { 5_000 } else { 20_000 });
    let cells_per_dim = opts.cells.unwrap_or(5);
    let dir = opts.data.join("telemetry");
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "\n=== telemetry — one instrumented session over {n} rows, {} index points ===",
        cells_per_dim.pow(5)
    );
    let rows = generate_sdss_like(&SynthConfig { rows: n, ..Default::default() });
    let mut rng = Rng::new(13);
    let target =
        generate_target_region_fraction(&rows, &Schema::sdss(), 0.02, &mut rng).expect("target");
    let oracle = Oracle::new(target);

    let tracker = DiskTracker::new(IoProfile::nvme());
    let store = ColumnStore::create(
        dir.join("store"),
        Schema::sdss(),
        &rows,
        StoreConfig { chunk_target_bytes: 8192 },
        tracker,
    )
    .expect("fixture store");
    let engine = EngineCore::new(
        Arc::new(store),
        UeiConfig { cells_per_dim, telemetry: TelemetryConfig::on(), ..UeiConfig::default() },
    )
    .expect("engine");

    let spec = SessionSpec {
        session: SessionConfig {
            max_labels: if opts.quick { 15 } else { 40 },
            bootstrap_size: 150,
            eval_sample: 1_000,
            seed: 42,
            ..SessionConfig::default()
        },
        sample_seed: 7,
        gamma: 1_000,
        journal_dir: Some(dir.join("journal")),
        postmortem_dir: None,
    };
    let result = run_one_session(&engine, &oracle, &spec).expect("telemetry session");
    let summary = average_traces(std::slice::from_ref(&result));

    println!("{:>16} {:>12} {:>12} {:>8}", "phase", "wall (ms)", "virtual (ms)", "spans");
    for p in &summary.phase_ms {
        println!("{:>16} {:>12.2} {:>12.2} {:>8}", p.phase, p.wall_ms, p.virtual_ms, p.count);
    }

    std::fs::create_dir_all(&opts.out).expect("create results dir");
    let telemetry = engine.telemetry();

    let metrics_path = opts.metrics_out.clone().unwrap_or_else(|| opts.out.join("metrics.json"));
    let json = serde_json::to_vec_pretty(&telemetry.snapshot()).expect("serialize snapshot");
    std::fs::write(&metrics_path, json).expect("write metrics snapshot");
    println!("  [saved {}]", metrics_path.display());

    let prom_path = opts.prom_out.clone().unwrap_or_else(|| opts.out.join("metrics.prom"));
    std::fs::write(&prom_path, telemetry.to_prometheus()).expect("write prometheus dump");
    println!("  [saved {}]", prom_path.display());

    let flight_path = opts.flight_out.clone().unwrap_or_else(|| opts.out.join("flight.json"));
    let dump = telemetry.postmortem("manual", "telemetry subcommand flight-recorder dump");
    let json = serde_json::to_vec_pretty(&dump).expect("serialize flight dump");
    std::fs::write(&flight_path, json).expect("write flight dump");
    println!("  [saved {}]", flight_path.display());
}

fn run_ablation_chunk(opts: &Options) {
    let mut scale = accuracy_scale(opts);
    scale.runs = scale.runs.min(3);
    scale.max_labels = scale.max_labels.min(60);
    let sizes = if opts.quick {
        vec![4 * 1024, 32 * 1024]
    } else {
        vec![2 * 1024, 8 * 1024, 32 * 1024, 128 * 1024]
    };
    let ab = ablation_chunk_size(&opts.data, &scale, &sizes).expect("chunk ablation");
    print_ablation(&ab);
    save_json(opts, "ablation_chunk", &ab);
}
