//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p uei-bench --release --bin experiments -- all
//! cargo run -p uei-bench --release --bin experiments -- fig6 --quick
//! cargo run -p uei-bench --release --bin experiments -- fig3 fig4 fig5
//! ```
//!
//! Subcommands: `table1`, `fig3`, `fig4`, `fig5`, `fig6`, `complexity`,
//! `ablation-grid`, `ablation-gamma`, `ablation-estimator`,
//! `ablation-prefetch`, `ablation-chunk`, `all`.
//! Flags: `--quick` (CI-size runs), `--rows N`, `--runs R`,
//! `--out DIR` (default `results/`), `--data DIR` (fixture cache,
//! default `target/uei-experiments`).

use std::path::PathBuf;

use uei_bench::experiments::{
    ablation_batch, ablation_chunk_size, ablation_estimator, ablation_gamma, ablation_grid,
    ablation_prefetch, ablation_regions, ablation_strategy, complexity, fig6_response_time,
    fig_accuracy, table1, AccuracyFigure, ResponseTimeFigure,
};
use uei_bench::fixture::{ExperimentScale, Fixture};
use uei_explore::workload::RegionSize;

struct Options {
    commands: Vec<String>,
    quick: bool,
    rows: Option<usize>,
    runs: Option<usize>,
    out: PathBuf,
    data: PathBuf,
}

fn parse_args() -> Options {
    let mut opts = Options {
        commands: Vec::new(),
        quick: false,
        rows: None,
        runs: None,
        out: PathBuf::from("results"),
        data: PathBuf::from("target/uei-experiments"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--rows" => {
                opts.rows = args.next().and_then(|v| v.parse().ok());
            }
            "--runs" => {
                opts.runs = args.next().and_then(|v| v.parse().ok());
            }
            "--out" => {
                if let Some(v) = args.next() {
                    opts.out = PathBuf::from(v);
                }
            }
            "--data" => {
                if let Some(v) = args.next() {
                    opts.data = PathBuf::from(v);
                }
            }
            other => opts.commands.push(other.to_string()),
        }
    }
    if opts.commands.is_empty() {
        opts.commands.push("all".to_string());
    }
    opts
}

fn apply_overrides(mut scale: ExperimentScale, opts: &Options) -> ExperimentScale {
    if let Some(rows) = opts.rows {
        scale.rows = rows;
    }
    if let Some(runs) = opts.runs {
        scale.runs = runs;
    }
    scale
}

fn accuracy_scale(opts: &Options) -> ExperimentScale {
    let base = if opts.quick { ExperimentScale::quick() } else { ExperimentScale::accuracy() };
    apply_overrides(base, opts)
}

fn response_scale(opts: &Options) -> ExperimentScale {
    let base = if opts.quick { ExperimentScale::quick() } else { ExperimentScale::response_time() };
    apply_overrides(base, opts)
}

fn save_json<T: serde::Serialize>(opts: &Options, name: &str, value: &T) {
    std::fs::create_dir_all(&opts.out).expect("create results dir");
    let path = opts.out.join(format!("{name}.json"));
    let json = serde_json::to_vec_pretty(value).expect("serialize results");
    std::fs::write(&path, json).expect("write results");
    println!("  [saved {}]", path.display());
}

fn print_accuracy(fig: &AccuracyFigure) {
    println!();
    println!(
        "=== {} — UEI Accuracy ({} target region, {:.3} % of data, {} runs) ===",
        fig.figure,
        fig.region_size,
        fig.region_fraction_mean * 100.0,
        fig.uei.runs
    );
    println!("{:>8} {:>12} {:>12}", "labels", "UEI F", "MySQL F");
    let step = (fig.uei.series.len() / 20).max(1);
    for point in fig.uei.series.iter().step_by(step) {
        let dbms_f = fig
            .dbms
            .series
            .iter()
            .find(|p| p.labels == point.labels)
            .map(|p| p.f_measure_mean)
            .unwrap_or(f64::NAN);
        println!("{:>8} {:>12.4} {:>12.4}", point.labels, point.f_measure_mean, dbms_f);
    }
    println!(
        "final F (exact, full retrieval): UEI {:.4}  MySQL {:.4}",
        fig.uei.final_f_measure_mean, fig.dbms.final_f_measure_mean
    );
    println!(
        "labels to reach F>=0.8: UEI {:?}  MySQL {:?}",
        fig.uei_labels_to_f80, fig.dbms_labels_to_f80
    );
}

fn print_fig6(fig: &ResponseTimeFigure) {
    println!();
    println!("=== fig6 — UEI Response Time (modeled NVMe, 3.4 GB/s) ===");
    println!(
        "{:>12} {:>10} {:>16} {:>16} {:>20} {:>10}",
        "scheme", "region", "mean resp (ms)", "p95 resp (ms)", "bytes/iter", "<500ms"
    );
    for row in &fig.rows {
        println!(
            "{:>12} {:>10} {:>16.2} {:>16.2} {:>20.0} {:>10}",
            row.scheme,
            row.region_size,
            row.mean_response_ms,
            row.p95_response_ms,
            row.mean_bytes_per_iteration,
            if row.sub_500ms { "yes" } else { "NO" }
        );
    }
    println!(
        "UEI speedup over MySQL-like: {:.1}x   (paper: >50x; dataset is {:.0}x the memory budget)",
        fig.speedup, fig.data_over_memory
    );
}

fn main() {
    let opts = parse_args();
    let started = std::time::Instant::now();

    for command in opts.commands.clone() {
        match command.as_str() {
            "table1" => run_table1(&opts),
            "fig3" => run_fig(&opts, RegionSize::Small),
            "fig4" => run_fig(&opts, RegionSize::Medium),
            "fig5" => run_fig(&opts, RegionSize::Large),
            "fig6" => run_fig6(&opts),
            "complexity" => run_complexity(&opts),
            "ablation-grid" => run_ablation_grid(&opts),
            "ablation-gamma" => run_ablation_gamma(&opts),
            "ablation-estimator" => run_ablation_estimator(&opts),
            "ablation-prefetch" => run_ablation_prefetch(&opts),
            "ablation-batch" => run_ablation_batch(&opts),
            "ablation-regions" => run_ablation_regions(&opts),
            "ablation-strategy" => run_ablation_strategy(&opts),
            "ablation-chunk" => run_ablation_chunk(&opts),
            "all" => {
                run_table1(&opts);
                run_fig(&opts, RegionSize::Small);
                run_fig(&opts, RegionSize::Medium);
                run_fig(&opts, RegionSize::Large);
                run_fig6(&opts);
                run_complexity(&opts);
                run_ablation_grid(&opts);
                run_ablation_gamma(&opts);
                run_ablation_estimator(&opts);
                run_ablation_prefetch(&opts);
                run_ablation_batch(&opts);
                run_ablation_regions(&opts);
                run_ablation_strategy(&opts);
                run_ablation_chunk(&opts);
            }
            other => {
                eprintln!("unknown command: {other}");
                std::process::exit(2);
            }
        }
    }
    println!("\n(total {:.1}s)", started.elapsed().as_secs_f64());
}

fn run_table1(opts: &Options) {
    let scale = accuracy_scale(opts);
    println!("\n=== Table 1 — PARAMETERS ===");
    for (k, v) in table1(&scale) {
        println!("{k:<42} {v}");
    }
}

fn run_fig(opts: &Options, size: RegionSize) {
    let scale = accuracy_scale(opts);
    let fixture = Fixture::build(&opts.data, scale).expect("fixture");
    let fig = fig_accuracy(&fixture, size).expect("accuracy experiment");
    print_accuracy(&fig);
    save_json(opts, &fig.figure.clone(), &fig);
}

fn run_fig6(opts: &Options) {
    let scale = response_scale(opts);
    let fixture = Fixture::build(&opts.data, scale).expect("fixture");
    let fig = fig6_response_time(&fixture).expect("response-time experiment");
    print_fig6(&fig);
    save_json(opts, "fig6", &fig);
}

fn run_complexity(opts: &Options) {
    let scale = response_scale(opts);
    let fixture = Fixture::build(&opts.data, scale).expect("fixture");
    let report = complexity(&fixture).expect("complexity experiment");
    println!("\n=== §3.3 complexity: O(kn) vs O(ke) ===");
    println!("n (dataset rows):                  {}", report.n);
    println!("DBMS tuples examined / iteration:  {:.0}", report.dbms_examined_mean);
    println!("DBMS bytes / iteration:            {:.0}", report.dbms_bytes_mean);
    println!("UEI region rows e / iteration:     {:.0}", report.uei_region_rows_mean);
    println!("UEI bytes / iteration:             {:.0}", report.uei_bytes_mean);
    println!("n / e:                             {:.1}", report.n_over_e);
    println!("byte ratio (DBMS / UEI):           {:.1}", report.byte_ratio);
    save_json(opts, "complexity", &report);
}

fn ablation_fixture(opts: &Options) -> Fixture {
    let mut scale = accuracy_scale(opts);
    // Ablations need fewer runs to stay fast but keep the shape.
    scale.runs = scale.runs.min(3);
    scale.max_labels = scale.max_labels.min(60);
    Fixture::build(&opts.data, scale).expect("fixture")
}

fn print_ablation(ab: &uei_bench::experiments::Ablation) {
    println!("\n=== ablation — {} ===", ab.parameter);
    println!("{:>16} {:>16} {:>12} {:>18}", "value", "mean resp (ms)", "final F", "bytes/iter");
    for p in &ab.points {
        println!(
            "{:>16} {:>16.3} {:>12.4} {:>18.0}",
            p.value, p.mean_response_ms, p.final_f_measure, p.bytes_per_iteration
        );
    }
}

fn run_ablation_grid(opts: &Options) {
    let fixture = ablation_fixture(opts);
    let cells = if opts.quick { vec![2, 4] } else { vec![2, 3, 5, 8] };
    let ab = ablation_grid(&fixture, &cells).expect("grid ablation");
    print_ablation(&ab);
    save_json(opts, "ablation_grid", &ab);
}

fn run_ablation_gamma(opts: &Options) {
    let fixture = ablation_fixture(opts);
    let gammas = if opts.quick { vec![200, 800] } else { vec![250, 500, 1000, 2000, 4000] };
    let ab = ablation_gamma(&fixture, &gammas).expect("gamma ablation");
    print_ablation(&ab);
    save_json(opts, "ablation_gamma", &ab);
}

fn run_ablation_estimator(opts: &Options) {
    let fixture = ablation_fixture(opts);
    let ab = ablation_estimator(&fixture).expect("estimator ablation");
    print_ablation(&ab);
    save_json(opts, "ablation_estimator", &ab);
}

fn run_ablation_prefetch(opts: &Options) {
    let fixture = ablation_fixture(opts);
    let sigmas = if opts.quick { vec![0.5] } else { vec![0.1, 0.5, 1.0] };
    let ab = ablation_prefetch(&fixture, &sigmas).expect("prefetch ablation");
    print_ablation(&ab);
    save_json(opts, "ablation_prefetch", &ab);
}

fn run_ablation_batch(opts: &Options) {
    let fixture = ablation_fixture(opts);
    let batches = if opts.quick { vec![1, 5] } else { vec![1, 3, 5, 10] };
    let ab = ablation_batch(&fixture, &batches).expect("batch ablation");
    print_ablation(&ab);
    save_json(opts, "ablation_batch", &ab);
}

fn run_ablation_regions(opts: &Options) {
    let fixture = ablation_fixture(opts);
    let counts = if opts.quick { vec![1, 4] } else { vec![1, 2, 4, 8] };
    let ab = ablation_regions(&fixture, &counts).expect("regions ablation");
    print_ablation(&ab);
    save_json(opts, "ablation_regions", &ab);
}

fn run_ablation_strategy(opts: &Options) {
    let fixture = ablation_fixture(opts);
    let ab = ablation_strategy(&fixture).expect("strategy ablation");
    print_ablation(&ab);
    save_json(opts, "ablation_strategy", &ab);
}

fn run_ablation_chunk(opts: &Options) {
    let mut scale = accuracy_scale(opts);
    scale.runs = scale.runs.min(3);
    scale.max_labels = scale.max_labels.min(60);
    let sizes = if opts.quick {
        vec![4 * 1024, 32 * 1024]
    } else {
        vec![2 * 1024, 8 * 1024, 32 * 1024, 128 * 1024]
    };
    let ab = ablation_chunk_size(&opts.data, &scale, &sizes).expect("chunk ablation");
    print_ablation(&ab);
    save_json(opts, "ablation_chunk", &ab);
}
