//! Cold vs. warm-shared-cache vs. delta region-load comparison.
//!
//! ```text
//! cargo run -p uei-bench --release --bin region_load_bench            # full run
//! cargo run -p uei-bench --release --bin region_load_bench -- --smoke # CI smoke
//! ```
//!
//! Writes `BENCH_region_load.json` (schema: `BENCH_SCHEMA.json`) to the
//! current directory, or to the path given with `--out`.

use std::path::PathBuf;

use uei_bench::region_load::{
    full_region_load_report, smoke_region_load_report, validate_report, RegionLoadReport,
};

fn print_report(report: &RegionLoadReport) {
    println!(
        "region loads over a {0}x{0} serpentine cell walk — {1} rows, {2} B chunks, best of {3} sample(s)\n",
        report.cells_per_dim, report.dataset_rows, report.chunk_target_bytes, report.samples
    );
    println!(
        "{:<12} {:>6} {:>8} {:>12} {:>12} {:>12} {:>8} {:>8} {:>12}",
        "mode", "cells", "rows", "fg bytes", "fg virt", "wall", "loaded", "reused", "bg bytes"
    );
    for c in &report.cases {
        println!(
            "{:<12} {:>6} {:>8} {:>10} B {:>10.2}ms {:>10.2}ms {:>8} {:>8} {:>10} B",
            c.mode,
            c.cells,
            c.rows,
            c.fg_bytes_read,
            c.fg_virtual_ms,
            c.wall_ns as f64 / 1e6,
            c.chunks_loaded,
            c.chunks_reused,
            c.bg_bytes_read,
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_region_load.json"));

    let report = if smoke { smoke_region_load_report() } else { full_region_load_report(5) };
    print_report(&report);
    validate_report(&report);

    let json = serde_json::to_vec_pretty(&report).expect("serialize report");
    std::fs::write(&out, json).expect("write report");
    println!("\n[saved {}]", out.display());
}
