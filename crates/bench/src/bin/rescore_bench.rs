//! Incremental vs. full index-point rescoring comparison.
//!
//! ```text
//! cargo run -p uei-bench --release --bin rescore_bench            # full run
//! cargo run -p uei-bench --release --bin rescore_bench -- --smoke # CI smoke
//! ```
//!
//! Writes `BENCH_rescore.json` (schema: `BENCH_SCHEMA.json`) to the
//! current directory, or to the path given with `--out`.

use std::path::PathBuf;

use uei_bench::rescore::{
    full_rescore_report, smoke_rescore_report, validate_rescore, RescoreReport,
};

fn print_report(report: &RescoreReport) {
    println!(
        "incremental vs. full index-point rescoring — {} rayon thread(s), \
         {}^5 grid, {} bootstrap examples\n",
        report.threads, report.cells_per_dim, report.bootstrap
    );
    println!(
        "{:<12} {:>8} {:>6} {:>12} {:>12} {:>10} {:>12} {:>12} {:>9} {:>10}",
        "model",
        "points",
        "iters",
        "full-scored",
        "inc-scored",
        "reduction",
        "full",
        "incremental",
        "speedup",
        "identical"
    );
    for c in &report.cases {
        println!(
            "{:<12} {:>8} {:>6} {:>12} {:>12} {:>9.2}x {:>10.2}us {:>10.2}us {:>8.2}x {:>10}",
            c.model,
            c.n_points,
            c.iterations,
            c.points_rescored_full,
            c.points_rescored_incremental,
            c.reduction,
            c.full_ns as f64 / 1e3,
            c.incremental_ns as f64 / 1e3,
            c.speedup,
            c.identical,
        );
    }
    #[cfg(debug_assertions)]
    println!(
        "\nnote: debug build — every incremental pass also runs the full \
         cross-check, so the timing columns are meaningless here."
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_rescore.json"));

    let report = if smoke { smoke_rescore_report() } else { full_rescore_report() };
    print_report(&report);
    validate_rescore(&report);

    let json = serde_json::to_vec_pretty(&report).expect("serialize report");
    std::fs::write(&out, json).expect("write report");
    println!("\n[saved {}]", out.display());
}
