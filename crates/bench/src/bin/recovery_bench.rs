//! Journal overhead and crash-recovery speed.
//!
//! ```text
//! cargo run -p uei-bench --release --bin recovery_bench            # full run
//! cargo run -p uei-bench --release --bin recovery_bench -- --smoke # CI smoke
//! ```
//!
//! Writes `BENCH_recovery.json` (schema: `BENCH_SCHEMA.json`) to the
//! current directory, or to the path given with `--out`.

use std::path::PathBuf;

use uei_bench::recovery::{
    full_recovery_report, smoke_recovery_report, validate_recovery, RecoveryReport,
};

fn print_report(report: &RecoveryReport) {
    println!(
        "session journal overhead and crash recovery — {} rows, {} labels, γ = {}, \
         fsync {}, snapshot every {}, best of {}\n",
        report.dataset_rows,
        report.max_labels,
        report.gamma,
        report.fsync,
        report.snapshot_every,
        report.repeats
    );
    println!(
        "clean path:  plain {:>9.2} ms   journaled {:>9.2} ms   overhead {:>+6.2}%  \
         ({} journal writes)",
        report.plain_wall_ms, report.journaled_wall_ms, report.overhead_pct, report.journal_writes
    );
    println!(
        "crash @ op {:>3}: recover-and-finish {:>9.2} ms   full re-run {:>9.2} ms   \
         speedup {:>5.2}x   identical: {}",
        report.crash_op,
        report.recovery_wall_ms,
        report.full_rerun_wall_ms,
        report.recovery_speedup,
        report.recovered_identical
    );
    #[cfg(debug_assertions)]
    println!(
        "\nnote: debug build — iteration compute dominates, so the overhead \
         percentage is not representative here."
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_recovery.json"));

    let report = if smoke { smoke_recovery_report() } else { full_recovery_report() };
    print_report(&report);
    validate_recovery(&report);

    let json = serde_json::to_vec_pretty(&report).expect("serialize report");
    std::fs::write(&out, json).expect("write report");
    println!("\n[saved {}]", out.display());
}
