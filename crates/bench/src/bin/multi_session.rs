//! Concurrent multi-session exploration over one shared engine.
//!
//! ```text
//! cargo run -p uei-bench --release --bin multi_session            # full run
//! cargo run -p uei-bench --release --bin multi_session -- --smoke # CI smoke
//! ```
//!
//! Writes `BENCH_multi_session.json` (schema: `BENCH_SCHEMA.json`) to the
//! current directory, or to the path given with `--out`.

use std::path::PathBuf;

use uei_bench::multi_session::{
    full_multi_session_report, smoke_multi_session_report, validate_multi_session,
    MultiSessionReport,
};

fn print_report(report: &MultiSessionReport) {
    println!(
        "concurrent sessions over one engine — {} rows, {} B chunks, {} labels/session, γ = {}\n",
        report.dataset_rows, report.chunk_target_bytes, report.max_labels, report.gamma
    );
    println!(
        "{:>8} {:>6} {:>7} {:>10} {:>10} {:>10} {:>9} {:>9} {:>7} {:>12}",
        "sessions",
        "iters",
        "labels",
        "p50 wall",
        "p95 wall",
        "total",
        "hits",
        "misses",
        "ratio",
        "phys bytes"
    );
    for c in &report.cases {
        println!(
            "{:>8} {:>6} {:>7} {:>8.2}ms {:>8.2}ms {:>8.0}ms {:>9} {:>9} {:>6.1}% {:>10} B",
            c.sessions,
            c.iterations,
            c.labels_used,
            c.wall_p50_ms,
            c.wall_p95_ms,
            c.total_wall_ms,
            c.cache_hits,
            c.cache_misses,
            c.cache_hit_ratio * 100.0,
            c.physical_bytes_read,
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_multi_session.json"));

    let report = if smoke { smoke_multi_session_report() } else { full_multi_session_report() };
    print_report(&report);
    validate_multi_session(&report);

    let json = serde_json::to_vec_pretty(&report).expect("serialize report");
    std::fs::write(&out, json).expect("write report");
    println!("\n[saved {}]", out.display());
}
