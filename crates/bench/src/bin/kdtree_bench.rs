//! Flat SoA kd-tree vs. legacy `Vec<Vec<f64>>` layout comparison.
//!
//! ```text
//! cargo run -p uei-bench --release --bin kdtree_bench            # full run
//! cargo run -p uei-bench --release --bin kdtree_bench -- --smoke # CI smoke
//! ```
//!
//! Writes `BENCH_kdtree.json` (schema: `BENCH_SCHEMA.json`) to the current
//! directory, or to the path given with `--out`.

use std::path::PathBuf;

use uei_bench::kdtree::{full_kdtree_report, smoke_kdtree_report, validate_kdtree, KdtreeReport};

fn print_report(report: &KdtreeReport) {
    println!(
        "flat SoA kd-tree vs legacy layout — leaf size {}, best of {} repeats\n",
        report.leaf_size, report.repeats
    );
    println!(
        "{:>7} {:>4} {:>3} {:>8} {:>12} {:>12} {:>8} {:>12} {:>12} {:>8} {:>10}",
        "n",
        "d",
        "k",
        "queries",
        "build-old",
        "build-flat",
        "speedup",
        "query-old",
        "query-flat",
        "speedup",
        "identical"
    );
    for c in &report.cases {
        println!(
            "{:>7} {:>4} {:>3} {:>8} {:>10.1}us {:>10.1}us {:>7.2}x {:>10.1}us {:>10.1}us \
             {:>7.2}x {:>10}",
            c.n,
            c.dims,
            c.k,
            c.queries,
            c.build_baseline_ns as f64 / 1e3,
            c.build_flat_ns as f64 / 1e3,
            c.build_speedup,
            c.query_baseline_ns as f64 / 1e3,
            c.query_flat_ns as f64 / 1e3,
            c.query_speedup,
            c.identical,
        );
    }
    #[cfg(debug_assertions)]
    println!("\nnote: debug build — timings are meaningless here.");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_kdtree.json"));

    let report = if smoke { smoke_kdtree_report() } else { full_kdtree_report() };
    print_report(&report);
    validate_kdtree(&report);

    let json = serde_json::to_vec_pretty(&report).expect("serialize report");
    std::fs::write(&out, json).expect("write report");
    println!("\n[saved {}]", out.display());
}
