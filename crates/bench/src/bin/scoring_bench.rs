//! Sequential vs. batch scoring comparison.
//!
//! ```text
//! cargo run -p uei-bench --release --bin scoring_bench            # full run
//! cargo run -p uei-bench --release --bin scoring_bench -- --smoke # CI smoke
//! ```
//!
//! Writes `BENCH_scoring.json` (schema: `BENCH_SCHEMA.json`) to the
//! current directory, or to the path given with `--out`.

use std::path::PathBuf;

use uei_bench::scoring::{full_report, smoke_report, ScoringReport};

fn print_report(report: &ScoringReport) {
    println!(
        "batch scoring vs. sequential — {} rayon thread(s), best of {} sample(s)\n",
        report.threads, report.samples
    );
    println!(
        "{:<16} {:<12} {:>8} {:>14} {:>14} {:>9} {:>10}",
        "scope", "model", "points", "sequential", "batch", "speedup", "identical"
    );
    for c in &report.cases {
        println!(
            "{:<16} {:<12} {:>8} {:>12.2}us {:>12.2}us {:>8.2}x {:>10}",
            c.scope,
            c.model,
            c.n_points,
            c.sequential_ns as f64 / 1e3,
            c.batch_ns as f64 / 1e3,
            c.speedup,
            c.identical,
        );
    }
    if report.threads <= 1 {
        println!(
            "\nnote: single rayon thread — batch wins here come from scratch reuse only;\n\
             the >= 2x fan-out target applies to multi-core runners."
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_scoring.json"));
    // The 256-point cases finish in single-digit microseconds, so the
    // best-of min needs a few dozen samples to converge on a shared host.
    let samples: usize = args
        .iter()
        .position(|a| a == "--samples")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);

    let report = if smoke { smoke_report() } else { full_report(samples) };
    print_report(&report);

    let diverged: Vec<_> = report.cases.iter().filter(|c| !c.identical).collect();
    assert!(diverged.is_empty(), "batch scores diverged from sequential: {diverged:?}");

    let json = serde_json::to_vec_pretty(&report).expect("serialize report");
    std::fs::write(&out, json).expect("write report");
    println!("\n[saved {}]", out.display());
}
