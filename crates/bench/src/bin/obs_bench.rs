//! Telemetry overhead and coverage measurement (DESIGN.md §15).
//!
//! ```text
//! cargo run -p uei-bench --release --bin obs_bench            # full run
//! cargo run -p uei-bench --release --bin obs_bench -- --smoke # CI smoke
//! ```
//!
//! Writes `BENCH_obs.json` (schema: `BENCH_SCHEMA.json`) to the current
//! directory, or to the path given with `--out`.

use std::path::PathBuf;

use uei_bench::obs::{full_obs_report, smoke_obs_report, validate_obs, ObsReport};

fn print_report(report: &ObsReport) {
    println!(
        "telemetry overhead — {} rows, {} labels, γ={}, best of {} repeats\n",
        report.dataset_rows, report.max_labels, report.gamma, report.repeats
    );
    println!(
        "session wall     disabled {:>9.2} ms   enabled {:>9.2} ms   overhead {:>+6.2}%",
        report.disabled_wall_ms, report.enabled_wall_ms, report.enabled_overhead_pct
    );
    println!(
        "disabled span    {:>6.2} ns/op × {} spans/session → {:.4}% of session wall",
        report.disabled_span_ns, report.spans_per_session, report.disabled_overhead_est_pct
    );
    println!(
        "coverage         {} phases observed, modeled traces identical: {}",
        report.phases_observed, report.modeled_identical
    );
    #[cfg(debug_assertions)]
    println!("\nnote: debug build — timings are meaningless here.");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_obs.json"));

    let report = if smoke { smoke_obs_report() } else { full_obs_report() };
    print_report(&report);
    validate_obs(&report);

    let json = serde_json::to_vec_pretty(&report).expect("serialize report");
    std::fs::write(&out, json).expect("write report");
    println!("\n[saved {}]", out.display());
}
