//! Fault-matrix sweep: {transient, corrupt, slow} × {loader, prefetcher}.
//!
//! ```text
//! cargo run -p uei-bench --release --bin fault_matrix            # full run
//! cargo run -p uei-bench --release --bin fault_matrix -- --smoke # CI smoke
//! ```
//!
//! Writes `BENCH_fault_matrix.json` (schema: `BENCH_SCHEMA.json`) to the
//! current directory, or to the path given with `--out`.

use std::path::PathBuf;

use uei_bench::fault_matrix::{
    full_fault_matrix_report, smoke_fault_matrix_report, validate_fault_matrix, FaultMatrixReport,
};

fn print_report(report: &FaultMatrixReport) {
    println!(
        "fault matrix over a {0}x{0} cell walk — {1} rows, {2} B chunks, seed {3}\n\
         per-read p: transient {4}, corrupt {5}, slow {6}\n",
        report.cells_per_dim,
        report.dataset_rows,
        report.chunk_target_bytes,
        report.seed,
        report.transient_prob,
        report.corrupt_prob,
        report.slow_prob,
    );
    println!(
        "{:<12} {:<10} {:>6} {:>6} {:>7} {:>8} {:>8} {:>10} {:>8} {:>7} {:>10}",
        "component",
        "fault",
        "cells",
        "ok",
        "failed",
        "retries",
        "reads",
        "transient",
        "corrupt",
        "spikes",
        "virt"
    );
    for c in &report.cases {
        println!(
            "{:<12} {:<10} {:>6} {:>6} {:>7} {:>8} {:>8} {:>10} {:>8} {:>7} {:>8.2}ms",
            c.component,
            c.fault,
            c.cells,
            c.cells_ok,
            c.cells_failed,
            c.retries,
            c.reads_seen,
            c.transient_errors,
            c.corruptions,
            c.latency_spikes,
            c.virtual_ms,
        );
    }
    println!(
        "\nclean-path checksum overhead: checked {:.2} ms vs legacy {:.2} ms ({:+.1}%)",
        report.checked_wall_ns as f64 / 1e6,
        report.legacy_wall_ns as f64 / 1e6,
        report.crc_overhead_fraction * 100.0
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_fault_matrix.json"));

    let report = if smoke { smoke_fault_matrix_report() } else { full_fault_matrix_report() };
    print_report(&report);
    validate_fault_matrix(&report);

    let json = serde_json::to_vec_pretty(&report).expect("serialize report");
    std::fs::write(&out, json).expect("write report");
    println!("\n[saved {}]", out.display());
}
