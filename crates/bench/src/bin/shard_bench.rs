//! Sharded vs. single-shard index-plane comparison.
//!
//! ```text
//! cargo run -p uei-bench --release --bin shard_bench            # full run
//! cargo run -p uei-bench --release --bin shard_bench -- --smoke # CI smoke
//! ```
//!
//! Writes `BENCH_shard.json` (schema: `BENCH_SCHEMA.json`) to the
//! current directory, or to the path given with `--out`.

use std::path::PathBuf;

use uei_bench::shard::{full_shard_report, smoke_shard_report, validate_shard, ShardReport};

fn print_report(report: &ShardReport) {
    println!(
        "sharded vs. single-shard index plane — {} rayon thread(s), \
         {} iterations per case, top-θ depth 8\n",
        report.threads, report.iterations
    );
    println!(
        "{:>8} {:>7} {:>14} {:>12} {:>12} {:>9} {:>9} {:>8} {:>8}",
        "cells",
        "shards",
        "update+select",
        "update",
        "select",
        "speedup",
        "touched",
        "pruned",
        "match"
    );
    for c in &report.cases {
        println!(
            "{:>8} {:>7} {:>12.2}us {:>10.2}us {:>10.2}us {:>8.2}x {:>9} {:>8} {:>8}",
            c.cells,
            c.shards,
            c.update_select_ns as f64 / 1e3,
            c.update_ns as f64 / 1e3,
            c.select_ns as f64 / 1e3,
            c.speedup_vs_single,
            c.shards_touched,
            c.shards_pruned,
            c.selections_match,
        );
    }
    #[cfg(debug_assertions)]
    println!(
        "\nnote: debug build — every incremental pass also runs the full \
         cross-check, so the timing columns are meaningless here."
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_shard.json"));

    let report = if smoke { smoke_shard_report() } else { full_shard_report() };
    print_report(&report);
    validate_shard(&report);

    let json = serde_json::to_vec_pretty(&report).expect("serialize report");
    std::fs::write(&out, json).expect("write report");
    println!("\n[saved {}]", out.display());
}
