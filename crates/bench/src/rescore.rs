//! Incremental vs. full index-point rescoring benchmark.
//!
//! Measures the tentpole claim of the incremental rescoring layer: over a
//! boundary-converging active-learning session, consulting the model's
//! [`uei_learn::ModelDelta`] and rescoring only the points inside the new
//! labels' influence balls does a small fraction of the work of a full
//! per-iteration rescore — while producing **bit-identical** scores. The
//! kNN-family estimators prune (that is the `reduction` column); the
//! globally updating models (Naive Bayes, the SVM, the committee) exercise
//! the conservative fall-back contract and report a reduction of 1.
//!
//! Every iteration bit-compares the incremental instance's scores against
//! a twin instance that rescores from scratch, so a pruning bug cannot
//! produce a flattering number silently.
//!
//! Results serialize to the `BENCH_rescore.json` schema documented in
//! `BENCH_SCHEMA.json` at the repository root.

use std::time::{Duration, Instant};

use serde::Serialize;
use uei_index::grid::Grid;
use uei_index::points::IndexPoints;
use uei_learn::strategy::UncertaintyMeasure;
use uei_learn::{Classifier, Committee, EstimatorKind};
use uei_types::{AttributeDef, Label, Rng, Schema};

/// One estimator's incremental-vs-full comparison over a whole session.
#[derive(Debug, Clone, Serialize)]
pub struct RescoreCase {
    /// Estimator name (`DWKNN`, `KNN`, `GaussianNB`, `LinearSVM`,
    /// `committee`).
    pub model: String,
    /// Number of symbolic index points `|P|`.
    pub n_points: usize,
    /// Labeled iterations measured (after the shared warm-up pass).
    pub iterations: usize,
    /// Points scored by the full-rescore twin: `iterations × n_points`.
    pub points_rescored_full: u64,
    /// Points the incremental instance actually rescored.
    pub points_rescored_incremental: u64,
    /// Points the incremental instance served verbatim from its cache.
    pub points_cached: u64,
    /// `points_rescored_full / points_rescored_incremental` — the work
    /// reduction (1.0 for globally updating models).
    pub reduction: f64,
    /// Total wall time of the full-rescore passes, nanoseconds.
    pub full_ns: u64,
    /// Total wall time of the incremental passes (delta computation
    /// included), nanoseconds.
    pub incremental_ns: u64,
    /// `full_ns / incremental_ns`.
    pub speedup: f64,
    /// Whether the two instances held bit-identical scores after every
    /// iteration (must be true).
    pub identical: bool,
}

/// The full report written to `BENCH_rescore.json`.
#[derive(Debug, Clone, Serialize)]
pub struct RescoreReport {
    /// Rayon worker count at run time.
    pub threads: usize,
    /// Grid resolution per dimension (`|P| = cells_per_dim ^ 5`).
    pub cells_per_dim: usize,
    /// Bootstrap training-set size before the measured iterations.
    pub bootstrap: usize,
    pub cases: Vec<RescoreCase>,
}

/// Five-dimensional unit cube — the Table-1 dimensionality, normalized so
/// the influence-ball geometry is easy to reason about.
fn schema5() -> Schema {
    Schema::new(
        (0..5).map(|i| AttributeDef::new(format!("a{i}"), 0.0, 1.0).unwrap()).collect::<Vec<_>>(),
    )
    .unwrap()
}

fn teacher(x: &[f64]) -> Label {
    Label::from_bool(x.iter().sum::<f64>() > 2.5)
}

fn bootstrap_examples(n: usize, seed: u64) -> Vec<(Vec<f64>, Label)> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|_| {
            let x: Vec<f64> = (0..5).map(|_| rng.range_f64(0.0, 1.0)).collect();
            let label = teacher(&x);
            (x, label)
        })
        .collect()
}

/// A label near the `Σx = 2.5` decision boundary — where uncertainty
/// sampling concentrates once the model has converged, and therefore where
/// the locality-pruning claim has to hold up.
fn boundary_example(rng: &mut Rng) -> (Vec<f64>, Label) {
    let mut x: Vec<f64> = (0..4).map(|_| rng.range_f64(0.2, 0.8)).collect();
    let last = (2.5 - x.iter().sum::<f64>() + rng.range_f64(-0.05, 0.05)).clamp(0.0, 1.0);
    x.push(last);
    let label = teacher(&x);
    (x, label)
}

type Trainer = Box<dyn Fn(&[(Vec<f64>, Label)]) -> Box<dyn Classifier>>;

fn trainers() -> Vec<(&'static str, Trainer)> {
    let kinds = [
        EstimatorKind::Dwknn { k: 5 },
        EstimatorKind::Knn { k: 5 },
        EstimatorKind::NaiveBayes,
        EstimatorKind::LinearSvm { epochs: 10, lambda: 1e-2 },
    ];
    let mut out: Vec<(&'static str, Trainer)> = kinds
        .into_iter()
        .map(|kind| (kind.name(), Box::new(move |ex: &[_]| kind.train(ex).unwrap()) as Trainer))
        .collect();
    out.push((
        "committee",
        Box::new(|ex: &[_]| {
            Box::new(Committee::train(EstimatorKind::Dwknn { k: 5 }, 4, ex, 13).unwrap())
        }),
    ));
    out
}

fn scores_of(points: &IndexPoints) -> Vec<u64> {
    (0..points.len()).map(|i| points.uncertainty(i).unwrap().to_bits()).collect()
}

fn session_case(
    name: &str,
    train: &Trainer,
    grid: &Grid,
    bootstrap: usize,
    iterations: usize,
) -> RescoreCase {
    let measure = UncertaintyMeasure::LeastConfidence;
    let mut examples = bootstrap_examples(bootstrap, 11);
    let mut rng = Rng::new(17);

    let mut full = IndexPoints::from_grid(grid).unwrap();
    let mut incremental = IndexPoints::from_grid(grid).unwrap();

    // Warm-up pass on the bootstrap model: both instances score every
    // point; the incremental one also captures its influence radii.
    let model = train(&examples);
    full.update_tracked(model.as_ref(), measure);
    incremental.update_incremental(model.as_ref(), measure, &[], 0.0, 0);
    let mut identical = scores_of(&full) == scores_of(&incremental);

    let mut rescored = 0u64;
    let mut cached = 0u64;
    let mut full_time = Duration::ZERO;
    let mut incremental_time = Duration::ZERO;
    for _ in 0..iterations {
        let (x, label) = boundary_example(&mut rng);
        examples.push((x.clone(), label));
        let model = train(&examples);
        let added: [&[f64]; 1] = [x.as_slice()];

        let start = Instant::now();
        full.update_tracked(model.as_ref(), measure);
        full_time += start.elapsed();

        let start = Instant::now();
        // `full_every = 0`: never force a periodic full pass, so the
        // numbers measure pure pruning (the index layer's config keeps its
        // own staleness bound for real sessions).
        let stats = incremental.update_incremental(model.as_ref(), measure, &added, 0.0, 0);
        incremental_time += start.elapsed();

        rescored += stats.points_rescored;
        cached += stats.points_cached;
        identical &= scores_of(&full) == scores_of(&incremental);
    }

    let points_rescored_full = (iterations * full.len()) as u64;
    RescoreCase {
        model: name.to_string(),
        n_points: full.len(),
        iterations,
        points_rescored_full,
        points_rescored_incremental: rescored,
        points_cached: cached,
        reduction: points_rescored_full as f64 / rescored.max(1) as f64,
        full_ns: full_time.as_nanos() as u64,
        incremental_ns: incremental_time.as_nanos() as u64,
        speedup: full_time.as_nanos() as f64 / (incremental_time.as_nanos() as f64).max(1.0),
        identical,
    }
}

/// Runs the incremental-vs-full comparison for every estimator on a
/// `cells_per_dim ^ 5` grid, with `bootstrap` initial examples and
/// `iterations` boundary-localized labels.
pub fn run_rescore_bench(
    cells_per_dim: usize,
    bootstrap: usize,
    iterations: usize,
) -> RescoreReport {
    let grid = Grid::new(&schema5(), cells_per_dim).unwrap();
    let cases = trainers()
        .iter()
        .map(|(name, train)| session_case(name, train, &grid, bootstrap, iterations))
        .collect();
    RescoreReport { threads: rayon::current_num_threads(), cells_per_dim, bootstrap, cases }
}

/// The default full-size run: the Table-1 grid (`5⁵ = 3125` index points),
/// a 300-example bootstrap, 20 labeled iterations.
pub fn full_rescore_report() -> RescoreReport {
    run_rescore_bench(5, 300, 20)
}

/// A seconds-scale smoke run used by CI: `3⁵ = 243` points, 5 iterations.
/// Panics if any case diverged from the full-rescore twin, or if any
/// incremental pass claimed to rescore more points than exist.
pub fn smoke_rescore_report() -> RescoreReport {
    let report = run_rescore_bench(3, 60, 5);
    validate_rescore(&report);
    report
}

/// Invariants every report must satisfy, smoke or full.
pub fn validate_rescore(report: &RescoreReport) {
    for case in &report.cases {
        assert!(case.identical, "{}: incremental scores diverged from full rescore", case.model);
        assert!(
            case.points_rescored_incremental <= case.iterations as u64 * case.n_points as u64,
            "{}: rescored {} points across {} iterations of {} points — more than a full \
             rescore every iteration",
            case.model,
            case.points_rescored_incremental,
            case.iterations,
            case.n_points,
        );
        assert_eq!(
            case.points_rescored_incremental + case.points_cached,
            case.points_rescored_full,
            "{}: every point must be either rescored or served from cache, every iteration",
            case.model,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_completes_and_prunes() {
        let report = smoke_rescore_report();
        assert_eq!(report.cases.len(), 5);
        assert!(report.cases.iter().all(|c| c.identical));
        let dwknn = report.cases.iter().find(|c| c.model == "DWKNN").unwrap();
        assert!(
            dwknn.points_rescored_incremental < dwknn.points_rescored_full,
            "DWKNN must prune even at smoke scale: {dwknn:?}"
        );
        // Globally updating models fall back to full rescoring.
        let nb = report.cases.iter().find(|c| c.model == "GaussianNB").unwrap();
        assert_eq!(nb.points_rescored_incremental, nb.points_rescored_full);
        assert!((nb.reduction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn report_serializes() {
        let report = smoke_rescore_report();
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"reduction\""));
        assert!(json.contains("\"points_rescored_incremental\""));
    }
}
