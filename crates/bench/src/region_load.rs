//! Cold vs. warm-shared-cache vs. delta region-load comparison.
//!
//! Measures the tentpole claim of the shared-chunk-cache layer: walking a
//! serpentine path of adjacent grid cells is strictly cheaper — in modeled
//! I/O bytes *and* wall time — when the chunks were prefetched into the
//! [`SharedChunkCache`] by a background handle (`warm-shared`), or when the
//! loader reuses the previous region's decoded chunks
//! (`delta`), than when every load pays full price (`cold`). Every mode
//! also folds the materialized row ids into a checksum, so a speedup that
//! silently changed the reconstructed regions would fail loudly.
//!
//! Results serialize to the `BENCH_region_load.json` shape documented in
//! `BENCH_SCHEMA.json` at the repository root.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;
use uei_index::grid::Grid;
use uei_index::loader::RegionLoader;
use uei_index::mapping::ChunkMapping;
use uei_storage::cache::SharedChunkCache;
use uei_storage::io::{DiskTracker, IoProfile};
use uei_storage::source::ChunkSource;
use uei_storage::store::{ColumnStore, StoreConfig};
use uei_types::{AttributeDef, DataPoint, Rng, Schema};

/// Fixture and measurement knobs.
#[derive(Debug, Clone)]
pub struct RegionLoadConfig {
    /// Dataset rows (2-D uniform synthetic).
    pub rows: usize,
    /// Grid resolution; the walk visits all `cells_per_dim²` cells.
    pub cells_per_dim: usize,
    /// Chunk size of the column store (small keeps many chunks per cell).
    pub chunk_target_bytes: usize,
    /// Shared-cache budget for the warm mode (must hold the walk's chunks).
    pub cache_budget_bytes: usize,
    /// Shared-cache lock stripes.
    pub cache_shards: usize,
    /// Timing repetitions per mode (min wall time is reported; modeled
    /// I/O is identical across repetitions by construction).
    pub samples: usize,
    /// Synthetic-data seed.
    pub seed: u64,
}

impl Default for RegionLoadConfig {
    fn default() -> Self {
        RegionLoadConfig {
            rows: 30_000,
            cells_per_dim: 8,
            chunk_target_bytes: 2048,
            cache_budget_bytes: 256 << 20,
            cache_shards: 8,
            samples: 3,
            seed: 97,
        }
    }
}

/// One measured mode of the cell walk.
#[derive(Debug, Clone, Serialize)]
pub struct RegionLoadCase {
    /// `"cold"`, `"warm-shared"`, or `"delta"`.
    pub mode: String,
    /// Cells visited by the walk.
    pub cells: usize,
    /// Rows materialized across the whole walk.
    pub rows: u64,
    /// Modeled bytes charged to the foreground tracker.
    pub fg_bytes_read: u64,
    /// Modeled (virtual-clock) time of the foreground I/O, milliseconds.
    pub fg_virtual_ms: f64,
    /// Best-of-`samples` wall time of the foreground walk, nanoseconds.
    pub wall_ns: u64,
    /// Chunks that went through the fetch path (cache hits included).
    pub chunks_loaded: u64,
    /// Chunks reused from the previous region's decoded set (delta mode).
    pub chunks_reused: u64,
    /// Modeled bytes charged to the background (warming) handle.
    pub bg_bytes_read: u64,
    /// Order-sensitive checksum of materialized row ids; must be equal
    /// across all modes.
    pub checksum: u64,
}

/// The full report written to `BENCH_region_load.json`.
#[derive(Debug, Clone, Serialize)]
pub struct RegionLoadReport {
    /// Dataset rows of the fixture.
    pub dataset_rows: usize,
    /// Grid resolution of the walk.
    pub cells_per_dim: usize,
    /// Store chunk size.
    pub chunk_target_bytes: usize,
    /// Warm-mode shared-cache budget.
    pub cache_budget_bytes: usize,
    /// Timing repetitions per mode (min wall is reported).
    pub samples: usize,
    pub cases: Vec<RegionLoadCase>,
}

fn schema2() -> Schema {
    Schema::new(vec![
        AttributeDef::new("x", 0.0, 100.0).unwrap(),
        AttributeDef::new("y", 0.0, 100.0).unwrap(),
    ])
    .unwrap()
}

fn random_rows(n: usize, seed: u64) -> Vec<DataPoint> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|i| {
            DataPoint::new(i as u64, vec![rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)])
        })
        .collect()
}

/// The store handle as the trait object [`RegionLoader`] is built over.
fn src(store: &Arc<ColumnStore>) -> Arc<dyn ChunkSource> {
    Arc::clone(store) as Arc<dyn ChunkSource>
}

/// Serpentine (boustrophedon) walk over the 2-D grid: consecutive cells
/// are orthogonally adjacent, so their chunk sets overlap along the
/// unchanged dimension — the access pattern the delta reconstruction and
/// the prefetcher both bank on.
fn serpentine_walk(cells_per_dim: usize) -> Vec<usize> {
    let mut walk = Vec::with_capacity(cells_per_dim * cells_per_dim);
    for x in 0..cells_per_dim {
        let row: Vec<usize> = (0..cells_per_dim).map(|y| x * cells_per_dim + y).collect();
        if x % 2 == 0 {
            walk.extend(row);
        } else {
            walk.extend(row.into_iter().rev());
        }
    }
    walk
}

struct WalkOutcome {
    rows: u64,
    checksum: u64,
    chunks_loaded: u64,
    chunks_reused: u64,
    fg_bytes_read: u64,
    fg_virtual_ms: f64,
    wall_ns: u64,
}

/// Runs one pass of the walk through `loader`, charging the loader's store
/// tracker, and folds the materialized ids into a checksum.
fn run_walk(
    loader: &mut RegionLoader,
    grid: &Grid,
    mapping: &ChunkMapping,
    walk: &[usize],
) -> WalkOutcome {
    let tracker = loader.source().tracker().clone();
    let before = tracker.snapshot();
    let wall_start = Instant::now();
    let mut rows = 0u64;
    let mut checksum = 0u64;
    let mut chunks_loaded = 0u64;
    let mut chunks_reused = 0u64;
    for &cell in walk {
        let (points, stats) = loader.load_cell(grid, mapping, cell).expect("load cell");
        rows += points.len() as u64;
        for p in &points {
            checksum = checksum.wrapping_mul(31).wrapping_add(p.id.as_u64());
        }
        chunks_loaded += stats.merge.chunks_loaded;
        chunks_reused += stats.merge.chunks_reused;
    }
    let wall_ns = wall_start.elapsed().as_nanos() as u64;
    let delta = tracker.delta(&before);
    WalkOutcome {
        rows,
        checksum,
        chunks_loaded,
        chunks_reused,
        fg_bytes_read: delta.stats.bytes_read,
        fg_virtual_ms: delta.virtual_elapsed.as_secs_f64() * 1e3,
        wall_ns,
    }
}

/// Runs the three-mode comparison over one on-disk fixture.
pub fn run_region_load_bench(config: &RegionLoadConfig) -> RegionLoadReport {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "uei-region-load-bench-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let rows = random_rows(config.rows, config.seed);
    let fg_tracker = DiskTracker::new(IoProfile::nvme());
    let store = Arc::new(
        ColumnStore::create(
            &dir,
            schema2(),
            &rows,
            StoreConfig { chunk_target_bytes: config.chunk_target_bytes },
            fg_tracker.clone(),
        )
        .expect("create fixture store"),
    );
    let grid = Grid::new(store.schema(), config.cells_per_dim).expect("grid");
    let mapping = ChunkMapping::build(&grid, store.manifest()).expect("mapping");
    let walk = serpentine_walk(config.cells_per_dim);
    let samples = config.samples.max(1);

    // Background handle for warming: same files, separate tracker, so the
    // prefetch cost is attributed to the background and never shows up in
    // the foreground numbers.
    let bg_tracker = DiskTracker::new(IoProfile::nvme());
    let bg_store =
        Arc::new(ColumnStore::open(&dir, bg_tracker.clone()).expect("open background handle"));

    let mut cases = Vec::new();

    // Cold: no cache, no delta — every cell pays full fetch + decode.
    let mut best: Option<WalkOutcome> = None;
    for _ in 0..samples {
        let mut loader = RegionLoader::new(src(&store), 0);
        let outcome = run_walk(&mut loader, &grid, &mapping, &walk);
        best = Some(match best {
            Some(b) if b.wall_ns <= outcome.wall_ns => b,
            _ => outcome,
        });
    }
    let cold = best.expect("at least one sample");
    cases.push(RegionLoadCase {
        mode: "cold".to_string(),
        cells: walk.len(),
        rows: cold.rows,
        fg_bytes_read: cold.fg_bytes_read,
        fg_virtual_ms: cold.fg_virtual_ms,
        wall_ns: cold.wall_ns,
        chunks_loaded: cold.chunks_loaded,
        chunks_reused: cold.chunks_reused,
        bg_bytes_read: 0,
        checksum: cold.checksum,
    });

    // Warm-shared: a background handle prefetches the walk's chunks into
    // the shared cache; the foreground walk then hits memory only.
    let mut best: Option<WalkOutcome> = None;
    let mut bg_bytes = 0u64;
    for _ in 0..samples {
        let cache = Arc::new(SharedChunkCache::new(config.cache_budget_bytes, config.cache_shards));
        let bg_before = bg_tracker.snapshot();
        let mut warmer = RegionLoader::with_shared(src(&bg_store), Arc::clone(&cache), false);
        run_walk(&mut warmer, &grid, &mapping, &walk);
        bg_bytes = bg_tracker.delta(&bg_before).stats.bytes_read;
        let mut loader = RegionLoader::with_shared(src(&store), Arc::clone(&cache), false);
        let outcome = run_walk(&mut loader, &grid, &mapping, &walk);
        best = Some(match best {
            Some(b) if b.wall_ns <= outcome.wall_ns => b,
            _ => outcome,
        });
    }
    let warm = best.expect("at least one sample");
    cases.push(RegionLoadCase {
        mode: "warm-shared".to_string(),
        cells: walk.len(),
        rows: warm.rows,
        fg_bytes_read: warm.fg_bytes_read,
        fg_virtual_ms: warm.fg_virtual_ms,
        wall_ns: warm.wall_ns,
        chunks_loaded: warm.chunks_loaded,
        chunks_reused: warm.chunks_reused,
        bg_bytes_read: bg_bytes,
        checksum: warm.checksum,
    });

    // Delta: zero cache budget isolates the effect of reusing the previous
    // region's decoded chunks — adjacent cells share one dimension's range.
    let mut best: Option<WalkOutcome> = None;
    for _ in 0..samples {
        let cache = Arc::new(SharedChunkCache::new(0, config.cache_shards));
        let mut loader = RegionLoader::with_shared(src(&store), cache, true);
        let outcome = run_walk(&mut loader, &grid, &mapping, &walk);
        best = Some(match best {
            Some(b) if b.wall_ns <= outcome.wall_ns => b,
            _ => outcome,
        });
    }
    let delta = best.expect("at least one sample");
    cases.push(RegionLoadCase {
        mode: "delta".to_string(),
        cells: walk.len(),
        rows: delta.rows,
        fg_bytes_read: delta.fg_bytes_read,
        fg_virtual_ms: delta.fg_virtual_ms,
        wall_ns: delta.wall_ns,
        chunks_loaded: delta.chunks_loaded,
        chunks_reused: delta.chunks_reused,
        bg_bytes_read: 0,
        checksum: delta.checksum,
    });

    std::fs::remove_dir_all(&dir).ok();
    RegionLoadReport {
        dataset_rows: config.rows,
        cells_per_dim: config.cells_per_dim,
        chunk_target_bytes: config.chunk_target_bytes,
        cache_budget_bytes: config.cache_budget_bytes,
        samples,
        cases,
    }
}

/// Panics unless the report upholds the acceptance criteria: all modes
/// reconstruct identical rows, the warm walk performs zero foreground
/// chunk reads, and both warm and delta are strictly cheaper than cold in
/// modeled I/O bytes *and* wall time.
pub fn validate_report(report: &RegionLoadReport) {
    let case = |mode: &str| {
        report
            .cases
            .iter()
            .find(|c| c.mode == mode)
            .unwrap_or_else(|| panic!("report is missing the `{mode}` case"))
    };
    let cold = case("cold");
    let warm = case("warm-shared");
    let delta = case("delta");

    for c in [warm, delta] {
        assert_eq!(
            (c.rows, c.checksum),
            (cold.rows, cold.checksum),
            "{} reconstructed different rows than cold",
            c.mode
        );
    }
    assert_eq!(
        warm.fg_bytes_read, 0,
        "prefetched chunks must cost the foreground zero modeled reads"
    );
    for c in [warm, delta] {
        assert!(
            c.fg_bytes_read < cold.fg_bytes_read,
            "{} modeled I/O ({} B) must be under cold ({} B)",
            c.mode,
            c.fg_bytes_read,
            cold.fg_bytes_read
        );
        // The wall-clock comparison is only meaningful in release builds run
        // without sibling load; under `cargo test` a dozen test binaries
        // compete for the CPU and the ratio is noise.
        assert!(
            cfg!(debug_assertions) || c.wall_ns < cold.wall_ns,
            "{} wall time ({} ns) must be under cold ({} ns)",
            c.mode,
            c.wall_ns,
            cold.wall_ns
        );
    }
    assert!(delta.chunks_reused > 0, "serpentine walk must reuse chunks in delta mode");
}

/// The default full-size run.
pub fn full_region_load_report(samples: usize) -> RegionLoadReport {
    run_region_load_bench(&RegionLoadConfig { samples, ..RegionLoadConfig::default() })
}

/// A seconds-scale smoke run used by CI. Panics if any acceptance
/// criterion fails.
pub fn smoke_region_load_report() -> RegionLoadReport {
    let report = run_region_load_bench(&RegionLoadConfig {
        rows: 6_000,
        cells_per_dim: 4,
        chunk_target_bytes: 1024,
        samples: 2,
        ..RegionLoadConfig::default()
    });
    validate_report(&report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serpentine_visits_each_cell_once_adjacently() {
        let walk = serpentine_walk(4);
        assert_eq!(walk.len(), 16);
        let mut sorted = walk.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        // Consecutive cells are orthogonally adjacent (row-major, dim-1
        // fastest): ids differ by 1 (same x) or by cells_per_dim (same y).
        for w in walk.windows(2) {
            let diff = w[0].abs_diff(w[1]);
            assert!(diff == 1 || diff == 4, "{} -> {} not adjacent", w[0], w[1]);
        }
    }

    #[test]
    fn smoke_run_upholds_acceptance_criteria() {
        let report = smoke_region_load_report();
        assert_eq!(report.cases.len(), 3);
        assert!(report.cases.iter().all(|c| c.rows > 0));
        // Warm mode's cost moved to the background handle.
        let warm = report.cases.iter().find(|c| c.mode == "warm-shared").unwrap();
        assert!(warm.bg_bytes_read > 0);
    }

    #[test]
    fn report_serializes() {
        let report = run_region_load_bench(&RegionLoadConfig {
            rows: 1_500,
            cells_per_dim: 3,
            chunk_target_bytes: 1024,
            samples: 1,
            ..RegionLoadConfig::default()
        });
        let json = serde_json::to_vec_pretty(&report).unwrap();
        let text = String::from_utf8(json).unwrap();
        assert!(text.contains("\"mode\""));
        assert!(text.contains("warm-shared"));
        assert!(text.contains("delta"));
    }
}
