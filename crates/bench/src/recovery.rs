//! Journal overhead and crash-recovery speed (DESIGN.md §13).
//!
//! Two claims are measured over one on-disk fixture:
//!
//! 1. **Clean-path overhead** — attaching a per-session write-ahead
//!    journal must cost less than 5 % of the session's iteration wall
//!    time. Appends happen outside the measured response window, so the
//!    comparison is end-to-end session wall time with and without the
//!    journal, best-of-`repeats` to damp scheduler noise.
//! 2. **Recovery beats re-running** — after a crash mid-session,
//!    [`uei_explore::session::ExplorationSession::recover`] replays the
//!    journal (skipping the per-iteration F-measure evaluation) and then
//!    finishes the remaining iterations live. The bench kills a run at
//!    its middle journal write, recovers, and reports recovered-session
//!    wall time against the cost of starting over — while asserting the
//!    recovered traces are bit-identical (modeled fields) to an
//!    uninterrupted run's.
//!
//! Results serialize to the `BENCH_recovery.json` shape documented in
//! `BENCH_SCHEMA.json` at the repository root.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;
use uei_explore::backend::UeiBackend;
use uei_explore::oracle::Oracle;
use uei_explore::session::{ExplorationSession, IterationTrace, SessionConfig, SessionResult};
use uei_explore::synth::{generate_sdss_like, SynthConfig};
use uei_explore::workload::generate_target_region_fraction;
use uei_index::config::UeiConfig;
use uei_learn::strategy::UncertaintyMeasure;
use uei_storage::fault::{FaultConfig, FaultInjector, KillMode};
use uei_storage::io::{DiskTracker, IoProfile};
use uei_storage::journal::JournalConfig;
use uei_storage::store::{ColumnStore, StoreConfig};
use uei_types::{Result, Rng, Schema};

/// Fixture and measurement knobs.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Dataset rows (SDSS-like synthetic).
    pub rows: usize,
    /// Grid resolution of the index.
    pub cells_per_dim: usize,
    /// Chunk size of the column store.
    pub chunk_target_bytes: usize,
    /// Labels per session.
    pub max_labels: usize,
    /// Bootstrap labels per session.
    pub bootstrap_size: usize,
    /// Evaluation-sample size per session.
    pub eval_sample: usize,
    /// Unlabeled-pool sample size γ.
    pub gamma: usize,
    /// Target-region cardinality as a fraction of the dataset.
    pub target_fraction: f64,
    /// Master seed (dataset, target region, session, sampling).
    pub seed: u64,
    /// Timed repetitions per variant; best-of wins.
    pub repeats: usize,
    /// Durability knobs of the attached journal.
    pub journal: JournalConfig,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            rows: 20_000,
            cells_per_dim: 3,
            chunk_target_bytes: 8192,
            max_labels: 25,
            bootstrap_size: 150,
            eval_sample: 2_500,
            gamma: 2_000,
            target_fraction: 0.02,
            seed: 71,
            repeats: 5,
            journal: JournalConfig::default(),
        }
    }
}

/// The full report written to `BENCH_recovery.json`.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryReport {
    /// Dataset rows of the fixture.
    pub dataset_rows: usize,
    /// Labels per session.
    pub max_labels: usize,
    /// Unlabeled-pool sample size γ.
    pub gamma: usize,
    /// Fsync policy of the journal under test (debug form).
    pub fsync: String,
    /// Snapshot cadence of the journal under test.
    pub snapshot_every: u32,
    /// Segment rotation threshold, bytes.
    pub segment_bytes: u64,
    /// Timed repetitions per variant (best-of).
    pub repeats: usize,
    /// Best end-to-end session wall time without a journal, milliseconds.
    pub plain_wall_ms: f64,
    /// Best end-to-end session wall time with the journal, milliseconds.
    pub journaled_wall_ms: f64,
    /// `(journaled - plain) / plain`, percent. Negative means noise.
    pub overhead_pct: f64,
    /// Journal write operations of one complete session.
    pub journal_writes: u64,
    /// Write operation index the crash was injected at.
    pub crash_op: u64,
    /// Best recover-and-finish wall time after the crash, milliseconds.
    pub recovery_wall_ms: f64,
    /// The alternative: a full re-run from scratch (== `plain_wall_ms`).
    pub full_rerun_wall_ms: f64,
    /// `full_rerun_wall_ms / recovery_wall_ms`.
    pub recovery_speedup: f64,
    /// Whether every recovered run reproduced the uninterrupted run's
    /// traces bit-identically (modeled fields).
    pub recovered_identical: bool,
}

/// Modeled trace fields: everything except wall-clock time and the
/// recovery marker, both of which legitimately differ across runs.
fn modeled(t: &IterationTrace) -> impl PartialEq {
    (
        (
            t.iteration,
            t.labels,
            t.f_measure.map(f64::to_bits),
            t.response_virtual_ms.to_bits(),
            t.bytes_read,
            t.seeks,
            t.label_positive,
        ),
        (
            t.region_rows,
            t.prefetched,
            t.counters.cache_hits,
            t.counters.cache_misses,
            t.counters.cache_evictions,
            t.counters.cache_bypasses,
            t.counters.prefetch_bytes_read,
            t.counters.retries,
            t.counters.fallback_cells,
            t.counters.degraded,
            t.examined,
        ),
    )
}

fn same_modeled_run(a: &SessionResult, b: &SessionResult) -> bool {
    a.labels_used == b.labels_used
        && a.final_f_measure.to_bits() == b.final_f_measure.to_bits()
        && a.traces.len() == b.traces.len()
        && a.traces.iter().zip(&b.traces).all(|(x, y)| modeled(x) == modeled(y))
}

struct Bench {
    store: Arc<ColumnStore>,
    tracker: DiskTracker,
    injector: Arc<FaultInjector>,
    oracle: Oracle,
    config: RecoveryConfig,
}

impl Bench {
    fn session_config(&self) -> SessionConfig {
        SessionConfig {
            max_labels: self.config.max_labels,
            bootstrap_size: self.config.bootstrap_size,
            eval_sample: self.config.eval_sample,
            seed: self.config.seed.wrapping_mul(1_000),
            ..SessionConfig::default()
        }
    }

    fn backend(&self) -> UeiBackend {
        let mut rng = Rng::new(self.config.seed.wrapping_mul(2_000));
        UeiBackend::new(
            Arc::clone(&self.store),
            UeiConfig {
                cells_per_dim: self.config.cells_per_dim,
                prefetch: false,
                journal: self.config.journal,
                ..UeiConfig::default()
            },
            UncertaintyMeasure::LeastConfidence,
            self.config.gamma,
            &mut rng,
        )
        .expect("backend over fixture store")
    }

    /// One timed session; `journal_dir` attaches the journal.
    fn run(&self, journal_dir: Option<&Path>) -> Result<(SessionResult, f64)> {
        let mut backend = self.backend();
        let mut session = ExplorationSession::new(
            &mut backend,
            &self.oracle,
            self.session_config(),
            self.tracker.clone(),
        );
        if let Some(dir) = journal_dir {
            session.attach_journal(dir, self.config.journal)?;
        }
        let start = Instant::now();
        let result = session.run()?;
        Ok((result, start.elapsed().as_secs_f64() * 1e3))
    }

    /// One timed recover-and-finish from a crashed journal.
    fn recover(&self, journal_dir: &Path) -> Result<(SessionResult, f64)> {
        let mut backend = self.backend();
        let start = Instant::now();
        let (session, state) = ExplorationSession::recover(
            &mut backend,
            &self.oracle,
            self.session_config(),
            self.tracker.clone(),
            journal_dir,
            self.config.journal,
        )?;
        let result = session.run_from(state)?;
        Ok((result, start.elapsed().as_secs_f64() * 1e3))
    }
}

/// Runs the overhead and recovery measurements over one on-disk fixture.
pub fn run_recovery_bench(config: &RecoveryConfig) -> RecoveryReport {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "uei-recovery-bench-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let rows = generate_sdss_like(&SynthConfig { rows: config.rows, ..Default::default() });
    let mut rng = Rng::new(config.seed);
    let target =
        generate_target_region_fraction(&rows, &Schema::sdss(), config.target_fraction, &mut rng)
            .expect("target region");
    let oracle = Oracle::new(target);

    let tracker = DiskTracker::new(IoProfile::nvme());
    let injector =
        FaultInjector::new(FaultConfig { seed: config.seed, ..FaultConfig::off() }).unwrap();
    tracker.set_fault_injector(Some(Arc::clone(&injector)));
    let store = Arc::new(
        ColumnStore::create(
            dir.join("store"),
            Schema::sdss(),
            &rows,
            StoreConfig { chunk_target_bytes: config.chunk_target_bytes },
            tracker.clone(),
        )
        .expect("create fixture store"),
    );
    let bench = Bench { store, tracker, injector, oracle, config: config.clone() };

    // Golden journaled run: reference result + journal write count.
    let writes_before = bench.injector.stats().writes_seen;
    let (golden, _) = bench.run(Some(&dir.join("golden"))).expect("golden journaled run");
    let journal_writes = bench.injector.stats().writes_seen - writes_before;

    // Clean-path overhead, best-of-`repeats` each.
    let mut plain_wall_ms = f64::INFINITY;
    let mut journaled_wall_ms = f64::INFINITY;
    for r in 0..config.repeats {
        let (plain, wall) = bench.run(None).expect("plain run");
        assert!(same_modeled_run(&golden, &plain), "journal perturbed the modeled traces");
        plain_wall_ms = plain_wall_ms.min(wall);
        let (_, wall) = bench.run(Some(&dir.join(format!("timed-{r}")))).expect("journaled run");
        journaled_wall_ms = journaled_wall_ms.min(wall);
    }
    let overhead_pct = (journaled_wall_ms - plain_wall_ms) / plain_wall_ms * 100.0;

    // Crash at the middle journal write, then time recover-and-finish.
    let crash_op = journal_writes / 2;
    let mut recovery_wall_ms = f64::INFINITY;
    let mut recovered_identical = true;
    for r in 0..config.repeats {
        let crash_dir = dir.join(format!("crash-{r}"));
        bench
            .injector
            .arm_journal_kill(bench.injector.stats().writes_seen + crash_op, KillMode::AfterWrite);
        assert!(bench.run(Some(&crash_dir)).is_err(), "injected kill must abort the run");
        let (recovered, wall) = bench.recover(&crash_dir).expect("recovery");
        recovered_identical &= same_modeled_run(&golden, &recovered);
        recovery_wall_ms = recovery_wall_ms.min(wall);
    }

    std::fs::remove_dir_all(&dir).ok();
    RecoveryReport {
        dataset_rows: config.rows,
        max_labels: config.max_labels,
        gamma: config.gamma,
        fsync: format!("{:?}", config.journal.fsync),
        snapshot_every: config.journal.snapshot_every,
        segment_bytes: config.journal.segment_bytes,
        repeats: config.repeats,
        plain_wall_ms,
        journaled_wall_ms,
        overhead_pct,
        journal_writes,
        crash_op,
        recovery_wall_ms,
        full_rerun_wall_ms: plain_wall_ms,
        recovery_speedup: plain_wall_ms / recovery_wall_ms,
        recovered_identical,
    }
}

/// Panics unless the report upholds the acceptance criteria: journaling
/// costs at most 5 % of clean-path iteration wall time, and every crashed
/// run recovered to a bit-identical (modeled fields) session.
pub fn validate_recovery(report: &RecoveryReport) {
    assert!(report.plain_wall_ms > 0.0 && report.journaled_wall_ms > 0.0, "degenerate timing");
    // The wall-clock budget is only meaningful in release builds run
    // without sibling load; under `cargo test` a dozen test binaries
    // compete for the CPU and the ratio is noise.
    assert!(
        cfg!(debug_assertions) || report.overhead_pct <= 5.0,
        "clean-path journaling overhead {:.2}% exceeds the 5% budget \
         (plain {:.2} ms, journaled {:.2} ms)",
        report.overhead_pct,
        report.plain_wall_ms,
        report.journaled_wall_ms
    );
    assert!(report.recovered_identical, "a recovered session diverged from the golden run");
    assert!(
        report.journal_writes >= report.max_labels as u64,
        "a complete session must journal at least one write per label, saw {}",
        report.journal_writes
    );
    assert!(
        report.recovery_wall_ms > 0.0 && report.recovery_speedup.is_finite(),
        "degenerate recovery timing"
    );
}

/// The default full-size run.
pub fn full_recovery_report() -> RecoveryReport {
    let report = run_recovery_bench(&RecoveryConfig::default());
    validate_recovery(&report);
    report
}

/// A seconds-scale smoke run used by CI. Panics if any acceptance
/// criterion fails.
pub fn smoke_recovery_report() -> RecoveryReport {
    // Heavy enough iterations that the (constant, per-session) fsync cost
    // is measured against representative compute, not micro-iteration
    // noise: a couple of milliseconds of mandatory journal syncs need a
    // session wall of ~100 ms to sit comfortably inside the 5% budget on
    // a loaded box.
    let config = RecoveryConfig {
        rows: 10_000,
        max_labels: 25,
        bootstrap_size: 150,
        eval_sample: 3_500,
        gamma: 1_800,
        repeats: 5,
        ..RecoveryConfig::default()
    };
    // The budget is a property of the code (how many mandatory syncs sit
    // on the labeling path), but a single measurement also samples the
    // disk: right after a release build the device can stay busy with
    // writeback for seconds, inflating every fsync in the window. Re-run
    // the measurement up to twice before declaring the budget blown — a
    // real regression fails every attempt.
    let mut report = run_recovery_bench(&config);
    for _ in 0..2 {
        if report.overhead_pct <= 5.0 {
            break;
        }
        report = run_recovery_bench(&config);
    }
    validate_recovery(&report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_upholds_acceptance_criteria() {
        let report = smoke_recovery_report();
        assert!(report.recovered_identical);
        assert!(report.journal_writes > report.crash_op);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"overhead_pct\""));
    }
}
