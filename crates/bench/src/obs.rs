//! Telemetry overhead and coverage (DESIGN.md §15).
//!
//! Three claims are measured over one on-disk fixture:
//!
//! 1. **Enabled overhead** — running a journaled session with
//!    `TelemetryConfig::on()` must cost at most 3 % of the same session's
//!    wall time with telemetry disabled (the default), best-of-`repeats`
//!    each to damp scheduler noise.
//! 2. **Disabled overhead** — the instrumentation left in the hot path
//!    when telemetry is off is a single branch per span site. A ~1M-op
//!    micro-benchmark prices one disabled `span()` call, and combined
//!    with the session's actual span-fire count this bounds the
//!    disabled-path overhead at under 1 % of session wall time.
//! 3. **Observation only** — the enabled and disabled sessions must
//!    produce bit-identical modeled traces, and the enabled session must
//!    observe every one of the seven instrumented phases.
//!
//! Results serialize to the `BENCH_obs.json` shape documented in
//! `BENCH_SCHEMA.json` at the repository root.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;
use uei_explore::backend::UeiBackend;
use uei_explore::oracle::Oracle;
use uei_explore::session::{ExplorationSession, IterationTrace, SessionConfig, SessionResult};
use uei_explore::synth::{generate_sdss_like, SynthConfig};
use uei_explore::workload::generate_target_region_fraction;
use uei_index::config::UeiConfig;
use uei_learn::strategy::UncertaintyMeasure;
use uei_obs::{Phase, SessionTelemetry, TelemetryConfig};
use uei_storage::io::{DiskTracker, IoProfile};
use uei_storage::journal::JournalConfig;
use uei_storage::store::{ColumnStore, StoreConfig};
use uei_types::{Result, Rng, Schema};

/// Fixture and measurement knobs.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Dataset rows (SDSS-like synthetic).
    pub rows: usize,
    /// Grid resolution of the index.
    pub cells_per_dim: usize,
    /// Chunk size of the column store.
    pub chunk_target_bytes: usize,
    /// Labels per session.
    pub max_labels: usize,
    /// Bootstrap labels per session.
    pub bootstrap_size: usize,
    /// Evaluation-sample size per session.
    pub eval_sample: usize,
    /// Unlabeled-pool sample size γ.
    pub gamma: usize,
    /// Target-region cardinality as a fraction of the dataset.
    pub target_fraction: f64,
    /// Master seed (dataset, target region, session, sampling).
    pub seed: u64,
    /// Timed repetitions per variant; best-of wins.
    pub repeats: usize,
    /// Micro-benchmark iterations pricing one disabled `span()` call.
    pub span_ops: u64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            rows: 20_000,
            cells_per_dim: 3,
            chunk_target_bytes: 8192,
            max_labels: 25,
            bootstrap_size: 150,
            eval_sample: 2_500,
            gamma: 2_000,
            target_fraction: 0.02,
            seed: 83,
            repeats: 5,
            span_ops: 1_000_000,
        }
    }
}

/// The full report written to `BENCH_obs.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ObsReport {
    /// Dataset rows of the fixture.
    pub dataset_rows: usize,
    /// Labels per session.
    pub max_labels: usize,
    /// Unlabeled-pool sample size γ.
    pub gamma: usize,
    /// Timed repetitions per variant (best-of).
    pub repeats: usize,
    /// Best end-to-end session wall time with telemetry disabled, ms.
    pub disabled_wall_ms: f64,
    /// Best end-to-end session wall time with telemetry enabled, ms.
    pub enabled_wall_ms: f64,
    /// `(enabled - disabled) / disabled`, percent. Negative means noise.
    pub enabled_overhead_pct: f64,
    /// Measured cost of one disabled `span()` call, nanoseconds.
    pub disabled_span_ns: f64,
    /// Phase spans fired by one complete enabled session.
    pub spans_per_session: u64,
    /// Estimated disabled-path overhead: `spans_per_session ×
    /// disabled_span_ns` against the disabled session wall, percent.
    pub disabled_overhead_est_pct: f64,
    /// Whether the enabled and disabled sessions produced bit-identical
    /// modeled traces.
    pub modeled_identical: bool,
    /// Distinct phases observed in the enabled session's breakdowns.
    pub phases_observed: usize,
}

/// Modeled trace fields: everything except wall-clock time and the
/// observational telemetry fields, which legitimately differ.
fn modeled(t: &IterationTrace) -> impl PartialEq {
    (
        t.iteration,
        t.labels,
        t.f_measure.map(f64::to_bits),
        t.response_virtual_ms.to_bits(),
        t.bytes_read,
        t.seeks,
        t.label_positive,
        t.region_rows,
        t.prefetched,
        t.counters,
        t.examined,
    )
}

fn same_modeled_run(a: &SessionResult, b: &SessionResult) -> bool {
    a.labels_used == b.labels_used
        && a.final_f_measure.to_bits() == b.final_f_measure.to_bits()
        && a.traces.len() == b.traces.len()
        && a.traces.iter().zip(&b.traces).all(|(x, y)| modeled(x) == modeled(y))
}

struct Bench {
    store: Arc<ColumnStore>,
    tracker: DiskTracker,
    oracle: Oracle,
    config: ObsConfig,
}

impl Bench {
    /// One timed journaled session with the given telemetry config.
    fn run(&self, telemetry: TelemetryConfig, journal_dir: &Path) -> Result<(SessionResult, f64)> {
        let mut rng = Rng::new(self.config.seed.wrapping_mul(2_000));
        let journal = JournalConfig::default();
        let mut backend = UeiBackend::new(
            Arc::clone(&self.store),
            UeiConfig {
                cells_per_dim: self.config.cells_per_dim,
                prefetch: false,
                telemetry,
                journal,
                ..UeiConfig::default()
            },
            UncertaintyMeasure::LeastConfidence,
            self.config.gamma,
            &mut rng,
        )?;
        let session_config = SessionConfig {
            max_labels: self.config.max_labels,
            bootstrap_size: self.config.bootstrap_size,
            eval_sample: self.config.eval_sample,
            seed: self.config.seed.wrapping_mul(1_000),
            ..SessionConfig::default()
        };
        let mut session = ExplorationSession::new(
            &mut backend,
            &self.oracle,
            session_config,
            self.tracker.clone(),
        );
        session.attach_journal(journal_dir, journal)?;
        let start = Instant::now();
        let result = session.run()?;
        Ok((result, start.elapsed().as_secs_f64() * 1e3))
    }
}

/// Prices one disabled `span()` call — the entire cost telemetry leaves on
/// the hot path when it is off.
fn price_disabled_span(ops: u64) -> f64 {
    let tel = SessionTelemetry::disabled();
    let start = Instant::now();
    for _ in 0..ops {
        let span = std::hint::black_box(&tel).span(Phase::Rescore);
        std::hint::black_box(&span);
    }
    start.elapsed().as_nanos() as f64 / ops.max(1) as f64
}

/// Runs the overhead and coverage measurements over one on-disk fixture.
pub fn run_obs_bench(config: &ObsConfig) -> ObsReport {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "uei-obs-bench-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let rows = generate_sdss_like(&SynthConfig { rows: config.rows, ..Default::default() });
    let mut rng = Rng::new(config.seed);
    let target =
        generate_target_region_fraction(&rows, &Schema::sdss(), config.target_fraction, &mut rng)
            .expect("target region");
    let oracle = Oracle::new(target);

    let tracker = DiskTracker::new(IoProfile::nvme());
    let store = Arc::new(
        ColumnStore::create(
            dir.join("store"),
            Schema::sdss(),
            &rows,
            StoreConfig { chunk_target_bytes: config.chunk_target_bytes },
            tracker.clone(),
        )
        .expect("create fixture store"),
    );
    let bench = Bench { store, tracker, oracle, config: config.clone() };

    // Reference runs: one each way, compared trace-for-trace.
    let (disabled_golden, _) =
        bench.run(TelemetryConfig::default(), &dir.join("off-golden")).expect("disabled run");
    let (enabled_golden, _) =
        bench.run(TelemetryConfig::on(), &dir.join("on-golden")).expect("enabled run");
    let modeled_identical = same_modeled_run(&disabled_golden, &enabled_golden);

    let spans_per_session: u64 =
        enabled_golden.traces.iter().flat_map(|t| t.phase_ms.iter().map(|p| p.count)).sum();
    let mut phases: Vec<&str> = enabled_golden
        .traces
        .iter()
        .flat_map(|t| t.phase_ms.iter().map(|p| p.phase.as_str()))
        .collect();
    phases.sort_unstable();
    phases.dedup();

    // Wall-time comparison, best-of-`repeats` each.
    let mut disabled_wall_ms = f64::INFINITY;
    let mut enabled_wall_ms = f64::INFINITY;
    for r in 0..config.repeats {
        let (_, wall) =
            bench.run(TelemetryConfig::default(), &dir.join(format!("off-{r}"))).expect("off run");
        disabled_wall_ms = disabled_wall_ms.min(wall);
        let (_, wall) =
            bench.run(TelemetryConfig::on(), &dir.join(format!("on-{r}"))).expect("on run");
        enabled_wall_ms = enabled_wall_ms.min(wall);
    }
    let enabled_overhead_pct = (enabled_wall_ms - disabled_wall_ms) / disabled_wall_ms * 100.0;

    let disabled_span_ns = price_disabled_span(config.span_ops);
    let disabled_overhead_est_pct =
        spans_per_session as f64 * disabled_span_ns / (disabled_wall_ms * 1e6) * 100.0;

    std::fs::remove_dir_all(&dir).ok();
    ObsReport {
        dataset_rows: config.rows,
        max_labels: config.max_labels,
        gamma: config.gamma,
        repeats: config.repeats,
        disabled_wall_ms,
        enabled_wall_ms,
        enabled_overhead_pct,
        disabled_span_ns,
        spans_per_session,
        disabled_overhead_est_pct,
        modeled_identical,
        phases_observed: phases.len(),
    }
}

/// Panics unless the report upholds the acceptance criteria: enabled
/// telemetry costs at most 3 % of session wall time, the disabled path at
/// most 1 %, every phase is observed, and the modeled traces are
/// bit-identical either way.
pub fn validate_obs(report: &ObsReport) {
    assert!(report.disabled_wall_ms > 0.0 && report.enabled_wall_ms > 0.0, "degenerate timing");
    assert!(report.modeled_identical, "telemetry perturbed the modeled traces");
    assert!(
        report.phases_observed >= Phase::ALL.len(),
        "enabled session observed only {} of {} phases",
        report.phases_observed,
        Phase::ALL.len()
    );
    assert!(report.spans_per_session > 0, "no spans fired in the enabled session");
    // Wall-clock budgets are only meaningful in release builds run without
    // sibling load; under `cargo test` a dozen test binaries compete for
    // the CPU and the ratios are noise.
    assert!(
        cfg!(debug_assertions) || report.enabled_overhead_pct <= 3.0,
        "enabled-telemetry overhead {:.2}% exceeds the 3% budget \
         (disabled {:.2} ms, enabled {:.2} ms)",
        report.enabled_overhead_pct,
        report.disabled_wall_ms,
        report.enabled_wall_ms
    );
    assert!(
        cfg!(debug_assertions) || report.disabled_overhead_est_pct <= 1.0,
        "disabled-path overhead estimate {:.4}% exceeds the 1% budget \
         ({} spans × {:.1} ns against {:.2} ms)",
        report.disabled_overhead_est_pct,
        report.spans_per_session,
        report.disabled_span_ns,
        report.disabled_wall_ms
    );
}

/// The default full-size run.
pub fn full_obs_report() -> ObsReport {
    let report = run_obs_bench(&ObsConfig::default());
    validate_obs(&report);
    report
}

/// A seconds-scale smoke run used by CI. Panics if any acceptance
/// criterion fails.
pub fn smoke_obs_report() -> ObsReport {
    let config = ObsConfig {
        rows: 8_000,
        max_labels: 20,
        bootstrap_size: 150,
        eval_sample: 2_000,
        gamma: 1_500,
        repeats: 4,
        span_ops: 500_000,
        ..ObsConfig::default()
    };
    // The budgets are properties of the code, but a single measurement
    // also samples the machine: right after a release build the box can
    // stay busy for seconds, inflating one variant's wall time. Re-run
    // the measurement up to twice before declaring a budget blown — a
    // real regression fails every attempt.
    let mut report = run_obs_bench(&config);
    for _ in 0..2 {
        if report.enabled_overhead_pct <= 3.0 && report.disabled_overhead_est_pct <= 1.0 {
            break;
        }
        report = run_obs_bench(&config);
    }
    validate_obs(&report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_upholds_acceptance_criteria() {
        let report = smoke_obs_report();
        assert!(report.modeled_identical);
        assert!(report.phases_observed >= 7);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"enabled_overhead_pct\""));
    }
}
