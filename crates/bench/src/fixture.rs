//! Experiment fixtures: datasets and stores on disk, built once per scale.
//!
//! The paper's testbed is 40 GB / 10⁷ SDSS tuples against a ~400 MB
//! (≈1 %) memory budget. The harness preserves the *ratios* at a
//! laptop-friendly scale: dataset size is configurable, and both schemes'
//! memory budgets are derived as the same fraction of their on-disk
//! footprint.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use uei_dbms::buffer::BufferPool;
use uei_dbms::page::PAGE_SIZE;
use uei_dbms::table::Table;
use uei_explore::synth::{generate_sdss_like, SynthConfig};
use uei_storage::io::{DiskTracker, IoProfile};
use uei_storage::store::{ColumnStore, StoreConfig};
use uei_types::{DataPoint, Result, Schema};

/// The knobs that size an experiment.
#[derive(Debug, Clone)]
pub struct ExperimentScale {
    /// Dataset rows (paper: 10⁷).
    pub rows: usize,
    /// Complete runs to average (paper: 10).
    pub runs: usize,
    /// Labels per run (x-axis extent of Figures 3–5).
    pub max_labels: usize,
    /// Uniform sample γ cached by the UEI scheme.
    pub gamma: usize,
    /// Evaluation-sample size for per-iteration F-measure.
    pub eval_sample: usize,
    /// Chunk target size (Table 1: 470 KB; scaled down with the dataset).
    pub chunk_target_bytes: usize,
    /// UEI grid cells per dimension (Table 1: 5 ⇒ 3125 points in 5-D).
    pub cells_per_dim: usize,
    /// Memory budget as a fraction of the dataset (paper: ~1 %).
    pub memory_fraction: f64,
    /// Logical padding per DBMS row, emulating the unexplored columns of
    /// the full-width `PhotoObjAll` tuple (paper: ≈4 KB/row). Charged in
    /// the I/O model only; see `uei_dbms::table::Table::create_padded`.
    pub row_pad_bytes: u32,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// The accuracy scale (Figures 3–5): large enough for the paper's
    /// convergence shapes, small enough that 10 runs × 3 sizes of the
    /// DBMS scheme's per-iteration exhaustive scans finish in minutes.
    pub fn accuracy() -> ExperimentScale {
        ExperimentScale {
            rows: 40_000,
            runs: 10,
            max_labels: 100,
            gamma: 4_000,
            eval_sample: 2_500,
            chunk_target_bytes: 8 * 1024,
            cells_per_dim: 5,
            memory_fraction: 0.01,
            row_pad_bytes: 4048, // full-width rows like the paper
            seed: 0xEDB7_2021,
        }
    }

    /// The response-time scale (Figure 6): a bigger dataset with
    /// full-width DBMS rows so the modeled exhaustive scan lands in the
    /// multi-second regime the paper reports, and the 1 % memory budget is
    /// ≈100× smaller than the logical data.
    pub fn response_time() -> ExperimentScale {
        ExperimentScale {
            rows: 500_000,
            runs: 3,
            max_labels: 8,
            gamma: 2_000,
            eval_sample: 0,
            chunk_target_bytes: 64 * 1024,
            cells_per_dim: 5,
            memory_fraction: 0.01,
            row_pad_bytes: 4048,
            seed: 0xEDB7_2021,
        }
    }

    /// A fast smoke-test scale for CI.
    pub fn quick() -> ExperimentScale {
        ExperimentScale {
            rows: 8_000,
            runs: 2,
            max_labels: 30,
            gamma: 400,
            eval_sample: 800,
            chunk_target_bytes: 8 * 1024,
            cells_per_dim: 4,
            memory_fraction: 0.01,
            row_pad_bytes: 4048,
            seed: 0xEDB7_2021,
        }
    }
}

/// On-disk fixtures for one experiment scale.
pub struct Fixture {
    /// The generated rows (kept in memory for target-region generation).
    pub rows: Vec<DataPoint>,
    /// Directory of the UEI column store.
    pub store_dir: PathBuf,
    /// Directory of the DBMS table.
    pub table_dir: PathBuf,
    /// The scale this fixture was built at.
    pub scale: ExperimentScale,
}

impl Fixture {
    /// Generates the dataset and initializes both storage schemes under
    /// `root`. Reuses existing artifacts when the directory already holds
    /// a store of the same scale (the initialization phase runs once per
    /// dataset, §3.1).
    pub fn build(root: &Path, scale: ExperimentScale) -> Result<Fixture> {
        std::fs::create_dir_all(root).map_err(|e| uei_types::UeiError::io(root, e))?;
        let rows = generate_sdss_like(&SynthConfig {
            rows: scale.rows,
            seed: scale.seed,
            ..Default::default()
        });
        let store_dir = root.join(format!("store-{}-{}", scale.rows, scale.chunk_target_bytes));
        let table_dir = root.join(format!("table-{}-{}", scale.rows, scale.row_pad_bytes));

        // Build (or reuse) the column store.
        let build_tracker = DiskTracker::new(IoProfile::instant());
        if ColumnStore::open(&store_dir, build_tracker.clone()).is_err() {
            let _ = std::fs::remove_dir_all(&store_dir);
            ColumnStore::create(
                &store_dir,
                Schema::sdss(),
                &rows,
                StoreConfig { chunk_target_bytes: scale.chunk_target_bytes },
                build_tracker.clone(),
            )?;
        }
        // Build (or reuse) the table.
        let reuse = Table::open(&table_dir, &build_tracker)
            .map(|t| t.row_pad_bytes() == scale.row_pad_bytes)
            .unwrap_or(false);
        if !reuse {
            let _ = std::fs::remove_dir_all(&table_dir);
            Table::create_padded(
                &table_dir,
                Schema::sdss(),
                &rows,
                scale.row_pad_bytes,
                &build_tracker,
            )?;
        }

        Ok(Fixture { rows, store_dir, table_dir, scale })
    }

    /// Opens the column store with a fresh tracker (one per run so every
    /// run's I/O is accounted independently).
    pub fn open_store(&self, profile: IoProfile) -> Result<(Arc<ColumnStore>, DiskTracker)> {
        let tracker = DiskTracker::new(profile);
        let store = ColumnStore::open(&self.store_dir, tracker.clone())?;
        Ok((Arc::new(store), tracker))
    }

    /// Opens the DBMS table plus a buffer pool sized to the memory budget.
    pub fn open_table(&self, profile: IoProfile) -> Result<(Table, BufferPool, DiskTracker)> {
        let tracker = DiskTracker::new(profile);
        let table = Table::open(&self.table_dir, &tracker)?;
        let pool = BufferPool::new(self.dbms_pool_pages(&table), tracker.clone())?;
        Ok((table, pool, tracker))
    }

    /// Buffer-pool pages granting the DBMS scheme `memory_fraction` of its
    /// own table size (at least one page).
    pub fn dbms_pool_pages(&self, table: &Table) -> usize {
        ((table.size_bytes() as f64 * self.scale.memory_fraction) as usize / PAGE_SIZE).max(1)
    }

    /// Chunk-cache bytes granting the UEI scheme the same fraction of its
    /// chunk footprint (the rest of UEI's budget is the γ sample, held by
    /// the session).
    pub fn uei_cache_bytes(&self, store: &ColumnStore) -> usize {
        ((store.manifest().total_chunk_bytes() as f64 * self.scale.memory_fraction) as usize)
            .max(64 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "uei-fixture-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn builds_both_schemes_and_reuses() {
        let root = temp_root("build");
        let mut scale = ExperimentScale::quick();
        scale.rows = 2000;
        let fixture = Fixture::build(&root, scale.clone()).unwrap();
        assert_eq!(fixture.rows.len(), 2000);

        let (store, _) = fixture.open_store(IoProfile::instant()).unwrap();
        assert_eq!(store.num_rows(), 2000);
        let (table, _, _) = fixture.open_table(IoProfile::instant()).unwrap();
        assert_eq!(table.num_rows(), 2000);

        // Second build reuses the artifacts (no error, same contents).
        let again = Fixture::build(&root, scale).unwrap();
        let (store2, _) = again.open_store(IoProfile::instant()).unwrap();
        assert_eq!(store2.manifest().dims, store.manifest().dims);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn budgets_are_one_percent() {
        let root = temp_root("budget");
        let mut scale = ExperimentScale::quick();
        scale.rows = 5000;
        let fixture = Fixture::build(&root, scale).unwrap();
        let (table, pool, _) = fixture.open_table(IoProfile::instant()).unwrap();
        let pool_bytes = pool.capacity() * PAGE_SIZE;
        assert!(
            (pool_bytes as f64) < table.size_bytes() as f64 * 0.05,
            "pool {} B vs table {} B",
            pool_bytes,
            table.size_bytes()
        );
        let (store, _) = fixture.open_store(IoProfile::instant()).unwrap();
        let cache = fixture.uei_cache_bytes(&store);
        assert!(cache >= 64 * 1024);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
