//! Flat SoA kd-tree vs. the legacy `Vec<Vec<f64>>` layout.
//!
//! Measures the tentpole claim of the flat-layout rewrite: bucketed leaves
//! over one contiguous row-major matrix, scanned with blocked distance
//! kernels, answer exact-kNN queries substantially faster than the
//! pointer-chasing recursive tree — while returning **bit-identical**
//! `(dist², index)` results. The baseline below is a faithful copy of the
//! pre-rewrite implementation (one heap-allocated `Vec` per point, one
//! node per point, recursive traversal), so the comparison isolates the
//! memory layout and kernel, not algorithmic differences: both trees split
//! on the largest-spread dimension at the median and prune with the same
//! bound.
//!
//! Every case bit-compares the two trees' neighbour lists over every
//! query, so a layout bug cannot produce a flattering number silently.
//!
//! Results serialize to the `BENCH_kdtree.json` schema documented in
//! `BENCH_SCHEMA.json` at the repository root.

use std::time::Instant;

use serde::Serialize;
use uei_learn::kdtree::{KdTree, NearestScratch, LEAF_SIZE};
use uei_types::Rng;

/// A faithful reproduction of the pre-rewrite kd-tree: `Vec<Vec<f64>>`
/// point storage, one arena node per point, recursive traversal with
/// per-point scalar distance calls. Kept here (not in `uei-learn`) so the
/// production crate carries exactly one tree.
pub mod baseline {
    use std::collections::BinaryHeap;

    use uei_types::point::squared_distance;

    struct Node {
        point: u32,
        dim: u8,
        left: u32,
        right: u32,
    }

    const NONE: u32 = u32::MAX;

    /// The legacy recursive tree. Input must be non-empty, rectangular,
    /// and NaN-free (the bench generates it that way); the same validation
    /// scans the production tree runs are kept so build timings compare
    /// like for like.
    pub struct OldKdTree {
        points: Vec<Vec<f64>>,
        nodes: Vec<Node>,
        root: u32,
        dims: usize,
    }

    /// Reusable query buffers, mirroring the production scratch.
    #[derive(Default)]
    pub struct OldScratch {
        heap: BinaryHeap<HeapEntry>,
        out: Vec<(f64, usize)>,
    }

    #[derive(PartialEq)]
    struct HeapEntry {
        dist2: f64,
        index: usize,
    }

    impl Eq for HeapEntry {}
    impl PartialOrd for HeapEntry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for HeapEntry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.dist2
                .partial_cmp(&other.dist2)
                .expect("distances are never NaN")
                .then(self.index.cmp(&other.index))
        }
    }

    impl OldKdTree {
        /// Builds the tree (recursive median split on the largest-spread
        /// dimension — the same policy as the flat tree).
        pub fn build(points: Vec<Vec<f64>>) -> OldKdTree {
            let dims = points.first().map(|p| p.len()).expect("bench data is non-empty");
            for p in &points {
                assert_eq!(p.len(), dims);
                assert!(p.iter().all(|v| !v.is_nan()));
            }
            let mut indices: Vec<u32> = (0..points.len() as u32).collect();
            let mut nodes = Vec::with_capacity(points.len());
            let root = build_recursive(&points, &mut indices[..], &mut nodes, dims);
            OldKdTree { points, nodes, root, dims }
        }

        /// Number of points.
        pub fn len(&self) -> usize {
            self.points.len()
        }

        /// Whether the tree is empty.
        pub fn is_empty(&self) -> bool {
            self.points.is_empty()
        }

        /// The `k` nearest neighbours, ascending `(dist², build index)`.
        pub fn nearest_with<'s>(
            &self,
            scratch: &'s mut OldScratch,
            query: &[f64],
            k: usize,
        ) -> &'s [(f64, usize)] {
            scratch.heap.clear();
            scratch.out.clear();
            if self.points.is_empty() || k == 0 {
                return &scratch.out;
            }
            assert_eq!(query.len(), self.dims);
            self.search(self.root, query, k, &mut scratch.heap);
            scratch.out.extend(scratch.heap.drain().map(|e| (e.dist2, e.index)));
            scratch.out.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN").then(a.1.cmp(&b.1)));
            &scratch.out
        }

        fn search(&self, node_idx: u32, query: &[f64], k: usize, heap: &mut BinaryHeap<HeapEntry>) {
            if node_idx == NONE {
                return;
            }
            let node = &self.nodes[node_idx as usize];
            let point = &self.points[node.point as usize];
            let d2 = squared_distance(point, query).expect("dims validated");
            if heap.len() < k {
                heap.push(HeapEntry { dist2: d2, index: node.point as usize });
            } else if let Some(top) = heap.peek() {
                if d2 < top.dist2 || (d2 == top.dist2 && (node.point as usize) < top.index) {
                    heap.pop();
                    heap.push(HeapEntry { dist2: d2, index: node.point as usize });
                }
            }
            let dim = node.dim as usize;
            let diff = query[dim] - point[dim];
            let (near, far) =
                if diff < 0.0 { (node.left, node.right) } else { (node.right, node.left) };
            self.search(near, query, k, heap);
            let must_visit =
                heap.len() < k || diff * diff <= heap.peek().expect("non-empty heap").dist2;
            if must_visit {
                self.search(far, query, k, heap);
            }
        }
    }

    // Kept structurally verbatim from the pre-rewrite implementation so
    // the baseline's codegen matches what shipped, lint style included.
    #[allow(clippy::needless_range_loop)]
    fn build_recursive(
        points: &[Vec<f64>],
        indices: &mut [u32],
        nodes: &mut Vec<Node>,
        dims: usize,
    ) -> u32 {
        if indices.is_empty() {
            return NONE;
        }
        let mut best_dim = 0;
        let mut best_spread = f64::NEG_INFINITY;
        for d in 0..dims {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &i in indices.iter() {
                let v = points[i as usize][d];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let spread = hi - lo;
            if spread > best_spread {
                best_spread = spread;
                best_dim = d;
            }
        }
        let mid = indices.len() / 2;
        indices.select_nth_unstable_by(mid, |&a, &b| {
            points[a as usize][best_dim]
                .partial_cmp(&points[b as usize][best_dim])
                .expect("no NaN")
                .then(a.cmp(&b))
        });
        let point = indices[mid];
        let node_idx = nodes.len() as u32;
        nodes.push(Node { point, dim: best_dim as u8, left: NONE, right: NONE });
        let (left_slice, rest) = indices.split_at_mut(mid);
        let right_slice = &mut rest[1..];
        let left = build_recursive(points, left_slice, nodes, dims);
        let right = build_recursive(points, right_slice, nodes, dims);
        nodes[node_idx as usize].left = left;
        nodes[node_idx as usize].right = right;
        node_idx
    }
}

/// One `(n, dims)` comparison between the two layouts.
#[derive(Debug, Clone, Serialize)]
pub struct KdtreeCase {
    /// Number of points in the tree.
    pub n: usize,
    /// Dimensionality.
    pub dims: usize,
    /// Neighbours per query.
    pub k: usize,
    /// Queries timed per measurement.
    pub queries: usize,
    /// Legacy-layout build time, nanoseconds (best of `repeats`).
    pub build_baseline_ns: u64,
    /// Flat-layout build time, nanoseconds (best of `repeats`).
    pub build_flat_ns: u64,
    /// `build_baseline_ns / build_flat_ns`.
    pub build_speedup: f64,
    /// Legacy-layout time for all `queries`, nanoseconds (best of
    /// `repeats`).
    pub query_baseline_ns: u64,
    /// Flat-layout time for all `queries`, nanoseconds (best of
    /// `repeats`).
    pub query_flat_ns: u64,
    /// `query_baseline_ns / query_flat_ns` — the headline number.
    pub query_speedup: f64,
    /// Whether both layouts returned bit-identical `(dist², index)` lists
    /// for every query (must be true).
    pub identical: bool,
}

/// The full report written to `BENCH_kdtree.json`.
#[derive(Debug, Clone, Serialize)]
pub struct KdtreeReport {
    /// Leaf bucket size of the flat tree.
    pub leaf_size: usize,
    /// Timing repeats per measurement (best-of).
    pub repeats: usize,
    pub cases: Vec<KdtreeCase>,
}

fn gen_points(n: usize, dims: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| (0..dims).map(|_| rng.range_f64(0.0, 1.0)).collect()).collect()
}

/// Times `f` `repeats` times and keeps the fastest run — the standard
/// best-of estimator, robust to scheduler noise on shared CI hosts.
fn best_of<T>(repeats: usize, mut f: impl FnMut() -> T) -> (u64, T) {
    let mut best_ns = u64::MAX;
    let mut last = None;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        let value = f();
        best_ns = best_ns.min(start.elapsed().as_nanos() as u64);
        last = Some(value);
    }
    (best_ns, last.expect("repeats >= 1"))
}

fn bench_case(n: usize, dims: usize, k: usize, queries: usize, repeats: usize) -> KdtreeCase {
    let points = gen_points(n, dims, 0xBEEF ^ (n as u64) << 8 ^ dims as u64);
    let query_set = gen_points(queries, dims, 0xF00D ^ (n as u64) << 8 ^ dims as u64);

    let (build_baseline_ns, old_tree) =
        best_of(repeats, || baseline::OldKdTree::build(points.clone()));
    let (build_flat_ns, flat_tree) =
        best_of(repeats, || KdTree::build(points.clone()).expect("valid bench data"));

    // Exactness first (untimed): every query's full neighbour list must
    // match bit for bit, tie-breaks included.
    let mut old_scratch = baseline::OldScratch::default();
    let mut flat_scratch = NearestScratch::new();
    let mut identical = true;
    for q in &query_set {
        let want = old_tree.nearest_with(&mut old_scratch, q, k);
        let got = flat_tree.nearest_with(&mut flat_scratch, q, k).expect("valid query");
        identical &= want.len() == got.len()
            && want
                .iter()
                .zip(got)
                .all(|((wd, wi), (gd, gi))| wd.to_bits() == gd.to_bits() && wi == gi);
    }

    // Warm both layouts (caches, branch predictors) right before their
    // timed loops; the identity pass above ran earlier and interleaved.
    for q in &query_set {
        old_tree.nearest_with(&mut old_scratch, q, k);
        flat_tree.nearest_with(&mut flat_scratch, q, k).expect("valid query");
    }

    // A checksum keeps the optimizer from eliding the timed loops.
    let (query_baseline_ns, sink_old) = best_of(repeats, || {
        let mut sink = 0u64;
        for q in &query_set {
            let nn = old_tree.nearest_with(&mut old_scratch, q, k);
            sink = sink.wrapping_add(nn[0].1 as u64).wrapping_add(nn[0].0.to_bits());
        }
        sink
    });
    let (query_flat_ns, sink_flat) = best_of(repeats, || {
        let mut sink = 0u64;
        for q in &query_set {
            let nn = flat_tree.nearest_with(&mut flat_scratch, q, k).expect("valid query");
            sink = sink.wrapping_add(nn[0].1 as u64).wrapping_add(nn[0].0.to_bits());
        }
        sink
    });
    identical &= sink_old == sink_flat;

    KdtreeCase {
        n,
        dims,
        k,
        queries,
        build_baseline_ns,
        build_flat_ns,
        build_speedup: build_baseline_ns as f64 / (build_flat_ns as f64).max(1.0),
        query_baseline_ns,
        query_flat_ns,
        query_speedup: query_baseline_ns as f64 / (query_flat_ns as f64).max(1.0),
        identical,
    }
}

/// Runs the layout comparison over the `sizes × dims` grid.
pub fn run_kdtree_bench(
    sizes: &[usize],
    dims_list: &[usize],
    k: usize,
    queries: usize,
    repeats: usize,
) -> KdtreeReport {
    let mut cases = Vec::with_capacity(sizes.len() * dims_list.len());
    for &n in sizes {
        for &dims in dims_list {
            cases.push(bench_case(n, dims, k, queries, repeats));
        }
    }
    KdtreeReport { leaf_size: LEAF_SIZE, repeats, cases }
}

/// The checked-in grid: n ∈ {256, 4096, 65536} × d ∈ {2, 4, 8}, k = 5
/// (the DWKNN default), 2000 queries per measurement.
pub fn full_kdtree_report() -> KdtreeReport {
    run_kdtree_bench(&[256, 4096, 65536], &[2, 4, 8], 5, 2000, 5)
}

/// A seconds-scale CI smoke run. Panics (via [`validate_kdtree`]) if any
/// case diverged bitwise or if the flat layout's aggregate query
/// throughput fell below the legacy scalar baseline.
pub fn smoke_kdtree_report() -> KdtreeReport {
    let report = run_kdtree_bench(&[256, 4096], &[2, 4], 5, 600, 3);
    validate_kdtree(&report);
    report
}

/// Invariants every report must satisfy, smoke or full.
pub fn validate_kdtree(report: &KdtreeReport) {
    for case in &report.cases {
        assert!(
            case.identical,
            "n={} d={}: flat tree diverged bitwise from the legacy layout",
            case.n, case.dims
        );
    }
    // Aggregate throughput gate: tolerant of per-case jitter on noisy CI
    // hosts, strict about the claim that the rewrite never loses overall.
    let baseline: u64 = report.cases.iter().map(|c| c.query_baseline_ns).sum();
    let flat: u64 = report.cases.iter().map(|c| c.query_flat_ns).sum();
    assert!(
        flat <= baseline,
        "flat-layout query throughput regressed: {flat} ns vs {baseline} ns baseline"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_agree_bitwise_at_test_scale() {
        let report = run_kdtree_bench(&[64, 300], &[1, 3], 5, 50, 1);
        assert_eq!(report.cases.len(), 4);
        assert!(report.cases.iter().all(|c| c.identical));
        for c in &report.cases {
            assert!(c.query_baseline_ns > 0 && c.query_flat_ns > 0);
        }
    }

    #[test]
    fn report_serializes() {
        let report = run_kdtree_bench(&[64], &[2], 3, 20, 1);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"query_speedup\""));
        assert!(json.contains("\"leaf_size\""));
    }
}
