//! # uei-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§4), plus the ablations DESIGN.md calls out.
//!
//! - [`fixture`] — builds and caches the on-disk dataset fixtures (column
//!   store for the UEI scheme, row table for the DBMS scheme) at a chosen
//!   scale, and derives the paper's ~1 % memory restriction;
//! - [`experiments`] — one function per experiment: Figures 3–5 (accuracy
//!   vs labels for S/M/L regions), Figure 6 (response time), Table 1
//!   (parameters), the §3.3 complexity accounting, and the ablation
//!   sweeps (grid resolution, chunk size, sample size γ, estimator,
//!   prefetch σ).
//!
//! The `experiments` binary (`cargo run -p uei-bench --release --bin
//! experiments -- all`) drives them and writes machine-readable results
//! next to human-readable tables. Criterion micro-benchmarks live under
//! `benches/`.

pub mod experiments;
pub mod fault_matrix;
pub mod fixture;
pub mod kdtree;
pub mod multi_session;
pub mod obs;
pub mod recovery;
pub mod region_load;
pub mod rescore;
pub mod scoring;
pub mod shard;

pub use experiments::*;
pub use fault_matrix::{
    full_fault_matrix_report, run_fault_matrix_bench, smoke_fault_matrix_report,
    validate_fault_matrix, FaultMatrixCase, FaultMatrixConfig, FaultMatrixReport,
};
pub use fixture::{ExperimentScale, Fixture};
pub use kdtree::{
    full_kdtree_report, run_kdtree_bench, smoke_kdtree_report, validate_kdtree, KdtreeCase,
    KdtreeReport,
};
pub use multi_session::{
    full_multi_session_report, run_multi_session_bench, smoke_multi_session_report,
    validate_multi_session, MultiSessionCase, MultiSessionConfig, MultiSessionReport,
};
pub use obs::{
    full_obs_report, run_obs_bench, smoke_obs_report, validate_obs, ObsConfig, ObsReport,
};
pub use recovery::{
    full_recovery_report, run_recovery_bench, smoke_recovery_report, validate_recovery,
    RecoveryConfig, RecoveryReport,
};
pub use region_load::{
    full_region_load_report, run_region_load_bench, smoke_region_load_report, RegionLoadCase,
    RegionLoadConfig, RegionLoadReport,
};
pub use rescore::{
    full_rescore_report, run_rescore_bench, smoke_rescore_report, validate_rescore, RescoreCase,
    RescoreReport,
};
pub use scoring::{full_report, run_scoring_bench, smoke_report, ScoringCase, ScoringReport};
pub use shard::{
    full_shard_report, run_shard_bench, smoke_shard_report, validate_shard, ShardCase, ShardReport,
};
