//! Seeded fault-matrix sweep: {transient, corrupt, slow} × {loader, prefetcher}.
//!
//! Exercises the storage fault-tolerance subsystem end to end under each
//! fault kind in isolation, for both consumers of the chunk read path: the
//! foreground [`RegionLoader`] (which retries transients and surfaces
//! corruption) and the background [`Prefetcher`] (which records failures in
//! its bounded failure map and keeps serving other cells). Every sweep is
//! seed-driven — the same config reproduces the same fault schedule — and
//! the report carries the injector's own counters so a sweep that silently
//! injected nothing fails validation loudly.
//!
//! The report also measures the clean-path cost of catalog checksum
//! verification: the same serpentine walk is timed against the normal store
//! and against a byte-identical store whose catalog CRCs were zeroed
//! (the legacy "skip verification" encoding), and validation asserts the
//! difference stays within noise.
//!
//! Results serialize to the `BENCH_fault_matrix.json` shape documented in
//! `BENCH_SCHEMA.json` at the repository root.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;
use uei_index::grid::Grid;
use uei_index::loader::RegionLoader;
use uei_index::mapping::ChunkMapping;
use uei_index::prefetch::Prefetcher;
use uei_storage::fault::{FaultConfig, FaultInjector, RetryPolicy};
use uei_storage::io::{DiskTracker, IoProfile};
use uei_storage::store::{ColumnStore, StoreConfig};
use uei_types::{AttributeDef, DataPoint, Rng, Schema};

/// Fixture and sweep knobs.
#[derive(Debug, Clone)]
pub struct FaultMatrixConfig {
    /// Dataset rows (2-D uniform synthetic).
    pub rows: usize,
    /// Grid resolution; each sweep walks all `cells_per_dim²` cells.
    pub cells_per_dim: usize,
    /// Chunk size of the column store (small keeps many chunks per cell,
    /// so each cell load rolls the fault dice several times).
    pub chunk_target_bytes: usize,
    /// Per-read transient probability during the transient sweeps. A cell
    /// load rolls the dice once per chunk read and a single transient
    /// aborts the attempt, so this must be small enough that the loader's
    /// bounded retries can realistically absorb the failures.
    pub transient_prob: f64,
    /// Per-read corruption probability during the corrupt sweeps.
    pub corrupt_prob: f64,
    /// Per-read latency-spike probability during the slow sweeps.
    pub slow_prob: f64,
    /// Virtual-clock penalty per latency spike, seconds.
    pub slow_penalty_secs: f64,
    /// Timing repetitions for the clean-path checksum-overhead comparison
    /// (min wall time per side is compared).
    pub samples: usize,
    /// Seed for the synthetic data and the fault injectors.
    pub seed: u64,
}

impl Default for FaultMatrixConfig {
    fn default() -> Self {
        FaultMatrixConfig {
            rows: 20_000,
            cells_per_dim: 6,
            chunk_target_bytes: 2048,
            transient_prob: 0.01,
            corrupt_prob: 0.02,
            slow_prob: 0.10,
            slow_penalty_secs: 0.05,
            samples: 5,
            seed: 211,
        }
    }
}

/// One cell of the fault matrix: a component driven under one fault kind.
#[derive(Debug, Clone, Serialize)]
pub struct FaultMatrixCase {
    /// `"loader"` or `"prefetcher"`.
    pub component: String,
    /// `"transient"`, `"corrupt"`, or `"slow"`.
    pub fault: String,
    /// Cells the sweep attempted to load.
    pub cells: usize,
    /// Cells that produced a region despite the injector.
    pub cells_ok: usize,
    /// Cells whose load surfaced a storage fault.
    pub cells_failed: usize,
    /// Retries the loader's [`RetryPolicy`] spent absorbing transients
    /// (always 0 for the prefetcher, which does not retry).
    pub retries: u64,
    /// Reads the injector was consulted for.
    pub reads_seen: u64,
    /// Transient errors injected.
    pub transient_errors: u64,
    /// Payloads corrupted in memory.
    pub corruptions: u64,
    /// Latency spikes charged to the virtual clock.
    pub latency_spikes: u64,
    /// Modeled (virtual-clock) time of the sweep, milliseconds. With the
    /// instant I/O profile this is purely injected cost: spike penalties
    /// plus retry backoff.
    pub virtual_ms: f64,
}

/// The full report written to `BENCH_fault_matrix.json`.
#[derive(Debug, Clone, Serialize)]
pub struct FaultMatrixReport {
    /// Dataset rows of the fixture.
    pub dataset_rows: usize,
    /// Grid resolution of the walks.
    pub cells_per_dim: usize,
    /// Store chunk size.
    pub chunk_target_bytes: usize,
    /// Per-read transient probability of the transient sweeps.
    pub transient_prob: f64,
    /// Per-read corruption probability of the corrupt sweeps.
    pub corrupt_prob: f64,
    /// Per-read spike probability of the slow sweeps.
    pub slow_prob: f64,
    /// Seed for data and injectors.
    pub seed: u64,
    /// Timing repetitions of the checksum-overhead comparison.
    pub samples: usize,
    /// Best wall time of the walk with catalog CRC verification, ns.
    pub checked_wall_ns: u64,
    /// Best wall time of the same walk with CRCs zeroed (legacy catalogs
    /// skip verification), ns.
    pub legacy_wall_ns: u64,
    /// `checked / legacy - 1`: the clean-path cost of verification. Noise
    /// can make this slightly negative.
    pub crc_overhead_fraction: f64,
    /// The six sweeps: {transient, corrupt, slow} × {loader, prefetcher}.
    pub cases: Vec<FaultMatrixCase>,
}

const FAULT_KINDS: [&str; 3] = ["transient", "corrupt", "slow"];

fn schema2() -> Schema {
    Schema::new(vec![
        AttributeDef::new("x", 0.0, 100.0).unwrap(),
        AttributeDef::new("y", 0.0, 100.0).unwrap(),
    ])
    .unwrap()
}

fn random_rows(n: usize, seed: u64) -> Vec<DataPoint> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|i| {
            DataPoint::new(i as u64, vec![rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)])
        })
        .collect()
}

fn walk_cells(cells_per_dim: usize) -> Vec<usize> {
    (0..cells_per_dim * cells_per_dim).collect()
}

/// Builds the [`FaultConfig`] that injects exactly one fault kind, so each
/// cell of the matrix is attributable to that kind alone.
fn single_fault(kind: &str, config: &FaultMatrixConfig, seed: u64) -> FaultConfig {
    let mut f = FaultConfig { seed, ..FaultConfig::off() };
    match kind {
        "transient" => f.transient_prob = config.transient_prob,
        "corrupt" => f.corrupt_prob = config.corrupt_prob,
        "slow" => {
            f.slow_prob = config.slow_prob;
            f.slow_penalty_secs = config.slow_penalty_secs;
        }
        other => panic!("unknown fault kind `{other}`"),
    }
    f
}

/// Drives the foreground loader over the walk with `kind` injected.
fn loader_sweep(
    dir: &Path,
    grid: &Grid,
    mapping: &ChunkMapping,
    walk: &[usize],
    kind: &str,
    config: &FaultMatrixConfig,
) -> FaultMatrixCase {
    // Open the store *before* attaching the injector so the manifest read
    // is clean; the sweep targets steady-state chunk reads.
    let tracker = DiskTracker::new(IoProfile::instant());
    let store = Arc::new(ColumnStore::open(dir, tracker.clone()).expect("open loader handle"));
    let injector = FaultInjector::new(single_fault(kind, config, config.seed)).expect("injector");
    tracker.set_fault_injector(Some(Arc::clone(&injector)));

    let mut loader = RegionLoader::new(Arc::clone(&store) as Arc<dyn uei_storage::ChunkSource>, 0);
    loader.set_retry_policy(RetryPolicy::default());
    let before = tracker.snapshot();
    let mut cells_ok = 0usize;
    let mut cells_failed = 0usize;
    for &cell in walk {
        match loader.load_cell(grid, mapping, cell) {
            Ok(_) => cells_ok += 1,
            Err(e) if e.is_storage_fault() => cells_failed += 1,
            Err(e) => panic!("non-storage error under `{kind}` injection: {e}"),
        }
    }
    let virtual_ms = tracker.delta(&before).virtual_elapsed.as_secs_f64() * 1e3;
    tracker.set_fault_injector(None);

    let stats = injector.stats();
    FaultMatrixCase {
        component: "loader".to_string(),
        fault: kind.to_string(),
        cells: walk.len(),
        cells_ok,
        cells_failed,
        retries: loader.total_retries(),
        reads_seen: stats.reads_seen,
        transient_errors: stats.transient_errors,
        corruptions: stats.corruptions,
        latency_spikes: stats.latency_spikes,
        virtual_ms,
    }
}

/// Drives the background prefetcher over the walk with `kind` injected on
/// its (separate) tracker.
fn prefetcher_sweep(
    dir: &Path,
    grid: &Grid,
    mapping: &ChunkMapping,
    walk: &[usize],
    kind: &str,
    config: &FaultMatrixConfig,
) -> FaultMatrixCase {
    let pre = Prefetcher::spawn(dir, IoProfile::instant(), grid.clone(), mapping.clone())
        .expect("spawn prefetcher");
    let injector = FaultInjector::new(single_fault(kind, config, config.seed ^ 0x9E37_79B9))
        .expect("injector");
    pre.background_tracker().set_fault_injector(Some(Arc::clone(&injector)));
    let before = pre.background_tracker().snapshot();

    for &cell in walk {
        pre.request(cell);
    }
    let mut cells_ok = 0usize;
    for &cell in walk {
        if pre.take_blocking(cell, Duration::from_secs(60)).is_some() {
            cells_ok += 1;
        }
    }
    let virtual_ms = pre.background_tracker().delta(&before).virtual_elapsed.as_secs_f64() * 1e3;
    let cells_failed = pre.total_failures() as usize;
    assert_eq!(
        cells_ok + cells_failed,
        walk.len(),
        "every requested cell must end ready or failed"
    );

    let stats = injector.stats();
    FaultMatrixCase {
        component: "prefetcher".to_string(),
        fault: kind.to_string(),
        cells: walk.len(),
        cells_ok,
        cells_failed,
        retries: 0,
        reads_seen: stats.reads_seen,
        transient_errors: stats.transient_errors,
        corruptions: stats.corruptions,
        latency_spikes: stats.latency_spikes,
        virtual_ms,
    }
}

/// Times the full clean walk (no injector), returning best-of-`samples`
/// wall time and an order-sensitive checksum of materialized row ids.
fn timed_clean_walk(
    store: &Arc<ColumnStore>,
    grid: &Grid,
    mapping: &ChunkMapping,
    walk: &[usize],
    samples: usize,
) -> (u64, u64) {
    let mut best_ns = u64::MAX;
    let mut checksum = 0u64;
    for _ in 0..samples.max(1) {
        let mut loader =
            RegionLoader::new(Arc::clone(store) as Arc<dyn uei_storage::ChunkSource>, 0);
        let start = Instant::now();
        let mut sum = 0u64;
        for &cell in walk {
            let (points, _) = loader.load_cell(grid, mapping, cell).expect("clean load");
            for p in &points {
                sum = sum.wrapping_mul(31).wrapping_add(p.id.as_u64());
            }
        }
        best_ns = best_ns.min(start.elapsed().as_nanos() as u64);
        checksum = sum;
    }
    (best_ns, checksum)
}

/// Runs the six-sweep matrix plus the checksum-overhead comparison over
/// one on-disk fixture.
pub fn run_fault_matrix_bench(config: &FaultMatrixConfig) -> FaultMatrixReport {
    let base: PathBuf = std::env::temp_dir().join(format!(
        "uei-fault-matrix-bench-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&base);
    let dir = base.join("checked");
    let legacy_dir = base.join("legacy");

    let rows = random_rows(config.rows, config.seed);
    let build_tracker = DiskTracker::new(IoProfile::instant());
    let store = Arc::new(
        ColumnStore::create(
            &dir,
            schema2(),
            &rows,
            StoreConfig { chunk_target_bytes: config.chunk_target_bytes },
            build_tracker.clone(),
        )
        .expect("create fixture store"),
    );
    let grid = Grid::new(store.schema(), config.cells_per_dim).expect("grid");
    let mapping = ChunkMapping::build(&grid, store.manifest()).expect("mapping");
    let walk = walk_cells(config.cells_per_dim);

    // The fault matrix proper: each kind in isolation, against each
    // consumer of the chunk read path.
    let mut cases = Vec::with_capacity(FAULT_KINDS.len() * 2);
    for kind in FAULT_KINDS {
        cases.push(loader_sweep(&dir, &grid, &mapping, &walk, kind, config));
        cases.push(prefetcher_sweep(&dir, &grid, &mapping, &walk, kind, config));
    }

    // Clean-path checksum overhead: the same bytes with catalog CRCs
    // zeroed take the legacy "skip verification" branch, so the wall-time
    // difference between the two stores is the verification cost.
    let legacy_tracker = DiskTracker::new(IoProfile::instant());
    let legacy = ColumnStore::create(
        &legacy_dir,
        schema2(),
        &rows,
        StoreConfig { chunk_target_bytes: config.chunk_target_bytes },
        legacy_tracker.clone(),
    )
    .expect("create legacy fixture store");
    let mut manifest = legacy.manifest().clone();
    for catalog in &mut manifest.dims {
        for chunk in catalog {
            chunk.crc32 = 0;
        }
    }
    manifest.save(&legacy_dir, &legacy_tracker).expect("rewrite legacy manifest");
    drop(legacy);
    let legacy =
        Arc::new(ColumnStore::open(&legacy_dir, legacy_tracker).expect("reopen legacy store"));

    let (checked_wall_ns, checked_sum) =
        timed_clean_walk(&store, &grid, &mapping, &walk, config.samples);
    let (legacy_wall_ns, legacy_sum) =
        timed_clean_walk(&legacy, &grid, &mapping, &walk, config.samples);
    assert_eq!(
        checked_sum, legacy_sum,
        "checked and legacy stores must materialize identical regions"
    );
    let crc_overhead_fraction = checked_wall_ns as f64 / legacy_wall_ns as f64 - 1.0;

    std::fs::remove_dir_all(&base).ok();
    FaultMatrixReport {
        dataset_rows: config.rows,
        cells_per_dim: config.cells_per_dim,
        chunk_target_bytes: config.chunk_target_bytes,
        transient_prob: config.transient_prob,
        corrupt_prob: config.corrupt_prob,
        slow_prob: config.slow_prob,
        seed: config.seed,
        samples: config.samples.max(1),
        checked_wall_ns,
        legacy_wall_ns,
        crc_overhead_fraction,
        cases,
    }
}

/// Panics unless the report upholds the acceptance criteria: every matrix
/// cell ran and its injector actually fired the configured kind (and only
/// that kind), transients were absorbed by loader retries, corruption
/// surfaced as failed cells in both components, latency spikes never
/// failed a load, and checksum verification stayed within noise on the
/// clean path.
pub fn validate_fault_matrix(report: &FaultMatrixReport) {
    assert_eq!(report.cases.len(), 6, "3 fault kinds x 2 components");
    for component in ["loader", "prefetcher"] {
        for kind in FAULT_KINDS {
            let case = report
                .cases
                .iter()
                .find(|c| c.component == component && c.fault == kind)
                .unwrap_or_else(|| panic!("missing matrix cell {component}/{kind}"));
            assert_eq!(case.cells_ok + case.cells_failed, case.cells);
            assert!(case.reads_seen > 0, "{component}/{kind}: injector saw no reads");
            let fired = (case.transient_errors > 0, case.corruptions > 0, case.latency_spikes > 0);
            let expected = (kind == "transient", kind == "corrupt", kind == "slow");
            assert_eq!(
                fired, expected,
                "{component}/{kind}: injected faults {fired:?} do not match the \
                 configured kind"
            );
            match kind {
                "transient" => {
                    if component == "loader" {
                        assert!(
                            case.retries > 0,
                            "loader/transient: retries must absorb transient errors"
                        );
                        assert!(
                            case.cells_ok > case.cells_failed,
                            "loader/transient: retries should save most cells \
                             ({} ok vs {} failed)",
                            case.cells_ok,
                            case.cells_failed
                        );
                    } else {
                        // The prefetcher does not retry; transients become
                        // recorded failures the foreground can route around.
                        assert!(case.cells_failed > 0);
                    }
                }
                "corrupt" => {
                    assert!(
                        case.cells_failed > 0,
                        "{component}/corrupt: corruption must surface, never be \
                         silently decoded"
                    );
                    assert_eq!(
                        case.retries, 0,
                        "{component}/corrupt: corrupt reads must never be retried"
                    );
                }
                "slow" => {
                    assert_eq!(
                        case.cells_failed, 0,
                        "{component}/slow: latency spikes must never fail a load"
                    );
                    assert!(
                        case.virtual_ms > 0.0,
                        "{component}/slow: spike penalties must reach the virtual \
                         clock"
                    );
                }
                _ => unreachable!(),
            }
        }
    }
    assert!(
        report.crc_overhead_fraction < 0.5,
        "clean-path checksum verification must stay within noise, measured {:+.1}%",
        report.crc_overhead_fraction * 100.0
    );
}

/// The default full-size run.
pub fn full_fault_matrix_report() -> FaultMatrixReport {
    run_fault_matrix_bench(&FaultMatrixConfig::default())
}

/// A seconds-scale smoke run used by CI. Panics if any acceptance
/// criterion fails.
pub fn smoke_fault_matrix_report() -> FaultMatrixReport {
    let report = run_fault_matrix_bench(&FaultMatrixConfig {
        rows: 6_000,
        cells_per_dim: 4,
        chunk_target_bytes: 1024,
        // Fewer chunk reads per cell than the full run, so a slightly
        // higher per-read probability keeps the fault counts meaningful.
        transient_prob: 0.02,
        samples: 3,
        ..FaultMatrixConfig::default()
    });
    validate_fault_matrix(&report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_upholds_acceptance_criteria() {
        let report = smoke_fault_matrix_report();
        assert_eq!(report.cases.len(), 6);
        assert!(report.checked_wall_ns > 0 && report.legacy_wall_ns > 0);
    }

    #[test]
    fn sweeps_are_deterministic_for_a_seed() {
        let config = FaultMatrixConfig {
            rows: 2_000,
            cells_per_dim: 3,
            chunk_target_bytes: 1024,
            samples: 1,
            ..FaultMatrixConfig::default()
        };
        let a = run_fault_matrix_bench(&config);
        let b = run_fault_matrix_bench(&config);
        for (x, y) in a.cases.iter().zip(&b.cases) {
            assert_eq!((x.cells_ok, x.cells_failed), (y.cells_ok, y.cells_failed));
            assert_eq!(
                (x.reads_seen, x.transient_errors, x.corruptions, x.latency_spikes),
                (y.reads_seen, y.transient_errors, y.corruptions, y.latency_spikes),
                "{}/{} fault schedule must replay exactly",
                x.component,
                x.fault
            );
            assert_eq!(x.retries, y.retries);
        }
    }

    #[test]
    fn report_serializes() {
        let report = run_fault_matrix_bench(&FaultMatrixConfig {
            rows: 1_500,
            cells_per_dim: 3,
            chunk_target_bytes: 1024,
            samples: 1,
            ..FaultMatrixConfig::default()
        });
        let json = serde_json::to_vec_pretty(&report).unwrap();
        let text = String::from_utf8(json).unwrap();
        assert!(text.contains("\"component\""));
        assert!(text.contains("prefetcher"));
        assert!(text.contains("crc_overhead_fraction"));
    }
}
