//! Sharded vs. single-shard index-plane benchmark.
//!
//! Measures the tentpole claim of the sharded index plane: partitioning
//! the grid cells into contiguous-range shards — each owning its slice of
//! the score arrays, its own dirty set, its own locality-prune bound, and
//! its own cached top-θ list — makes the per-iteration update + select
//! step faster on large grids (shard-granular influence-ball pruning of
//! the delta sweep, dirty-shard-only re-ranking) while the deterministic
//! k-way merge keeps the selected cells **bit-identical** to the
//! single-shard reference at every shard count.
//!
//! Every case replays the same fixed-seed boundary-converging session and
//! records the full top-θ selection of every iteration; any divergence
//! from the 1-shard run of the same grid fails validation loudly.
//!
//! Results serialize to the `BENCH_shard.json` schema documented in
//! `BENCH_SCHEMA.json` at the repository root.

use std::time::{Duration, Instant};

use serde::Serialize;
use uei_index::grid::Grid;
use uei_index::points::IndexPoints;
use uei_learn::strategy::UncertaintyMeasure;
use uei_learn::EstimatorKind;
use uei_types::{AttributeDef, Label, Rng, Schema};

/// Top-θ depth recorded (and merged) each iteration.
const THETA: usize = 8;

/// One (grid size, shard count) cell of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ShardCase {
    /// Number of grid cells (= index points) in this case.
    pub cells: usize,
    /// Shard count the index plane was partitioned into.
    pub shards: usize,
    /// Labeled iterations measured (after the shared warm-up pass).
    pub iterations: usize,
    /// Total wall time of the update + top-θ-select steps, nanoseconds.
    pub update_select_ns: u64,
    /// Wall time of the incremental-update steps alone, nanoseconds.
    pub update_ns: u64,
    /// Wall time of the cached top-θ selections alone, nanoseconds.
    pub select_ns: u64,
    /// `update_select_ns(1 shard) / update_select_ns(this)` on the same
    /// grid — above 1 means sharding helped.
    pub speedup_vs_single: f64,
    /// Cumulative shards touched across the measured iterations (every
    /// shard on a full pass, dirty shards only under incremental updates).
    pub shards_touched: u64,
    /// Cumulative shards whose delta sweep the locality prune skipped
    /// (provably beyond every added example's inflated influence ball).
    pub shards_pruned: u64,
    /// Whether every iteration's top-θ selection was bit-identical to the
    /// single-shard reference run (must be true).
    pub selections_match: bool,
}

/// The full report written to `BENCH_shard.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ShardReport {
    /// Rayon worker count at run time.
    pub threads: usize,
    /// Labeled iterations per case.
    pub iterations: usize,
    pub cases: Vec<ShardCase>,
}

/// Three-dimensional unit cube: `cells_per_dim ^ 3` grids reach the 128k
/// cells the sweep needs without the 5-D cube's coarse resolution jumps.
fn schema3() -> Schema {
    Schema::new(
        (0..3).map(|i| AttributeDef::new(format!("a{i}"), 0.0, 1.0).unwrap()).collect::<Vec<_>>(),
    )
    .unwrap()
}

fn teacher(x: &[f64]) -> Label {
    Label::from_bool(x.iter().sum::<f64>() > 1.5)
}

fn bootstrap_examples(n: usize, seed: u64) -> Vec<(Vec<f64>, Label)> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|_| {
            let x: Vec<f64> = (0..3).map(|_| rng.range_f64(0.0, 1.0)).collect();
            let label = teacher(&x);
            (x, label)
        })
        .collect()
}

/// A label near the `Σx = 1.5` decision boundary, where uncertainty
/// sampling concentrates — so incremental passes stay localized and the
/// dirty-shard path (not the full-pass path) is what gets measured.
fn boundary_example(rng: &mut Rng) -> (Vec<f64>, Label) {
    let mut x: Vec<f64> = (0..2).map(|_| rng.range_f64(0.2, 0.8)).collect();
    let last = (1.5 - x.iter().sum::<f64>() + rng.range_f64(-0.05, 0.05)).clamp(0.0, 1.0);
    x.push(last);
    let label = teacher(&x);
    (x, label)
}

/// Replays the fixed-seed session against a `shards`-way index plane:
/// warm-up full pass, then `iterations` boundary labels, each followed by
/// an incremental update and a cached top-θ selection (the timed step).
/// Returns the case (speedup unfilled) and the per-iteration selections.
fn session_case(
    grid: &Grid,
    shards: usize,
    bootstrap: usize,
    iterations: usize,
) -> (ShardCase, Vec<Vec<usize>>) {
    let measure = UncertaintyMeasure::LeastConfidence;
    let mut examples = bootstrap_examples(bootstrap, 23);
    let mut rng = Rng::new(29);

    let mut points = IndexPoints::from_grid_with_shards(grid, shards).unwrap();
    let model = EstimatorKind::Dwknn { k: 5 }.train(&examples).unwrap();
    points.update_incremental(model.as_ref(), measure, &[], 0.0, 0);

    let mut selections = Vec::with_capacity(iterations);
    let mut update_time = Duration::ZERO;
    let mut select_time = Duration::ZERO;
    for _ in 0..iterations {
        let (x, label) = boundary_example(&mut rng);
        examples.push((x.clone(), label));
        let model = EstimatorKind::Dwknn { k: 5 }.train(&examples).unwrap();
        let added: [&[f64]; 1] = [x.as_slice()];

        let start = Instant::now();
        // `full_every = 0`: never force a periodic full pass — the sweep
        // measures the steady-state dirty-shard update plus the cached
        // shard-merge selection.
        points.update_incremental(model.as_ref(), measure, &added, 0.0, 0);
        update_time += start.elapsed();

        let start = Instant::now();
        let top = points.ranked_top_cached(THETA).unwrap();
        select_time += start.elapsed();
        selections.push(top);
    }

    let case = ShardCase {
        cells: grid.num_cells(),
        shards: points.num_shards(),
        iterations,
        update_select_ns: (update_time + select_time).as_nanos() as u64,
        update_ns: update_time.as_nanos() as u64,
        select_ns: select_time.as_nanos() as u64,
        speedup_vs_single: 1.0,
        shards_touched: points.shards_touched(),
        shards_pruned: points.shards_pruned(),
        selections_match: true,
    };
    (case, selections)
}

/// Runs the (grid size × shard count) sweep: for each `cells_per_dim`,
/// a single-shard reference session then one session per entry of
/// `shard_counts`, bit-comparing every iteration's top-θ selection
/// against the reference.
pub fn run_shard_bench(
    cells_per_dim: &[usize],
    shard_counts: &[usize],
    bootstrap: usize,
    iterations: usize,
) -> ShardReport {
    let schema = schema3();
    let mut cases = Vec::new();
    for &cpd in cells_per_dim {
        let grid = Grid::new(&schema, cpd).unwrap();
        let (reference, ref_selections) = session_case(&grid, 1, bootstrap, iterations);
        let single_ns = reference.update_select_ns;
        cases.push(reference);
        for &shards in shard_counts {
            if shards == 1 {
                continue;
            }
            let (mut case, selections) = session_case(&grid, shards, bootstrap, iterations);
            case.selections_match = selections == ref_selections;
            case.speedup_vs_single = single_ns as f64 / (case.update_select_ns as f64).max(1.0);
            cases.push(case);
        }
    }
    ShardReport { threads: rayon::current_num_threads(), iterations, cases }
}

/// The default full-size run: 1k / ~16k / 125k-cell grids (`10³`, `25³`,
/// `50³`) at 1, 2, 4, and 8 shards, a 200-example bootstrap, 12 labeled
/// iterations per session.
pub fn full_shard_report() -> ShardReport {
    run_shard_bench(&[10, 25, 50], &[1, 2, 4, 8], 2500, 12)
}

/// A seconds-scale smoke run used by CI: `6³ = 216` and `10³ = 1000` cell
/// grids, 4 iterations. Panics if any sharded selection diverged from the
/// single-shard reference.
pub fn smoke_shard_report() -> ShardReport {
    let report = run_shard_bench(&[6, 10], &[1, 2, 4, 8], 60, 4);
    validate_shard(&report);
    report
}

/// Invariants every report must satisfy, smoke or full.
pub fn validate_shard(report: &ShardReport) {
    for case in &report.cases {
        assert!(
            case.selections_match,
            "{} cells / {} shards: top-θ selection diverged from the single-shard reference",
            case.cells, case.shards,
        );
        assert!(
            case.shards_touched >= case.shards as u64,
            "{} cells / {} shards: the warm-up full pass alone touches every shard \
             (counted {})",
            case.cells,
            case.shards,
            case.shards_touched,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_completes_and_matches_reference() {
        let report = smoke_shard_report();
        // Two grids × four shard counts.
        assert_eq!(report.cases.len(), 8);
        assert!(report.cases.iter().all(|c| c.selections_match));
        // Explicit shard counts are honored (216 and 1000 cells both stay
        // above 8 cells per shard, so no clamping).
        for &shards in &[1usize, 2, 4, 8] {
            assert!(report.cases.iter().any(|c| c.shards == shards));
        }
    }

    #[test]
    fn report_serializes() {
        let report = smoke_shard_report();
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"speedup_vs_single\""));
        assert!(json.contains("\"selections_match\""));
    }
}
