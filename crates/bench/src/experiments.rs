//! Experiment runners: one function per table/figure of the paper plus
//! the ablation sweeps.
//!
//! Every runner is deterministic given the scale's seed, averages over
//! `scale.runs` complete runs (paper: 10), and returns serializable
//! result structs; the `experiments` binary renders them as tables and
//! JSON. Both schemes are measured on the same generated target regions,
//! with the same simulated user, through the same modeled NVMe disk
//! (`IoProfile::nvme`, 3.4 GB/s, the paper's device).

use std::path::Path;

use serde::{Deserialize, Serialize};
use uei_explore::backend::{DbmsBackend, UeiBackend};
use uei_explore::oracle::Oracle;
use uei_explore::report::{average_traces, labels_to_reach, RunSummary};
use uei_explore::session::{ExplorationSession, SessionConfig, SessionResult};
use uei_explore::workload::{generate_target_region, RegionSize};
use uei_index::config::UeiConfig;
use uei_learn::strategy::UncertaintyMeasure;
use uei_learn::EstimatorKind;
use uei_storage::io::IoProfile;
use uei_types::{Result, Rng, Schema};

use crate::fixture::{ExperimentScale, Fixture};

/// Which storage scheme to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scheme {
    /// The Uncertainty Estimation Index (Algorithm 2).
    Uei,
    /// The MySQL-like baseline (Algorithm 1).
    Dbms,
}

impl Scheme {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Uei => "UEI",
            Scheme::Dbms => "MySQL-like",
        }
    }
}

/// Per-run variation knobs on top of a scale (used by the ablations).
#[derive(Debug, Clone, Default)]
pub struct Variation {
    /// Override the UEI grid resolution.
    pub cells_per_dim: Option<usize>,
    /// Override γ (UEI's uniform-sample size).
    pub gamma: Option<usize>,
    /// Override the estimator.
    pub estimator: Option<EstimatorKind>,
    /// Enable the background prefetcher with this σ (seconds).
    pub prefetch_sigma: Option<f64>,
    /// Override the retraining batch size B (Algorithm 1).
    pub batch_size: Option<usize>,
    /// Override how many loaded regions stay resident in `U`.
    pub regions_in_memory: Option<usize>,
    /// Replace uncertainty sampling with uniform random selection (the
    /// "is active learning worth it" baseline).
    pub random_strategy: bool,
}

/// Generates the per-run oracles for one region-size class: run `i` of
/// both schemes explores the same region.
pub fn oracles_for_runs(fixture: &Fixture, size: RegionSize, runs: usize) -> Result<Vec<Oracle>> {
    let discriminator = match size {
        RegionSize::Small => 1,
        RegionSize::Medium => 2,
        RegionSize::Large => 3,
    };
    let mut out = Vec::with_capacity(runs);
    for run in 0..runs {
        let mut rng = Rng::new(fixture.scale.seed ^ (discriminator << 32) ^ run as u64);
        let target = generate_target_region(&fixture.rows, &Schema::sdss(), size, &mut rng)?;
        out.push(Oracle::new(target));
    }
    Ok(out)
}

fn session_config(scale: &ExperimentScale, run: usize, variation: &Variation) -> SessionConfig {
    SessionConfig {
        estimator: variation.estimator.unwrap_or(EstimatorKind::Dwknn { k: 5 }),
        measure: UncertaintyMeasure::LeastConfidence,
        max_labels: scale.max_labels,
        batch_size: variation.batch_size.unwrap_or(1),
        bootstrap_size: scale.gamma.min(2_000),
        eval_sample: scale.eval_sample,
        eval_every: 1,
        seed: scale.seed ^ 0x5E55_1011 ^ ((run as u64) << 16),
    }
}

/// Runs one exploration session of `scheme` against `oracle`.
pub fn run_session(
    fixture: &Fixture,
    scheme: Scheme,
    oracle: &Oracle,
    run: usize,
    variation: &Variation,
) -> Result<SessionResult> {
    let scale = &fixture.scale;
    let config = session_config(scale, run, variation);
    match scheme {
        Scheme::Uei => {
            let (store, tracker) = fixture.open_store(IoProfile::nvme())?;
            let uei_config = UeiConfig {
                cells_per_dim: variation.cells_per_dim.unwrap_or(scale.cells_per_dim),
                chunk_cache_bytes: fixture.uei_cache_bytes(&store),
                latency_threshold_secs: variation.prefetch_sigma.unwrap_or(0.5),
                prefetch: variation.prefetch_sigma.is_some(),
                regions_in_memory: variation.regions_in_memory.unwrap_or(4),
                defer_swaps: false,
                parallel: true,
                ..UeiConfig::default()
            };
            let mut rng = Rng::new(config.seed ^ 0xBACC);
            let mut backend = UeiBackend::new(
                store,
                uei_config,
                config.measure,
                variation.gamma.unwrap_or(scale.gamma),
                &mut rng,
            )?;
            if variation.random_strategy {
                backend.use_random_strategy(config.seed ^ 0xA1EA);
            }
            ExplorationSession::new(&mut backend, oracle, config, tracker).run()
        }
        Scheme::Dbms => {
            let (table, pool, tracker) = fixture.open_table(IoProfile::nvme())?;
            let mut backend = DbmsBackend::with_pool(table, pool, config.measure);
            ExplorationSession::new(&mut backend, oracle, config, tracker).run()
        }
    }
}

/// Runs all of one scheme's sessions for a region size and averages them.
pub fn run_scheme(
    fixture: &Fixture,
    scheme: Scheme,
    size: RegionSize,
    variation: &Variation,
) -> Result<RunSummary> {
    let oracles = oracles_for_runs(fixture, size, fixture.scale.runs)?;
    let mut results = Vec::with_capacity(oracles.len());
    for (run, oracle) in oracles.iter().enumerate() {
        results.push(run_session(fixture, scheme, oracle, run, variation)?);
    }
    Ok(average_traces(&results))
}

// ---------------------------------------------------------------------------
// Figures 3–5: accuracy vs number of labeled examples
// ---------------------------------------------------------------------------

/// The result of one accuracy figure (3, 4, or 5).
#[derive(Debug, Serialize, Deserialize)]
pub struct AccuracyFigure {
    /// Which figure ("fig3".."fig5").
    pub figure: String,
    /// Region-size class.
    pub region_size: String,
    /// Achieved region cardinality fraction, averaged over runs.
    pub region_fraction_mean: f64,
    /// UEI scheme series.
    pub uei: RunSummary,
    /// DBMS scheme series.
    pub dbms: RunSummary,
    /// Labels each scheme needed to first reach F ≥ 0.8 (the regime where
    /// the paper reports UEI pulling ahead).
    pub uei_labels_to_f80: Option<usize>,
    /// Same for the baseline.
    pub dbms_labels_to_f80: Option<usize>,
}

/// Regenerates Figure 3 (small), 4 (medium), or 5 (large).
pub fn fig_accuracy(fixture: &Fixture, size: RegionSize) -> Result<AccuracyFigure> {
    let figure = match size {
        RegionSize::Small => "fig3",
        RegionSize::Medium => "fig4",
        RegionSize::Large => "fig5",
    };
    let oracles = oracles_for_runs(fixture, size, fixture.scale.runs)?;
    let fraction_mean =
        oracles.iter().map(|o| o.target().fraction).sum::<f64>() / oracles.len() as f64;
    let uei = run_scheme(fixture, Scheme::Uei, size, &Variation::default())?;
    let dbms = run_scheme(fixture, Scheme::Dbms, size, &Variation::default())?;
    Ok(AccuracyFigure {
        figure: figure.to_string(),
        region_size: size.name().to_string(),
        region_fraction_mean: fraction_mean,
        uei_labels_to_f80: labels_to_reach(&uei, 0.8),
        dbms_labels_to_f80: labels_to_reach(&dbms, 0.8),
        uei,
        dbms,
    })
}

// ---------------------------------------------------------------------------
// Figure 6: response time
// ---------------------------------------------------------------------------

/// One bar of Figure 6.
#[derive(Debug, Serialize, Deserialize)]
pub struct ResponseTimeRow {
    /// Scheme name.
    pub scheme: String,
    /// Region-size class.
    pub region_size: String,
    /// Mean per-iteration modeled response time (ms).
    pub mean_response_ms: f64,
    /// 95th-percentile modeled response time (ms).
    pub p95_response_ms: f64,
    /// Mean bytes read per iteration.
    pub mean_bytes_per_iteration: f64,
    /// Whether the mean is under the 500 ms interactivity bound.
    pub sub_500ms: bool,
}

/// The full Figure 6 result.
#[derive(Debug, Serialize, Deserialize)]
pub struct ResponseTimeFigure {
    /// One row per (scheme, region size).
    pub rows: Vec<ResponseTimeRow>,
    /// Mean speedup of UEI over the baseline across region sizes.
    pub speedup: f64,
    /// Logical dataset bytes over memory budget (the "N× larger than
    /// memory" of the paper's claim).
    pub data_over_memory: f64,
}

/// Regenerates Figure 6: per-iteration response time of both schemes for
/// all three region sizes.
pub fn fig6_response_time(fixture: &Fixture) -> Result<ResponseTimeFigure> {
    let mut rows = Vec::new();
    let mut uei_means = Vec::new();
    let mut dbms_means = Vec::new();
    for size in RegionSize::all() {
        for scheme in [Scheme::Uei, Scheme::Dbms] {
            let summary = run_scheme(fixture, scheme, size, &Variation::default())?;
            let mean = summary.overall_response_virtual_ms;
            let bytes = summary.series.iter().map(|p| p.bytes_read_mean).sum::<f64>()
                / summary.series.len().max(1) as f64;
            match scheme {
                Scheme::Uei => uei_means.push(mean),
                Scheme::Dbms => dbms_means.push(mean),
            }
            rows.push(ResponseTimeRow {
                scheme: scheme.name().to_string(),
                region_size: size.name().to_string(),
                mean_response_ms: mean,
                p95_response_ms: summary.p95_response_virtual_ms,
                mean_bytes_per_iteration: bytes,
                sub_500ms: mean < 500.0,
            });
        }
    }
    let speedup = mean_of(&dbms_means) / mean_of(&uei_means).max(1e-9);

    // Data-to-memory ratio from the DBMS side (logical table vs pool).
    let (table, pool, _) = fixture.open_table(IoProfile::nvme())?;
    let pool_bytes = (pool.capacity() * uei_dbms::page::PAGE_SIZE) as f64;
    let data_over_memory = table.logical_size_bytes() as f64 / pool_bytes;

    Ok(ResponseTimeFigure { rows, speedup, data_over_memory })
}

fn mean_of(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

// ---------------------------------------------------------------------------
// §3.3 complexity: O(kn) vs O(ke)
// ---------------------------------------------------------------------------

/// Measured per-iteration work of each scheme.
#[derive(Debug, Serialize, Deserialize)]
pub struct ComplexityReport {
    /// Dataset rows `n`.
    pub n: u64,
    /// Mean tuples examined per DBMS iteration (should be ≈ n).
    pub dbms_examined_mean: f64,
    /// Mean bytes per DBMS iteration.
    pub dbms_bytes_mean: f64,
    /// Mean region rows per UEI iteration (the `e` of O(ke)).
    pub uei_region_rows_mean: f64,
    /// Mean bytes per UEI iteration.
    pub uei_bytes_mean: f64,
    /// Ratio n / e.
    pub n_over_e: f64,
    /// Ratio of bytes (DBMS / UEI).
    pub byte_ratio: f64,
}

/// Verifies the paper's complexity claim by direct accounting.
pub fn complexity(fixture: &Fixture) -> Result<ComplexityReport> {
    let size = RegionSize::Medium;
    let uei = run_scheme(fixture, Scheme::Uei, size, &Variation::default())?;
    let dbms = run_scheme(fixture, Scheme::Dbms, size, &Variation::default())?;

    // Re-run one session of each to pull the raw per-iteration fields.
    let oracles = oracles_for_runs(fixture, size, 1)?;
    let uei_run = run_session(fixture, Scheme::Uei, &oracles[0], 0, &Variation::default())?;
    let dbms_run = run_session(fixture, Scheme::Dbms, &oracles[0], 0, &Variation::default())?;

    let uei_rows: Vec<f64> =
        uei_run.traces.iter().filter_map(|t| t.region_rows.map(|r| r as f64)).collect();
    let dbms_examined: Vec<f64> =
        dbms_run.traces.iter().filter_map(|t| t.examined.map(|e| e as f64)).collect();

    let uei_bytes =
        uei.series.iter().map(|p| p.bytes_read_mean).sum::<f64>() / uei.series.len().max(1) as f64;
    let dbms_bytes = dbms.series.iter().map(|p| p.bytes_read_mean).sum::<f64>()
        / dbms.series.len().max(1) as f64;

    let e = mean_of(&uei_rows);
    let n = fixture.scale.rows as f64;
    Ok(ComplexityReport {
        n: fixture.scale.rows as u64,
        dbms_examined_mean: mean_of(&dbms_examined),
        dbms_bytes_mean: dbms_bytes,
        uei_region_rows_mean: e,
        uei_bytes_mean: uei_bytes,
        n_over_e: n / e.max(1.0),
        byte_ratio: dbms_bytes / uei_bytes.max(1.0),
    })
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// Renders Table 1 (the experiment parameters) for a scale.
pub fn table1(scale: &ExperimentScale) -> Vec<(String, String)> {
    vec![
        ("Number of runs per result".into(), scale.runs.to_string()),
        ("Number of dimensions (D)".into(), "5".into()),
        ("Number of relevant regions".into(), "1".into()),
        ("Cardinality of relevant regions".into(), "0.1% (S), 0.4% (M), 0.8% (L)".into()),
        ("Uncertainty Estimator".into(), "DWKNN [Gou et al. 2012]".into()),
        ("Label Type".into(), "Binary".into()),
        ("Data Storage Engine".into(), "UEI, MySQL-like row store".into()),
        (
            "Size of Individual Data Chunk".into(),
            format!("{} KB (paper: 470 KB at 40 GB scale)", scale.chunk_target_bytes / 1024),
        ),
        ("Number of Symbolic Index Points".into(), format!("{}", scale.cells_per_dim.pow(5))),
        ("Latency Threshold".into(), "500ms".into()),
        ("Performance Measurement".into(), "F-Measure (Accuracy)".into()),
        ("Dataset rows (paper: 10^7)".into(), scale.rows.to_string()),
        ("Memory budget".into(), format!("{:.1}% of dataset", scale.memory_fraction * 100.0)),
    ]
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

/// One point of a one-dimensional ablation sweep.
#[derive(Debug, Serialize, Deserialize)]
pub struct AblationPoint {
    /// The swept parameter's value, as text.
    pub value: String,
    /// Mean response time (ms, modeled).
    pub mean_response_ms: f64,
    /// Final F-measure (mean over runs).
    pub final_f_measure: f64,
    /// Mean bytes read per iteration.
    pub bytes_per_iteration: f64,
}

/// A complete ablation sweep.
#[derive(Debug, Serialize, Deserialize)]
pub struct Ablation {
    /// What was swept.
    pub parameter: String,
    /// The sweep, in input order.
    pub points: Vec<AblationPoint>,
}

fn summarize_variation(
    fixture: &Fixture,
    variation: &Variation,
    value: String,
) -> Result<AblationPoint> {
    let summary = run_scheme(fixture, Scheme::Uei, RegionSize::Medium, variation)?;
    let bytes = summary.series.iter().map(|p| p.bytes_read_mean).sum::<f64>()
        / summary.series.len().max(1) as f64;
    Ok(AblationPoint {
        value,
        mean_response_ms: summary.overall_response_virtual_ms,
        final_f_measure: summary.final_f_measure_mean,
        bytes_per_iteration: bytes,
    })
}

/// Sweep the grid resolution (number of symbolic index points).
pub fn ablation_grid(fixture: &Fixture, cells: &[usize]) -> Result<Ablation> {
    let mut points = Vec::new();
    for &c in cells {
        let variation = Variation { cells_per_dim: Some(c), ..Variation::default() };
        points.push(summarize_variation(fixture, &variation, format!("{c}^5={}", c.pow(5)))?);
    }
    Ok(Ablation { parameter: "symbolic index points".into(), points })
}

/// Sweep γ, the uniform-sample size of the in-memory cache `U`.
pub fn ablation_gamma(fixture: &Fixture, gammas: &[usize]) -> Result<Ablation> {
    let mut points = Vec::new();
    for &g in gammas {
        let variation = Variation { gamma: Some(g), ..Variation::default() };
        points.push(summarize_variation(fixture, &variation, g.to_string())?);
    }
    Ok(Ablation { parameter: "uniform sample size γ".into(), points })
}

/// Swap the uncertainty estimator (DWKNN vs alternatives).
pub fn ablation_estimator(fixture: &Fixture) -> Result<Ablation> {
    let kinds = [
        EstimatorKind::Dwknn { k: 5 },
        EstimatorKind::Knn { k: 5 },
        EstimatorKind::NaiveBayes,
        EstimatorKind::LinearSvm { epochs: 30, lambda: 1e-3 },
    ];
    let mut points = Vec::new();
    for kind in kinds {
        let variation = Variation { estimator: Some(kind), ..Variation::default() };
        points.push(summarize_variation(fixture, &variation, kind.name().to_string())?);
    }
    Ok(Ablation { parameter: "uncertainty estimator".into(), points })
}

/// Uncertainty sampling vs uniform random selection over the same UEI
/// storage: quantifies what active learning itself buys (paper §2.1's
/// motivation for uncertainty sampling).
pub fn ablation_strategy(fixture: &Fixture) -> Result<Ablation> {
    let mut points = Vec::new();
    points.push(summarize_variation(fixture, &Variation::default(), "uncertainty".into())?);
    let random = Variation { random_strategy: true, ..Variation::default() };
    points.push(summarize_variation(fixture, &random, "random".into())?);
    Ok(Ablation { parameter: "query strategy".into(), points })
}

/// Sweep how many loaded regions stay resident in the unlabeled cache
/// (the paper's default is 1; this quantifies the memory/recall trade).
pub fn ablation_regions(fixture: &Fixture, counts: &[usize]) -> Result<Ablation> {
    let mut points = Vec::new();
    for &k in counts {
        let variation = Variation { regions_in_memory: Some(k), ..Variation::default() };
        points.push(summarize_variation(fixture, &variation, format!("{k} regions"))?);
    }
    Ok(Ablation { parameter: "regions resident in U".into(), points })
}

/// Sweep the retraining batch size B (Algorithm 1's effectiveness /
/// efficiency trade-off).
pub fn ablation_batch(fixture: &Fixture, batches: &[usize]) -> Result<Ablation> {
    let mut points = Vec::new();
    for &b in batches {
        let variation = Variation { batch_size: Some(b), ..Variation::default() };
        points.push(summarize_variation(fixture, &variation, format!("B={b}"))?);
    }
    Ok(Ablation { parameter: "retraining batch size B".into(), points })
}

/// Prefetch on/off at several latency thresholds σ.
pub fn ablation_prefetch(fixture: &Fixture, sigmas: &[f64]) -> Result<Ablation> {
    let mut points = Vec::new();
    points.push(summarize_variation(fixture, &Variation::default(), "off".into())?);
    for &sigma in sigmas {
        let variation = Variation { prefetch_sigma: Some(sigma), ..Variation::default() };
        points.push(summarize_variation(fixture, &variation, format!("σ={sigma}s"))?);
    }
    Ok(Ablation { parameter: "prefetch latency threshold σ".into(), points })
}

/// Sweep the chunk size — needs its own stores, so it takes the fixture
/// root rather than a built fixture.
pub fn ablation_chunk_size(
    root: &Path,
    base: &ExperimentScale,
    chunk_sizes: &[usize],
) -> Result<Ablation> {
    let mut points = Vec::new();
    for &cb in chunk_sizes {
        let mut scale = base.clone();
        scale.chunk_target_bytes = cb;
        let fixture = Fixture::build(root, scale)?;
        points.push(summarize_variation(
            &fixture,
            &Variation::default(),
            format!("{} KB", cb / 1024),
        )?);
    }
    Ok(Ablation { parameter: "chunk size".into(), points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "uei-exp-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale {
            rows: 4_000,
            runs: 2,
            max_labels: 15,
            gamma: 300,
            eval_sample: 400,
            chunk_target_bytes: 8 * 1024,
            cells_per_dim: 3,
            memory_fraction: 0.01,
            row_pad_bytes: 4048,
            seed: 77,
        }
    }

    #[test]
    fn oracles_are_shared_between_schemes_and_deterministic() {
        let root = temp_root("oracles");
        let fixture = Fixture::build(&root, tiny_scale()).unwrap();
        let a = oracles_for_runs(&fixture, RegionSize::Medium, 2).unwrap();
        let b = oracles_for_runs(&fixture, RegionSize::Medium, 2).unwrap();
        assert_eq!(a[0].relevant_ids(), b[0].relevant_ids());
        assert_ne!(a[0].relevant_ids(), a[1].relevant_ids(), "runs differ");
        let small = oracles_for_runs(&fixture, RegionSize::Small, 1).unwrap();
        assert!(small[0].num_relevant() < a[0].num_relevant());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn response_time_figure_shape() {
        // The headline claim at miniature scale: UEI beats the baseline by
        // a large factor and stays sub-500 ms.
        let root = temp_root("fig6");
        let fixture = Fixture::build(&root, tiny_scale()).unwrap();
        let fig = fig6_response_time(&fixture).unwrap();
        assert_eq!(fig.rows.len(), 6);
        assert!(fig.speedup > 5.0, "speedup {}", fig.speedup);
        for row in &fig.rows {
            if row.scheme == "UEI" {
                assert!(row.sub_500ms, "UEI {} ms", row.mean_response_ms);
            }
        }
        // Response time is flat in region size for both schemes (paper:
        // "the response time remains the same across all three target
        // interest regions sizes").
        let uei: Vec<f64> =
            fig.rows.iter().filter(|r| r.scheme == "UEI").map(|r| r.mean_response_ms).collect();
        let spread = (uei.iter().cloned().fold(f64::MIN, f64::max)
            - uei.iter().cloned().fold(f64::MAX, f64::min))
            / mean_of(&uei).max(1e-9);
        assert!(spread < 3.0, "UEI response should not scale with region size: {uei:?}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn complexity_report_shows_e_much_less_than_n() {
        let root = temp_root("complexity");
        let fixture = Fixture::build(&root, tiny_scale()).unwrap();
        let report = complexity(&fixture).unwrap();
        assert_eq!(report.n, 4000);
        assert!(
            report.dbms_examined_mean >= report.n as f64 * 0.99,
            "baseline examines ~n per iteration"
        );
        assert!(report.n_over_e > 2.0, "n/e = {}", report.n_over_e);
        assert!(report.byte_ratio > 5.0, "byte ratio {}", report.byte_ratio);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn table1_lists_paper_parameters() {
        let rows = table1(&ExperimentScale::accuracy());
        let find =
            |k: &str| rows.iter().find(|(key, _)| key.contains(k)).map(|(_, v)| v.clone()).unwrap();
        assert_eq!(find("Symbolic Index Points"), "3125");
        assert_eq!(find("Latency"), "500ms");
        assert!(find("Cardinality").contains("0.1%"));
        assert_eq!(find("runs per result"), "10");
    }

    #[test]
    fn accuracy_figure_runs_end_to_end() {
        let root = temp_root("figacc");
        let mut scale = tiny_scale();
        scale.runs = 2;
        scale.max_labels = 12;
        let fixture = Fixture::build(&root, scale).unwrap();
        let fig = fig_accuracy(&fixture, RegionSize::Large).unwrap();
        assert_eq!(fig.figure, "fig5");
        assert_eq!(fig.uei.runs, 2);
        assert_eq!(fig.dbms.runs, 2);
        assert!(!fig.uei.series.is_empty());
        assert!(fig.region_fraction_mean > 0.0);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn ablation_grid_runs() {
        let root = temp_root("ablgrid");
        let fixture = Fixture::build(&root, tiny_scale()).unwrap();
        let ab = ablation_grid(&fixture, &[2, 4]).unwrap();
        assert_eq!(ab.points.len(), 2);
        assert!(ab.points.iter().all(|p| p.final_f_measure >= 0.0));
        std::fs::remove_dir_all(&root).unwrap();
    }
}
