//! Bounds-checked binary codecs.
//!
//! The storage engines persist chunk files and pages in a simple
//! little-endian format built from these primitives. Reads are
//! bounds-checked and return [`UeiError::Corrupt`] on truncation, so a
//! damaged file surfaces as a typed error rather than a panic.
//!
//! Posting lists additionally use LEB128 varints with delta encoding
//! (row ids are appended in ascending order), which is what makes the
//! paper's `<key, {values}>` inverted layout compact on disk.

use crate::error::{Result, UeiError};

/// A cursor over an immutable byte buffer with bounds-checked reads.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current read offset.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor is at the end of the buffer.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(UeiError::corrupt(format!(
                "truncated buffer: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a little-endian IEEE-754 `f64`.
    pub fn read_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads `n` raw bytes.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads an LEB128-encoded unsigned varint (at most 10 bytes).
    pub fn read_varint(&mut self) -> Result<u64> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8()?;
            if shift == 63 && byte > 1 {
                return Err(UeiError::corrupt("varint overflows u64"));
            }
            result |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
            if shift > 63 {
                return Err(UeiError::corrupt("varint longer than 10 bytes"));
            }
        }
    }
}

/// An append-only byte buffer writer mirroring [`Reader`].
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Creates a writer with a preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer { buf: Vec::with_capacity(cap) }
    }

    /// Number of bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian IEEE-754 `f64`.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Appends raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends an LEB128-encoded unsigned varint.
    pub fn write_varint(&mut self, mut v: u64) {
        loop {
            let mut byte = (v & 0x7F) as u8;
            v >>= 7;
            if v != 0 {
                byte |= 0x80;
            }
            self.buf.push(byte);
            if v == 0 {
                return;
            }
        }
    }

    /// Overwrites 4 bytes at `offset` with a little-endian `u32`; used for
    /// back-patching length prefixes. Panics if the offset is out of range
    /// (always a local programming error, never data-dependent).
    pub fn patch_u32(&mut self, offset: usize, v: u32) {
        self.buf[offset..offset + 4].copy_from_slice(&v.to_le_bytes());
    }
}

/// Delta-encodes a strictly ascending sequence of row ids as varints.
///
/// Returns an error if the sequence is not strictly ascending — the storage
/// writer sorts posting lists before encoding, so a violation indicates a
/// bug or corruption upstream.
pub fn encode_ascending_ids(w: &mut Writer, ids: &[u64]) -> Result<()> {
    w.write_varint(ids.len() as u64);
    let mut prev: Option<u64> = None;
    for &id in ids {
        match prev {
            None => w.write_varint(id),
            Some(p) => {
                if id <= p {
                    return Err(UeiError::corrupt(format!(
                        "posting list not strictly ascending: {id} after {p}"
                    )));
                }
                w.write_varint(id - p);
            }
        }
        prev = Some(id);
    }
    Ok(())
}

/// Decodes a delta-encoded ascending id sequence written by
/// [`encode_ascending_ids`].
pub fn decode_ascending_ids(r: &mut Reader<'_>) -> Result<Vec<u64>> {
    let n = r.read_varint()? as usize;
    // Guard against a corrupt length causing a huge allocation: cap the
    // preallocation by what the remaining bytes could possibly encode
    // (1 byte per id minimum).
    let mut ids = Vec::with_capacity(n.min(r.remaining()));
    let mut prev: Option<u64> = None;
    for _ in 0..n {
        let delta = r.read_varint()?;
        let id = match prev {
            None => delta,
            Some(p) => {
                p.checked_add(delta).ok_or_else(|| UeiError::corrupt("posting id overflow"))?
            }
        };
        if let Some(p) = prev {
            if id <= p {
                return Err(UeiError::corrupt("decoded posting list not ascending"));
            }
        }
        ids.push(id);
        prev = Some(id);
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        let mut w = Writer::new();
        w.write_u8(0xAB);
        w.write_u16(0xBEEF);
        w.write_u32(0xDEAD_BEEF);
        w.write_u64(0x0123_4567_89AB_CDEF);
        w.write_f64(-1234.5678);
        w.write_bytes(b"hello");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 0xAB);
        assert_eq!(r.read_u16().unwrap(), 0xBEEF);
        assert_eq!(r.read_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.read_f64().unwrap(), -1234.5678);
        assert_eq!(r.read_bytes(5).unwrap(), b"hello");
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_error() {
        let bytes = [1u8, 2, 3];
        let mut r = Reader::new(&bytes);
        assert!(r.read_u32().is_err());
        // Cursor must not advance past the failed read's start.
        assert_eq!(r.position(), 0);
        assert_eq!(r.read_u8().unwrap(), 1);
    }

    #[test]
    fn f64_nan_and_special_values_round_trip_bits() {
        for v in [f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0, f64::MIN_POSITIVE] {
            let mut w = Writer::new();
            w.write_f64(v);
            let bytes = w.into_bytes();
            let got = Reader::new(&bytes).read_f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
        let mut w = Writer::new();
        w.write_f64(f64::NAN);
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).read_f64().unwrap().is_nan());
    }

    #[test]
    fn varint_round_trips_boundaries() {
        let values = [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX - 1, u64::MAX];
        let mut w = Writer::new();
        for &v in &values {
            w.write_varint(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for &v in &values {
            assert_eq!(r.read_varint().unwrap(), v);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn varint_rejects_overlong_and_overflow() {
        // 11 continuation bytes: longer than any valid u64 varint.
        let overlong = [0x80u8; 11];
        assert!(Reader::new(&overlong).read_varint().is_err());
        // 10 bytes whose top bits overflow u64.
        let overflow = [0xFFu8, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert!(Reader::new(&overflow).read_varint().is_err());
    }

    #[test]
    fn ascending_ids_round_trip() {
        let ids = vec![0u64, 1, 2, 100, 101, 1_000_000, u64::MAX];
        let mut w = Writer::new();
        encode_ascending_ids(&mut w, &ids).unwrap();
        let bytes = w.into_bytes();
        let got = decode_ascending_ids(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(got, ids);
    }

    #[test]
    fn ascending_ids_empty() {
        let mut w = Writer::new();
        encode_ascending_ids(&mut w, &[]).unwrap();
        let bytes = w.into_bytes();
        assert_eq!(decode_ascending_ids(&mut Reader::new(&bytes)).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn ascending_ids_rejects_non_ascending() {
        let mut w = Writer::new();
        assert!(encode_ascending_ids(&mut w, &[3, 3]).is_err());
        let mut w = Writer::new();
        assert!(encode_ascending_ids(&mut w, &[3, 1]).is_err());
    }

    #[test]
    fn decode_rejects_truncated_list() {
        let ids = vec![5u64, 10, 20];
        let mut w = Writer::new();
        encode_ascending_ids(&mut w, &ids).unwrap();
        let bytes = w.into_bytes();
        let truncated = &bytes[..bytes.len() - 1];
        assert!(decode_ascending_ids(&mut Reader::new(truncated)).is_err());
    }

    #[test]
    fn patch_u32_back_patches_length() {
        let mut w = Writer::new();
        w.write_u32(0); // placeholder
        w.write_bytes(b"abcdef");
        let len = (w.len() - 4) as u32;
        w.patch_u32(0, len);
        let bytes = w.into_bytes();
        assert_eq!(Reader::new(&bytes).read_u32().unwrap(), 6);
    }
}
