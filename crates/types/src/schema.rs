//! Dataset schema metadata.
//!
//! Exploration operates over a fixed set of numeric attributes (the paper
//! uses five columns of SDSS `PhotoObjAll`: `rowc`, `colc`, `ra`, `dec`,
//! `field`). The schema records attribute names and their value domains;
//! the domains define the overall data space that the UEI grid partitions.

use serde::{Deserialize, Serialize};

use crate::error::{Result, UeiError};
use crate::region::Region;

/// One numeric attribute of the exploration dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeDef {
    /// Attribute name (unique within a schema).
    pub name: String,
    /// Smallest value in the domain.
    pub min: f64,
    /// Largest value in the domain (inclusive).
    pub max: f64,
}

impl AttributeDef {
    /// Creates an attribute definition; `min` must not exceed `max`.
    pub fn new(name: impl Into<String>, min: f64, max: f64) -> Result<Self> {
        if !(min <= max) {
            return Err(UeiError::invalid_config(format!(
                "attribute domain inverted: min={min} max={max}"
            )));
        }
        Ok(AttributeDef { name: name.into(), min, max })
    }

    /// Width of the value domain.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max - self.min
    }
}

/// An ordered collection of numeric attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<AttributeDef>,
}

impl Schema {
    /// Creates a schema from attribute definitions.
    ///
    /// Names must be unique and the schema non-empty.
    pub fn new(attributes: Vec<AttributeDef>) -> Result<Self> {
        if attributes.is_empty() {
            return Err(UeiError::invalid_config("schema must have at least one attribute"));
        }
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|b| b.name == a.name) {
                return Err(UeiError::invalid_config(format!(
                    "duplicate attribute name: {}",
                    a.name
                )));
            }
        }
        Ok(Schema { attributes })
    }

    /// The five-attribute SDSS `PhotoObjAll` schema used throughout the
    /// paper's evaluation (§4.1), with domains matching the synthetic
    /// generator in `uei-explore`.
    pub fn sdss() -> Self {
        Schema::new(vec![
            AttributeDef::new("rowc", 0.0, 2048.0).expect("static"),
            AttributeDef::new("colc", 0.0, 2048.0).expect("static"),
            AttributeDef::new("ra", 0.0, 360.0).expect("static"),
            AttributeDef::new("dec", -90.0, 90.0).expect("static"),
            AttributeDef::new("field", 0.0, 1000.0).expect("static"),
        ])
        .expect("static schema is valid")
    }

    /// Number of attributes (the dimensionality `d` of the data space).
    #[inline]
    pub fn dims(&self) -> usize {
        self.attributes.len()
    }

    /// The attributes in order.
    #[inline]
    pub fn attributes(&self) -> &[AttributeDef] {
        &self.attributes
    }

    /// The attribute at position `idx`.
    pub fn attribute(&self, idx: usize) -> Result<&AttributeDef> {
        self.attributes
            .get(idx)
            .ok_or_else(|| UeiError::not_found(format!("attribute index {idx}")))
    }

    /// Position of the attribute named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| UeiError::not_found(format!("attribute '{name}'")))
    }

    /// The full data space `D` as a closed region spanning every domain.
    pub fn data_space(&self) -> Region {
        let lo = self.attributes.iter().map(|a| a.min).collect();
        let hi = self.attributes.iter().map(|a| a.max).collect();
        Region::closed(lo, hi).expect("schema domains are validated")
    }

    /// Checks that `values` matches the schema's dimensionality.
    pub fn check_dims(&self, values: &[f64]) -> Result<()> {
        if values.len() != self.dims() {
            return Err(UeiError::DimensionMismatch {
                expected: self.dims(),
                actual: values.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdss_schema_shape() {
        let s = Schema::sdss();
        assert_eq!(s.dims(), 5);
        assert_eq!(s.attribute(0).unwrap().name, "rowc");
        assert_eq!(s.index_of("dec").unwrap(), 3);
        assert!(s.index_of("nope").is_err());
        assert!(s.attribute(5).is_err());
    }

    #[test]
    fn rejects_duplicates_and_empty() {
        let a = AttributeDef::new("x", 0.0, 1.0).unwrap();
        assert!(Schema::new(vec![]).is_err());
        assert!(Schema::new(vec![a.clone(), a]).is_err());
    }

    #[test]
    fn rejects_inverted_domain() {
        assert!(AttributeDef::new("x", 1.0, 0.0).is_err());
        assert!(AttributeDef::new("x", 1.0, 1.0).is_ok());
    }

    #[test]
    fn data_space_spans_domains() {
        let s = Schema::sdss();
        let space = s.data_space();
        assert_eq!(space.dims(), 5);
        assert!(space.contains(&[1024.0, 0.0, 360.0, -90.0, 500.0]).unwrap());
        assert!(!space.contains(&[-1.0, 0.0, 0.0, 0.0, 0.0]).unwrap());
    }

    #[test]
    fn check_dims() {
        let s = Schema::sdss();
        assert!(s.check_dims(&[0.0; 5]).is_ok());
        assert!(s.check_dims(&[0.0; 4]).is_err());
    }

    #[test]
    fn attribute_width() {
        assert_eq!(AttributeDef::new("dec", -90.0, 90.0).unwrap().width(), 180.0);
    }
}
