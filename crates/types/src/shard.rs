//! Shard identifiers for partitioned index planes.
//!
//! The index-point plane partitions its grid cells into contiguous-range
//! shards so that rescoring and top-θ selection can run shard-parallel
//! (see `uei-index`'s `shard` module for the layout itself). The id type
//! lives here, next to [`crate::RowId`], because traces and benches in
//! higher crates name shards without depending on the index crate.

use serde::{Deserialize, Serialize};

/// Identifier of one contiguous cell-range shard of the index-point plane.
///
/// Shard ids are dense (`0..num_shards`) and index directly into the
/// per-shard state arrays of the owning shard layout.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ShardId(pub u32);

impl ShardId {
    /// The raw id as an index into dense per-shard arrays.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for ShardId {
    fn from(v: usize) -> Self {
        ShardId(u32::try_from(v).expect("shard counts fit in u32"))
    }
}

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_id_round_trips() {
        let s = ShardId::from(7usize);
        assert_eq!(s.as_usize(), 7);
        assert_eq!(s.to_string(), "shard#7");
        assert!(ShardId(1) < ShardId(2));
    }
}
