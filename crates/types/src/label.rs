//! Binary relevance labels.
//!
//! The paper's exploration tasks are binary: the simulated user marks each
//! presented object *relevant* ([`Label::Positive`]) or *irrelevant*
//! ([`Label::Negative`]).

use serde::{Deserialize, Serialize};

/// A binary relevance label assigned by the (simulated) user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// The object is relevant to the user's interest region.
    Positive,
    /// The object is irrelevant.
    Negative,
}

impl Label {
    /// Returns `true` for [`Label::Positive`].
    #[inline]
    pub fn is_positive(self) -> bool {
        matches!(self, Label::Positive)
    }

    /// Returns the label as the conventional `{0, 1}` encoding used in
    /// Algorithm 1 of the paper (`1` = positive).
    #[inline]
    pub fn as_u8(self) -> u8 {
        match self {
            Label::Positive => 1,
            Label::Negative => 0,
        }
    }

    /// Returns the label as a `±1.0` target, the encoding used by the SVM
    /// trainer.
    #[inline]
    pub fn as_sign(self) -> f64 {
        match self {
            Label::Positive => 1.0,
            Label::Negative => -1.0,
        }
    }

    /// Builds a label from a boolean relevance flag.
    #[inline]
    pub fn from_bool(relevant: bool) -> Self {
        if relevant {
            Label::Positive
        } else {
            Label::Negative
        }
    }

    /// The opposite label.
    #[inline]
    pub fn flipped(self) -> Self {
        match self {
            Label::Positive => Label::Negative,
            Label::Negative => Label::Positive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodings_are_consistent() {
        assert_eq!(Label::Positive.as_u8(), 1);
        assert_eq!(Label::Negative.as_u8(), 0);
        assert_eq!(Label::Positive.as_sign(), 1.0);
        assert_eq!(Label::Negative.as_sign(), -1.0);
    }

    #[test]
    fn from_bool_round_trips() {
        assert_eq!(Label::from_bool(true), Label::Positive);
        assert_eq!(Label::from_bool(false), Label::Negative);
        assert!(Label::from_bool(true).is_positive());
        assert!(!Label::from_bool(false).is_positive());
    }

    #[test]
    fn flip_is_involutive() {
        for l in [Label::Positive, Label::Negative] {
            assert_eq!(l.flipped().flipped(), l);
            assert_ne!(l.flipped(), l);
        }
    }
}
