//! Data objects: row identifiers and d-dimensional numeric points.

use serde::{Deserialize, Serialize};

use crate::error::{Result, UeiError};

/// Stable identifier of a tuple in the exploration dataset.
///
/// Row ids are dense (`0..n`) in every storage engine in this workspace,
/// which lets the inverted index delta-encode posting lists and lets the
/// baseline row store compute page locations directly.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RowId(pub u64);

impl RowId {
    /// The raw numeric id.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The raw id as an index into dense in-memory arrays.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl From<u64> for RowId {
    fn from(v: u64) -> Self {
        RowId(v)
    }
}

impl std::fmt::Display for RowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A d-dimensional numeric tuple with its row identifier.
///
/// This is the unit the exploration loop operates on: the user labels
/// `DataPoint`s, the classifier scores them, and UEI loads them region by
/// region from secondary storage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataPoint {
    /// Stable row identifier.
    pub id: RowId,
    /// Attribute values, in schema order.
    pub values: Vec<f64>,
}

impl DataPoint {
    /// Creates a point from an id and its attribute values.
    pub fn new(id: impl Into<RowId>, values: Vec<f64>) -> Self {
        DataPoint { id: id.into(), values }
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.values.len()
    }

    /// Squared Euclidean distance to another point.
    ///
    /// Returns an error if the dimensionalities differ; distances across
    /// mismatched spaces are always a caller bug.
    pub fn squared_distance(&self, other: &DataPoint) -> Result<f64> {
        squared_distance(&self.values, &other.values)
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &DataPoint) -> Result<f64> {
        Ok(self.squared_distance(other)?.sqrt())
    }
}

/// Squared Euclidean distance between two coordinate slices.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(UeiError::DimensionMismatch { expected: a.len(), actual: b.len() });
    }
    Ok(squared_distance_unchecked(a, b))
}

/// [`squared_distance`] without the length check — the innermost kernel
/// shared by the scalar and blocked paths. Both inputs must have the same
/// length; accumulation runs in ascending dimension order, so every caller
/// (scalar query, kd-tree leaf scan, influence-ball check) produces
/// bit-identical sums for the same operand values.
#[inline]
fn squared_distance_unchecked(a: &[f64], b: &[f64]) -> f64 {
    // Manual loop rather than iterator zip/fold: this is the innermost hot
    // path of every kNN query and the optimizer vectorizes it reliably.
    let mut acc = 0.0;
    for i in 0..a.len().min(b.len()) {
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc
}

/// Squared Euclidean distances from `query` to every row of a flat
/// row-major block, appended to `out` (one value per row, in row order).
///
/// `rows` holds `rows.len() / dims` points of `dims` coordinates each —
/// the layout of [`PointMatrix`] and of kd-tree leaf buckets. The
/// dimension check happens once per call, not once per point, and the
/// inner loop is the same ascending-dimension accumulation as
/// [`squared_distance`], so each produced value is bit-identical to the
/// scalar call on the corresponding row.
///
/// Errors if `query.len() != dims` or `rows.len()` is not a multiple of
/// `dims`; `dims` must be nonzero unless `rows` is empty.
pub fn squared_distances_block(
    query: &[f64],
    rows: &[f64],
    dims: usize,
    out: &mut Vec<f64>,
) -> Result<()> {
    if query.len() != dims {
        return Err(UeiError::DimensionMismatch { expected: dims, actual: query.len() });
    }
    if rows.is_empty() {
        return Ok(());
    }
    if dims == 0 || !rows.len().is_multiple_of(dims) {
        return Err(UeiError::DimensionMismatch { expected: dims, actual: rows.len() });
    }
    out.reserve(rows.len() / dims);
    // Specialized low-dimension loops keep the trip count visible to the
    // vectorizer; the generic fall-through handles everything else.
    match dims {
        1 => {
            let q = query[0];
            for r in rows {
                let d = r - q;
                out.push(d * d);
            }
        }
        2 => {
            let (q0, q1) = (query[0], query[1]);
            for r in rows.chunks_exact(2) {
                let d0 = r[0] - q0;
                let d1 = r[1] - q1;
                out.push(d0 * d0 + d1 * d1);
            }
        }
        _ => {
            for r in rows.chunks_exact(dims) {
                out.push(squared_distance_unchecked(r, query));
            }
        }
    }
    Ok(())
}

/// A dense set of equal-dimensionality points in one contiguous row-major
/// allocation.
///
/// This is the storage layout of every kNN hot path in the workspace: the
/// kd-tree's point arena, the training points of the nearest-neighbour
/// classifiers, and the symbolic index-point centers. One flat `Vec<f64>`
/// replaces a `Vec<Vec<f64>>` — no per-point heap allocation, no pointer
/// chase per distance computation, and a whole block of rows can be swept
/// linearly by [`squared_distances_block`].
///
/// ```
/// use uei_types::point::PointMatrix;
///
/// let m = PointMatrix::from_rows(&[vec![0.0, 1.0], vec![2.0, 3.0]]).unwrap();
/// assert_eq!(m.len(), 2);
/// assert_eq!(m.dims(), 2);
/// assert_eq!(m.row(1), &[2.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PointMatrix {
    data: Vec<f64>,
    dims: usize,
}

impl PointMatrix {
    /// An empty matrix expecting `dims`-dimensional rows.
    pub fn new(dims: usize) -> PointMatrix {
        PointMatrix { data: Vec::new(), dims }
    }

    /// An empty matrix with room for `rows` rows preallocated.
    pub fn with_capacity(rows: usize, dims: usize) -> PointMatrix {
        PointMatrix { data: Vec::with_capacity(rows.saturating_mul(dims)), dims }
    }

    /// Builds a matrix from row slices, validating that every row has the
    /// first row's dimensionality. An empty input yields an empty matrix
    /// with `dims() == 0`.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Result<PointMatrix> {
        let dims = rows.first().map_or(0, |r| r.as_ref().len());
        if dims == 0 && !rows.is_empty() {
            return Err(UeiError::invalid_config("points need at least 1 dimension"));
        }
        let mut m = PointMatrix::with_capacity(rows.len(), dims);
        for row in rows {
            m.push_row(row.as_ref())?;
        }
        Ok(m)
    }

    /// Wraps an existing flat row-major buffer. Errors if the buffer does
    /// not hold a whole number of `dims`-dimensional rows.
    pub fn from_flat(data: Vec<f64>, dims: usize) -> Result<PointMatrix> {
        if data.is_empty() {
            return Ok(PointMatrix { data, dims });
        }
        if dims == 0 || !data.len().is_multiple_of(dims) {
            return Err(UeiError::DimensionMismatch { expected: dims, actual: data.len() });
        }
        Ok(PointMatrix { data, dims })
    }

    /// Appends one row; errors if its dimensionality differs.
    pub fn push_row(&mut self, row: &[f64]) -> Result<()> {
        if row.len() != self.dims {
            return Err(UeiError::DimensionMismatch { expected: self.dims, actual: row.len() });
        }
        self.data.extend_from_slice(row);
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dims).unwrap_or(0)
    }

    /// Whether the matrix holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The `i`-th row. Panics if out of bounds (like slice indexing).
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// The whole matrix as one flat row-major slice.
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Iterator over rows, in order.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        // `chunks_exact(0)` panics, so route the empty case through an
        // empty chunk iterator of width 1.
        self.data.chunks_exact(self.dims.max(1))
    }

    /// One `&[f64]` per row — the borrowed form the batch-scoring APIs
    /// (`predict_proba_batch`, `model_delta`) take.
    pub fn row_refs(&self) -> Vec<&[f64]> {
        self.rows().collect()
    }

    /// Whether any coordinate is NaN.
    pub fn has_nan(&self) -> bool {
        self.data.iter().any(|v| v.is_nan())
    }
}

/// Euclidean distance between two coordinate slices.
#[inline]
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> Result<f64> {
    Ok(squared_distance(a, b)?.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_id_conversions() {
        let id = RowId::from(42u64);
        assert_eq!(id.as_u64(), 42);
        assert_eq!(id.as_usize(), 42);
        assert_eq!(id.to_string(), "#42");
    }

    #[test]
    fn point_dims_and_distance() {
        let a = DataPoint::new(0u64, vec![0.0, 0.0, 0.0]);
        let b = DataPoint::new(1u64, vec![1.0, 2.0, 2.0]);
        assert_eq!(a.dims(), 3);
        assert_eq!(a.squared_distance(&b).unwrap(), 9.0);
        assert_eq!(a.distance(&b).unwrap(), 3.0);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = DataPoint::new(0u64, vec![1.5, -2.5]);
        let b = DataPoint::new(1u64, vec![-0.5, 4.0]);
        assert_eq!(a.distance(&b).unwrap(), b.distance(&a).unwrap());
        assert_eq!(a.distance(&a).unwrap(), 0.0);
    }

    #[test]
    fn mismatched_dims_error() {
        let a = DataPoint::new(0u64, vec![1.0]);
        let b = DataPoint::new(1u64, vec![1.0, 2.0]);
        match a.squared_distance(&b) {
            Err(UeiError::DimensionMismatch { expected: 1, actual: 2 }) => {}
            other => panic!("expected dimension mismatch, got {other:?}"),
        }
    }

    #[test]
    fn slice_distance_matches_point_distance() {
        let a = vec![3.0, 4.0];
        let b = vec![0.0, 0.0];
        assert_eq!(euclidean_distance(&a, &b).unwrap(), 5.0);
    }

    #[test]
    fn matrix_round_trips_rows() {
        let rows = vec![vec![0.0, 1.0], vec![2.0, 3.0], vec![4.0, 5.0]];
        let m = PointMatrix::from_rows(&rows).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.dims(), 2);
        assert!(!m.is_empty());
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(m.row(i), r.as_slice());
        }
        let back: Vec<&[f64]> = m.rows().collect();
        assert_eq!(back, m.row_refs());
        assert_eq!(m.as_flat(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(!m.has_nan());
    }

    #[test]
    fn matrix_validates_shapes() {
        assert!(PointMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(PointMatrix::from_rows(&[vec![], vec![]]).is_err());
        let empty = PointMatrix::from_rows(&Vec::<Vec<f64>>::new()).unwrap();
        assert_eq!(empty.len(), 0);
        assert!(empty.is_empty());
        assert_eq!(empty.row_refs(), Vec::<&[f64]>::new());
        let mut m = PointMatrix::new(2);
        assert!(m.push_row(&[1.0]).is_err());
        m.push_row(&[1.0, 2.0]).unwrap();
        assert_eq!(m.len(), 1);
        assert!(PointMatrix::from_flat(vec![1.0, 2.0, 3.0], 2).is_err());
        assert!(PointMatrix::from_flat(vec![1.0, 2.0], 0).is_err());
        assert_eq!(PointMatrix::from_flat(vec![1.0, 2.0], 2).unwrap().len(), 1);
        assert!(PointMatrix::from_rows(&[vec![f64::NAN]]).unwrap().has_nan());
    }

    #[test]
    fn blocked_distances_match_scalar_bitwise() {
        for dims in 1..=8usize {
            let n = 17;
            let rows: Vec<f64> =
                (0..n * dims).map(|i| (i as f64 * 0.37).sin() * 50.0 - 10.0).collect();
            let query: Vec<f64> = (0..dims).map(|d| (d as f64 * 1.3).cos() * 20.0).collect();
            let mut out = Vec::new();
            squared_distances_block(&query, &rows, dims, &mut out).unwrap();
            assert_eq!(out.len(), n);
            for (i, got) in out.iter().enumerate() {
                let row = &rows[i * dims..(i + 1) * dims];
                let want = squared_distance(row, &query).unwrap();
                assert_eq!(got.to_bits(), want.to_bits(), "dims={dims} row={i}");
            }
        }
    }

    #[test]
    fn blocked_distances_append_and_validate() {
        let mut out = vec![9.0];
        squared_distances_block(&[0.0], &[3.0, 4.0], 1, &mut out).unwrap();
        assert_eq!(out, vec![9.0, 9.0, 16.0]);
        // Empty block: no-op for any dims, even a mismatched one.
        squared_distances_block(&[0.0], &[], 1, &mut out).unwrap();
        assert_eq!(out.len(), 3);
        // Query of the wrong dimensionality.
        assert!(squared_distances_block(&[0.0, 0.0], &[1.0], 1, &mut Vec::new()).is_err());
        // Ragged block.
        assert!(squared_distances_block(&[0.0, 0.0], &[1.0, 2.0, 3.0], 2, &mut Vec::new()).is_err());
    }
}
