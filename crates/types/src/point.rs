//! Data objects: row identifiers and d-dimensional numeric points.

use serde::{Deserialize, Serialize};

use crate::error::{Result, UeiError};

/// Stable identifier of a tuple in the exploration dataset.
///
/// Row ids are dense (`0..n`) in every storage engine in this workspace,
/// which lets the inverted index delta-encode posting lists and lets the
/// baseline row store compute page locations directly.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RowId(pub u64);

impl RowId {
    /// The raw numeric id.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The raw id as an index into dense in-memory arrays.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl From<u64> for RowId {
    fn from(v: u64) -> Self {
        RowId(v)
    }
}

impl std::fmt::Display for RowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A d-dimensional numeric tuple with its row identifier.
///
/// This is the unit the exploration loop operates on: the user labels
/// `DataPoint`s, the classifier scores them, and UEI loads them region by
/// region from secondary storage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataPoint {
    /// Stable row identifier.
    pub id: RowId,
    /// Attribute values, in schema order.
    pub values: Vec<f64>,
}

impl DataPoint {
    /// Creates a point from an id and its attribute values.
    pub fn new(id: impl Into<RowId>, values: Vec<f64>) -> Self {
        DataPoint { id: id.into(), values }
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.values.len()
    }

    /// Squared Euclidean distance to another point.
    ///
    /// Returns an error if the dimensionalities differ; distances across
    /// mismatched spaces are always a caller bug.
    pub fn squared_distance(&self, other: &DataPoint) -> Result<f64> {
        squared_distance(&self.values, &other.values)
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &DataPoint) -> Result<f64> {
        Ok(self.squared_distance(other)?.sqrt())
    }
}

/// Squared Euclidean distance between two coordinate slices.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(UeiError::DimensionMismatch { expected: a.len(), actual: b.len() });
    }
    // Manual loop rather than iterator zip/fold: this is the innermost hot
    // path of every kNN query and the optimizer vectorizes it reliably.
    let mut acc = 0.0;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        acc += d * d;
    }
    Ok(acc)
}

/// Euclidean distance between two coordinate slices.
#[inline]
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> Result<f64> {
    Ok(squared_distance(a, b)?.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_id_conversions() {
        let id = RowId::from(42u64);
        assert_eq!(id.as_u64(), 42);
        assert_eq!(id.as_usize(), 42);
        assert_eq!(id.to_string(), "#42");
    }

    #[test]
    fn point_dims_and_distance() {
        let a = DataPoint::new(0u64, vec![0.0, 0.0, 0.0]);
        let b = DataPoint::new(1u64, vec![1.0, 2.0, 2.0]);
        assert_eq!(a.dims(), 3);
        assert_eq!(a.squared_distance(&b).unwrap(), 9.0);
        assert_eq!(a.distance(&b).unwrap(), 3.0);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = DataPoint::new(0u64, vec![1.5, -2.5]);
        let b = DataPoint::new(1u64, vec![-0.5, 4.0]);
        assert_eq!(a.distance(&b).unwrap(), b.distance(&a).unwrap());
        assert_eq!(a.distance(&a).unwrap(), 0.0);
    }

    #[test]
    fn mismatched_dims_error() {
        let a = DataPoint::new(0u64, vec![1.0]);
        let b = DataPoint::new(1u64, vec![1.0, 2.0]);
        match a.squared_distance(&b) {
            Err(UeiError::DimensionMismatch { expected: 1, actual: 2 }) => {}
            other => panic!("expected dimension mismatch, got {other:?}"),
        }
    }

    #[test]
    fn slice_distance_matches_point_distance() {
        let a = vec![3.0, 4.0];
        let b = vec![0.0, 0.0];
        assert_eq!(euclidean_distance(&a, &b).unwrap(), 5.0);
    }
}
