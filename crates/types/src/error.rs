//! Workspace-wide error type.
//!
//! All fallible public APIs in the UEI workspace return [`Result<T>`]. The
//! variants are deliberately coarse: callers almost always either propagate
//! or report, and the storage crates attach human-readable context strings.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Errors produced anywhere in the UEI workspace.
#[derive(Debug)]
pub enum UeiError {
    /// Underlying operating-system I/O failure, with the path involved.
    Io {
        /// Path of the file being accessed when the failure occurred.
        path: PathBuf,
        /// The underlying OS error.
        source: io::Error,
    },
    /// A persisted artifact (chunk file, manifest, page) failed validation.
    Corrupt {
        /// Description of what failed to validate and where.
        detail: String,
    },
    /// A point, region, or schema had an unexpected number of dimensions.
    DimensionMismatch {
        /// Dimensionality the operation expected.
        expected: usize,
        /// Dimensionality actually supplied.
        actual: usize,
    },
    /// A configuration value was out of its legal range.
    InvalidConfig {
        /// Description of the offending parameter and constraint.
        detail: String,
    },
    /// A lookup (chunk id, row id, cell id, attribute name) found nothing.
    NotFound {
        /// Description of what was looked up.
        detail: String,
    },
    /// An operation was attempted in a state that does not allow it
    /// (e.g. exploring before initializing the model).
    InvalidState {
        /// Description of the violated protocol.
        detail: String,
    },
    /// A transient failure that is expected to succeed if retried — an
    /// injected fault, a flaky device, an interrupted syscall. Retry
    /// policies back off and reissue these; they never retry
    /// [`UeiError::Corrupt`], whose evidence would only be re-read.
    Transient {
        /// Description of the transient condition.
        detail: String,
    },
}

impl UeiError {
    /// Convenience constructor for [`UeiError::Corrupt`].
    pub fn corrupt(detail: impl Into<String>) -> Self {
        UeiError::Corrupt { detail: detail.into() }
    }

    /// Convenience constructor for [`UeiError::InvalidConfig`].
    pub fn invalid_config(detail: impl Into<String>) -> Self {
        UeiError::InvalidConfig { detail: detail.into() }
    }

    /// Convenience constructor for [`UeiError::NotFound`].
    pub fn not_found(detail: impl Into<String>) -> Self {
        UeiError::NotFound { detail: detail.into() }
    }

    /// Convenience constructor for [`UeiError::InvalidState`].
    pub fn invalid_state(detail: impl Into<String>) -> Self {
        UeiError::InvalidState { detail: detail.into() }
    }

    /// Convenience constructor for [`UeiError::Io`].
    pub fn io(path: impl Into<PathBuf>, source: io::Error) -> Self {
        UeiError::Io { path: path.into(), source }
    }

    /// Convenience constructor for [`UeiError::Transient`].
    pub fn transient(detail: impl Into<String>) -> Self {
        UeiError::Transient { detail: detail.into() }
    }

    /// Whether a retry of the failed operation could plausibly succeed.
    ///
    /// True for [`UeiError::Transient`] and for [`UeiError::Io`] whose OS
    /// error kind signals a momentary condition (interrupted syscall,
    /// timeout, would-block). Corruption is *never* retryable: the bytes on
    /// disk are wrong and re-reading them cannot fix that.
    pub fn is_retryable(&self) -> bool {
        match self {
            UeiError::Transient { .. } => true,
            UeiError::Io { source, .. } => matches!(
                source.kind(),
                io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ),
            _ => false,
        }
    }

    /// Whether this error originated in the storage layer (failed read,
    /// exhausted retries, or corruption). Storage faults make an index cell
    /// *eligible for degradation* — the caller may fall through to the
    /// next-ranked cell or sample from the resident cache — whereas logic
    /// errors (bad config, dimension mismatch, protocol misuse) must
    /// propagate.
    pub fn is_storage_fault(&self) -> bool {
        matches!(
            self,
            UeiError::Io { .. }
                | UeiError::Transient { .. }
                | UeiError::Corrupt { .. }
                | UeiError::NotFound { .. }
        )
    }
}

impl fmt::Display for UeiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UeiError::Io { path, source } => {
                write!(f, "i/o error on {}: {source}", path.display())
            }
            UeiError::Corrupt { detail } => write!(f, "corrupt data: {detail}"),
            UeiError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            UeiError::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
            UeiError::NotFound { detail } => write!(f, "not found: {detail}"),
            UeiError::InvalidState { detail } => write!(f, "invalid state: {detail}"),
            UeiError::Transient { detail } => write!(f, "transient failure: {detail}"),
        }
    }
}

impl std::error::Error for UeiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UeiError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, UeiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_io_mentions_path() {
        let err = UeiError::io("/tmp/x.chunk", io::Error::other("boom"));
        let msg = err.to_string();
        assert!(msg.contains("/tmp/x.chunk"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn display_dimension_mismatch() {
        let err = UeiError::DimensionMismatch { expected: 5, actual: 3 };
        assert_eq!(err.to_string(), "dimension mismatch: expected 5, got 3");
    }

    #[test]
    fn source_is_some_only_for_io() {
        use std::error::Error;
        let io_err = UeiError::io("/x", io::Error::other("y"));
        assert!(io_err.source().is_some());
        assert!(UeiError::corrupt("bad magic").source().is_none());
    }

    #[test]
    fn retryable_classification() {
        assert!(UeiError::transient("injected fault").is_retryable());
        assert!(UeiError::io("/x", io::Error::from(io::ErrorKind::Interrupted)).is_retryable());
        assert!(UeiError::io("/x", io::Error::from(io::ErrorKind::TimedOut)).is_retryable());
        // A hard I/O failure (e.g. missing file) is not worth retrying.
        assert!(!UeiError::io("/x", io::Error::from(io::ErrorKind::NotFound)).is_retryable());
        // Corruption must never be retried: the bytes on disk are wrong.
        assert!(!UeiError::corrupt("bad crc").is_retryable());
        assert!(!UeiError::invalid_state("untrained").is_retryable());
    }

    #[test]
    fn storage_fault_classification() {
        assert!(UeiError::transient("flaky").is_storage_fault());
        assert!(UeiError::corrupt("bad crc").is_storage_fault());
        assert!(UeiError::io("/x", io::Error::other("boom")).is_storage_fault());
        assert!(UeiError::not_found("chunk 9").is_storage_fault());
        assert!(!UeiError::invalid_config("k = 0").is_storage_fault());
        assert!(!UeiError::invalid_state("untrained").is_storage_fault());
        assert!(!UeiError::DimensionMismatch { expected: 2, actual: 3 }.is_storage_fault());
    }

    #[test]
    fn display_transient() {
        let err = UeiError::transient("injected i/o failure");
        assert_eq!(err.to_string(), "transient failure: injected i/o failure");
    }

    #[test]
    fn constructors_round_trip_detail() {
        match UeiError::not_found("chunk 42") {
            UeiError::NotFound { detail } => assert_eq!(detail, "chunk 42"),
            other => panic!("wrong variant: {other:?}"),
        }
        match UeiError::invalid_state("model untrained") {
            UeiError::InvalidState { detail } => assert_eq!(detail, "model untrained"),
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
