//! Small statistics helpers for the experiment harness.
//!
//! The paper reports every result as the average of 10 complete runs; the
//! harness uses [`Summary`] to aggregate those runs and [`Welford`] to
//! accumulate per-iteration measurements without storing every sample.

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A complete distribution summary of a finite sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample. Returns `None` for an empty slice.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
        let mut w = Welford::new();
        for &x in samples {
            w.push(x);
        }
        Some(Summary {
            count: samples.len(),
            mean: w.mean(),
            std_dev: w.std_dev(),
            min: sorted[0],
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
            max: *sorted.last().expect("non-empty"),
        })
    }
}

/// Percentile of an ascending-sorted sample via linear interpolation.
/// `pct` is in `[0, 100]`. Panics on empty input.
pub fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = (pct / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Arithmetic mean of a slice (0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Naive unbiased variance of this classic sample is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert!(w.min().is_nan());
        let mut w = Welford::new();
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_dev(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(2.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&Welford::new());
        assert_eq!((a.count(), a.mean(), a.variance()), before);

        let mut empty = Welford::new();
        let mut b = Welford::new();
        b.push(5.0);
        empty.merge(&b);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 5.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 10.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 40.0);
        assert_eq!(percentile_sorted(&sorted, 50.0), 25.0);
        assert!((percentile_sorted(&sorted, 25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
