//! # uei-types
//!
//! Shared kernel types for the UEI workspace.
//!
//! This crate is dependency-light by design: every other crate in the
//! workspace builds on the vocabulary defined here, so it must compile fast
//! and stay stable. It provides:
//!
//! - [`RowId`], [`DataPoint`], [`Label`] — the objects being explored;
//! - [`Region`] — axis-aligned boxes used for grid cells and target regions;
//! - [`Schema`] / [`AttributeDef`] — dataset metadata;
//! - [`UeiError`] / [`Result`] — the workspace-wide error type;
//! - [`rng`] — a deterministic, seedable PRNG (xoshiro256** seeded via
//!   SplitMix64) so that every experiment in the paper reproduction can be
//!   replayed bit-for-bit;
//! - [`codec`] — bounds-checked little-endian and varint binary codecs used
//!   by the storage engines;
//! - [`stats`] — small online/offline statistics helpers used by the
//!   benchmark harness.

#![warn(missing_docs)]
// Lint policy: `!(a <= b)` comparisons are deliberate — they reject NaN as
// well as inverted bounds, which `a > b` would silently accept. Indexed
// loops that clippy flags as `needless_range_loop` walk several parallel
// arrays by dimension; the index form keeps that symmetry readable.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]

pub mod codec;
pub mod error;
pub mod label;
pub mod point;
pub mod region;
pub mod rng;
pub mod schema;
pub mod shard;
pub mod stats;

pub use error::{Result, UeiError};
pub use label::Label;
pub use point::{DataPoint, PointMatrix, RowId};
pub use region::Region;
pub use rng::Rng;
pub use schema::{AttributeDef, Schema};
pub use shard::ShardId;
