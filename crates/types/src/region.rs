//! Axis-aligned d-dimensional regions.
//!
//! Regions serve three roles in the reproduction:
//!
//! 1. grid cells (subspaces `g_i`) of the Uncertainty Estimation Index,
//! 2. the simulated user's target interest regions (paper §4.1), and
//! 3. range predicates evaluated by the oracle and the result retrieval.
//!
//! A region is the half-open box `[lo, hi)` in each dimension, except that
//! [`Region::contains`] treats a dimension's upper bound as inclusive when
//! callers construct the region via [`Region::closed`]. The half-open default
//! is what makes a grid a true partition (no point falls in two cells).

use serde::{Deserialize, Serialize};

use crate::error::{Result, UeiError};

/// An axis-aligned box in d-dimensional space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Inclusive lower bounds, per dimension.
    pub lo: Vec<f64>,
    /// Upper bounds, per dimension (exclusive unless `closed`).
    pub hi: Vec<f64>,
    /// Whether the upper bounds are inclusive.
    closed: bool,
}

impl Region {
    /// Creates a half-open region `[lo, hi)`.
    ///
    /// Returns an error if the bound vectors differ in length, are empty, or
    /// any `lo[d] > hi[d]`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Result<Self> {
        Self::build(lo, hi, false)
    }

    /// Creates a closed region `[lo, hi]` (inclusive upper bounds).
    ///
    /// Use this for user target regions and oracle range queries, where the
    /// paper's range predicates are inclusive.
    pub fn closed(lo: Vec<f64>, hi: Vec<f64>) -> Result<Self> {
        Self::build(lo, hi, true)
    }

    fn build(lo: Vec<f64>, hi: Vec<f64>, closed: bool) -> Result<Self> {
        if lo.len() != hi.len() {
            return Err(UeiError::DimensionMismatch { expected: lo.len(), actual: hi.len() });
        }
        if lo.is_empty() {
            return Err(UeiError::invalid_config("region must have at least one dimension"));
        }
        for d in 0..lo.len() {
            if !(lo[d] <= hi[d]) {
                return Err(UeiError::invalid_config(format!(
                    "region bounds inverted in dim {d}: lo={} hi={}",
                    lo[d], hi[d]
                )));
            }
        }
        Ok(Region { lo, hi, closed })
    }

    /// Builds a closed region from a center point and per-dimension
    /// half-widths, the parameterization the paper's user simulator uses
    /// (a region center `c` and per-dimension widths `w`, Eq. 4).
    pub fn from_center(center: &[f64], half_widths: &[f64]) -> Result<Self> {
        if center.len() != half_widths.len() {
            return Err(UeiError::DimensionMismatch {
                expected: center.len(),
                actual: half_widths.len(),
            });
        }
        let lo = center.iter().zip(half_widths).map(|(c, w)| c - w).collect();
        let hi = center.iter().zip(half_widths).map(|(c, w)| c + w).collect();
        Self::closed(lo, hi)
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Whether upper bounds are inclusive.
    #[inline]
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Whether the region contains `point`.
    ///
    /// Returns an error on dimensionality mismatch.
    pub fn contains(&self, point: &[f64]) -> Result<bool> {
        if point.len() != self.dims() {
            return Err(UeiError::DimensionMismatch { expected: self.dims(), actual: point.len() });
        }
        for d in 0..point.len() {
            let above = if self.closed { point[d] > self.hi[d] } else { point[d] >= self.hi[d] };
            if point[d] < self.lo[d] || above {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The center point of the region — the coordinates of the "virtual"
    /// symbolic index point when the region is a grid cell (paper §3.1).
    pub fn center(&self) -> Vec<f64> {
        self.lo.iter().zip(&self.hi).map(|(l, h)| 0.5 * (l + h)).collect()
    }

    /// Per-dimension widths `hi - lo`.
    pub fn widths(&self) -> Vec<f64> {
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).collect()
    }

    /// Volume of the box (product of widths). Zero-width dimensions yield 0.
    pub fn volume(&self) -> f64 {
        self.widths().iter().product()
    }

    /// Whether this region and `other` overlap in every dimension.
    pub fn intersects(&self, other: &Region) -> Result<bool> {
        if other.dims() != self.dims() {
            return Err(UeiError::DimensionMismatch {
                expected: self.dims(),
                actual: other.dims(),
            });
        }
        for d in 0..self.dims() {
            // Treat both boxes conservatively as closed for overlap tests;
            // the grid mapping only uses this to over-approximate chunk sets.
            if self.hi[d] < other.lo[d] || other.hi[d] < self.lo[d] {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The smallest closed region covering a non-empty set of points.
    pub fn bounding_box(points: &[Vec<f64>]) -> Result<Self> {
        let first = points
            .first()
            .ok_or_else(|| UeiError::invalid_config("bounding box of empty point set"))?;
        let dims = first.len();
        let mut lo = first.clone();
        let mut hi = first.clone();
        for p in &points[1..] {
            if p.len() != dims {
                return Err(UeiError::DimensionMismatch { expected: dims, actual: p.len() });
            }
            for d in 0..dims {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        Self::closed(lo, hi)
    }

    /// Maximum relative distance of a point from the region center, the
    /// user-simulation measure of the paper (Eq. 4):
    ///
    /// `d = max_i |x_i - c_i| / w_i`
    ///
    /// where `c` is the region center and `w_i` the per-dimension
    /// *half*-width (so `d <= 1` exactly when the point is inside the closed
    /// region). Dimensions with zero width contribute 0 when the coordinate
    /// matches the center and infinity otherwise.
    pub fn max_relative_distance(&self, point: &[f64]) -> Result<f64> {
        if point.len() != self.dims() {
            return Err(UeiError::DimensionMismatch { expected: self.dims(), actual: point.len() });
        }
        let center = self.center();
        let mut best = 0.0f64;
        for d in 0..self.dims() {
            let w = 0.5 * (self.hi[d] - self.lo[d]);
            let dist = (point[d] - center[d]).abs();
            let rel = if w > 0.0 {
                dist / w
            } else if dist == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
            best = best.max(rel);
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Region {
        Region::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Region::new(vec![0.0], vec![1.0, 2.0]).is_err());
        assert!(Region::new(vec![], vec![]).is_err());
        assert!(Region::new(vec![2.0], vec![1.0]).is_err());
        assert!(Region::new(vec![1.0], vec![1.0]).is_ok());
    }

    #[test]
    fn half_open_contains() {
        let r = unit_square();
        assert!(r.contains(&[0.0, 0.0]).unwrap());
        assert!(r.contains(&[0.5, 0.999]).unwrap());
        assert!(!r.contains(&[1.0, 0.5]).unwrap(), "upper bound exclusive");
        assert!(!r.contains(&[-0.001, 0.5]).unwrap());
    }

    #[test]
    fn closed_contains_upper_bound() {
        let r = Region::closed(vec![0.0], vec![1.0]).unwrap();
        assert!(r.contains(&[1.0]).unwrap());
        assert!(!r.contains(&[1.0001]).unwrap());
    }

    #[test]
    fn center_widths_volume() {
        let r = Region::new(vec![0.0, 2.0], vec![2.0, 6.0]).unwrap();
        assert_eq!(r.center(), vec![1.0, 4.0]);
        assert_eq!(r.widths(), vec![2.0, 4.0]);
        assert_eq!(r.volume(), 8.0);
    }

    #[test]
    fn from_center_round_trips() {
        let r = Region::from_center(&[5.0, 5.0], &[1.0, 2.0]).unwrap();
        assert_eq!(r.lo, vec![4.0, 3.0]);
        assert_eq!(r.hi, vec![6.0, 7.0]);
        assert!(r.is_closed());
        assert_eq!(r.center(), vec![5.0, 5.0]);
    }

    #[test]
    fn intersects_detects_overlap_and_disjoint() {
        let a = unit_square();
        let b = Region::new(vec![0.5, 0.5], vec![2.0, 2.0]).unwrap();
        let c = Region::new(vec![2.0, 2.0], vec![3.0, 3.0]).unwrap();
        assert!(a.intersects(&b).unwrap());
        assert!(!a.intersects(&c).unwrap());
        // Touching edges count as intersecting (conservative over-approximation).
        let d = Region::new(vec![1.0, 0.0], vec![2.0, 1.0]).unwrap();
        assert!(a.intersects(&d).unwrap());
    }

    #[test]
    fn bounding_box_covers_all_points() {
        let pts = vec![vec![1.0, 5.0], vec![-2.0, 3.0], vec![0.0, 9.0]];
        let bb = Region::bounding_box(&pts).unwrap();
        assert_eq!(bb.lo, vec![-2.0, 3.0]);
        assert_eq!(bb.hi, vec![1.0, 9.0]);
        for p in &pts {
            assert!(bb.contains(p).unwrap());
        }
        assert!(Region::bounding_box(&[]).is_err());
    }

    #[test]
    fn max_relative_distance_eq4() {
        // Region centered at (0,0) with half-widths (1, 2).
        let r = Region::from_center(&[0.0, 0.0], &[1.0, 2.0]).unwrap();
        assert_eq!(r.max_relative_distance(&[0.0, 0.0]).unwrap(), 0.0);
        assert_eq!(r.max_relative_distance(&[1.0, 0.0]).unwrap(), 1.0);
        assert_eq!(r.max_relative_distance(&[0.5, 3.0]).unwrap(), 1.5);
        // Inside the closed region iff d <= 1.
        assert!(r.contains(&[1.0, 2.0]).unwrap());
        assert_eq!(r.max_relative_distance(&[1.0, 2.0]).unwrap(), 1.0);
    }

    #[test]
    fn zero_width_dimension_relative_distance() {
        let r = Region::closed(vec![3.0], vec![3.0]).unwrap();
        assert_eq!(r.max_relative_distance(&[3.0]).unwrap(), 0.0);
        assert!(r.max_relative_distance(&[3.1]).unwrap().is_infinite());
    }

    #[test]
    fn dimension_mismatch_everywhere() {
        let r = unit_square();
        assert!(r.contains(&[0.5]).is_err());
        assert!(r.max_relative_distance(&[0.5]).is_err());
        let other = Region::new(vec![0.0], vec![1.0]).unwrap();
        assert!(r.intersects(&other).is_err());
    }
}
