//! Deterministic pseudo-random number generation.
//!
//! Every randomized component of the reproduction (data generator, uniform
//! sampler, initial example acquisition, SVM shuffling, target-region
//! placement) draws from this generator so that any experiment can be
//! replayed exactly from its seed. The generator is xoshiro256\*\*
//! (Blackman & Vigna), seeded through SplitMix64 as its authors recommend.
//!
//! We implement it locally instead of depending on `rand` so that the core
//! crates carry no external runtime dependencies and the stream is stable
//! across toolchain and dependency upgrades.

/// A deterministic xoshiro256\*\* generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step used for seeding.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Returns `lo` when the range is empty.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[0, bound)` via Lemire's unbiased method.
    /// `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "Rng::below called with bound 0");
        // Widening-multiply rejection sampling (Lemire 2019).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform integer in `[lo, hi)`. Returns `lo` when the range is empty.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + self.below_usize(hi - lo)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal draw (Marsaglia polar method).
    pub fn gaussian(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal draw with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Reservoir-samples `k` indices uniformly without replacement from
    /// `[0, n)`. Returns all of `[0, n)` when `k >= n`. Output order is
    /// unspecified but deterministic for a given state.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        if k >= n {
            return (0..n).collect();
        }
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.below_usize(i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir
    }

    /// Picks one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "Rng::choose on empty slice");
        &items[self.below_usize(items.len())]
    }

    /// Derives an independent child generator; useful for giving each of the
    /// paper's 10 experiment runs its own stream from one master seed.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// The raw xoshiro256\*\* state, for durable snapshots: a generator
    /// restored with [`Rng::from_state`] continues the exact same stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`Rng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        Rng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(42);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = Rng::new(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::new(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should occur in 1000 draws");
    }

    #[test]
    fn range_helpers_handle_empty_ranges() {
        let mut rng = Rng::new(5);
        assert_eq!(rng.range_usize(7, 7), 7);
        assert_eq!(rng.range_f64(2.0, 2.0), 2.0);
        assert_eq!(rng.range_f64(3.0, 1.0), 3.0);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Rng::new(99);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(1);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely to be identity");
    }

    #[test]
    fn sample_indices_without_replacement() {
        let mut rng = Rng::new(13);
        let sample = rng.sample_indices(1000, 50);
        assert_eq!(sample.len(), 50);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50, "indices must be distinct");
        assert!(sorted.iter().all(|&i| i < 1000));
    }

    #[test]
    fn sample_indices_k_ge_n_returns_all() {
        let mut rng = Rng::new(13);
        assert_eq!(rng.sample_indices(5, 10), vec![0, 1, 2, 3, 4]);
        assert_eq!(rng.sample_indices(5, 5), vec![0, 1, 2, 3, 4]);
        assert_eq!(rng.sample_indices(0, 0), Vec::<usize>::new());
    }

    #[test]
    fn sample_indices_is_roughly_uniform() {
        // Each index of [0, 20) should appear in a k=10 sample about half
        // the time over many trials.
        let mut rng = Rng::new(77);
        let mut counts = [0usize; 20];
        let trials = 4000;
        for _ in 0..trials {
            for i in rng.sample_indices(20, 10) {
                counts[i] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / trials as f64;
            assert!((frac - 0.5).abs() < 0.05, "index {i} frequency {frac}");
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::new(21);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..16).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn state_round_trip_continues_stream() {
        let mut a = Rng::new(314);
        for _ in 0..37 {
            a.next_u64();
        }
        let mut b = Rng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bool_probability() {
        let mut rng = Rng::new(8);
        let hits = (0..100_000).filter(|_| rng.bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "{frac}");
    }
}
