//! Property-based tests for the shared kernel: codecs, regions, stats,
//! and the deterministic RNG.

use proptest::prelude::*;
use uei_types::codec::{decode_ascending_ids, encode_ascending_ids, Reader, Writer};
use uei_types::stats::{percentile_sorted, Summary, Welford};
use uei_types::{Region, Rng};

fn ascending_ids() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..1_000_000, 0..200).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

proptest! {
    #[test]
    fn varint_roundtrip(values in proptest::collection::vec(any::<u64>(), 0..100)) {
        let mut w = Writer::new();
        for &v in &values {
            w.write_varint(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for &v in &values {
            prop_assert_eq!(r.read_varint().unwrap(), v);
        }
        prop_assert!(r.is_empty());
    }

    #[test]
    fn primitive_roundtrip(
        a in any::<u8>(), b in any::<u16>(), c in any::<u32>(),
        d in any::<u64>(), e in any::<f64>()
    ) {
        let mut w = Writer::new();
        w.write_u8(a);
        w.write_u16(b);
        w.write_u32(c);
        w.write_u64(d);
        w.write_f64(e);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(r.read_u8().unwrap(), a);
        prop_assert_eq!(r.read_u16().unwrap(), b);
        prop_assert_eq!(r.read_u32().unwrap(), c);
        prop_assert_eq!(r.read_u64().unwrap(), d);
        prop_assert_eq!(r.read_f64().unwrap().to_bits(), e.to_bits());
    }

    #[test]
    fn ascending_ids_roundtrip(ids in ascending_ids()) {
        let mut w = Writer::new();
        encode_ascending_ids(&mut w, &ids).unwrap();
        let bytes = w.into_bytes();
        let got = decode_ascending_ids(&mut Reader::new(&bytes)).unwrap();
        prop_assert_eq!(got, ids);
    }

    #[test]
    fn ascending_ids_truncation_always_errors(ids in ascending_ids()) {
        prop_assume!(!ids.is_empty());
        let mut w = Writer::new();
        encode_ascending_ids(&mut w, &ids).unwrap();
        let bytes = w.into_bytes();
        // Any strict prefix must fail to decode (never silently succeed
        // with wrong data of the same length).
        let cut = bytes.len() - 1;
        prop_assert!(decode_ascending_ids(&mut Reader::new(&bytes[..cut])).is_err());
    }

    #[test]
    fn region_contains_iff_relative_distance_le_one(
        dims_data in (1usize..6).prop_flat_map(|d| (
            proptest::collection::vec(-100.0f64..100.0, d),
            proptest::collection::vec(-3.0f64..3.0, d),
        )),
        scale in 0.01f64..10.0,
    ) {
        let (center, offsets) = dims_data;
        let widths: Vec<f64> = center.iter().map(|c| (c.abs() + 1.0) * scale * 0.1).collect();
        let region = Region::from_center(&center, &widths).unwrap();
        let point: Vec<f64> = center
            .iter()
            .zip(&widths)
            .zip(&offsets)
            .map(|((c, w), o)| c + o * w)
            .collect();
        let d = region.max_relative_distance(&point).unwrap();
        let inside = region.contains(&point).unwrap();
        // Skip exact-boundary points where float rounding can disagree.
        prop_assume!((d - 1.0).abs() > 1e-9);
        prop_assert_eq!(inside, d < 1.0, "d = {}", d);
    }

    #[test]
    fn region_center_always_inside(
        dims_data in (1usize..6).prop_flat_map(|d| (
            proptest::collection::vec(-100.0f64..0.0, d),
            proptest::collection::vec(0.001f64..100.0, d),
        )),
    ) {
        let (lo, width) = dims_data;
        let hi: Vec<f64> = lo.iter().zip(&width).map(|(l, w)| l + w).collect();
        let region = Region::new(lo, hi).unwrap();
        prop_assert!(region.contains(&region.center()).unwrap());
        prop_assert!(region.volume() > 0.0);
    }

    #[test]
    fn bounding_box_contains_all_inputs(
        points in proptest::collection::vec(
            proptest::collection::vec(-1e6f64..1e6, 3), 1..50)
    ) {
        let bb = Region::bounding_box(&points).unwrap();
        for p in &points {
            prop_assert!(bb.contains(p).unwrap());
        }
    }

    #[test]
    fn welford_merge_matches_sequential(
        left in proptest::collection::vec(-1e3f64..1e3, 0..50),
        right in proptest::collection::vec(-1e3f64..1e3, 0..50),
    ) {
        let mut merged = Welford::new();
        for &x in &left { merged.push(x); }
        let mut other = Welford::new();
        for &x in &right { other.push(x); }
        merged.merge(&other);

        let mut sequential = Welford::new();
        for &x in left.iter().chain(&right) { sequential.push(x); }

        prop_assert_eq!(merged.count(), sequential.count());
        prop_assert!((merged.mean() - sequential.mean()).abs() < 1e-6);
        prop_assert!((merged.variance() - sequential.variance()).abs() < 1e-6);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded(
        mut xs in proptest::collection::vec(-1e6f64..1e6, 1..100)
    ) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = f64::NEG_INFINITY;
        for pct in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let p = percentile_sorted(&xs, pct);
            prop_assert!(p >= last);
            prop_assert!(p >= xs[0] && p <= *xs.last().unwrap());
            last = p;
        }
        let s = Summary::of(&xs).unwrap();
        prop_assert!(s.min <= s.median && s.median <= s.p95 && s.p95 <= s.max);
    }

    #[test]
    fn rng_sample_indices_is_valid_sample(n in 0usize..500, k in 0usize..600, seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let mut sample = rng.sample_indices(n, k);
        sample.sort_unstable();
        let len_before = sample.len();
        sample.dedup();
        prop_assert_eq!(sample.len(), len_before, "no duplicates");
        prop_assert_eq!(sample.len(), k.min(n));
        prop_assert!(sample.iter().all(|&i| i < n));
    }

    #[test]
    fn rng_below_is_always_in_range(bound in 1u64..u64::MAX, seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        for _ in 0..16 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn rng_shuffle_is_permutation(len in 0usize..200, seed in any::<u64>()) {
        let mut v: Vec<usize> = (0..len).collect();
        Rng::new(seed).shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }
}
