//! An in-memory B+-tree for single-attribute secondary indexes.
//!
//! The baseline DBMS indexes individual attributes the way MySQL would;
//! the oracle uses such indexes for its ground-truth range queries. The
//! exploration scan itself cannot use them — "as the exploration could
//! occur on any subset of the attributes, it is nearly impossible to apply
//! any typical indexing in advance" (paper §1) — which is exactly the
//! paper's motivation for UEI.
//!
//! Keys are `(value, row-id)` pairs so duplicate attribute values are
//! naturally supported. Nodes live in an arena; leaves are chained for
//! range scans.

use uei_types::{Result, UeiError};

/// A key in the tree: the attribute value plus the row id (making every
/// key unique).
type Key = (f64, u64);

#[derive(Debug)]
enum Node {
    Internal {
        /// `keys[i]` is the smallest key reachable under `children[i + 1]`.
        keys: Vec<Key>,
        children: Vec<usize>,
    },
    Leaf {
        entries: Vec<Key>,
        next: Option<usize>,
    },
}

/// An in-memory B+-tree mapping attribute values to row ids.
///
/// ```
/// use uei_dbms::BPlusTree;
///
/// let mut index = BPlusTree::new(16).unwrap();
/// for (row, value) in [(0u64, 3.5), (1, 1.25), (2, 9.0), (3, 1.25)] {
///     index.insert(value, row).unwrap();
/// }
/// // Duplicate values are fine; ranges are inclusive and ordered.
/// assert_eq!(index.range(1.0, 4.0), vec![1, 3, 0]);
/// ```
#[derive(Debug)]
pub struct BPlusTree {
    /// Maximum entries per node before splitting.
    order: usize,
    nodes: Vec<Node>,
    root: usize,
    len: usize,
}

impl BPlusTree {
    /// Creates an empty tree. `order` is the max entries per node (≥ 3).
    pub fn new(order: usize) -> Result<BPlusTree> {
        if order < 3 {
            return Err(UeiError::invalid_config("B+-tree order must be >= 3"));
        }
        Ok(BPlusTree {
            order,
            nodes: vec![Node::Leaf { entries: Vec::new(), next: None }],
            root: 0,
            len: 0,
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 = just a leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { .. } => return h,
                Node::Internal { children, .. } => {
                    idx = children[0];
                    h += 1;
                }
            }
        }
    }

    /// Inserts a `(value, row-id)` entry. `value` must not be NaN.
    pub fn insert(&mut self, value: f64, row: u64) -> Result<()> {
        if value.is_nan() {
            return Err(UeiError::invalid_config("cannot index NaN"));
        }
        let key = (value, row);
        if let Some((split_key, new_node)) = self.insert_into(self.root, key) {
            let old_root = self.root;
            self.nodes
                .push(Node::Internal { keys: vec![split_key], children: vec![old_root, new_node] });
            self.root = self.nodes.len() - 1;
        }
        self.len += 1;
        Ok(())
    }

    /// Recursive insert; returns `(separator key, right sibling)` when the
    /// child split.
    fn insert_into(&mut self, idx: usize, key: Key) -> Option<(Key, usize)> {
        match &mut self.nodes[idx] {
            Node::Leaf { entries, .. } => {
                let pos = entries.partition_point(|e| cmp_key(e, &key).is_lt());
                entries.insert(pos, key);
                if entries.len() <= self.order {
                    return None;
                }
                // Split the leaf: the right half inherits the old `next`,
                // and the left half points at the new right sibling.
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let split_key = right_entries[0];
                let inherited_next = match &mut self.nodes[idx] {
                    Node::Leaf { next, .. } => next.take(),
                    _ => unreachable!("idx is a leaf"),
                };
                self.nodes.push(Node::Leaf { entries: right_entries, next: inherited_next });
                let right_idx = self.nodes.len() - 1;
                if let Node::Leaf { next, .. } = &mut self.nodes[idx] {
                    *next = Some(right_idx);
                }
                Some((split_key, right_idx))
            }
            Node::Internal { keys, children } => {
                let pos = keys.partition_point(|k| cmp_key(k, &key).is_le());
                let child = children[pos];
                let split = self.insert_into(child, key);
                let (split_key, new_child) = split?;
                if let Node::Internal { keys, children } = &mut self.nodes[idx] {
                    keys.insert(pos, split_key);
                    children.insert(pos + 1, new_child);
                    if keys.len() <= self.order {
                        return None;
                    }
                    // Split the internal node: middle key moves up.
                    let mid = keys.len() / 2;
                    let up_key = keys[mid];
                    let right_keys = keys.split_off(mid + 1);
                    keys.pop(); // remove up_key from the left node
                    let right_children = children.split_off(mid + 1);
                    self.nodes.push(Node::Internal { keys: right_keys, children: right_children });
                    return Some((up_key, self.nodes.len() - 1));
                }
                unreachable!("node kind cannot change mid-insert");
            }
        }
    }

    /// Row ids whose indexed value lies in `[lo, hi]` (inclusive), in
    /// ascending `(value, row-id)` order.
    pub fn range(&self, lo: f64, hi: f64) -> Vec<u64> {
        self.range_entries(lo, hi).into_iter().map(|(_, r)| r).collect()
    }

    /// `(value, row-id)` pairs in `[lo, hi]`, ascending.
    pub fn range_entries(&self, lo: f64, hi: f64) -> Vec<Key> {
        if self.len == 0 || lo > hi {
            return Vec::new();
        }
        let start_key = (lo, 0u64);
        // Descend to the leaf that may contain `lo`.
        let mut idx = self.root;
        while let Node::Internal { keys, children } = &self.nodes[idx] {
            let pos = keys.partition_point(|k| cmp_key(k, &start_key).is_le());
            idx = children[pos];
        }
        let mut out = Vec::new();
        let mut leaf = Some(idx);
        #[allow(clippy::while_let_loop)]
        while let Some(li) = leaf {
            let Node::Leaf { entries, next } = &self.nodes[li] else {
                unreachable!("leaf chain only links leaves")
            };
            for &(v, r) in entries {
                if v > hi {
                    return out;
                }
                if v >= lo {
                    out.push((v, r));
                }
            }
            leaf = *next;
        }
        out
    }

    /// Every entry ascending — validates the leaf chain end to end.
    pub fn iter_all(&self) -> Vec<Key> {
        self.range_entries(f64::NEG_INFINITY, f64::INFINITY)
    }
}

#[inline]
fn cmp_key(a: &Key, b: &Key) -> std::cmp::Ordering {
    a.0.partial_cmp(&b.0).expect("no NaN keys").then(a.1.cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uei_types::Rng;

    #[test]
    fn insert_and_range_small() {
        let mut t = BPlusTree::new(4).unwrap();
        for (v, r) in [(5.0, 1), (1.0, 2), (3.0, 3), (9.0, 4), (7.0, 5)] {
            t.insert(v, r).unwrap();
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.range(3.0, 7.0), vec![3, 1, 5]);
        assert_eq!(t.range(0.0, 100.0).len(), 5);
        assert_eq!(t.range(10.0, 20.0), Vec::<u64>::new());
        assert_eq!(t.range(5.0, 3.0), Vec::<u64>::new(), "inverted range is empty");
    }

    #[test]
    fn bulk_insert_matches_sorted_reference() {
        let mut t = BPlusTree::new(8).unwrap();
        let mut rng = Rng::new(17);
        let mut reference: Vec<Key> = Vec::new();
        for r in 0..5000u64 {
            let v = (rng.range_f64(0.0, 1000.0) * 10.0).round() / 10.0; // force duplicates
            t.insert(v, r).unwrap();
            reference.push((v, r));
        }
        reference.sort_by(cmp_key);
        assert_eq!(t.len(), 5000);
        assert_eq!(t.iter_all(), reference, "leaf chain yields global order");
        assert!(t.height() > 2, "5000 entries at order 8 should be deep");
    }

    #[test]
    fn range_matches_filter_on_random_data() {
        let mut t = BPlusTree::new(6).unwrap();
        let mut rng = Rng::new(23);
        let mut data: Vec<Key> = Vec::new();
        for r in 0..2000u64 {
            let v = rng.range_f64(-50.0, 50.0);
            t.insert(v, r).unwrap();
            data.push((v, r));
        }
        data.sort_by(cmp_key);
        for (lo, hi) in [(-10.0, 10.0), (-50.0, -49.0), (49.9, 50.0), (0.0, 0.0)] {
            let got = t.range_entries(lo, hi);
            let want: Vec<Key> =
                data.iter().filter(|(v, _)| *v >= lo && *v <= hi).copied().collect();
            assert_eq!(got, want, "range [{lo}, {hi}]");
        }
    }

    #[test]
    fn duplicates_are_all_returned() {
        let mut t = BPlusTree::new(3).unwrap();
        for r in 0..100 {
            t.insert(42.0, r).unwrap();
        }
        let got = t.range(42.0, 42.0);
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(t.range(41.9, 41.99), Vec::<u64>::new());
    }

    #[test]
    fn ascending_and_descending_insert_orders() {
        for order_mode in 0..2 {
            let mut t = BPlusTree::new(4).unwrap();
            let values: Vec<u64> =
                if order_mode == 0 { (0..500).collect() } else { (0..500).rev().collect() };
            for &r in &values {
                t.insert(r as f64, r).unwrap();
            }
            let all = t.iter_all();
            assert_eq!(all.len(), 500);
            for w in all.windows(2) {
                assert!(cmp_key(&w[0], &w[1]).is_lt());
            }
        }
    }

    #[test]
    fn validations() {
        assert!(BPlusTree::new(2).is_err());
        let mut t = BPlusTree::new(4).unwrap();
        assert!(t.insert(f64::NAN, 0).is_err());
    }

    #[test]
    fn empty_tree_queries() {
        let t = BPlusTree::new(4).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.range(0.0, 1.0), Vec::<u64>::new());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn minimal_order_three_stays_correct() {
        let mut t = BPlusTree::new(3).unwrap();
        let mut rng = Rng::new(31);
        let mut keys: Vec<Key> = Vec::new();
        for r in 0..1000u64 {
            let v = rng.range_f64(0.0, 10.0);
            t.insert(v, r).unwrap();
            keys.push((v, r));
        }
        keys.sort_by(cmp_key);
        assert_eq!(t.iter_all(), keys);
    }
}
