//! # uei-dbms
//!
//! A minimal MySQL-like row store: the DBMS baseline of the paper's
//! evaluation (§4). Existing active-learning IDE systems "operate on
//! main-memory databases" or sit on a standard DBMS; the paper's comparison
//! scheme stores the 10M-tuple dataset in MySQL and performs the exhaustive
//! per-iteration uncertainty scan through it, with the memory footprint
//! restricted to ~1 % of the data.
//!
//! What matters for the reproduction is the baseline's *access pattern*:
//! every uncertainty-sampling iteration reads effectively the whole table
//! through a buffer pool far smaller than the table, so each iteration
//! costs a full-table disk read. This crate reproduces that faithfully:
//!
//! - [`page`] — fixed-size slotted pages with CRC validation;
//! - [`heap`] — a heap file of pages with bulk append;
//! - [`buffer`] — an LRU buffer pool with a page budget, charging misses
//!   to the shared [`uei_storage::DiskTracker`] I/O model (sequential page
//!   misses cost bandwidth, random ones an extra seek);
//! - [`table`] — typed row storage (`row id` + `f64` attributes) on top of
//!   heap + buffer pool, with full-scan iteration;
//! - [`scan`] — the exhaustive most-uncertain-tuple search (Algorithm 1
//!   line 6, executed over the full table);
//! - [`btree`] — an in-memory B+-tree used for single-attribute secondary
//!   indexes (range queries for the oracle's ground truth).

#![warn(missing_docs)]
// Lint policy: `!(a <= b)` comparisons are deliberate — they reject NaN as
// well as inverted bounds, which `a > b` would silently accept. Indexed
// loops that clippy flags as `needless_range_loop` walk several parallel
// arrays by dimension; the index form keeps that symmetry readable.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]

pub mod btree;
pub mod buffer;
pub mod heap;
pub mod page;
pub mod scan;
pub mod table;

pub use btree::BPlusTree;
pub use buffer::{BufferPool, BufferStats};
pub use heap::HeapFile;
pub use page::{Page, PageId, PAGE_SIZE};
pub use scan::{exhaustive_most_uncertain, ScanOutcome};
pub use table::Table;
