//! Fixed-size slotted pages.
//!
//! The classic layout: a header at the front, tuple payloads growing
//! forward from the header, and a slot directory growing backward from the
//! tail. The final four bytes hold a CRC-32 over the rest of the page,
//! validated on every read from disk.
//!
//! ```text
//! 0        4        8       10        12          free_off …
//! [magic] [page_id] [nslots] [free_off] [payload →]   …  [← slot dir] [crc]
//! ```
//!
//! Each slot-directory entry is `(offset: u16, len: u16)`.

use uei_storage::checksum::crc32;
use uei_types::{Result, UeiError};

/// Page size in bytes. 8 KiB, a typical row-store page.
pub const PAGE_SIZE: usize = 8192;

/// Page magic number ("UPG1").
pub const PAGE_MAGIC: u32 = 0x5550_4731;

const HEADER_LEN: usize = 12;
const SLOT_LEN: usize = 4;
const CRC_LEN: usize = 4;

/// Identifies a page within a heap file.
pub type PageId = u32;

/// An in-memory slotted page.
#[derive(Debug, Clone)]
pub struct Page {
    id: PageId,
    buf: Box<[u8; PAGE_SIZE]>,
    num_slots: u16,
    free_off: u16,
}

impl Page {
    /// Creates an empty page.
    pub fn new(id: PageId) -> Page {
        Page { id, buf: Box::new([0u8; PAGE_SIZE]), num_slots: 0, free_off: HEADER_LEN as u16 }
    }

    /// The page's id.
    pub fn id(&self) -> PageId {
        self.id
    }

    /// Number of tuples stored.
    pub fn num_slots(&self) -> usize {
        self.num_slots as usize
    }

    /// Bytes still available for one more tuple (payload + its slot entry).
    pub fn free_space(&self) -> usize {
        let dir_start = PAGE_SIZE - CRC_LEN - self.num_slots as usize * SLOT_LEN;
        dir_start.saturating_sub(self.free_off as usize).saturating_sub(SLOT_LEN)
    }

    /// Appends a tuple, returning its slot number, or `None` if it does
    /// not fit.
    pub fn insert(&mut self, tuple: &[u8]) -> Option<u16> {
        if tuple.len() > u16::MAX as usize || tuple.len() > self.free_space() {
            return None;
        }
        let off = self.free_off as usize;
        self.buf[off..off + tuple.len()].copy_from_slice(tuple);
        let slot = self.num_slots;
        let dir_off = PAGE_SIZE - CRC_LEN - (slot as usize + 1) * SLOT_LEN;
        self.buf[dir_off..dir_off + 2].copy_from_slice(&(off as u16).to_le_bytes());
        self.buf[dir_off + 2..dir_off + 4].copy_from_slice(&(tuple.len() as u16).to_le_bytes());
        self.num_slots += 1;
        self.free_off = (off + tuple.len()) as u16;
        Some(slot)
    }

    /// The tuple bytes at `slot`.
    pub fn get(&self, slot: u16) -> Result<&[u8]> {
        if slot >= self.num_slots {
            return Err(UeiError::not_found(format!(
                "slot {slot} in page {} ({} slots)",
                self.id, self.num_slots
            )));
        }
        let dir_off = PAGE_SIZE - CRC_LEN - (slot as usize + 1) * SLOT_LEN;
        let off =
            u16::from_le_bytes(self.buf[dir_off..dir_off + 2].try_into().expect("2b")) as usize;
        let len =
            u16::from_le_bytes(self.buf[dir_off + 2..dir_off + 4].try_into().expect("2b")) as usize;
        if off + len > PAGE_SIZE - CRC_LEN {
            return Err(UeiError::corrupt(format!(
                "slot {slot} of page {} points outside the page",
                self.id
            )));
        }
        Ok(&self.buf[off..off + len])
    }

    /// Iterates every tuple in slot order.
    pub fn tuples(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.num_slots).map(move |s| self.get(s).expect("slot in range"))
    }

    /// Serializes the page (header + payload + directory + CRC).
    pub fn to_bytes(&self) -> [u8; PAGE_SIZE] {
        let mut out = *self.buf;
        out[0..4].copy_from_slice(&PAGE_MAGIC.to_le_bytes());
        out[4..8].copy_from_slice(&self.id.to_le_bytes());
        out[8..10].copy_from_slice(&self.num_slots.to_le_bytes());
        out[10..12].copy_from_slice(&self.free_off.to_le_bytes());
        let crc = crc32(&out[..PAGE_SIZE - CRC_LEN]);
        out[PAGE_SIZE - CRC_LEN..].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and validates a page image.
    pub fn from_bytes(expected_id: PageId, bytes: &[u8]) -> Result<Page> {
        if bytes.len() != PAGE_SIZE {
            return Err(UeiError::corrupt(format!(
                "page image is {} bytes, expected {PAGE_SIZE}",
                bytes.len()
            )));
        }
        let stored_crc = u32::from_le_bytes(bytes[PAGE_SIZE - CRC_LEN..].try_into().expect("4b"));
        let actual = crc32(&bytes[..PAGE_SIZE - CRC_LEN]);
        if stored_crc != actual {
            return Err(UeiError::corrupt(format!("page {expected_id} crc mismatch")));
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4b"));
        if magic != PAGE_MAGIC {
            return Err(UeiError::corrupt(format!("page {expected_id} bad magic")));
        }
        let id = u32::from_le_bytes(bytes[4..8].try_into().expect("4b"));
        if id != expected_id {
            return Err(UeiError::corrupt(format!("page claims id {id}, expected {expected_id}")));
        }
        let num_slots = u16::from_le_bytes(bytes[8..10].try_into().expect("2b"));
        let free_off = u16::from_le_bytes(bytes[10..12].try_into().expect("2b"));
        if (free_off as usize) < HEADER_LEN
            || free_off as usize + num_slots as usize * SLOT_LEN > PAGE_SIZE - CRC_LEN
        {
            return Err(UeiError::corrupt(format!("page {expected_id} header inconsistent")));
        }
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        buf.copy_from_slice(bytes);
        Ok(Page { id, buf, num_slots, free_off })
    }

    /// Approximate in-memory footprint of a buffered page (used by the
    /// experiment harness to express the buffer-pool budget in bytes).
    pub const fn memory_footprint() -> usize {
        PAGE_SIZE + std::mem::size_of::<Page>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut p = Page::new(3);
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(p.get(0).unwrap(), b"hello");
        assert_eq!(p.get(1).unwrap(), b"world!");
        assert!(p.get(2).is_err());
        assert_eq!(p.num_slots(), 2);
    }

    #[test]
    fn fills_until_capacity() {
        let mut p = Page::new(0);
        let tuple = [0xABu8; 100];
        let mut count = 0;
        while p.insert(&tuple).is_some() {
            count += 1;
        }
        // 100-byte payload + 4-byte slot: ~78 tuples in 8 KiB.
        let expected = (PAGE_SIZE - HEADER_LEN - CRC_LEN) / (100 + SLOT_LEN);
        assert_eq!(count, expected);
        // And they are all readable.
        for s in 0..count {
            assert_eq!(p.get(s as u16).unwrap(), &tuple);
        }
    }

    #[test]
    fn rejects_oversized_tuple() {
        let mut p = Page::new(0);
        assert!(p.insert(&vec![0u8; PAGE_SIZE]).is_none());
        assert_eq!(p.num_slots(), 0);
    }

    #[test]
    fn serialization_round_trip() {
        let mut p = Page::new(7);
        p.insert(b"alpha").unwrap();
        p.insert(b"beta").unwrap();
        let bytes = p.to_bytes();
        let q = Page::from_bytes(7, &bytes).unwrap();
        assert_eq!(q.num_slots(), 2);
        assert_eq!(q.get(0).unwrap(), b"alpha");
        assert_eq!(q.get(1).unwrap(), b"beta");
        assert_eq!(q.id(), 7);
    }

    #[test]
    fn from_bytes_validates() {
        let p = Page::new(1);
        let bytes = p.to_bytes();
        // Wrong expected id.
        assert!(Page::from_bytes(2, &bytes).is_err());
        // Wrong length.
        assert!(Page::from_bytes(1, &bytes[..100]).is_err());
        // Bit flip.
        for pos in [0usize, 5, 11, 100, PAGE_SIZE - 1] {
            let mut copy = bytes;
            copy[pos] ^= 1;
            assert!(Page::from_bytes(1, &copy).is_err(), "flip at {pos}");
        }
    }

    #[test]
    fn tuples_iterator_order() {
        let mut p = Page::new(0);
        for i in 0..10u8 {
            p.insert(&[i; 8]).unwrap();
        }
        let collected: Vec<Vec<u8>> = p.tuples().map(|t| t.to_vec()).collect();
        for (i, t) in collected.iter().enumerate() {
            assert_eq!(t, &vec![i as u8; 8]);
        }
    }

    #[test]
    fn empty_page_round_trips() {
        let p = Page::new(9);
        let q = Page::from_bytes(9, &p.to_bytes()).unwrap();
        assert_eq!(q.num_slots(), 0);
        assert_eq!(q.free_space(), PAGE_SIZE - HEADER_LEN - CRC_LEN - SLOT_LEN);
    }

    #[test]
    fn free_space_decreases_monotonically() {
        let mut p = Page::new(0);
        let mut last = p.free_space();
        for _ in 0..20 {
            p.insert(&[0u8; 50]).unwrap();
            let now = p.free_space();
            assert!(now < last);
            last = now;
        }
    }
}
