//! A heap file: an append-only sequence of slotted pages in one file.
//!
//! Bulk loading writes pages sequentially; reads go through the
//! [`crate::buffer::BufferPool`]. There is no free-space map — the
//! exploration workload bulk-loads once and never updates, exactly like
//! the paper's experiment setup.

use std::path::{Path, PathBuf};

use uei_storage::DiskTracker;
use uei_types::{Result, UeiError};

use crate::page::{Page, PageId, PAGE_SIZE};

/// An immutable-after-creation heap file of slotted pages.
#[derive(Debug)]
pub struct HeapFile {
    path: PathBuf,
    num_pages: u32,
    /// Multiplier applied to the *modeled* bytes of every page read.
    ///
    /// The paper's baseline stores the full-width SDSS `PhotoObjAll`
    /// tuples (40 GB / 10⁷ rows ≈ 4 KB each) while exploring only five
    /// numeric attributes; reproducing that width physically would need
    /// tens of gigabytes of scratch disk. Instead the table stores the
    /// five attributes and charges the I/O model as if each row carried
    /// its unexplored columns too. Physical reads are unaffected.
    charge_factor: f64,
}

impl HeapFile {
    /// Bulk-creates a heap file from tuples. Tuples that do not fit the
    /// current page start a new one; a tuple larger than a page is an
    /// error.
    pub fn create<'a>(
        path: impl Into<PathBuf>,
        tuples: impl Iterator<Item = &'a [u8]>,
        tracker: &DiskTracker,
    ) -> Result<HeapFile> {
        let path = path.into();
        let mut images: Vec<u8> = Vec::new();
        let mut current = Page::new(0);
        let mut num_pages: u32 = 0;
        for tuple in tuples {
            if current.insert(tuple).is_none() {
                if current.num_slots() == 0 {
                    return Err(UeiError::invalid_config(format!(
                        "tuple of {} bytes exceeds page capacity",
                        tuple.len()
                    )));
                }
                images.extend_from_slice(&current.to_bytes());
                num_pages += 1;
                current = Page::new(num_pages);
                if current.insert(tuple).is_none() {
                    return Err(UeiError::invalid_config(format!(
                        "tuple of {} bytes exceeds page capacity",
                        tuple.len()
                    )));
                }
            }
        }
        if current.num_slots() > 0 {
            images.extend_from_slice(&current.to_bytes());
            num_pages += 1;
        }
        tracker.write_file(&path, &images)?;
        Ok(HeapFile { path, num_pages, charge_factor: 1.0 })
    }

    /// Opens an existing heap file (page count derived from file length).
    pub fn open(path: impl Into<PathBuf>) -> Result<HeapFile> {
        let path = path.into();
        let len = std::fs::metadata(&path).map_err(|e| UeiError::io(&path, e))?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(UeiError::corrupt(format!(
                "heap file length {len} is not a multiple of the page size"
            )));
        }
        Ok(HeapFile { path, num_pages: (len / PAGE_SIZE as u64) as u32, charge_factor: 1.0 })
    }

    /// Sets the modeled-bytes multiplier for page reads (see
    /// [`HeapFile::charge_factor`] docs). Must be ≥ 1.
    pub fn set_charge_factor(&mut self, factor: f64) -> Result<()> {
        if !(factor >= 1.0) {
            return Err(UeiError::invalid_config(format!(
                "charge factor must be >= 1, got {factor}"
            )));
        }
        self.charge_factor = factor;
        Ok(())
    }

    /// The modeled-bytes multiplier.
    pub fn charge_factor(&self) -> f64 {
        self.charge_factor
    }

    /// Modeled size of the heap (physical size × charge factor).
    pub fn logical_size_bytes(&self) -> u64 {
        (self.size_bytes() as f64 * self.charge_factor) as u64
    }

    /// Number of pages.
    pub fn num_pages(&self) -> u32 {
        self.num_pages
    }

    /// File size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.num_pages as u64 * PAGE_SIZE as u64
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads one page from disk, charging the tracker. `sequential` skips
    /// the seek charge (the buffer pool passes `true` when this read
    /// directly follows the previous page).
    pub fn read_page(&self, id: PageId, tracker: &DiskTracker, sequential: bool) -> Result<Page> {
        if id >= self.num_pages {
            return Err(UeiError::not_found(format!(
                "page {id} (heap has {} pages)",
                self.num_pages
            )));
        }
        use std::io::{Read, Seek, SeekFrom};
        let mut f = std::fs::File::open(&self.path).map_err(|e| UeiError::io(&self.path, e))?;
        f.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))
            .map_err(|e| UeiError::io(&self.path, e))?;
        let mut buf = vec![0u8; PAGE_SIZE];
        f.read_exact(&mut buf).map_err(|e| UeiError::io(&self.path, e))?;
        let charged = (PAGE_SIZE as f64 * self.charge_factor) as u64;
        tracker.record_read(charged, if sequential { 0 } else { 1 });
        Page::from_bytes(id, &buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uei_storage::IoProfile;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "uei-heap-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("heap.db")
    }

    #[test]
    fn create_open_read_round_trip() {
        let path = temp_path("roundtrip");
        let tracker = DiskTracker::new(IoProfile::instant());
        let tuples: Vec<Vec<u8>> = (0..1000u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let heap = HeapFile::create(&path, tuples.iter().map(|t| t.as_slice()), &tracker).unwrap();
        assert!(heap.num_pages() >= 1);

        let reopened = HeapFile::open(&path).unwrap();
        assert_eq!(reopened.num_pages(), heap.num_pages());

        let mut seen = Vec::new();
        for pid in 0..heap.num_pages() {
            let page = reopened.read_page(pid, &tracker, pid > 0).unwrap();
            for t in page.tuples() {
                seen.push(u32::from_le_bytes(t.try_into().unwrap()));
            }
        }
        assert_eq!(seen, (0..1000).collect::<Vec<_>>());
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn multi_page_layout() {
        let path = temp_path("multipage");
        let tracker = DiskTracker::new(IoProfile::instant());
        // 500-byte tuples: ~16 per page, so 100 tuples need several pages.
        let tuple = vec![7u8; 500];
        let tuples: Vec<&[u8]> = (0..100).map(|_| tuple.as_slice()).collect();
        let heap = HeapFile::create(&path, tuples.into_iter(), &tracker).unwrap();
        assert!(heap.num_pages() > 4, "{} pages", heap.num_pages());
        assert_eq!(heap.size_bytes(), heap.num_pages() as u64 * PAGE_SIZE as u64);
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn rejects_tuple_larger_than_page() {
        let path = temp_path("huge");
        let tracker = DiskTracker::new(IoProfile::instant());
        let huge = vec![0u8; PAGE_SIZE];
        let result = HeapFile::create(&path, std::iter::once(huge.as_slice()), &tracker);
        assert!(result.is_err());
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn empty_heap() {
        let path = temp_path("empty");
        let tracker = DiskTracker::new(IoProfile::instant());
        let heap = HeapFile::create(&path, std::iter::empty(), &tracker).unwrap();
        assert_eq!(heap.num_pages(), 0);
        assert!(heap.read_page(0, &tracker, false).is_err());
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn open_rejects_truncated_file() {
        let path = temp_path("truncated");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 100]).unwrap();
        assert!(HeapFile::open(&path).is_err());
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn sequential_flag_controls_seek_charge() {
        let path = temp_path("seeks");
        let tracker = DiskTracker::new(IoProfile::instant());
        let tuple = vec![1u8; 1000];
        let tuples: Vec<&[u8]> = (0..50).map(|_| tuple.as_slice()).collect();
        let heap = HeapFile::create(&path, tuples.into_iter(), &tracker).unwrap();
        let before = tracker.snapshot();
        heap.read_page(0, &tracker, false).unwrap();
        heap.read_page(1, &tracker, true).unwrap();
        heap.read_page(2, &tracker, true).unwrap();
        let d = tracker.delta(&before);
        assert_eq!(d.stats.seeks, 1);
        assert_eq!(d.stats.bytes_read, 3 * PAGE_SIZE as u64);
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}
