//! An LRU buffer pool with a page budget.
//!
//! The paper restricts both schemes to a memory footprint of ~1 % of the
//! dataset (§4.2); for the DBMS scheme that memory is the buffer pool.
//! When the table is 100× the pool, every full scan faults in essentially
//! every page — which is exactly why the baseline's iteration time is a
//! full-table disk read.
//!
//! Misses are charged to the shared [`DiskTracker`]: a miss whose page id
//! directly follows the previously missed page is charged as sequential
//! I/O (no seek), anything else pays a seek. This mirrors how a real scan
//! through a cold buffer pool behaves on disk.

use std::sync::Arc;

use uei_storage::lru::LruMap;
use uei_storage::DiskTracker;
use uei_types::{Result, UeiError};

use crate::heap::HeapFile;
use crate::page::{Page, PageId};

/// Buffer pool hit/miss counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BufferStats {
    /// Page requests served from memory.
    pub hits: u64,
    /// Page requests that went to disk.
    pub misses: u64,
    /// Pages evicted.
    pub evictions: u64,
}

impl BufferStats {
    /// Hit ratio in `[0, 1]` (0 when no requests).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fixed-capacity LRU page cache over one heap file.
#[derive(Debug)]
pub struct BufferPool {
    capacity_pages: usize,
    frames: LruMap<PageId, Arc<Page>>,
    stats: BufferStats,
    last_disk_page: Option<PageId>,
    tracker: DiskTracker,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity_pages` pages.
    pub fn new(capacity_pages: usize, tracker: DiskTracker) -> Result<BufferPool> {
        if capacity_pages == 0 {
            return Err(UeiError::invalid_config("buffer pool needs capacity >= 1 page"));
        }
        Ok(BufferPool {
            capacity_pages,
            frames: LruMap::new(),
            stats: BufferStats::default(),
            last_disk_page: None,
            tracker,
        })
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity_pages
    }

    /// Pages currently resident.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Fetches a page, reading from `heap` on a miss and evicting LRU pages
    /// to stay within capacity.
    pub fn fetch(&mut self, heap: &HeapFile, id: PageId) -> Result<Arc<Page>> {
        if let Some(page) = self.frames.get(&id) {
            self.stats.hits += 1;
            return Ok(Arc::clone(page));
        }
        self.stats.misses += 1;
        let sequential = self.last_disk_page.map(|p| p + 1 == id).unwrap_or(false);
        let page = Arc::new(heap.read_page(id, &self.tracker, sequential)?);
        self.last_disk_page = Some(id);
        self.frames.insert(id, Arc::clone(&page));
        while self.frames.len() > self.capacity_pages {
            self.frames.pop_lru();
            self.stats.evictions += 1;
        }
        Ok(page)
    }

    /// Empties the pool (e.g. between experiment runs).
    pub fn clear(&mut self) {
        self.frames.clear();
        self.last_disk_page = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use uei_storage::IoProfile;

    fn build_heap(tag: &str, tuples: usize) -> (HeapFile, DiskTracker, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "uei-bufpool-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let tracker = DiskTracker::new(IoProfile::instant());
        let tuple = vec![9u8; 800]; // ~10 tuples per page
        let all: Vec<&[u8]> = (0..tuples).map(|_| tuple.as_slice()).collect();
        let heap = HeapFile::create(dir.join("t.db"), all.into_iter(), &tracker).unwrap();
        (heap, tracker, dir)
    }

    #[test]
    fn caches_within_capacity() {
        let (heap, tracker, dir) = build_heap("cache", 50);
        let mut pool = BufferPool::new(heap.num_pages() as usize, tracker.clone()).unwrap();
        for id in 0..heap.num_pages() {
            pool.fetch(&heap, id).unwrap();
        }
        let before = tracker.snapshot();
        for id in 0..heap.num_pages() {
            pool.fetch(&heap, id).unwrap();
        }
        assert_eq!(tracker.delta(&before).stats.bytes_read, 0, "all hits");
        assert_eq!(pool.stats().hits as u32, heap.num_pages());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn small_pool_thrashes_on_repeated_scans() {
        let (heap, tracker, dir) = build_heap("thrash", 200);
        let pages = heap.num_pages();
        assert!(pages >= 10);
        // Pool of 10 % of the table.
        let mut pool = BufferPool::new((pages as usize / 10).max(1), tracker.clone()).unwrap();
        // Two full sequential scans: LRU + sequential access = zero reuse.
        for _ in 0..2 {
            for id in 0..pages {
                pool.fetch(&heap, id).unwrap();
            }
        }
        assert_eq!(pool.stats().hits, 0, "LRU gives no reuse across sequential scans");
        assert_eq!(pool.stats().misses as u32, 2 * pages);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequential_misses_charge_one_seek() {
        let (heap, tracker, dir) = build_heap("seq", 200);
        let mut pool = BufferPool::new(4, tracker.clone()).unwrap();
        let before = tracker.snapshot();
        for id in 0..heap.num_pages() {
            pool.fetch(&heap, id).unwrap();
        }
        let d = tracker.delta(&before);
        assert_eq!(d.stats.seeks, 1, "a pure sequential scan seeks once");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn random_access_charges_seeks() {
        let (heap, tracker, dir) = build_heap("random", 200);
        let mut pool = BufferPool::new(2, tracker.clone()).unwrap();
        let pages = heap.num_pages();
        let before = tracker.snapshot();
        // Jump around: every miss is discontiguous.
        for i in 0..10 {
            pool.fetch(&heap, (i * 7) % pages).unwrap();
        }
        let d = tracker.delta(&before);
        assert!(d.stats.seeks >= 9, "random access must pay seeks, got {}", d.stats.seeks);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eviction_respects_capacity() {
        let (heap, tracker, dir) = build_heap("evict", 100);
        let mut pool = BufferPool::new(3, tracker).unwrap();
        for id in 0..heap.num_pages() {
            pool.fetch(&heap, id).unwrap();
            assert!(pool.resident() <= 3);
        }
        assert!(pool.stats().evictions > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_capacity_rejected() {
        let tracker = DiskTracker::new(IoProfile::instant());
        assert!(BufferPool::new(0, tracker).is_err());
    }

    #[test]
    fn clear_forces_rereads() {
        let (heap, tracker, dir) = build_heap("clear", 30);
        let mut pool = BufferPool::new(64, tracker.clone()).unwrap();
        pool.fetch(&heap, 0).unwrap();
        pool.clear();
        let before = tracker.snapshot();
        pool.fetch(&heap, 0).unwrap();
        assert!(tracker.delta(&before).stats.bytes_read > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
