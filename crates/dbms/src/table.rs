//! Typed row storage: `(row id, f64 attributes)` tuples on a heap file.
//!
//! A table directory holds the heap file plus a small JSON-free metadata
//! file (dimension count and row count, fixed binary header). Reads go
//! through a caller-supplied [`BufferPool`], so the experiment harness can
//! enforce the paper's memory restriction.

use std::path::{Path, PathBuf};

use uei_storage::DiskTracker;
use uei_types::{DataPoint, Result, Schema, UeiError};

use crate::buffer::BufferPool;
use crate::heap::HeapFile;
use crate::page::PageId;

/// Metadata file name inside a table directory.
const META_FILE: &str = "table.meta";
const META_MAGIC: &[u8; 8] = b"UEITBL01";

/// A bulk-loaded, read-only table of numeric rows.
#[derive(Debug)]
pub struct Table {
    dir: PathBuf,
    heap: HeapFile,
    schema: Schema,
    num_rows: u64,
    row_pad_bytes: u32,
}

fn encode_tuple(point: &DataPoint) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + point.values.len() * 8);
    out.extend_from_slice(&point.id.as_u64().to_le_bytes());
    for &v in &point.values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

fn decode_tuple(bytes: &[u8], dims: usize) -> Result<DataPoint> {
    let want = 8 + dims * 8;
    if bytes.len() != want {
        return Err(UeiError::corrupt(format!("tuple is {} bytes, expected {want}", bytes.len())));
    }
    let id = u64::from_le_bytes(bytes[..8].try_into().expect("8b"));
    let mut values = Vec::with_capacity(dims);
    for d in 0..dims {
        let s = 8 + d * 8;
        values.push(f64::from_bits(u64::from_le_bytes(bytes[s..s + 8].try_into().expect("8b"))));
    }
    Ok(DataPoint::new(id, values))
}

impl Table {
    /// Bulk-loads rows into a new table directory.
    pub fn create(
        dir: impl Into<PathBuf>,
        schema: Schema,
        rows: &[DataPoint],
        tracker: &DiskTracker,
    ) -> Result<Table> {
        Table::create_padded(dir, schema, rows, 0, tracker)
    }

    /// Like [`Table::create`], but each row is *logically* `row_pad_bytes`
    /// wider than the explored attributes: the I/O model charges page reads
    /// as if that padding were stored. This reproduces the paper's setup,
    /// where MySQL holds the full-width `PhotoObjAll` tuples (≈4 KB/row)
    /// while the exploration touches five numeric columns.
    pub fn create_padded(
        dir: impl Into<PathBuf>,
        schema: Schema,
        rows: &[DataPoint],
        row_pad_bytes: u32,
        tracker: &DiskTracker,
    ) -> Result<Table> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| UeiError::io(&dir, e))?;
        let dims = schema.dims();
        for row in rows {
            schema.check_dims(&row.values)?;
        }
        let encoded: Vec<Vec<u8>> = rows.iter().map(encode_tuple).collect();
        let mut heap =
            HeapFile::create(dir.join("heap.db"), encoded.iter().map(|t| t.as_slice()), tracker)?;
        heap.set_charge_factor(charge_factor(dims, row_pad_bytes))?;

        let mut meta = Vec::with_capacity(8 + 4 + 8 + 4);
        meta.extend_from_slice(META_MAGIC);
        meta.extend_from_slice(&(dims as u32).to_le_bytes());
        meta.extend_from_slice(&(rows.len() as u64).to_le_bytes());
        meta.extend_from_slice(&row_pad_bytes.to_le_bytes());
        // Schema follows as JSON for self-description.
        meta.extend_from_slice(
            &serde_json::to_vec(&schema)
                .map_err(|e| UeiError::corrupt(format!("schema serialization: {e}")))?,
        );
        tracker.write_file(&dir.join(META_FILE), &meta)?;

        Ok(Table { dir, heap, schema, num_rows: rows.len() as u64, row_pad_bytes })
    }

    /// Opens an existing table directory.
    pub fn open(dir: impl Into<PathBuf>, tracker: &DiskTracker) -> Result<Table> {
        let dir = dir.into();
        let meta = tracker.read_file(&dir.join(META_FILE))?;
        if meta.len() < 24 || &meta[..8] != META_MAGIC {
            return Err(UeiError::corrupt("bad table metadata"));
        }
        let dims = u32::from_le_bytes(meta[8..12].try_into().expect("4b")) as usize;
        let num_rows = u64::from_le_bytes(meta[12..20].try_into().expect("8b"));
        let row_pad_bytes = u32::from_le_bytes(meta[20..24].try_into().expect("4b"));
        let schema: Schema = serde_json::from_slice(&meta[24..])
            .map_err(|e| UeiError::corrupt(format!("schema parse: {e}")))?;
        if schema.dims() != dims {
            return Err(UeiError::corrupt("table metadata dims disagree with schema"));
        }
        let mut heap = HeapFile::open(dir.join("heap.db"))?;
        heap.set_charge_factor(charge_factor(dims, row_pad_bytes))?;
        Ok(Table { dir, heap, schema, num_rows, row_pad_bytes })
    }

    /// Logical padding per row (0 = rows are exactly the explored columns).
    pub fn row_pad_bytes(&self) -> u32 {
        self.row_pad_bytes
    }

    /// Modeled table size (what a full scan is charged).
    pub fn logical_size_bytes(&self) -> u64 {
        self.heap.logical_size_bytes()
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> u64 {
        self.num_rows
    }

    /// Number of heap pages.
    pub fn num_pages(&self) -> u32 {
        self.heap.num_pages()
    }

    /// Total heap size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.heap.size_bytes()
    }

    /// The table's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Streams every row through `visit`, page by page via the pool —
    /// the exhaustive scan of Algorithm 1.
    pub fn scan(&self, pool: &mut BufferPool, mut visit: impl FnMut(DataPoint)) -> Result<()> {
        let dims = self.schema.dims();
        for pid in 0..self.heap.num_pages() {
            let page = pool.fetch(&self.heap, pid as PageId)?;
            for tuple in page.tuples() {
                visit(decode_tuple(tuple, dims)?);
            }
        }
        Ok(())
    }

    /// Collects rows matching a predicate (a "SELECT … WHERE" full scan).
    pub fn filter(
        &self,
        pool: &mut BufferPool,
        mut predicate: impl FnMut(&DataPoint) -> bool,
    ) -> Result<Vec<DataPoint>> {
        let mut out = Vec::new();
        self.scan(pool, |p| {
            if predicate(&p) {
                out.push(p);
            }
        })?;
        Ok(out)
    }
}

/// Modeled-bytes multiplier: (physical row + padding) / physical row.
fn charge_factor(dims: usize, row_pad_bytes: u32) -> f64 {
    let physical = (8 + dims * 8) as f64;
    (physical + row_pad_bytes as f64) / physical
}

#[cfg(test)]
mod tests {
    use super::*;
    use uei_storage::IoProfile;
    use uei_types::{AttributeDef, Rng};

    fn schema2() -> Schema {
        Schema::new(vec![
            AttributeDef::new("x", 0.0, 100.0).unwrap(),
            AttributeDef::new("y", 0.0, 100.0).unwrap(),
        ])
        .unwrap()
    }

    fn rows(n: usize) -> Vec<DataPoint> {
        let mut rng = Rng::new(4);
        (0..n)
            .map(|i| {
                DataPoint::new(i as u64, vec![rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)])
            })
            .collect()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "uei-table-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_open_scan_round_trip() {
        let dir = temp_dir("roundtrip");
        let tracker = DiskTracker::new(IoProfile::instant());
        let data = rows(500);
        let table = Table::create(&dir, schema2(), &data, &tracker).unwrap();
        assert_eq!(table.num_rows(), 500);
        assert!(table.num_pages() > 1);

        let reopened = Table::open(&dir, &tracker).unwrap();
        assert_eq!(reopened.num_rows(), 500);
        assert_eq!(reopened.schema(), &schema2());

        let mut pool = BufferPool::new(4, tracker).unwrap();
        let mut seen = Vec::new();
        reopened.scan(&mut pool, |p| seen.push(p)).unwrap();
        assert_eq!(seen.len(), 500);
        assert_eq!(seen, data, "scan preserves load order and values");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn filter_full_scan() {
        let dir = temp_dir("filter");
        let tracker = DiskTracker::new(IoProfile::instant());
        let data = rows(300);
        let table = Table::create(&dir, schema2(), &data, &tracker).unwrap();
        let mut pool = BufferPool::new(4, tracker).unwrap();
        let got = table.filter(&mut pool, |p| p.values[0] < 50.0).unwrap();
        let want: Vec<&DataPoint> = data.iter().filter(|p| p.values[0] < 50.0).collect();
        assert_eq!(got.len(), want.len());
        assert!(!got.is_empty() && got.len() < 300);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_rejects_wrong_dims() {
        let dir = temp_dir("dims");
        let tracker = DiskTracker::new(IoProfile::instant());
        let bad = vec![DataPoint::new(0u64, vec![1.0])];
        assert!(Table::create(&dir, schema2(), &bad, &tracker).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repeated_scans_with_tiny_pool_reread_everything() {
        let dir = temp_dir("restricted");
        let tracker = DiskTracker::new(IoProfile::instant());
        let data = rows(5000);
        let table = Table::create(&dir, schema2(), &data, &tracker).unwrap();
        assert!(table.num_pages() >= 10);
        // The paper's regime: pool ≈ 1 % of the table (at least 1 page).
        let mut pool =
            BufferPool::new((table.num_pages() as usize / 100).max(1), tracker.clone()).unwrap();
        let before = tracker.snapshot();
        let mut count = 0;
        table.scan(&mut pool, |_| count += 1).unwrap();
        let first = tracker.delta(&before).stats.bytes_read;
        assert_eq!(first, table.size_bytes(), "cold scan reads the whole table");

        let before = tracker.snapshot();
        table.scan(&mut pool, |_| {}).unwrap();
        let second = tracker.delta(&before).stats.bytes_read;
        assert_eq!(
            second,
            table.size_bytes(),
            "with pool << table, the second scan rereads everything"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn padded_table_charges_logical_bytes() {
        let dir = temp_dir("padded");
        let tracker = DiskTracker::new(IoProfile::instant());
        let data = rows(500);
        // 5 numeric dims would be 48 B physical; pad to ~10× that.
        let table = Table::create_padded(&dir, schema2(), &data, 456, &tracker).unwrap();
        assert_eq!(table.row_pad_bytes(), 456);
        // Physical row: 8 id + 2×8 values = 24 B; factor = (24+456)/24 = 20.
        assert_eq!(table.logical_size_bytes(), table.size_bytes() * 20);

        let mut pool = BufferPool::new(1, tracker.clone()).unwrap();
        let before = tracker.snapshot();
        table.scan(&mut pool, |_| {}).unwrap();
        assert_eq!(
            tracker.delta(&before).stats.bytes_read,
            table.logical_size_bytes(),
            "scan charged at full logical width"
        );

        // Reopen: pad factor survives in the metadata.
        let reopened = Table::open(&dir, &tracker).unwrap();
        assert_eq!(reopened.row_pad_bytes(), 456);
        assert_eq!(reopened.logical_size_bytes(), table.logical_size_bytes());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_corrupt_meta() {
        let dir = temp_dir("badmeta");
        let tracker = DiskTracker::new(IoProfile::instant());
        Table::create(&dir, schema2(), &rows(10), &tracker).unwrap();
        std::fs::write(dir.join(META_FILE), b"garbage").unwrap();
        assert!(Table::open(&dir, &tracker).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_table() {
        let dir = temp_dir("empty");
        let tracker = DiskTracker::new(IoProfile::instant());
        let table = Table::create(&dir, schema2(), &[], &tracker).unwrap();
        assert_eq!(table.num_rows(), 0);
        assert_eq!(table.num_pages(), 0);
        let mut pool = BufferPool::new(1, tracker).unwrap();
        let mut n = 0;
        table.scan(&mut pool, |_| n += 1).unwrap();
        assert_eq!(n, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
