//! The exhaustive most-uncertain-tuple search.
//!
//! This is what the DBMS scheme does on every iteration of Algorithm 1:
//! "in order to find the most uncertain object, it still needs to perform
//! an exhaustive search over the entire database" (paper §1). The scan
//! streams every tuple through the buffer pool, scores it with the current
//! model, and keeps the argmax — so with a pool ≪ table, each iteration
//! reads the whole table from (modeled) disk. The paper measures this at
//! >12 s per iteration on NVMe for 40 GB.

use uei_learn::strategy::UncertaintyMeasure;
use uei_learn::Classifier;
use uei_types::{DataPoint, Result, RowId};

use crate::buffer::BufferPool;
use crate::table::Table;

/// Result of one exhaustive scan.
#[derive(Debug, Clone)]
pub struct ScanOutcome {
    /// The most uncertain tuple, if any candidate was eligible.
    pub best: Option<DataPoint>,
    /// Its uncertainty score.
    pub best_score: f64,
    /// Tuples examined (the `n` of the paper's O(kn) claim).
    pub examined: u64,
}

/// Scans the whole table and returns the unlabeled tuple maximizing the
/// uncertainty measure (paper Eq. 2), skipping rows for which `is_labeled`
/// returns true. Ties break toward the lowest row id for determinism.
pub fn exhaustive_most_uncertain(
    table: &Table,
    pool: &mut BufferPool,
    model: &dyn Classifier,
    measure: UncertaintyMeasure,
    mut is_labeled: impl FnMut(RowId) -> bool,
) -> Result<ScanOutcome> {
    let mut best: Option<DataPoint> = None;
    let mut best_score = f64::NEG_INFINITY;
    let mut examined = 0u64;
    table.scan(pool, |point| {
        examined += 1;
        if is_labeled(point.id) {
            return;
        }
        let score = measure.score(model.predict_proba(&point.values));
        let better = score > best_score
            || (score == best_score && best.as_ref().map(|b| point.id < b.id).unwrap_or(true));
        if better {
            best_score = score;
            best = Some(point);
        }
    })?;
    if best.is_none() {
        best_score = 0.0;
    }
    Ok(ScanOutcome { best, best_score, examined })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use uei_storage::{DiskTracker, IoProfile};
    use uei_types::{AttributeDef, Label, Schema};

    struct CoordModel;
    impl Classifier for CoordModel {
        fn predict_proba(&self, x: &[f64]) -> f64 {
            (x[0] / 100.0).clamp(0.0, 1.0)
        }
        fn dims(&self) -> usize {
            1
        }
    }

    fn build(tag: &str, xs: &[f64]) -> (Table, DiskTracker, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "uei-scan-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let schema = Schema::new(vec![AttributeDef::new("x", 0.0, 100.0).unwrap()]).unwrap();
        let rows: Vec<DataPoint> =
            xs.iter().enumerate().map(|(i, &x)| DataPoint::new(i as u64, vec![x])).collect();
        let tracker = DiskTracker::new(IoProfile::instant());
        let table = Table::create(&dir, schema, &rows, &tracker).unwrap();
        (table, tracker, dir)
    }

    #[test]
    fn finds_the_most_uncertain_tuple() {
        // Posterior = x/100, so x = 50 is the boundary.
        let (table, tracker, dir) = build("argmax", &[10.0, 48.0, 90.0, 55.0]);
        let mut pool = BufferPool::new(4, tracker).unwrap();
        let out = exhaustive_most_uncertain(
            &table,
            &mut pool,
            &CoordModel,
            UncertaintyMeasure::LeastConfidence,
            |_| false,
        )
        .unwrap();
        assert_eq!(out.best.unwrap().values[0], 48.0);
        assert_eq!(out.examined, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn skips_labeled_rows() {
        let (table, tracker, dir) = build("skip", &[48.0, 52.0, 90.0]);
        let mut pool = BufferPool::new(4, tracker).unwrap();
        let labeled = RowId(0);
        let out = exhaustive_most_uncertain(
            &table,
            &mut pool,
            &CoordModel,
            UncertaintyMeasure::LeastConfidence,
            |id| id == labeled,
        )
        .unwrap();
        assert_eq!(out.best.unwrap().id, RowId(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_labeled_returns_none() {
        let (table, tracker, dir) = build("none", &[1.0, 2.0]);
        let mut pool = BufferPool::new(4, tracker).unwrap();
        let out = exhaustive_most_uncertain(
            &table,
            &mut pool,
            &CoordModel,
            UncertaintyMeasure::LeastConfidence,
            |_| true,
        )
        .unwrap();
        assert!(out.best.is_none());
        assert_eq!(out.examined, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tie_breaks_to_lowest_id() {
        let (table, tracker, dir) = build("ties", &[40.0, 60.0, 40.0]);
        let mut pool = BufferPool::new(4, tracker).unwrap();
        // 40 and 60 are equidistant from the boundary.
        let out = exhaustive_most_uncertain(
            &table,
            &mut pool,
            &CoordModel,
            UncertaintyMeasure::LeastConfidence,
            |_| false,
        )
        .unwrap();
        assert_eq!(out.best.unwrap().id, RowId(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn each_iteration_rereads_table_when_pool_is_small() {
        // The paper's core observation, reproduced end to end with a real
        // trained model.
        let xs: Vec<f64> = (0..5000).map(|i| (i % 100) as f64).collect();
        let (table, tracker, dir) = build("reread", &xs);
        let examples = vec![(vec![10.0], Label::Negative), (vec![90.0], Label::Positive)];
        let model = uei_learn::Dwknn::fit(1, &examples).unwrap();
        let mut pool = BufferPool::new(1, tracker.clone()).unwrap();
        for _ in 0..3 {
            let before = tracker.snapshot();
            let out = exhaustive_most_uncertain(
                &table,
                &mut pool,
                &model,
                UncertaintyMeasure::LeastConfidence,
                |_| false,
            )
            .unwrap();
            assert_eq!(out.examined, 5000);
            assert_eq!(
                tracker.delta(&before).stats.bytes_read,
                table.size_bytes(),
                "every iteration reads the full table"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
