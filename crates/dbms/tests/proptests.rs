//! Property-based tests for the row store: pages, heap/table round-trips,
//! and B+-tree vs a sorted reference.

use proptest::prelude::*;
use uei_dbms::btree::BPlusTree;
use uei_dbms::buffer::BufferPool;
use uei_dbms::page::Page;
use uei_dbms::table::Table;
use uei_storage::io::{DiskTracker, IoProfile};
use uei_types::{AttributeDef, DataPoint, Schema};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn page_holds_inserted_tuples_in_order(
        tuples in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..120), 1..60)
    ) {
        let mut page = Page::new(0);
        let mut stored = Vec::new();
        for t in &tuples {
            if page.insert(t).is_some() {
                stored.push(t.clone());
            }
        }
        prop_assert_eq!(page.num_slots(), stored.len());
        for (slot, want) in stored.iter().enumerate() {
            prop_assert_eq!(page.get(slot as u16).unwrap(), want.as_slice());
        }
        // Round trip through serialization.
        let bytes = page.to_bytes();
        let reparsed = Page::from_bytes(0, &bytes).unwrap();
        for (slot, want) in stored.iter().enumerate() {
            prop_assert_eq!(reparsed.get(slot as u16).unwrap(), want.as_slice());
        }
    }

    #[test]
    fn table_scan_returns_exactly_the_load(
        values in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..150),
        pool_pages in 1usize..8,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "uei-prop-table-{}-{:?}", std::process::id(), std::thread::current().id()));
        let _ = std::fs::remove_dir_all(&dir);
        let schema = Schema::new(vec![
            AttributeDef::new("x", 0.0, 100.0).unwrap(),
            AttributeDef::new("y", 0.0, 100.0).unwrap(),
        ]).unwrap();
        let rows: Vec<DataPoint> = values
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| DataPoint::new(i as u64, vec![x, y]))
            .collect();
        let tracker = DiskTracker::new(IoProfile::instant());
        let table = Table::create(&dir, schema, &rows, &tracker).unwrap();
        let mut pool = BufferPool::new(pool_pages, tracker).unwrap();
        let mut seen = Vec::new();
        table.scan(&mut pool, |p| seen.push(p)).unwrap();
        prop_assert_eq!(seen, rows);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn btree_range_matches_sorted_reference(
        entries in proptest::collection::vec((-1e3f64..1e3, 0u64..10_000), 0..400),
        lo in -1.2e3f64..1.2e3,
        width in 0.0f64..500.0,
        order in 3usize..24,
    ) {
        let mut tree = BPlusTree::new(order).unwrap();
        for &(v, r) in &entries {
            tree.insert(v, r).unwrap();
        }
        let hi = lo + width;
        let got = tree.range_entries(lo, hi);
        let mut want: Vec<(f64, u64)> = entries
            .iter()
            .filter(|(v, _)| *v >= lo && *v <= hi)
            .copied()
            .collect();
        want.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn btree_iter_all_is_globally_sorted(
        entries in proptest::collection::vec((-1e3f64..1e3, 0u64..10_000), 0..300),
        order in 3usize..16,
    ) {
        let mut tree = BPlusTree::new(order).unwrap();
        for &(v, r) in &entries {
            tree.insert(v, r).unwrap();
        }
        prop_assert_eq!(tree.len(), entries.len());
        let all = tree.iter_all();
        prop_assert_eq!(all.len(), entries.len());
        for w in all.windows(2) {
            let cmp = w[0].0.partial_cmp(&w[1].0).unwrap().then(w[0].1.cmp(&w[1].1));
            prop_assert!(cmp.is_lt(), "{:?} !< {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn padded_table_charge_is_exact_multiple(
        n in 1usize..60,
        pad in 0u32..5000,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "uei-prop-pad-{}-{:?}", std::process::id(), std::thread::current().id()));
        let _ = std::fs::remove_dir_all(&dir);
        let schema =
            Schema::new(vec![AttributeDef::new("x", 0.0, 1.0).unwrap()]).unwrap();
        let rows: Vec<DataPoint> =
            (0..n).map(|i| DataPoint::new(i as u64, vec![0.5])).collect();
        let tracker = DiskTracker::new(IoProfile::instant());
        let table = Table::create_padded(&dir, schema, &rows, pad, &tracker).unwrap();
        // physical row = 8 id + 8 value = 16 bytes.
        let factor = (16.0 + pad as f64) / 16.0;
        let want = (table.size_bytes() as f64 * factor) as u64;
        prop_assert_eq!(table.logical_size_bytes(), want);
        std::fs::remove_dir_all(&dir).ok();
    }
}
