//! Property-based tests for the storage engine: chunk codec, store
//! round-trips, subspace reconstruction vs brute force, a model-based
//! LRU check, and journal durability (replay fidelity, acked-record
//! survival across kills at arbitrary write boundaries).

use std::collections::HashMap;

use proptest::prelude::*;
use uei_storage::cache::{ChunkCache, SharedChunkCache};
use uei_storage::chunk::{Chunk, ChunkId};
use uei_storage::fault::{FaultConfig, FaultInjector, KillMode};
use uei_storage::io::{DiskTracker, IoProfile};
use uei_storage::journal::{FsyncPolicy, JournalConfig, SessionJournal};
use uei_storage::lru::LruMap;
use uei_storage::merge::{
    reconstruct_region, reconstruct_region_delta, reconstruct_region_with_chunks, ChunkFetch,
    RegionChunkSet,
};
use uei_storage::postings::PostingList;
use uei_storage::store::{ColumnStore, StoreConfig};
use uei_types::{AttributeDef, DataPoint, Region, Schema};

/// Per-dimension chunk ids overlapping `region` (what the index's cell →
/// chunk mapping would hand the loader).
fn chunks_for(store: &ColumnStore, region: &Region) -> Vec<Vec<ChunkId>> {
    (0..store.schema().dims())
        .map(|d| {
            store
                .manifest()
                .chunks_overlapping(d, region.lo[d], region.hi[d])
                .unwrap()
                .iter()
                .map(|m| m.id())
                .collect()
        })
        .collect()
}

fn posting_strategy() -> impl Strategy<Value = PostingList> {
    (-1e6f64..1e6, proptest::collection::btree_set(0u64..100_000, 1..30)).prop_map(|(key, ids)| {
        PostingList::new(key, ids.into_iter().collect()).expect("sorted dedup ids")
    })
}

fn chunk_strategy() -> impl Strategy<Value = Chunk> {
    proptest::collection::btree_map(
        // Keys of a BTreeMap are unique and iterate ascending: exactly the
        // chunk invariant. Map float bits through an ordered integer key.
        0u32..1_000_000,
        proptest::collection::btree_set(0u64..100_000, 1..10),
        1..40,
    )
    .prop_map(|entries| {
        let postings: Vec<PostingList> = entries
            .into_iter()
            .map(|(k, ids)| PostingList::new(k as f64 * 0.25, ids.into_iter().collect()).unwrap())
            .collect();
        Chunk::new(ChunkId::new(1, 2), postings).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn posting_roundtrip(posting in posting_strategy()) {
        let mut w = uei_types::codec::Writer::new();
        posting.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let got = PostingList::decode(&mut uei_types::codec::Reader::new(&bytes)).unwrap();
        prop_assert_eq!(got, posting);
    }

    #[test]
    fn chunk_roundtrip_and_corruption_detected(chunk in chunk_strategy(), flip in any::<usize>()) {
        let bytes = chunk.encode().unwrap();
        let got = Chunk::decode(&bytes).unwrap();
        prop_assert_eq!(&got, &chunk);
        // Any single bit flip is caught by the CRC.
        let mut corrupted = bytes.clone();
        let pos = flip % corrupted.len();
        corrupted[pos] ^= 1;
        prop_assert!(Chunk::decode(&corrupted).is_err(), "flip at {} undetected", pos);
    }

    #[test]
    fn reconstruction_matches_brute_force(
        values in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..120),
        qx in 0.0f64..10.0,
        qy in 0.0f64..10.0,
        wx in 0.1f64..5.0,
        wy in 0.1f64..5.0,
        chunk_bytes in 64usize..2048,
    ) {
        let dir = uei_storage::testutil::TempDir::new("prop-merge");
        let schema = Schema::new(vec![
            AttributeDef::new("x", 0.0, 10.0).unwrap(),
            AttributeDef::new("y", 0.0, 10.0).unwrap(),
        ]).unwrap();
        let rows: Vec<DataPoint> = values
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| DataPoint::new(i as u64, vec![x, y]))
            .collect();
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.path(), schema, &rows, StoreConfig { chunk_target_bytes: chunk_bytes }, tracker)
            .unwrap();
        let region = Region::new(
            vec![qx, qy],
            vec![(qx + wx).min(10.5), (qy + wy).min(10.5)],
        ).unwrap();
        let (got, stats) = reconstruct_region(&store, &region, None).unwrap();
        let expect: Vec<u64> = rows
            .iter()
            .filter(|p| region.contains(&p.values).unwrap())
            .map(|p| p.id.as_u64())
            .collect();
        let got_ids: Vec<u64> = got.iter().map(|p| p.id.as_u64()).collect();
        prop_assert_eq!(got_ids, expect);
        prop_assert_eq!(stats.result_rows as usize, got.len());
        for p in &got {
            prop_assert_eq!(p, &rows[p.id.as_usize()]);
        }
            }

    /// Every fetch mode — uncached, private LRU, shared concurrent cache,
    /// and delta reconstruction against the previous region — returns
    /// bit-identical rows for the same region sequence, at any cache
    /// budget (including 0, where everything bypasses admission).
    #[test]
    fn all_cache_modes_reconstruct_identical_rows(
        values in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..100),
        queries in proptest::collection::vec(
            (0.0f64..10.0, 0.0f64..10.0, 0.1f64..5.0, 0.1f64..5.0), 1..5),
        chunk_bytes in 64usize..1024,
        budget_sel in 0u8..3,
    ) {
        let dir = uei_storage::testutil::TempDir::new("prop-modes");
        let schema = Schema::new(vec![
            AttributeDef::new("x", 0.0, 10.0).unwrap(),
            AttributeDef::new("y", 0.0, 10.0).unwrap(),
        ]).unwrap();
        let rows: Vec<DataPoint> = values
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| DataPoint::new(i as u64, vec![x, y]))
            .collect();
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.path(), schema, &rows, StoreConfig { chunk_target_bytes: chunk_bytes }, tracker)
            .unwrap();

        // 0 = bypass everything, 1 = tight (evictions), 2 = unbounded.
        let budget = match budget_sel { 0 => 0, 1 => 4 * chunk_bytes, _ => usize::MAX };
        let mut local = ChunkCache::new(budget);
        let shared = SharedChunkCache::new(budget, 4);
        let mut prev: Option<RegionChunkSet> = None;

        for (qx, qy, wx, wy) in queries {
            let region = Region::new(
                vec![qx, qy],
                vec![(qx + wx).min(10.5), (qy + wy).min(10.5)],
            ).unwrap();
            let chunks = chunks_for(&store, &region);

            let (base, _) = reconstruct_region_with_chunks(
                &store, &region, &chunks, ChunkFetch::Uncached).unwrap();
            let (cached, _) = reconstruct_region_with_chunks(
                &store, &region, &chunks, ChunkFetch::Cached(&mut local)).unwrap();
            let (shared_rows, _) = reconstruct_region_with_chunks(
                &store, &region, &chunks, ChunkFetch::Shared(&shared)).unwrap();
            let (delta_rows, _, set) = reconstruct_region_delta(
                &store, &region, &chunks, prev.as_ref(), ChunkFetch::Uncached).unwrap();
            prev = Some(set);

            prop_assert_eq!(&cached, &base, "private LRU diverged");
            prop_assert_eq!(&shared_rows, &base, "shared cache diverged");
            prop_assert_eq!(&delta_rows, &base, "delta reconstruction diverged");

            // And all of them match brute force over the raw rows.
            let expect: Vec<u64> = rows
                .iter()
                .filter(|p| region.contains(&p.values).unwrap())
                .map(|p| p.id.as_u64())
                .collect();
            let got: Vec<u64> = base.iter().map(|p| p.id.as_u64()).collect();
            prop_assert_eq!(got, expect);
        }
            }

    /// Any single-bit flip anywhere in a chunk *file* is rejected by the
    /// catalog CRC in `read_chunk_bytes` — i.e. before any decode work —
    /// so corrupted postings can never reach the learner as plausible rows.
    #[test]
    fn single_bit_flip_in_chunk_file_is_caught_before_decode(
        values in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 20..120),
        chunk_bytes in 64usize..1024,
        pick_chunk in any::<prop::sample::Index>(),
        flip in any::<usize>(),
    ) {
        let dir = uei_storage::testutil::TempDir::new("prop-bitflip");
        let schema = Schema::new(vec![
            AttributeDef::new("x", 0.0, 10.0).unwrap(),
            AttributeDef::new("y", 0.0, 10.0).unwrap(),
        ]).unwrap();
        let rows: Vec<DataPoint> = values
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| DataPoint::new(i as u64, vec![x, y]))
            .collect();
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.path(), schema, &rows, StoreConfig { chunk_target_bytes: chunk_bytes }, tracker)
            .unwrap();
        let metas: Vec<_> = store.manifest().dims.iter().flatten().cloned().collect();
        prop_assert!(!metas.is_empty());
        let meta = &metas[pick_chunk.index(metas.len())];
        let path = dir.join(meta.id().file_name());
        let clean = std::fs::read(&path).unwrap();
        let mut bad = clean.clone();
        let bit = flip % (bad.len() * 8);
        bad[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &bad).unwrap();
        match store.read_chunk_bytes(meta.id()) {
            Err(uei_types::UeiError::Corrupt { detail }) => {
                prop_assert!(
                    detail.contains("checksum"),
                    "caught by the catalog checksum, before decode: {}", detail
                );
            }
            Err(other) => prop_assert!(false, "expected Corrupt, got {:?}", other),
            Ok(_) => prop_assert!(false, "bit flip at {} undetected", bit),
        }
        // Restoring the clean bytes makes the chunk readable again.
        std::fs::write(&path, &clean).unwrap();
        prop_assert!(store.read_chunk(meta.id()).is_ok());
    }

    #[test]
    fn store_fetch_matches_originals(
        values in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..80),
        pick in proptest::collection::vec(any::<prop::sample::Index>(), 1..10),
    ) {
        let dir = uei_storage::testutil::TempDir::new("prop-fetch");
        let schema = Schema::new(vec![
            AttributeDef::new("x", 0.0, 1.0).unwrap(),
            AttributeDef::new("y", 0.0, 1.0).unwrap(),
        ]).unwrap();
        let rows: Vec<DataPoint> = values
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| DataPoint::new(i as u64, vec![x, y]))
            .collect();
        let tracker = DiskTracker::new(IoProfile::instant());
        let store =
            ColumnStore::create(dir.path(), schema, &rows, StoreConfig::default(), tracker).unwrap();
        let ids: Vec<u64> = pick.iter().map(|ix| ix.index(rows.len()) as u64).collect();
        let got = store.fetch_rows(&ids).unwrap();
        for (want_id, got_row) in ids.iter().zip(&got) {
            prop_assert_eq!(got_row, &rows[*want_id as usize]);
        }
            }

    /// Model-based LRU test: random op sequences against a naive reference.
    #[test]
    fn lru_matches_reference_model(
        ops in proptest::collection::vec((0u8..4, 0u8..16, any::<u32>()), 1..300)
    ) {
        let mut lru: LruMap<u8, u32> = LruMap::new();
        // Reference: Vec of (key, value) ordered MRU-first.
        let mut model: Vec<(u8, u32)> = Vec::new();

        for (op, key, value) in ops {
            match op {
                0 => {
                    // insert
                    let got = lru.insert(key, value);
                    let old = model.iter().position(|(k, _)| *k == key).map(|i| model.remove(i).1);
                    model.insert(0, (key, value));
                    prop_assert_eq!(got, old);
                }
                1 => {
                    // get
                    let got = lru.get(&key).copied();
                    let want = model.iter().position(|(k, _)| *k == key).map(|i| {
                        let e = model.remove(i);
                        let v = e.1;
                        model.insert(0, e);
                        v
                    });
                    prop_assert_eq!(got, want);
                }
                2 => {
                    // remove
                    let got = lru.remove(&key);
                    let want =
                        model.iter().position(|(k, _)| *k == key).map(|i| model.remove(i).1);
                    prop_assert_eq!(got, want);
                }
                _ => {
                    // pop_lru
                    let got = lru.pop_lru();
                    let want = model.pop();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(lru.len(), model.len());
            let order: Vec<u8> = lru.keys_mru_to_lru().copied().collect();
            let want_order: Vec<u8> = model.iter().map(|(k, _)| *k).collect();
            prop_assert_eq!(order, want_order);
        }
    }

    #[test]
    fn scan_all_yields_rows_in_id_order(
        values in proptest::collection::vec(0.0f64..1.0, 1..200)
    ) {
        let dir = uei_storage::testutil::TempDir::new("prop-scan");
        let schema =
            Schema::new(vec![AttributeDef::new("x", 0.0, 1.0).unwrap()]).unwrap();
        let rows: Vec<DataPoint> = values
            .iter()
            .enumerate()
            .map(|(i, &x)| DataPoint::new(i as u64, vec![x]))
            .collect();
        let tracker = DiskTracker::new(IoProfile::instant());
        let store =
            ColumnStore::create(dir.path(), schema, &rows, StoreConfig::default(), tracker).unwrap();
        let mut seen = Vec::new();
        store.scan_all(|p| seen.push(p)).unwrap();
        prop_assert_eq!(seen, rows);
            }
}

/// Length-prefixed concatenation: the snapshot stand-in the journal
/// proptests use for "everything the discarded records captured".
fn encode_state(records: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in records {
        out.extend_from_slice(&(r.len() as u32).to_le_bytes());
        out.extend_from_slice(r);
    }
    out
}

fn decode_state(mut bytes: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        out.push(bytes[4..4 + len].to_vec());
        bytes = &bytes[4 + len..];
    }
    out
}

/// Small byte alphabet and short payloads: duplicates (including exact
/// duplicate records) are common, and empty payloads are legal.
fn payload_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(0u8..4, 0..12), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Replay fidelity: for ANY append sequence (duplicates, empty
    /// payloads, empty sessions) interleaved with snapshots at arbitrary
    /// points, `snapshot state + surviving records` reconstructs the full
    /// appended sequence bit-identically — across tiny segments (many
    /// rotations) and any fsync policy.
    #[test]
    fn journal_replay_reconstructs_any_label_sequence(
        payloads in payload_strategy(),
        snap_after in proptest::collection::vec(any::<bool>(), 0..40),
        segment_bytes in 32u64..256,
        fsync_sel in 0u8..3,
    ) {
        let dir = uei_storage::testutil::TempDir::new("prop-journal");
        let fsync = match fsync_sel {
            0 => FsyncPolicy::Always,
            1 => FsyncPolicy::Never,
            _ => FsyncPolicy::Interval(3),
        };
        let config = JournalConfig { fsync, segment_bytes, snapshot_every: 1000 };
        let tracker = DiskTracker::new(IoProfile::instant());
        let mut journal = SessionJournal::create(dir.path(), config, tracker.clone()).unwrap();

        let mut committed: Vec<Vec<u8>> = Vec::new();
        for (i, payload) in payloads.iter().enumerate() {
            journal.append(payload).unwrap();
            committed.push(payload.clone());
            if snap_after.get(i).copied().unwrap_or(false) {
                journal.snapshot(&encode_state(&committed)).unwrap();
            }
        }
        journal.sync().unwrap();
        drop(journal);

        let (contents, _reopened) =
            SessionJournal::recover(dir.path(), config, tracker).unwrap();
        prop_assert_eq!(contents.torn_tail_bytes, 0, "clean shutdown has no torn tail");
        let mut replayed = match &contents.snapshot {
            Some(snap) => decode_state(snap),
            None => Vec::new(),
        };
        replayed.extend(contents.records.iter().cloned());
        prop_assert_eq!(replayed, committed);
    }

    /// Durability: kill the process (before / torn / after the write) at an
    /// arbitrary journal write boundary. Every append that returned `Ok`
    /// before the crash MUST survive recovery, in order; at most the one
    /// in-flight unacknowledged record may additionally appear.
    #[test]
    fn kill_at_any_write_boundary_never_loses_an_acked_record(
        payloads in proptest::collection::vec(proptest::collection::vec(0u8..4, 0..12), 1..40),
        kill_op in any::<u64>(),
        mode_sel in 0u8..3,
        segment_bytes in 32u64..256,
    ) {
        let dir = uei_storage::testutil::TempDir::new("prop-journal-kill");
        let config = JournalConfig {
            fsync: FsyncPolicy::Always,
            segment_bytes,
            snapshot_every: 1000,
        };
        let mode = match mode_sel {
            0 => KillMode::BeforeWrite,
            1 => KillMode::Torn,
            _ => KillMode::AfterWrite,
        };
        let injector = FaultInjector::new(FaultConfig { seed: 7, ..FaultConfig::off() }).unwrap();
        let tracker = DiskTracker::new(IoProfile::instant());
        tracker.set_fault_injector(Some(injector.clone()));
        let mut journal = SessionJournal::create(dir.path(), config, tracker.clone()).unwrap();

        // Appends consult the dice roughly once per record plus rotations;
        // aim the kill inside (or just past) that window so some cases run
        // to completion unharmed.
        let writes_per_append = 3;
        let window = payloads.len() as u64 * writes_per_append + 2;
        injector.arm_journal_kill(injector.stats().writes_seen + kill_op % window, mode);

        let mut acked: Vec<Vec<u8>> = Vec::new();
        let mut crashed = false;
        for payload in &payloads {
            match journal.append(payload) {
                Ok(()) => acked.push(payload.clone()),
                Err(_) => {
                    crashed = true;
                    break;
                }
            }
        }
        if crashed {
            // Poisoned after the crash: the journal refuses further use.
            prop_assert!(journal.append(b"x").is_err());
        }
        drop(journal);

        // Recovery runs on a pristine tracker: the dead process's injector
        // state is irrelevant to the recovering one.
        let clean = DiskTracker::new(IoProfile::instant());
        let (contents, _reopened) = SessionJournal::recover(dir.path(), config, clean).unwrap();
        prop_assert!(
            contents.records.len() >= acked.len()
                && contents.records.len() <= acked.len() + 1,
            "{} acked, {} recovered",
            acked.len(),
            contents.records.len()
        );
        prop_assert_eq!(&contents.records[..acked.len()], &acked[..], "acked prefix lost");
    }
}

/// Non-proptest sanity: the LRU reference model itself starts empty.
#[test]
fn lru_reference_alignment_smoke() {
    let mut lru: LruMap<u8, u32> = LruMap::new();
    let model: HashMap<u8, u32> = HashMap::new();
    assert_eq!(lru.len(), model.len());
    assert!(lru.pop_lru().is_none());
}
