//! Property-based tests of the shared concurrent chunk cache's byte
//! accounting: with single-flight and an admitting budget, the physical
//! bytes charged across every thread's tracker must equal exactly one read
//! of each unique chunk touched — no double-count (two threads both paying
//! for the same chunk) and no loss (a read charged to nobody).

use std::sync::Arc;

use proptest::prelude::*;
use uei_storage::cache::SharedChunkCache;
use uei_storage::chunk::ChunkId;
use uei_storage::io::{DiskTracker, IoProfile};
use uei_storage::store::{ColumnStore, StoreConfig};
use uei_types::{AttributeDef, DataPoint, Rng, Schema};

fn build_store(
    tag: &str,
    rows: usize,
    chunk_bytes: usize,
) -> (Arc<ColumnStore>, uei_storage::testutil::TempDir) {
    let dir = uei_storage::testutil::TempDir::new(&format!("shared-acct-{tag}"));
    let schema = Schema::new(vec![
        AttributeDef::new("x", 0.0, 10.0).unwrap(),
        AttributeDef::new("y", 0.0, 10.0).unwrap(),
    ])
    .unwrap();
    let mut rng = Rng::new(7);
    let points: Vec<DataPoint> = (0..rows)
        .map(|i| DataPoint::new(i as u64, vec![rng.range_f64(0.0, 10.0), rng.range_f64(0.0, 10.0)]))
        .collect();
    let store = ColumnStore::create(
        dir.path(),
        schema,
        &points,
        StoreConfig { chunk_target_bytes: chunk_bytes },
        DiskTracker::new(IoProfile::instant()),
    )
    .unwrap();
    (Arc::new(store), dir)
}

/// Every chunk id of the store, in manifest order.
fn all_chunk_ids(store: &ColumnStore) -> Vec<ChunkId> {
    store.manifest().dims.iter().flatten().map(|m| m.id()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Foreground + prefetcher accounting across thread counts: each
    /// thread runs its access sequence through its own store handle (its
    /// own tracker, as loader and prefetcher do). Afterwards the summed
    /// per-tracker deltas equal one read of each unique chunk accessed,
    /// and the hit/miss counters add up to the total access count.
    #[test]
    fn concurrent_byte_accounting_is_exact(
        seqs in proptest::collection::vec(
            proptest::collection::vec(any::<prop::sample::Index>(), 1..40), 8),
    ) {
        let (store, _dir) = build_store("exact", 1200, 256);
        let ids = all_chunk_ids(&store);
        prop_assert!(ids.len() > 4, "fixture must span several chunks");

        for &threads in &[1usize, 2, 8] {
            let cache = Arc::new(SharedChunkCache::new(usize::MAX, 4));
            let active = &seqs[..threads];
            let total_accesses: u64 = active.iter().map(|s| s.len() as u64).sum();

            let mut unique: Vec<ChunkId> = active
                .iter()
                .flatten()
                .map(|ix| ids[ix.index(ids.len())])
                .collect();
            unique.sort_unstable();
            unique.dedup();
            let unique_bytes: u64 = unique
                .iter()
                .map(|&id| store.manifest().chunk_meta(id).unwrap().file_size)
                .sum();

            let bytes_by_thread: Vec<u64> = std::thread::scope(|scope| {
                let handles: Vec<_> = active
                    .iter()
                    .map(|seq| {
                        let cache = Arc::clone(&cache);
                        let dir = store.dir().to_path_buf();
                        let ids = &ids;
                        scope.spawn(move || {
                            // Own handle ⇒ own tracker, like the real
                            // foreground/background split.
                            let tracker = DiskTracker::new(IoProfile::instant());
                            let handle =
                                ColumnStore::open(dir, tracker.clone()).unwrap();
                            let after_open = tracker.snapshot();
                            for ix in seq {
                                cache.get_or_load(&handle, ids[ix.index(ids.len())]).unwrap();
                            }
                            tracker.delta(&after_open).stats.bytes_read
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

            let total_bytes: u64 = bytes_by_thread.iter().sum();
            prop_assert_eq!(
                total_bytes, unique_bytes,
                "threads={}: charged {} B, one read of each unique chunk is {} B",
                threads, total_bytes, unique_bytes
            );

            let stats = cache.stats();
            prop_assert_eq!(stats.misses, unique.len() as u64, "threads={}", threads);
            prop_assert_eq!(stats.hits, total_accesses - unique.len() as u64);
            prop_assert_eq!(stats.bypasses, 0u64);
            prop_assert_eq!(stats.evictions, 0u64);
        }
    }
}
