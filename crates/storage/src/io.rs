//! I/O accounting with a modeled disk and a virtual clock.
//!
//! ## Why a model
//!
//! The paper's headline numbers (Figure 6: UEI ≥50× faster than the MySQL
//! scheme, sub-second iterations for data 100× larger than memory) come from
//! a testbed with 32 GiB RAM, a 40 GB dataset, and a 3.4 GB/s NVMe SSD. We
//! cannot assume that hardware, and sleeping to emulate it would make the
//! benchmark suite take hours. Instead, every storage engine in this
//! workspace routes its file operations through a [`DiskTracker`]:
//!
//! - the *real* I/O is performed (files are actually written and read), and
//! - each operation is charged to a **virtual clock** according to an
//!   [`IoProfile`]: `seeks × seek_latency + bytes / bandwidth`.
//!
//! Response-time figures are reported from the virtual clock; raw byte and
//! seek counts are also exposed so the O(kn) → O(ke) complexity claim of
//! paper §3.3 can be verified directly. Because both schemes (UEI and the
//! DBMS baseline) are charged by the same model, ratios between them — which
//! is what the paper's figures show — are preserved exactly.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use uei_types::{Result, UeiError};

/// Performance profile of a modeled secondary-storage device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoProfile {
    /// Sustained sequential read bandwidth, bytes per second.
    pub read_bandwidth: f64,
    /// Sustained sequential write bandwidth, bytes per second.
    pub write_bandwidth: f64,
    /// Fixed cost charged per seek (per discontiguous access), seconds.
    pub seek_latency: f64,
}

impl IoProfile {
    /// The paper's evaluation device: NVMe SSD, ~3.4 GB/s reads (§4.2).
    pub fn nvme() -> Self {
        IoProfile { read_bandwidth: 3.4e9, write_bandwidth: 2.0e9, seek_latency: 20e-6 }
    }

    /// A SATA SSD: ~550 MB/s, 100 µs access.
    pub fn sata_ssd() -> Self {
        IoProfile { read_bandwidth: 550e6, write_bandwidth: 500e6, seek_latency: 100e-6 }
    }

    /// A 7200 rpm hard disk: ~150 MB/s, 8 ms average access.
    pub fn hdd() -> Self {
        IoProfile { read_bandwidth: 150e6, write_bandwidth: 140e6, seek_latency: 8e-3 }
    }

    /// An infinitely fast device; useful in unit tests that only care about
    /// byte counts.
    pub fn instant() -> Self {
        IoProfile {
            read_bandwidth: f64::INFINITY,
            write_bandwidth: f64::INFINITY,
            seek_latency: 0.0,
        }
    }

    /// Modeled time to read `bytes` with `seeks` discontiguous accesses.
    pub fn read_time(&self, bytes: u64, seeks: u64) -> Duration {
        Duration::from_secs_f64(
            seeks as f64 * self.seek_latency + bytes as f64 / self.read_bandwidth,
        )
    }

    /// Modeled time to write `bytes` with `seeks` discontiguous accesses.
    pub fn write_time(&self, bytes: u64, seeks: u64) -> Duration {
        Duration::from_secs_f64(
            seeks as f64 * self.seek_latency + bytes as f64 / self.write_bandwidth,
        )
    }
}

impl Default for IoProfile {
    fn default() -> Self {
        IoProfile::nvme()
    }
}

/// Cumulative I/O counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Number of read operations.
    pub reads: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Number of write operations.
    pub writes: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Seeks charged (one per discontiguous access).
    pub seeks: u64,
}

/// A point-in-time snapshot of a tracker, used to measure intervals.
#[derive(Debug, Clone, Copy)]
pub struct IoSnapshot {
    stats: IoStats,
    virtual_elapsed: Duration,
}

/// Interval measurements between a snapshot and now.
#[derive(Debug, Clone, Copy)]
pub struct IoDelta {
    /// Counter deltas over the interval.
    pub stats: IoStats,
    /// Virtual (modeled) time elapsed over the interval.
    pub virtual_elapsed: Duration,
}

#[derive(Debug, Default)]
struct TrackerState {
    stats: IoStats,
    virtual_clock: Duration,
    // Shared by all clones of the tracker so an injector attached after a
    // store was opened still covers the store's own tracker handle.
    injector: Option<Arc<crate::fault::FaultInjector>>,
}

/// Shared I/O accountant: performs real file I/O and charges a virtual clock.
///
/// Cloning is cheap; clones share the same counters. All storage engines of
/// one experiment share a single tracker so that modeled response times
/// include every byte the scheme touched.
#[derive(Debug, Clone)]
pub struct DiskTracker {
    profile: IoProfile,
    state: Arc<Mutex<TrackerState>>,
}

impl DiskTracker {
    /// Creates a tracker with the given device profile.
    pub fn new(profile: IoProfile) -> Self {
        DiskTracker { profile, state: Arc::new(Mutex::new(TrackerState::default())) }
    }

    /// The device profile in use.
    pub fn profile(&self) -> IoProfile {
        self.profile
    }

    /// Current cumulative counters.
    pub fn stats(&self) -> IoStats {
        self.state.lock().stats
    }

    /// Current virtual-clock reading.
    pub fn virtual_elapsed(&self) -> Duration {
        self.state.lock().virtual_clock
    }

    /// Boxes a clone of this tracker as a telemetry virtual-clock source
    /// (phase spans report modeled I/O time next to wall time).
    pub fn as_virtual_clock(&self) -> Arc<dyn uei_obs::VirtualClock> {
        Arc::new(self.clone())
    }

    /// Takes a snapshot for later interval measurement via [`Self::delta`].
    pub fn snapshot(&self) -> IoSnapshot {
        let s = self.state.lock();
        IoSnapshot { stats: s.stats, virtual_elapsed: s.virtual_clock }
    }

    /// Counters and virtual time accumulated since `since`.
    pub fn delta(&self, since: &IoSnapshot) -> IoDelta {
        let s = self.state.lock();
        IoDelta {
            stats: IoStats {
                reads: s.stats.reads - since.stats.reads,
                bytes_read: s.stats.bytes_read - since.stats.bytes_read,
                writes: s.stats.writes - since.stats.writes,
                bytes_written: s.stats.bytes_written - since.stats.bytes_written,
                seeks: s.stats.seeks - since.stats.seeks,
            },
            virtual_elapsed: s.virtual_clock - since.virtual_elapsed,
        }
    }

    /// Records a read of `bytes` bytes costing `seeks` seeks, advancing the
    /// virtual clock. Use this when the data does not come from a real file
    /// (e.g. the DBMS buffer pool charging a page miss).
    pub fn record_read(&self, bytes: u64, seeks: u64) {
        let mut s = self.state.lock();
        s.stats.reads += 1;
        s.stats.bytes_read += bytes;
        s.stats.seeks += seeks;
        s.virtual_clock += self.profile.read_time(bytes, seeks);
    }

    /// Records a write of `bytes` bytes costing `seeks` seeks.
    pub fn record_write(&self, bytes: u64, seeks: u64) {
        let mut s = self.state.lock();
        s.stats.writes += 1;
        s.stats.bytes_written += bytes;
        s.stats.seeks += seeks;
        s.virtual_clock += self.profile.write_time(bytes, seeks);
    }

    /// Advances the virtual clock by `delay` without moving any bytes.
    ///
    /// Used for modeled waits that are not transfers: retry backoff and
    /// injected latency spikes.
    pub fn charge_delay(&self, delay: Duration) {
        self.state.lock().virtual_clock += delay;
    }

    /// Attaches (or with `None`, detaches) a fault injector. The injector is
    /// shared by every clone of this tracker, so store handles opened before
    /// the attach are covered too. Pass `None` to restore clean reads.
    pub fn set_fault_injector(&self, injector: Option<Arc<crate::fault::FaultInjector>>) {
        self.state.lock().injector = injector;
    }

    /// The currently attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<Arc<crate::fault::FaultInjector>> {
        self.state.lock().injector.clone()
    }

    // The injector consulted for a read of `path`, if one is attached and
    // the path is a fault target (chunk file or manifest).
    fn injector_for(&self, path: &Path) -> Option<Arc<crate::fault::FaultInjector>> {
        if !crate::fault::FaultInjector::applies_to(path) {
            return None;
        }
        self.state.lock().injector.clone()
    }

    /// Reads an entire file, charging one seek plus its length.
    pub fn read_file(&self, path: &Path) -> Result<Vec<u8>> {
        let faults = self.injector_for(path).map(|inj| inj.roll_for_read());
        if let Some(f) = &faults {
            if let Some(spike) = f.spike {
                self.charge_delay(spike);
            }
            if f.transient {
                return Err(UeiError::transient(format!(
                    "injected i/o failure reading {}",
                    path.display()
                )));
            }
        }
        let mut data = std::fs::read(path).map_err(|e| UeiError::io(path, e))?;
        self.record_read(data.len() as u64, 1);
        if let Some((kind, pos)) = faults.and_then(|f| f.corrupt) {
            crate::fault::FaultInjector::corrupt_payload(&mut data, kind, pos);
        }
        Ok(data)
    }

    /// Reads `len` bytes at `offset` from a file, charging one seek.
    pub fn read_at(&self, path: &Path, offset: u64, len: usize) -> Result<Vec<u8>> {
        use std::io::{Read, Seek, SeekFrom};
        let faults = self.injector_for(path).map(|inj| inj.roll_for_read());
        if let Some(f) = &faults {
            if let Some(spike) = f.spike {
                self.charge_delay(spike);
            }
            if f.transient {
                return Err(UeiError::transient(format!(
                    "injected i/o failure reading {} at offset {offset}",
                    path.display()
                )));
            }
        }
        let mut f = std::fs::File::open(path).map_err(|e| UeiError::io(path, e))?;
        f.seek(SeekFrom::Start(offset)).map_err(|e| UeiError::io(path, e))?;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf).map_err(|e| UeiError::io(path, e))?;
        self.record_read(len as u64, 1);
        if let Some((kind, pos)) = faults.and_then(|f| f.corrupt) {
            crate::fault::FaultInjector::corrupt_payload(&mut buf, kind, pos);
        }
        Ok(buf)
    }

    /// Writes a whole file atomically (tmp + rename), charging one seek plus
    /// its length.
    pub fn write_file(&self, path: &Path, data: &[u8]) -> Result<()> {
        let tmp = tmp_sibling(path);
        std::fs::write(&tmp, data).map_err(|e| UeiError::io(&tmp, e))?;
        std::fs::rename(&tmp, path).map_err(|e| UeiError::io(path, e))?;
        self.record_write(data.len() as u64, 1);
        Ok(())
    }
}

impl Default for DiskTracker {
    fn default() -> Self {
        DiskTracker::new(IoProfile::default())
    }
}

impl uei_obs::VirtualClock for DiskTracker {
    fn virtual_nanos(&self) -> u64 {
        self.virtual_elapsed().as_nanos() as u64
    }
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_read_time_formula() {
        let p = IoProfile { read_bandwidth: 1e6, write_bandwidth: 1e6, seek_latency: 0.001 };
        // 2 seeks at 1 ms plus 1 MB at 1 MB/s = 2 ms + 1 s.
        let t = p.read_time(1_000_000, 2);
        assert!((t.as_secs_f64() - 1.002).abs() < 1e-9);
    }

    #[test]
    fn nvme_matches_paper_order_of_magnitude() {
        // 40 GB at 3.4 GB/s ≈ 11.8 s: the paper reports "over 12 seconds"
        // for the exhaustive scan, so the profile reproduces its regime.
        let t = IoProfile::nvme().read_time(40_000_000_000, 1);
        assert!(t.as_secs_f64() > 11.0 && t.as_secs_f64() < 13.0, "{t:?}");
    }

    #[test]
    fn tracker_accumulates_and_snapshots() {
        let p = IoProfile { read_bandwidth: 1e6, write_bandwidth: 2e6, seek_latency: 0.0 };
        let t = DiskTracker::new(p);
        t.record_read(500_000, 1);
        let snap = t.snapshot();
        t.record_read(250_000, 2);
        t.record_write(1_000_000, 1);

        let total = t.stats();
        assert_eq!(total.reads, 2);
        assert_eq!(total.bytes_read, 750_000);
        assert_eq!(total.writes, 1);
        assert_eq!(total.bytes_written, 1_000_000);
        assert_eq!(total.seeks, 4);

        let d = t.delta(&snap);
        assert_eq!(d.stats.reads, 1);
        assert_eq!(d.stats.bytes_read, 250_000);
        assert_eq!(d.stats.writes, 1);
        // 0.25 s read + 0.5 s write.
        assert!((d.virtual_elapsed.as_secs_f64() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn clones_share_state() {
        let t = DiskTracker::new(IoProfile::instant());
        let t2 = t.clone();
        t2.record_read(10, 1);
        assert_eq!(t.stats().bytes_read, 10);
    }

    #[test]
    fn file_round_trip_is_tracked() {
        let dir = crate::testutil::TempDir::new("io-test");
        let path = dir.join("blob.bin");
        let t = DiskTracker::new(IoProfile::instant());
        t.write_file(&path, b"0123456789").unwrap();
        let data = t.read_file(&path).unwrap();
        assert_eq!(data, b"0123456789");
        let s = t.stats();
        assert_eq!(s.bytes_written, 10);
        assert_eq!(s.bytes_read, 10);
        let part = t.read_at(&path, 2, 4).unwrap();
        assert_eq!(part, b"2345");
    }

    #[test]
    fn charge_delay_advances_virtual_clock_only() {
        let t = DiskTracker::new(IoProfile::instant());
        t.charge_delay(Duration::from_secs_f64(0.25));
        assert!((t.virtual_elapsed().as_secs_f64() - 0.25).abs() < 1e-12);
        assert_eq!(t.stats(), IoStats::default(), "no bytes or seeks charged");
    }

    #[test]
    fn injector_faults_chunk_reads_but_not_row_files() {
        use crate::fault::{FaultConfig, FaultInjector};
        let dir = crate::testutil::TempDir::new("io-inject");
        let chunk_path = dir.join("d000_c000000.uei");
        let rows_path = dir.join("rows.dat");
        let t = DiskTracker::new(IoProfile::instant());
        t.write_file(&chunk_path, b"chunk-bytes").unwrap();
        t.write_file(&rows_path, b"row-bytes").unwrap();

        let inj = FaultInjector::new(FaultConfig {
            seed: 3,
            transient_prob: 1.0, // every targeted read fails
            corrupt_prob: 0.0,
            slow_prob: 0.0,
            slow_penalty_secs: 0.0,
            ..FaultConfig::off()
        })
        .unwrap();
        t.set_fault_injector(Some(inj.clone()));

        match t.read_file(&chunk_path) {
            Err(UeiError::Transient { detail }) => {
                assert!(detail.contains("d000_c000000.uei"), "{detail}");
            }
            other => panic!("expected Transient, got {other:?}"),
        }
        // Row-data files are exempt from injection.
        assert_eq!(t.read_file(&rows_path).unwrap(), b"row-bytes");
        assert_eq!(inj.stats().transient_errors, 1);

        // Clones attached before or after share the injector; detaching
        // restores clean reads for all of them.
        let t2 = t.clone();
        assert!(t2.read_file(&chunk_path).is_err());
        t2.set_fault_injector(None);
        assert_eq!(t.read_file(&chunk_path).unwrap(), b"chunk-bytes");
    }

    #[test]
    fn injector_spike_charges_virtual_clock() {
        use crate::fault::{FaultConfig, FaultInjector};
        let dir = crate::testutil::TempDir::new("io-spike");
        let chunk_path = dir.join("d000_c000001.uei");
        let t = DiskTracker::new(IoProfile::instant());
        t.write_file(&chunk_path, b"payload").unwrap();
        let inj = FaultInjector::new(FaultConfig {
            seed: 1,
            transient_prob: 0.0,
            corrupt_prob: 0.0,
            slow_prob: 1.0,
            slow_penalty_secs: 0.125,
            ..FaultConfig::off()
        })
        .unwrap();
        t.set_fault_injector(Some(inj));
        t.read_file(&chunk_path).unwrap();
        assert!((t.virtual_elapsed().as_secs_f64() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn injector_corruption_mutates_payload_in_memory_only() {
        use crate::fault::{FaultConfig, FaultInjector};
        let dir = crate::testutil::TempDir::new("io-corrupt");
        let chunk_path = dir.join("d000_c000002.uei");
        let t = DiskTracker::new(IoProfile::instant());
        let original = vec![0xAAu8; 256];
        t.write_file(&chunk_path, &original).unwrap();
        let inj = FaultInjector::new(FaultConfig {
            seed: 9,
            transient_prob: 0.0,
            corrupt_prob: 1.0,
            slow_prob: 0.0,
            slow_penalty_secs: 0.0,
            ..FaultConfig::off()
        })
        .unwrap();
        t.set_fault_injector(Some(inj));
        let read = t.read_file(&chunk_path).unwrap();
        assert_ne!(read, original, "payload must be corrupted");
        // The file on disk is untouched; only the returned bytes rot.
        assert_eq!(std::fs::read(&chunk_path).unwrap(), original);
    }

    #[test]
    fn read_missing_file_is_io_error() {
        let t = DiskTracker::default();
        match t.read_file(Path::new("/nonexistent/uei/file.bin")) {
            Err(UeiError::Io { .. }) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn device_profiles_are_ordered_by_speed() {
        // NVMe < SATA SSD < HDD for the same transfer.
        let bytes = 100_000_000;
        let nvme = IoProfile::nvme().read_time(bytes, 10);
        let sata = IoProfile::sata_ssd().read_time(bytes, 10);
        let hdd = IoProfile::hdd().read_time(bytes, 10);
        assert!(nvme < sata && sata < hdd, "{nvme:?} {sata:?} {hdd:?}");
    }

    #[test]
    fn write_time_uses_write_bandwidth() {
        let p = IoProfile { read_bandwidth: 2e6, write_bandwidth: 1e6, seek_latency: 0.0 };
        assert!(p.write_time(1_000_000, 0) > p.read_time(1_000_000, 0));
        assert!((p.write_time(1_000_000, 0).as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hdd_seeks_dominate_small_random_reads() {
        // 1000 random 4 KB reads on an HDD: seek time ≫ transfer time.
        let p = IoProfile::hdd();
        let t = p.read_time(4096 * 1000, 1000).as_secs_f64();
        let transfer_only = p.read_time(4096 * 1000, 0).as_secs_f64();
        assert!(t > 50.0 * transfer_only, "seeks must dominate: {t} vs {transfer_only}");
    }

    #[test]
    fn instant_profile_has_zero_time() {
        let t = DiskTracker::new(IoProfile::instant());
        t.record_read(1_000_000_000, 100);
        assert_eq!(t.virtual_elapsed(), Duration::ZERO);
    }
}
