//! Byte-budgeted LRU caches of decoded chunks.
//!
//! UEI "would release the memory space used to hold the data chunk and
//! reuse the space for the subsequent chunk" (§3.1); a bounded cache
//! generalizes that: with a budget of one chunk it degenerates to the
//! paper's strict chunk-at-a-time behaviour, with a larger budget it keeps
//! hot chunks (e.g. chunks shared by adjacent grid cells) resident. The
//! budget counts *decoded payload* bytes so it can be compared directly
//! against the experiment's memory restriction.
//!
//! Two implementations share the [`CacheStats`] counters:
//!
//! - [`ChunkCache`] — the original single-owner (`&mut self`) LRU, still
//!   used where no sharing is needed (ablations, the `uei-dbms` baseline
//!   comparisons, small tools);
//! - [`SharedChunkCache`] — a sharded, lock-striped cache (`&self`,
//!   `Send + Sync`) shared between the foreground region loader and the
//!   background prefetcher. Shards are keyed by [`ChunkId`] hash, each
//!   shard owns its own `parking_lot::Mutex<LruMap>` and byte account, and
//!   duplicate in-flight loads of one chunk coalesce into a single read
//!   (single-flight). Because the *caller* performs the physical read with
//!   its own [`ChunkSource`] handle, modeled I/O stays attributed to the
//!   thread that actually issued it: foreground misses charge the
//!   foreground tracker, prefetcher misses charge the background tracker,
//!   and hits charge nobody;
//! - [`SessionChunkView`] — a per-session *accounting view* over a
//!   [`SharedChunkCache`]: chunk bytes come from the shared cache (so N
//!   sessions keep one decoded copy), but each session's modeled I/O is
//!   charged by a private ghost LRU that behaves exactly like a
//!   [`ChunkCache`] of the same budget. Session traces therefore stay
//!   bit-identical regardless of what other sessions do to the shared
//!   cache — determinism the raw shared counters cannot offer, because
//!   *which* thread pays for a shared miss depends on thread scheduling.

use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use uei_types::Result;

use crate::chunk::{Chunk, ChunkId};
use crate::lru::LruMap;
use crate::source::ChunkSource;

/// Cache hit/miss counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that had to read the chunk file and admitted the result.
    pub misses: u64,
    /// Chunks evicted to stay within budget.
    pub evictions: u64,
    /// Lookups that read the chunk file but did *not* admit the result
    /// because the chunk exceeds the (shard) budget. These pay the same
    /// I/O as a miss yet can never become hits, so they are reported
    /// separately instead of looking like plain misses.
    pub bypasses: u64,
}

impl CacheStats {
    /// Total lookups (hits + misses + bypasses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.bypasses
    }

    /// Hit ratio in `[0, 1]`; 0 when there were no lookups.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of lookups that bypassed admission; 0 with no lookups.
    pub fn bypass_ratio(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.bypasses as f64 / total as f64
        }
    }

    /// Counter-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            bypasses: self.bypasses - earlier.bypasses,
        }
    }
}

/// A byte-budgeted LRU chunk cache in front of a [`ChunkSource`].
#[derive(Debug)]
pub struct ChunkCache {
    budget_bytes: usize,
    used_bytes: usize,
    lru: LruMap<ChunkId, (Arc<Chunk>, usize)>,
    stats: CacheStats,
}

impl ChunkCache {
    /// Creates a cache with the given decoded-bytes budget.
    pub fn new(budget_bytes: usize) -> Self {
        ChunkCache { budget_bytes, used_bytes: 0, lru: LruMap::new(), stats: CacheStats::default() }
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Decoded bytes currently held.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of cached chunks.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Hit/miss/eviction/bypass counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Returns the chunk, reading it from the source on a miss.
    ///
    /// Chunks larger than the whole budget are returned without being
    /// cached (they would immediately evict everything and then
    /// themselves); such lookups count as [`CacheStats::bypasses`].
    pub fn get_or_load(&mut self, source: &dyn ChunkSource, id: ChunkId) -> Result<Arc<Chunk>> {
        if let Some((chunk, _)) = self.lru.get(&id) {
            self.stats.hits += 1;
            return Ok(Arc::clone(chunk));
        }
        let chunk = Arc::new(source.read_chunk(id)?);
        let size = approx_chunk_bytes(&chunk);
        if size > self.budget_bytes {
            self.stats.bypasses += 1;
            return Ok(chunk);
        }
        self.stats.misses += 1;
        self.used_bytes += size;
        self.lru.insert(id, (Arc::clone(&chunk), size));
        while self.used_bytes > self.budget_bytes {
            if let Some((_, (_, sz))) = self.lru.pop_lru() {
                self.used_bytes -= sz;
                self.stats.evictions += 1;
            } else {
                break;
            }
        }
        Ok(chunk)
    }

    /// Drops every cached chunk (e.g. when the exploration abandons the
    /// current region, Algorithm 2 line 15).
    pub fn clear(&mut self) {
        self.lru.clear();
        self.used_bytes = 0;
    }
}

// ---------------------------------------------------------------------------
// Shared concurrent cache
// ---------------------------------------------------------------------------

/// Default shard count of a [`SharedChunkCache`].
pub const DEFAULT_CACHE_SHARDS: usize = 8;

#[derive(Debug, Default)]
struct ShardState {
    lru: LruMap<ChunkId, (Arc<Chunk>, usize)>,
    used_bytes: usize,
    /// Chunk ids whose read is currently in flight on some thread.
    /// Later arrivals for the same id wait on the shard condvar instead of
    /// issuing a duplicate read (single-flight).
    inflight: HashSet<ChunkId>,
}

#[derive(Debug, Default)]
struct Shard {
    state: Mutex<ShardState>,
    flights: Condvar,
}

/// A sharded, lock-striped chunk cache shared across threads.
///
/// The global byte budget is split evenly across shards; each shard
/// accounts and evicts independently, so two threads touching chunks that
/// hash to different shards never contend. Counters are atomics and can be
/// read without taking any shard lock.
///
/// ## Single-flight
///
/// When thread A misses on chunk `c` and thread B asks for `c` while A's
/// read is still in flight, B blocks on the shard condvar until A publishes
/// the chunk, then takes it as a hit — the file is read once, charged to
/// A's tracker only. If A's read *fails*, B retries the lookup itself (and
/// will surface its own error if the failure persists); failures are never
/// cached.
///
/// ## I/O attribution
///
/// `get_or_load` takes the caller's own [`ChunkSource`] handle, so a miss
/// is charged to whichever [`crate::io::DiskTracker`] that handle carries.
/// The foreground loader and the background prefetcher hold handles over
/// the same data with separate trackers; sharing the cache therefore never
/// mixes their byte accounting, and a hit records zero modeled I/O on
/// either side.
#[derive(Debug)]
pub struct SharedChunkCache {
    shards: Vec<Shard>,
    shard_budget: usize,
    budget_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bypasses: AtomicU64,
}

impl SharedChunkCache {
    /// Creates a cache with `budget_bytes` of decoded payload split over
    /// `shards` lock stripes (`shards` is clamped to at least 1).
    pub fn new(budget_bytes: usize, shards: usize) -> SharedChunkCache {
        let n = shards.max(1);
        SharedChunkCache {
            shards: (0..n).map(|_| Shard::default()).collect(),
            shard_budget: budget_bytes / n,
            budget_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
        }
    }

    /// Creates a cache with the default shard count.
    pub fn with_default_shards(budget_bytes: usize) -> SharedChunkCache {
        SharedChunkCache::new(budget_bytes, DEFAULT_CACHE_SHARDS)
    }

    /// The configured global budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// The per-shard slice of the budget.
    pub fn shard_budget_bytes(&self) -> usize {
        self.shard_budget
    }

    /// Number of lock stripes.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Decoded bytes currently held, summed over shards.
    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.state.lock().used_bytes).sum()
    }

    /// Number of resident chunks, summed over shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.state.lock().lru.len()).sum()
    }

    /// Whether no chunk is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/eviction/bypass counters (atomic snapshot, lock-free).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
        }
    }

    /// Whether `id` is currently resident (does not touch recency and does
    /// not count as a lookup).
    pub fn contains(&self, id: ChunkId) -> bool {
        self.shard(id).state.lock().lru.contains(&id)
    }

    fn shard(&self, id: ChunkId) -> &Shard {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        id.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Returns the chunk, reading it through `source` on a miss.
    ///
    /// Concurrent callers asking for the same absent chunk coalesce: one
    /// performs the read (charging *its* source's tracker), the rest wait
    /// and take the published chunk as a hit with zero modeled I/O.
    /// Chunks larger than the shard budget bypass admission and count in
    /// [`CacheStats::bypasses`].
    pub fn get_or_load(&self, source: &dyn ChunkSource, id: ChunkId) -> Result<Arc<Chunk>> {
        let shard = self.shard(id);
        {
            let mut state = shard.state.lock();
            loop {
                if let Some((chunk, _)) = state.lru.get(&id) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(chunk));
                }
                if state.inflight.contains(&id) {
                    // Another thread is reading this chunk; wait for it to
                    // publish (or fail) and re-check.
                    shard.flights.wait(&mut state);
                    continue;
                }
                state.inflight.insert(id);
                break;
            }
        }
        // Read without holding the shard lock so other chunks of this
        // shard stay available, and so the condvar wait above can't
        // deadlock against the I/O.
        let outcome = source.read_chunk(id);
        let mut state = shard.state.lock();
        state.inflight.remove(&id);
        shard.flights.notify_all();
        let chunk = Arc::new(outcome?);
        let size = approx_chunk_bytes(&chunk);
        if size > self.shard_budget {
            self.bypasses.fetch_add(1, Ordering::Relaxed);
            return Ok(chunk);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if !state.lru.contains(&id) {
            state.used_bytes += size;
            state.lru.insert(id, (Arc::clone(&chunk), size));
            while state.used_bytes > self.shard_budget {
                if let Some((_, (_, sz))) = state.lru.pop_lru() {
                    state.used_bytes -= sz;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                } else {
                    break;
                }
            }
        }
        Ok(chunk)
    }

    /// Returns the chunk only if it is already resident (a hit), recording
    /// no lookup otherwise. Used by opportunistic readers that do not want
    /// to pay a read on absence.
    pub fn get_if_resident(&self, id: ChunkId) -> Option<Arc<Chunk>> {
        let shard = self.shard(id);
        let mut state = shard.state.lock();
        state.lru.get(&id).map(|(chunk, _)| {
            self.hits.fetch_add(1, Ordering::Relaxed);
            Arc::clone(chunk)
        })
    }

    /// Drops every resident chunk from every shard. Counters are kept;
    /// in-flight reads are unaffected (they re-admit on completion).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut state = shard.state.lock();
            state.lru.clear();
            state.used_bytes = 0;
        }
    }
}

// ---------------------------------------------------------------------------
// Per-session accounting view
// ---------------------------------------------------------------------------

/// A per-session view over a [`SharedChunkCache`].
///
/// The view separates *where the bytes live* from *who is charged for
/// them*:
///
/// - **Bytes** always come from the shared cache, fetched on a shared miss
///   through the engine's `physical` source handle — so N sessions keep at
///   most one decoded copy of each chunk, and physical reads are billed to
///   the engine's global ledger.
/// - **Modeled I/O** is decided by a session-private *ghost LRU*: a map of
///   chunk id → approximate decoded size with exactly the budget,
///   admission, eviction, and bypass rules of a private [`ChunkCache`]. A
///   ghost miss charges the session's own tracker one seek plus the
///   chunk's encoded file size (what a private read would have cost); a
///   ghost hit charges nothing.
///
/// Charging off the shared counters instead would make per-session traces
/// depend on thread scheduling (single-flight bills the race winner;
/// cross-session hits bill nobody). The ghost ledger keeps each session's
/// modeled I/O — and hence its `IterationTrace` — bit-identical to a run
/// with a private cache, while the shared cache still delivers the real
/// wall-clock and memory wins of sharing.
pub struct SessionChunkView {
    shared: Arc<SharedChunkCache>,
    physical: Arc<dyn ChunkSource>,
    budget_bytes: usize,
    used_bytes: usize,
    ghost: LruMap<ChunkId, usize>,
    stats: CacheStats,
}

impl std::fmt::Debug for SessionChunkView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionChunkView")
            .field("budget_bytes", &self.budget_bytes)
            .field("used_bytes", &self.used_bytes)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl SessionChunkView {
    /// Creates a view over `shared` whose ghost ledger models a private
    /// cache of `budget_bytes`. `physical` is the engine's source handle:
    /// shared misses read through it, charging the engine's tracker.
    pub fn new(
        shared: Arc<SharedChunkCache>,
        physical: Arc<dyn ChunkSource>,
        budget_bytes: usize,
    ) -> SessionChunkView {
        SessionChunkView {
            shared,
            physical,
            budget_bytes,
            used_bytes: 0,
            ghost: LruMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The shared cache backing this view.
    pub fn shared(&self) -> &Arc<SharedChunkCache> {
        &self.shared
    }

    /// The ghost ledger's budget (mirrors a private cache's budget).
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// This session's deterministic cache counters (the ghost ledger's,
    /// not the shared cache's).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Empties the ghost ledger (counters are kept, like
    /// [`ChunkCache::clear`]). The shared cache is untouched — it belongs
    /// to every session of the engine.
    pub fn clear_ghost(&mut self) {
        self.ghost.clear();
        self.used_bytes = 0;
    }

    /// Returns the chunk, always via the shared cache, charging `session`'s
    /// tracker if and only if a private cache of the same budget would have
    /// read the chunk. `session` supplies the catalog lookup for the
    /// modeled cost and the tracker to bill it to.
    pub fn get_or_load(&mut self, session: &dyn ChunkSource, id: ChunkId) -> Result<Arc<Chunk>> {
        if self.ghost.get(&id).is_some() {
            self.stats.hits += 1;
            // Served from "our" cache in the model. Physically the chunk
            // may have been evicted from the shared cache by other
            // sessions; re-fetching it then bills the engine ledger, never
            // this session.
            return self.shared.get_or_load(self.physical.as_ref(), id);
        }
        // Ghost miss: a private cache would have read the file here, so
        // bill the session the catalog cost of that read (one seek plus
        // the encoded length) — a fixed amount that cannot depend on other
        // sessions' behaviour. Failed fetches charge nothing, matching the
        // private path where a read errors before any bytes move.
        let file_size = session.chunk_file_size(id)?;
        let chunk = self.shared.get_or_load(self.physical.as_ref(), id)?;
        session.tracker().record_read(file_size, 1);
        let size = approx_chunk_bytes(&chunk);
        if size > self.budget_bytes {
            self.stats.bypasses += 1;
            return Ok(chunk);
        }
        self.stats.misses += 1;
        self.used_bytes += size;
        self.ghost.insert(id, size);
        while self.used_bytes > self.budget_bytes {
            if let Some((_, sz)) = self.ghost.pop_lru() {
                self.used_bytes -= sz;
                self.stats.evictions += 1;
            } else {
                break;
            }
        }
        Ok(chunk)
    }
}

/// Approximate decoded in-memory footprint of a chunk — the unit of every
/// cache's byte accounting (budgets, [`ChunkCache::used_bytes`],
/// [`SharedChunkCache::used_bytes`], and the ghost ledgers of
/// [`SessionChunkView`]), exposed so tests can recompute a cache's exact
/// expected occupancy from its resident chunks.
pub fn approx_chunk_bytes(chunk: &Chunk) -> usize {
    // Per posting list: key (8) + Vec header (~24); per id: 8.
    chunk.num_entries() * 32 + chunk.num_ids() * 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{DiskTracker, IoProfile};
    use crate::store::{ColumnStore, StoreConfig};
    use uei_types::{AttributeDef, DataPoint, Rng, Schema};

    fn build_store(
        tag: &str,
        n: usize,
        chunk_bytes: usize,
    ) -> (ColumnStore, crate::testutil::TempDir) {
        let dir = crate::testutil::TempDir::new(&format!("cache-{tag}"));
        let schema = Schema::new(vec![
            AttributeDef::new("x", 0.0, 100.0).unwrap(),
            AttributeDef::new("y", 0.0, 100.0).unwrap(),
        ])
        .unwrap();
        let mut rng = Rng::new(1);
        let rows: Vec<DataPoint> = (0..n)
            .map(|i| {
                DataPoint::new(i as u64, vec![rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)])
            })
            .collect();
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.path(),
            schema,
            &rows,
            StoreConfig { chunk_target_bytes: chunk_bytes },
            tracker,
        )
        .unwrap();
        (store, dir)
    }

    #[test]
    fn hit_after_miss() {
        let (store, _dir) = build_store("hits", 200, 256);
        let id = store.manifest().dims[0][0].id();
        let mut cache = ChunkCache::new(10 << 20);
        let a = cache.get_or_load(&store, id).unwrap();
        let b = cache.get_or_load(&store, id).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn second_load_does_no_io() {
        let (store, _dir) = build_store("noio", 200, 256);
        let id = store.manifest().dims[0][0].id();
        let mut cache = ChunkCache::new(10 << 20);
        cache.get_or_load(&store, id).unwrap();
        let before = store.tracker().snapshot();
        cache.get_or_load(&store, id).unwrap();
        assert_eq!(store.tracker().delta(&before).stats.bytes_read, 0);
    }

    #[test]
    fn evicts_lru_when_over_budget() {
        let (store, _dir) = build_store("evict", 500, 200);
        let ids: Vec<ChunkId> = store.manifest().dims[0].iter().map(|m| m.id()).collect();
        assert!(ids.len() >= 3, "need several chunks for this test");
        // Budget sized for roughly one chunk.
        let one = {
            let mut c = ChunkCache::new(usize::MAX);
            let ch = c.get_or_load(&store, ids[0]).unwrap();
            approx_chunk_bytes(&ch)
        };
        let mut cache = ChunkCache::new(one + one / 2);
        for &id in &ids {
            cache.get_or_load(&store, id).unwrap();
        }
        assert!(cache.stats().evictions > 0);
        assert!(cache.used_bytes() <= cache.budget_bytes());
        // The last-loaded chunk should still be resident.
        let before = store.tracker().snapshot();
        cache.get_or_load(&store, *ids.last().unwrap()).unwrap();
        assert_eq!(store.tracker().delta(&before).stats.bytes_read, 0);
    }

    #[test]
    fn oversized_chunk_bypasses_cache() {
        let (store, _dir) = build_store("bypass", 100, 1 << 20);
        let id = store.manifest().dims[0][0].id();
        let mut cache = ChunkCache::new(8); // absurdly small budget
        cache.get_or_load(&store, id).unwrap();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.used_bytes(), 0);
        // Counted as a bypass both times, never as a plain miss.
        cache.get_or_load(&store, id).unwrap();
        assert_eq!(cache.stats().bypasses, 2);
        assert_eq!(cache.stats().misses, 0);
        assert_eq!(cache.stats().hit_ratio(), 0.0);
        assert_eq!(cache.stats().bypass_ratio(), 1.0);
    }

    #[test]
    fn clear_resets_usage() {
        let (store, _dir) = build_store("clear", 200, 256);
        let mut cache = ChunkCache::new(10 << 20);
        for m in &store.manifest().dims[0] {
            cache.get_or_load(&store, m.id()).unwrap();
        }
        assert!(cache.used_bytes() > 0);
        cache.clear();
        assert_eq!(cache.used_bytes(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn hit_ratio() {
        let s = CacheStats { hits: 3, misses: 1, evictions: 0, bypasses: 0 };
        assert_eq!(s.hit_ratio(), 0.75);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
        // Bypasses dilute the hit ratio: they are lookups that cannot hit.
        let s = CacheStats { hits: 3, misses: 0, evictions: 0, bypasses: 1 };
        assert_eq!(s.hit_ratio(), 0.75);
    }

    #[test]
    fn stats_since_subtracts() {
        let a = CacheStats { hits: 10, misses: 4, evictions: 2, bypasses: 1 };
        let b = CacheStats { hits: 4, misses: 1, evictions: 0, bypasses: 1 };
        let d = a.since(&b);
        assert_eq!(d, CacheStats { hits: 6, misses: 3, evictions: 2, bypasses: 0 });
    }

    // -- SharedChunkCache ---------------------------------------------------

    #[test]
    fn shared_hit_after_miss_across_handles() {
        let (store, _dir) = build_store("sh-hits", 300, 256);
        let id = store.manifest().dims[0][0].id();
        let cache = SharedChunkCache::new(10 << 20, 4);
        let a = cache.get_or_load(&store, id).unwrap();
        // Second handle to the same directory with a separate tracker: the
        // prefetcher/foreground arrangement.
        let other_tracker = DiskTracker::new(IoProfile::instant());
        let other = ColumnStore::open(store.dir(), other_tracker.clone()).unwrap();
        // Opening the handle reads the manifest; only count the lookup.
        let before = other_tracker.snapshot();
        let b = cache.get_or_load(&other, id).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
        // The second handle's hit performed zero modeled I/O.
        assert_eq!(other_tracker.delta(&before).stats.bytes_read, 0);
    }

    #[test]
    fn shared_spreads_chunks_over_shards() {
        let (store, _dir) = build_store("sh-spread", 1500, 200);
        let cache = SharedChunkCache::new(64 << 20, 4);
        for dim in &store.manifest().dims {
            for m in dim {
                cache.get_or_load(&store, m.id()).unwrap();
            }
        }
        let total = store.manifest().total_chunks();
        assert_eq!(cache.len(), total);
        // With many chunks and a hash distribution, no shard holds all.
        let max_in_one_shard =
            (0..cache.num_shards()).map(|i| cache.shards[i].state.lock().lru.len()).max().unwrap();
        assert!(max_in_one_shard < total, "chunks spread over shards");
    }

    #[test]
    fn shared_per_shard_budget_and_evictions() {
        let (store, _dir) = build_store("sh-evict", 2000, 128);
        let ids: Vec<ChunkId> = store.manifest().dims.iter().flatten().map(|m| m.id()).collect();
        assert!(ids.len() > 8);
        let one = {
            let c = SharedChunkCache::new(usize::MAX, 1);
            let ch = c.get_or_load(&store, ids[0]).unwrap();
            approx_chunk_bytes(&ch)
        };
        // Room for ~2 chunks per shard across 2 shards.
        let cache = SharedChunkCache::new(one * 4, 2);
        for &id in &ids {
            cache.get_or_load(&store, id).unwrap();
        }
        assert!(cache.stats().evictions > 0);
        assert!(cache.used_bytes() <= cache.budget_bytes());
        for shard in &cache.shards {
            assert!(shard.state.lock().used_bytes <= cache.shard_budget_bytes());
        }
    }

    #[test]
    fn shared_zero_budget_bypasses_everything() {
        let (store, _dir) = build_store("sh-zero", 200, 256);
        let cache = SharedChunkCache::new(0, 4);
        let id = store.manifest().dims[0][0].id();
        cache.get_or_load(&store, id).unwrap();
        cache.get_or_load(&store, id).unwrap();
        assert_eq!(cache.stats().bypasses, 2);
        assert_eq!(cache.stats().misses, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn shared_clear_empties_all_shards() {
        let (store, _dir) = build_store("sh-clear", 600, 200);
        let cache = SharedChunkCache::new(64 << 20, 4);
        for m in &store.manifest().dims[0] {
            cache.get_or_load(&store, m.id()).unwrap();
        }
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn shared_get_if_resident_peeks() {
        let (store, _dir) = build_store("sh-peek", 200, 256);
        let cache = SharedChunkCache::new(64 << 20, 2);
        let id = store.manifest().dims[0][0].id();
        assert!(cache.get_if_resident(id).is_none());
        assert_eq!(cache.stats().lookups(), 0, "absent peek is not a lookup");
        cache.get_or_load(&store, id).unwrap();
        assert!(cache.get_if_resident(id).is_some());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn shared_concurrent_single_flight_reads_each_chunk_once() {
        let (store, _dir) = build_store("sh-flight", 2000, 200);
        let store = Arc::new(store);
        let cache = Arc::new(SharedChunkCache::new(256 << 20, 4));
        let ids: Vec<ChunkId> = store.manifest().dims.iter().flatten().map(|m| m.id()).collect();
        let unique_bytes: u64 = store.manifest().dims.iter().flatten().map(|m| m.file_size).sum();

        // Every worker opens its own handle (own tracker) and loads the
        // full chunk list; single-flight must keep total physical bytes at
        // exactly one copy of the store.
        let mut handles = Vec::new();
        let mut trackers = Vec::new();
        for t in 0..8 {
            let tracker = DiskTracker::new(IoProfile::instant());
            let my_store = ColumnStore::open(store.dir(), tracker.clone()).unwrap();
            // Snapshot after open: the manifest read is not chunk I/O.
            trackers.push((tracker.clone(), tracker.snapshot()));
            let my_cache = Arc::clone(&cache);
            let my_ids = ids.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("sh-flight-{t}"))
                    .spawn(move || {
                        for id in my_ids {
                            my_cache.get_or_load(&my_store, id).unwrap();
                        }
                    })
                    .unwrap(),
            );
        }
        for h in handles {
            h.join().unwrap();
        }
        let total_read: u64 = trackers.iter().map(|(t, s)| t.delta(s).stats.bytes_read).sum();
        assert_eq!(total_read, unique_bytes, "each chunk read exactly once across all threads");
        let s = cache.stats();
        assert_eq!(s.misses, ids.len() as u64);
        assert_eq!(s.hits, (8 - 1) * ids.len() as u64);
        assert_eq!(s.bypasses, 0);
    }

    // -- SessionChunkView ---------------------------------------------------

    #[test]
    fn session_view_accounting_matches_private_cache_despite_interference() {
        let (store, _dir) = build_store("sv-ghost", 1500, 200);
        let ids: Vec<ChunkId> = store.manifest().dims.iter().flatten().map(|m| m.id()).collect();
        assert!(ids.len() >= 6);
        // Access sequence with revisits so hits, misses, and evictions all
        // occur.
        let mut seq = ids.clone();
        seq.extend(ids.iter().rev().cloned());
        seq.extend_from_slice(&ids[..ids.len() / 2]);

        let one = {
            let mut c = ChunkCache::new(usize::MAX);
            let t = DiskTracker::new(IoProfile::default());
            let h = store.with_tracker(t);
            approx_chunk_bytes(&c.get_or_load(&h, ids[0]).unwrap())
        };
        let budget = one * 3;

        // Reference: a private cache with its own tracker.
        let private_tracker = DiskTracker::new(IoProfile::default());
        let private_store = store.with_tracker(private_tracker.clone());
        let mut private = ChunkCache::new(budget);
        for &id in &seq {
            private.get_or_load(&private_store, id).unwrap();
        }

        // Session view over a shared cache that is deliberately smaller
        // than the ghost budget and disturbed by another session between
        // every access.
        let engine_tracker = DiskTracker::new(IoProfile::instant());
        let engine_store: Arc<dyn ChunkSource> =
            Arc::new(store.with_tracker(engine_tracker.clone()));
        let shared = Arc::new(SharedChunkCache::new(one * 2, 2));
        let session_tracker = DiskTracker::new(IoProfile::default());
        let session_store = store.with_tracker(session_tracker.clone());
        let mut view =
            SessionChunkView::new(Arc::clone(&shared), Arc::clone(&engine_store), budget);
        let disturber_tracker = DiskTracker::new(IoProfile::instant());
        let disturber = store.with_tracker(disturber_tracker);
        for (i, &id) in seq.iter().enumerate() {
            view.get_or_load(&session_store, id).unwrap();
            // Another "session" churns the shared cache.
            shared.get_or_load(&disturber, ids[(i * 7) % ids.len()]).unwrap();
        }

        assert_eq!(view.stats(), private.stats(), "ghost counters match a private cache");
        assert_eq!(
            session_tracker.stats().bytes_read,
            private_tracker.stats().bytes_read,
            "session modeled bytes match a private-cache run"
        );
        assert_eq!(session_tracker.stats().seeks, private_tracker.stats().seeks);
        assert_eq!(session_tracker.stats().reads, private_tracker.stats().reads);
        assert_eq!(
            session_tracker.virtual_elapsed(),
            private_tracker.virtual_elapsed(),
            "session virtual clock matches a private-cache run"
        );
        // The session itself never performed a physical read.
        assert_eq!(session_tracker.stats().writes, 0);
    }

    #[test]
    fn session_view_physical_reads_bill_the_engine_ledger() {
        let (store, _dir) = build_store("sv-ledger", 600, 256);
        let ids: Vec<ChunkId> = store.manifest().dims.iter().flatten().map(|m| m.id()).collect();
        let engine_tracker = DiskTracker::new(IoProfile::instant());
        let engine_store: Arc<dyn ChunkSource> =
            Arc::new(store.with_tracker(engine_tracker.clone()));
        let shared = Arc::new(SharedChunkCache::new(256 << 20, 4));
        let session_tracker = DiskTracker::new(IoProfile::instant());
        let session_store = store.with_tracker(session_tracker.clone());
        let mut view = SessionChunkView::new(Arc::clone(&shared), engine_store, 256 << 20);
        for &id in &ids {
            view.get_or_load(&session_store, id).unwrap();
        }
        let unique_bytes: u64 = store.manifest().dims.iter().flatten().map(|m| m.file_size).sum();
        // Physical reads happened exactly once per chunk, on the engine
        // ledger; the session ledger carries the same amount as *modeled*
        // cost without having touched the disk.
        assert_eq!(engine_tracker.stats().bytes_read, unique_bytes);
        assert_eq!(session_tracker.stats().bytes_read, unique_bytes);
        // A second pass is all ghost hits: nobody is charged anything.
        let e0 = engine_tracker.snapshot();
        let s0 = session_tracker.snapshot();
        for &id in &ids {
            view.get_or_load(&session_store, id).unwrap();
        }
        assert_eq!(engine_tracker.delta(&e0).stats.bytes_read, 0);
        assert_eq!(session_tracker.delta(&s0).stats.bytes_read, 0);
        assert_eq!(view.stats().hits, ids.len() as u64);
    }

    #[test]
    fn shared_failed_read_is_not_cached_and_not_counted() {
        let (store, dir) = build_store("sh-fail", 200, 256);
        let cache = SharedChunkCache::new(64 << 20, 2);
        let id = store.manifest().dims[0][0].id();
        let path = dir.join(id.file_name());
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(cache.get_or_load(&store, id).is_err());
        assert_eq!(cache.stats().misses, 0);
        assert!(cache.is_empty());
        // Restore the file: the next lookup succeeds normally.
        std::fs::write(&path, &bytes).unwrap();
        assert!(cache.get_or_load(&store, id).is_ok());
        assert_eq!(cache.stats().misses, 1);
    }
}
