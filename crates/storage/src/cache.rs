//! A byte-budgeted LRU cache of decoded chunks.
//!
//! UEI "would release the memory space used to hold the data chunk and
//! reuse the space for the subsequent chunk" (§3.1); a bounded cache
//! generalizes that: with a budget of one chunk it degenerates to the
//! paper's strict chunk-at-a-time behaviour, with a larger budget it keeps
//! hot chunks (e.g. chunks shared by adjacent grid cells) resident. The
//! budget counts *decoded payload* bytes so it can be compared directly
//! against the experiment's memory restriction.

use std::sync::Arc;

use uei_types::Result;

use crate::chunk::{Chunk, ChunkId};
use crate::lru::LruMap;
use crate::store::ColumnStore;

/// Cache hit/miss counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that had to read the chunk file.
    pub misses: u64,
    /// Chunks evicted to stay within budget.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; 0 when there were no lookups.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A byte-budgeted LRU chunk cache in front of a [`ColumnStore`].
#[derive(Debug)]
pub struct ChunkCache {
    budget_bytes: usize,
    used_bytes: usize,
    lru: LruMap<ChunkId, (Arc<Chunk>, usize)>,
    stats: CacheStats,
}

impl ChunkCache {
    /// Creates a cache with the given decoded-bytes budget.
    pub fn new(budget_bytes: usize) -> Self {
        ChunkCache { budget_bytes, used_bytes: 0, lru: LruMap::new(), stats: CacheStats::default() }
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Decoded bytes currently held.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of cached chunks.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Returns the chunk, reading it from the store on a miss.
    ///
    /// Chunks larger than the whole budget are returned without being
    /// cached (they would immediately evict everything and then themselves).
    pub fn get_or_load(&mut self, store: &ColumnStore, id: ChunkId) -> Result<Arc<Chunk>> {
        if let Some((chunk, _)) = self.lru.get(&id) {
            self.stats.hits += 1;
            return Ok(Arc::clone(chunk));
        }
        self.stats.misses += 1;
        let chunk = Arc::new(store.read_chunk(id)?);
        let size = approx_chunk_bytes(&chunk);
        if size > self.budget_bytes {
            return Ok(chunk);
        }
        self.used_bytes += size;
        self.lru.insert(id, (Arc::clone(&chunk), size));
        while self.used_bytes > self.budget_bytes {
            if let Some((_, (_, sz))) = self.lru.pop_lru() {
                self.used_bytes -= sz;
                self.stats.evictions += 1;
            } else {
                break;
            }
        }
        Ok(chunk)
    }

    /// Drops every cached chunk (e.g. when the exploration abandons the
    /// current region, Algorithm 2 line 15).
    pub fn clear(&mut self) {
        self.lru.clear();
        self.used_bytes = 0;
    }
}

/// Approximate decoded in-memory footprint of a chunk.
fn approx_chunk_bytes(chunk: &Chunk) -> usize {
    // Per posting list: key (8) + Vec header (~24); per id: 8.
    chunk.num_entries() * 32 + chunk.num_ids() * 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{DiskTracker, IoProfile};
    use crate::store::StoreConfig;
    use std::path::PathBuf;
    use uei_types::{AttributeDef, DataPoint, Rng, Schema};

    fn build_store(tag: &str, n: usize, chunk_bytes: usize) -> (ColumnStore, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "uei-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let schema = Schema::new(vec![
            AttributeDef::new("x", 0.0, 100.0).unwrap(),
            AttributeDef::new("y", 0.0, 100.0).unwrap(),
        ])
        .unwrap();
        let mut rng = Rng::new(1);
        let rows: Vec<DataPoint> = (0..n)
            .map(|i| {
                DataPoint::new(
                    i as u64,
                    vec![rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)],
                )
            })
            .collect();
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            &dir,
            schema,
            &rows,
            StoreConfig { chunk_target_bytes: chunk_bytes },
            tracker,
        )
        .unwrap();
        (store, dir)
    }

    #[test]
    fn hit_after_miss() {
        let (store, dir) = build_store("hits", 200, 256);
        let id = store.manifest().dims[0][0].id();
        let mut cache = ChunkCache::new(10 << 20);
        let a = cache.get_or_load(&store, id).unwrap();
        let b = cache.get_or_load(&store, id).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_load_does_no_io() {
        let (store, dir) = build_store("noio", 200, 256);
        let id = store.manifest().dims[0][0].id();
        let mut cache = ChunkCache::new(10 << 20);
        cache.get_or_load(&store, id).unwrap();
        let before = store.tracker().snapshot();
        cache.get_or_load(&store, id).unwrap();
        assert_eq!(store.tracker().delta(&before).stats.bytes_read, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn evicts_lru_when_over_budget() {
        let (store, dir) = build_store("evict", 500, 200);
        let ids: Vec<ChunkId> =
            store.manifest().dims[0].iter().map(|m| m.id()).collect();
        assert!(ids.len() >= 3, "need several chunks for this test");
        // Budget sized for roughly one chunk.
        let one = {
            let mut c = ChunkCache::new(usize::MAX);
            let ch = c.get_or_load(&store, ids[0]).unwrap();
            approx_chunk_bytes(&ch)
        };
        let mut cache = ChunkCache::new(one + one / 2);
        for &id in &ids {
            cache.get_or_load(&store, id).unwrap();
        }
        assert!(cache.stats().evictions > 0);
        assert!(cache.used_bytes() <= cache.budget_bytes());
        // The last-loaded chunk should still be resident.
        let before = store.tracker().snapshot();
        cache.get_or_load(&store, *ids.last().unwrap()).unwrap();
        assert_eq!(store.tracker().delta(&before).stats.bytes_read, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_chunk_bypasses_cache() {
        let (store, dir) = build_store("bypass", 100, 1 << 20);
        let id = store.manifest().dims[0][0].id();
        let mut cache = ChunkCache::new(8); // absurdly small budget
        cache.get_or_load(&store, id).unwrap();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.used_bytes(), 0);
        // Still counted as a miss both times.
        cache.get_or_load(&store, id).unwrap();
        assert_eq!(cache.stats().misses, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clear_resets_usage() {
        let (store, dir) = build_store("clear", 200, 256);
        let mut cache = ChunkCache::new(10 << 20);
        for m in &store.manifest().dims[0] {
            cache.get_or_load(&store, m.id()).unwrap();
        }
        assert!(cache.used_bytes() > 0);
        cache.clear();
        assert_eq!(cache.used_bytes(), 0);
        assert!(cache.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hit_ratio() {
        let s = CacheStats { hits: 3, misses: 1, evictions: 0 };
        assert_eq!(s.hit_ratio(), 0.75);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }
}
