//! Hash-table reconstruction of a subspace from its chunks.
//!
//! Implements the merge process of paper §3.1: "to reconstruct each g when
//! needed, UEI utilizes a hash table [...] UEI iterates through each
//! dimension and loads the corresponding chunks to the memory one at a
//! time, and each entry in the chunk would be visited in a sequential
//! manner. For each object ID that is recorded in a loaded data chunk, the
//! value associated with the ID will be inserted into the corresponding
//! entry in the hash table. Once a chunk has been examined, UEI will
//! release the memory space used to hold the data chunk."
//!
//! A row belongs to the subspace only if *every* dimension's value falls in
//! the cell's range, so the hash table doubles as an intersection: after
//! dimension 0 seeds the candidate set, later dimensions only fill in
//! values for rows already present, and rows that miss any dimension are
//! dropped at the end.

use std::collections::HashMap;
use std::sync::Arc;

use rayon::prelude::*;
use uei_types::{DataPoint, Region, Result, UeiError};

use crate::cache::{ChunkCache, SessionChunkView, SharedChunkCache};
use crate::chunk::{Chunk, ChunkId};
use crate::source::ChunkSource;
use crate::store::ColumnStore;

/// Work counters from one reconstruction; these are the `e` of the paper's
/// O(ke) per-iteration complexity claim (§3.3).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MergeStats {
    /// Chunk files materialized through the fetch path (cache hits
    /// included; delta-reused chunks are not).
    pub chunks_loaded: u64,
    /// Total encoded bytes of the materialized chunks.
    pub chunk_bytes: u64,
    /// Chunks reused from the previous region's decoded set
    /// ([`reconstruct_region_delta`]) without touching the fetch path.
    pub chunks_reused: u64,
    /// Total encoded bytes of the reused chunks — I/O the delta avoided
    /// even in the worst (all-cold-cache) case.
    pub bytes_reused: u64,
    /// Posting-list entries whose key fell inside the per-dimension range.
    pub entries_matched: u64,
    /// Row-id insertions/updates performed on the hash table.
    pub id_updates: u64,
    /// Candidate rows after the seed dimension.
    pub seed_candidates: u64,
    /// Rows in the reconstructed subspace.
    pub result_rows: u64,
}

/// How [`reconstruct_region_with_chunks`] materializes chunk files.
#[derive(Debug)]
pub enum ChunkFetch<'a> {
    /// Read every chunk from disk and drop it after the scan — the paper's
    /// default chunk-at-a-time behaviour (§3.1).
    Uncached,
    /// Fetch through a single-owner [`ChunkCache`].
    Cached(&'a mut ChunkCache),
    /// Fetch through a [`SharedChunkCache`] — the concurrent cache shared
    /// by the foreground loader and the background prefetcher. Physical
    /// reads are charged to the caller's own source tracker, so each
    /// caller passes its own handle and I/O attribution stays per-thread.
    Shared(&'a SharedChunkCache),
    /// Fetch through a per-session [`SessionChunkView`]: bytes come from
    /// the shared cache (physical reads bill the engine's ledger), modeled
    /// I/O is charged to the session's source tracker by the view's
    /// deterministic ghost LRU.
    Session(&'a mut SessionChunkView),
}

/// The decoded chunks of one reconstructed region, keyed by [`ChunkId`].
///
/// Kept by callers that load overlapping regions back to back:
/// [`reconstruct_region_delta`] reuses any chunk present here without
/// re-reading or re-decoding it. Chunks are immutable once written (the
/// store has no update path), so reuse is safe across *any* pair of
/// regions, not just adjacent ones.
#[derive(Debug, Default)]
pub struct RegionChunkSet {
    chunks: HashMap<ChunkId, (Arc<Chunk>, u64)>,
}

impl RegionChunkSet {
    /// An empty set (nothing will be reused).
    pub fn new() -> Self {
        RegionChunkSet::default()
    }

    /// Number of retained decoded chunks.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether no chunk is retained.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Whether `id` is retained.
    pub fn contains(&self, id: ChunkId) -> bool {
        self.chunks.contains_key(&id)
    }

    /// Total encoded file bytes of the retained chunks.
    pub fn encoded_bytes(&self) -> u64 {
        self.chunks.values().map(|(_, size)| size).sum()
    }

    fn get(&self, id: ChunkId) -> Option<(Arc<Chunk>, u64)> {
        self.chunks.get(&id).map(|(c, s)| (Arc::clone(c), *s))
    }

    fn insert(&mut self, id: ChunkId, chunk: Arc<Chunk>, file_size: u64) {
        self.chunks.insert(id, (chunk, file_size));
    }
}

#[derive(Debug)]
struct Candidate {
    values: Vec<f64>,
    seen: u64, // bitmask of dimensions filled in
}

/// Reconstructs every row of `region` from the store's inverted chunks.
///
/// Chunks are fetched through `cache` when provided (UEI's configurable
/// in-memory chunk budget), otherwise read chunk-at-a-time and dropped, the
/// paper's default. Supports up to 64 dimensions (the bitmask width); the
/// paper's experiments use 5.
///
/// Returns the rows (ordered by row id) and the work counters.
pub fn reconstruct_region(
    store: &ColumnStore,
    region: &Region,
    cache: Option<&mut ChunkCache>,
) -> Result<(Vec<DataPoint>, MergeStats)> {
    let dims = store.schema().dims();
    if region.dims() != dims {
        return Err(UeiError::DimensionMismatch { expected: dims, actual: region.dims() });
    }
    let mut chunks_per_dim = Vec::with_capacity(dims);
    for d in 0..dims {
        let metas = store.manifest().chunks_overlapping(d, region.lo[d], region.hi[d])?;
        chunks_per_dim.push(metas.iter().map(|m| m.id()).collect());
    }
    let fetch = match cache {
        Some(c) => ChunkFetch::Cached(c),
        None => ChunkFetch::Uncached,
    };
    reconstruct_region_with_chunks(store, region, &chunks_per_dim, fetch)
}

/// Like [`reconstruct_region`], but reads exactly the chunks the caller
/// names (per dimension) from any [`ChunkSource`]. This is the entry point
/// the Uncertainty Estimation Index uses: its mapping method `m` has
/// already resolved the chunk set for the chosen subspace, so no catalog
/// lookup happens here.
pub fn reconstruct_region_with_chunks(
    source: &dyn ChunkSource,
    region: &Region,
    chunks_per_dim: &[Vec<ChunkId>],
    fetch: ChunkFetch<'_>,
) -> Result<(Vec<DataPoint>, MergeStats)> {
    let (rows, stats, _) = reconstruct_inner(source, region, chunks_per_dim, fetch, None, false)?;
    Ok((rows, stats))
}

/// Incremental reconstruction: like [`reconstruct_region_with_chunks`],
/// but chunks present in `prev` (the previously loaded region's decoded
/// set) are reused in place — no file read, no decode, no cache traffic —
/// and counted in [`MergeStats::chunks_reused`]. Returns the new region's
/// own [`RegionChunkSet`] (covering *all* its chunks, reused and fresh)
/// for the next iteration's delta.
///
/// Consecutive uncertain regions in UEI's exploration overlap heavily —
/// the decision boundary moves slowly, the same premise the σ/θ prefetch
/// machinery rests on (§3.2) — so the delta is usually a small fraction of
/// the region.
pub fn reconstruct_region_delta(
    source: &dyn ChunkSource,
    region: &Region,
    chunks_per_dim: &[Vec<ChunkId>],
    prev: Option<&RegionChunkSet>,
    fetch: ChunkFetch<'_>,
) -> Result<(Vec<DataPoint>, MergeStats, RegionChunkSet)> {
    let (rows, stats, set) = reconstruct_inner(source, region, chunks_per_dim, fetch, prev, true)?;
    Ok((rows, stats, set.expect("collect=true always builds a set")))
}

fn reconstruct_inner(
    source: &dyn ChunkSource,
    region: &Region,
    chunks_per_dim: &[Vec<ChunkId>],
    mut fetch: ChunkFetch<'_>,
    prev: Option<&RegionChunkSet>,
    collect: bool,
) -> Result<(Vec<DataPoint>, MergeStats, Option<RegionChunkSet>)> {
    let dims = source.dims();
    if region.dims() != dims {
        return Err(UeiError::DimensionMismatch { expected: dims, actual: region.dims() });
    }
    if chunks_per_dim.len() != dims {
        return Err(UeiError::DimensionMismatch { expected: dims, actual: chunks_per_dim.len() });
    }
    if dims > 64 {
        return Err(UeiError::invalid_config(format!(
            "reconstruct_region supports at most 64 dimensions, got {dims}"
        )));
    }
    let inclusive_hi = region.is_closed();
    let mut stats = MergeStats::default();
    let mut table: HashMap<u64, Candidate> = HashMap::new();
    let mut new_set = collect.then(RegionChunkSet::new);

    for d in 0..dims {
        let (lo, hi) = (region.lo[d], region.hi[d]);
        let bit = 1u64 << d;
        // Materialize this dimension's chunks first, reusing the previous
        // region's decoded chunks where possible. Cache modes keep the
        // original chunk-at-a-time behaviour through the cache; uncached
        // mode reads every missing file sequentially (deterministic
        // modeled I/O) and then runs the CPU-bound CRC-validating decodes
        // in parallel.
        let loaded = load_dimension(source, &chunks_per_dim[d], &mut fetch, prev)?;
        for (chunk, file_size, reused) in loaded {
            if reused {
                stats.chunks_reused += 1;
                stats.bytes_reused += file_size;
            } else {
                stats.chunks_loaded += 1;
                stats.chunk_bytes += file_size;
            }
            if let Some(set) = new_set.as_mut() {
                set.insert(chunk.id, Arc::clone(&chunk), file_size);
            }
            chunk.scan_range(lo, hi, inclusive_hi, |entry| {
                stats.entries_matched += 1;
                for &id in &entry.ids {
                    if d == 0 {
                        stats.id_updates += 1;
                        table.insert(
                            id,
                            Candidate {
                                values: {
                                    let mut v = vec![0.0; dims];
                                    v[0] = entry.key;
                                    v
                                },
                                seen: bit,
                            },
                        );
                    } else if let Some(c) = table.get_mut(&id) {
                        stats.id_updates += 1;
                        c.values[d] = entry.key;
                        c.seen |= bit;
                    }
                }
            });
            // `chunk` drops here; memory held at once is bounded by one
            // dimension's chunk set for the cell (plus whatever the cache
            // retains within its budget, plus the retained region set in
            // delta mode).
        }
        if d == 0 {
            stats.seed_candidates = table.len() as u64;
            if table.is_empty() {
                // No candidate can survive the intersection; skip the
                // remaining dimensions entirely. (In delta mode the
                // returned set then only covers dimension 0 — reuse is
                // keyed per chunk, so a partial set is still valid.)
                break;
            }
        }
    }

    let full = if dims == 64 { u64::MAX } else { (1u64 << dims) - 1 };
    let mut rows: Vec<DataPoint> = table
        .into_iter()
        .filter(|(_, c)| c.seen == full)
        .map(|(id, c)| DataPoint::new(id, c.values))
        .collect();
    rows.sort_unstable_by_key(|p| p.id);
    stats.result_rows = rows.len() as u64;
    Ok((rows, stats, new_set))
}

/// Materializes one dimension's chunk list in caller order, marking each
/// chunk as reused (`true`, taken from `prev` with zero I/O) or fetched
/// (`false`, materialized through `fetch`).
fn load_dimension(
    source: &dyn ChunkSource,
    chunk_ids: &[ChunkId],
    fetch: &mut ChunkFetch<'_>,
    prev: Option<&RegionChunkSet>,
) -> Result<Vec<(Arc<Chunk>, u64, bool)>> {
    // Resolve reuse first so the fetch path only sees the delta.
    let mut slots: Vec<Option<(Arc<Chunk>, u64)>> =
        chunk_ids.iter().map(|&id| prev.and_then(|p| p.get(id))).collect();
    let missing: Vec<ChunkId> = chunk_ids
        .iter()
        .zip(&slots)
        .filter(|(_, slot)| slot.is_none())
        .map(|(&id, _)| id)
        .collect();

    let fetched: Vec<(Arc<Chunk>, u64)> = match fetch {
        ChunkFetch::Uncached => decode_chunks_uncached(source, &missing)?,
        ChunkFetch::Cached(cache) => {
            let mut v = Vec::with_capacity(missing.len());
            for &id in &missing {
                let file_size = source.chunk_file_size(id)?;
                v.push((cache.get_or_load(source, id)?, file_size));
            }
            v
        }
        ChunkFetch::Shared(cache) => {
            let mut v = Vec::with_capacity(missing.len());
            for &id in &missing {
                let file_size = source.chunk_file_size(id)?;
                v.push((cache.get_or_load(source, id)?, file_size));
            }
            v
        }
        ChunkFetch::Session(view) => {
            let mut v = Vec::with_capacity(missing.len());
            for &id in &missing {
                let file_size = source.chunk_file_size(id)?;
                v.push((view.get_or_load(source, id)?, file_size));
            }
            v
        }
    };

    let mut fetched = fetched.into_iter();
    Ok(slots
        .iter_mut()
        .map(|slot| match slot.take() {
            Some((chunk, size)) => (chunk, size, true),
            None => {
                let (chunk, size) = fetched.next().expect("one fetched chunk per missing slot");
                (chunk, size, false)
            }
        })
        .collect())
}

/// Reads and decodes one dimension's chunk set without a cache: all file
/// reads happen first, sequentially and in chunk order (the I/O model
/// charges seeks in issue order, so accounting is identical to the
/// chunk-at-a-time loop), then the decodes — CRC validation plus posting
/// list deserialization, pure CPU — fan out across cores. Returns
/// `(chunk, file_size)` pairs in the caller's chunk order.
fn decode_chunks_uncached(
    source: &dyn ChunkSource,
    chunk_ids: &[ChunkId],
) -> Result<Vec<(Arc<Chunk>, u64)>> {
    let mut raw = Vec::with_capacity(chunk_ids.len());
    for &chunk_id in chunk_ids {
        let file_size = source.chunk_file_size(chunk_id)?;
        raw.push((chunk_id, file_size, source.read_chunk_bytes(chunk_id)?));
    }
    let decode = |(chunk_id, file_size, bytes): &(ChunkId, u64, Vec<u8>)| {
        source.decode_chunk(*chunk_id, bytes).map(|c| (Arc::new(c), *file_size))
    };
    let decoded: Vec<Result<(Arc<Chunk>, u64)>> =
        if raw.len() >= 2 && rayon::current_num_threads() > 1 {
            raw.par_iter().map(decode).collect()
        } else {
            raw.iter().map(decode).collect()
        };
    decoded.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{DiskTracker, IoProfile};
    use crate::store::StoreConfig;
    use uei_types::{AttributeDef, Rng, Schema};

    fn build(
        tag: &str,
        n: usize,
        chunk_bytes: usize,
    ) -> (ColumnStore, Vec<DataPoint>, crate::testutil::TempDir) {
        let dir = crate::testutil::TempDir::new(&format!("merge-{tag}"));
        let schema = Schema::new(vec![
            AttributeDef::new("x", 0.0, 100.0).unwrap(),
            AttributeDef::new("y", 0.0, 100.0).unwrap(),
            AttributeDef::new("z", 0.0, 100.0).unwrap(),
        ])
        .unwrap();
        let mut rng = Rng::new(9);
        let rows: Vec<DataPoint> = (0..n)
            .map(|i| {
                DataPoint::new(
                    i as u64,
                    vec![
                        rng.range_f64(0.0, 100.0),
                        rng.range_f64(0.0, 100.0),
                        rng.range_f64(0.0, 100.0),
                    ],
                )
            })
            .collect();
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.path(),
            schema,
            &rows,
            StoreConfig { chunk_target_bytes: chunk_bytes },
            tracker,
        )
        .unwrap();
        (store, rows, dir)
    }

    fn brute_force(rows: &[DataPoint], region: &Region) -> Vec<u64> {
        rows.iter().filter(|p| region.contains(&p.values).unwrap()).map(|p| p.id.as_u64()).collect()
    }

    #[test]
    fn matches_brute_force_half_open() {
        let (store, rows, _dir) = build("halfopen", 800, 512);
        let region = Region::new(vec![20.0, 30.0, 0.0], vec![60.0, 70.0, 50.0]).unwrap();
        let (got, stats) = reconstruct_region(&store, &region, None).unwrap();
        let got_ids: Vec<u64> = got.iter().map(|p| p.id.as_u64()).collect();
        assert_eq!(got_ids, brute_force(&rows, &region));
        assert_eq!(stats.result_rows as usize, got.len());
        assert!(stats.chunks_loaded > 0);
        // Reconstructed values must equal the originals.
        for p in &got {
            assert_eq!(p, &rows[p.id.as_usize()]);
        }
    }

    #[test]
    fn matches_brute_force_closed() {
        let (store, rows, _dir) = build("closed", 500, 512);
        let region = Region::closed(vec![0.0, 0.0, 0.0], vec![100.0, 100.0, 100.0]).unwrap();
        let (got, _) = reconstruct_region(&store, &region, None).unwrap();
        assert_eq!(got.len(), rows.len(), "full-space region reconstructs every row");
    }

    #[test]
    fn empty_region_short_circuits() {
        let (store, _, _dir) = build("empty", 300, 512);
        // x-range outside the domain: dimension 0 seeds nothing.
        let region = Region::new(vec![200.0, 0.0, 0.0], vec![300.0, 100.0, 100.0]).unwrap();
        let before = store.tracker().snapshot();
        let (got, stats) = reconstruct_region(&store, &region, None).unwrap();
        assert!(got.is_empty());
        assert_eq!(stats.seed_candidates, 0);
        // Later dimensions were skipped, so almost nothing was read.
        assert_eq!(store.tracker().delta(&before).stats.bytes_read, 0);
    }

    #[test]
    fn narrow_region_touches_fewer_chunks_than_full() {
        let (store, _, _dir) = build("narrow", 2000, 256);
        let full = Region::new(vec![0.0; 3], vec![100.0; 3]).unwrap();
        let narrow = Region::new(vec![10.0, 10.0, 10.0], vec![15.0, 15.0, 15.0]).unwrap();
        let (_, full_stats) = reconstruct_region(&store, &full, None).unwrap();
        let (_, narrow_stats) = reconstruct_region(&store, &narrow, None).unwrap();
        assert!(
            narrow_stats.chunk_bytes < full_stats.chunk_bytes,
            "narrow {} vs full {}",
            narrow_stats.chunk_bytes,
            full_stats.chunk_bytes
        );
    }

    #[test]
    fn cache_reuse_avoids_rereads() {
        let (store, _, _dir) = build("cached", 800, 512);
        let region = Region::new(vec![20.0, 20.0, 20.0], vec![80.0, 80.0, 80.0]).unwrap();
        let mut cache = ChunkCache::new(64 << 20);
        let (first, _) = reconstruct_region(&store, &region, Some(&mut cache)).unwrap();
        let before = store.tracker().snapshot();
        let (second, _) = reconstruct_region(&store, &region, Some(&mut cache)).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            store.tracker().delta(&before).stats.bytes_read,
            0,
            "second reconstruction fully served from cache"
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (store, _, _dir) = build("dims", 50, 512);
        let region = Region::new(vec![0.0], vec![1.0]).unwrap();
        assert!(reconstruct_region(&store, &region, None).is_err());
    }

    fn chunks_for(store: &ColumnStore, region: &Region) -> Vec<Vec<ChunkId>> {
        (0..store.schema().dims())
            .map(|d| {
                store
                    .manifest()
                    .chunks_overlapping(d, region.lo[d], region.hi[d])
                    .unwrap()
                    .iter()
                    .map(|m| m.id())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn delta_reuses_overlap_and_matches_full_reconstruction() {
        let (store, rows, _dir) = build("delta", 1500, 256);
        let a = Region::new(vec![10.0, 10.0, 10.0], vec![60.0, 60.0, 60.0]).unwrap();
        // Shifted region: heavy overlap with `a` along every dimension.
        let b = Region::new(vec![20.0, 20.0, 20.0], vec![70.0, 70.0, 70.0]).unwrap();

        let (rows_a, stats_a, set_a) = reconstruct_region_delta(
            &store,
            &a,
            &chunks_for(&store, &a),
            None,
            ChunkFetch::Uncached,
        )
        .unwrap();
        assert_eq!(stats_a.chunks_reused, 0, "nothing to reuse on the first load");
        assert_eq!(set_a.len() as u64, stats_a.chunks_loaded);
        let ids_a: Vec<u64> = rows_a.iter().map(|p| p.id.as_u64()).collect();
        assert_eq!(ids_a, brute_force(&rows, &a));

        let before = store.tracker().snapshot();
        let (rows_b, stats_b, set_b) = reconstruct_region_delta(
            &store,
            &b,
            &chunks_for(&store, &b),
            Some(&set_a),
            ChunkFetch::Uncached,
        )
        .unwrap();
        let delta_io = store.tracker().delta(&before).stats.bytes_read;

        // Identical rows to a from-scratch reconstruction.
        let (rows_full, _) = reconstruct_region(&store, &b, None).unwrap();
        assert_eq!(rows_b, rows_full);
        // Overlapping chunks were reused, and reuse really skipped I/O.
        assert!(stats_b.chunks_reused > 0, "overlapping regions share chunks");
        assert_eq!(delta_io, stats_b.chunk_bytes, "only the delta was read");
        assert!(stats_b.bytes_reused > 0);
        // The new set covers the whole region b (reused + fresh).
        assert_eq!(set_b.len() as u64, stats_b.chunks_loaded + stats_b.chunks_reused);
        for dim_ids in chunks_for(&store, &b) {
            for id in dim_ids {
                assert!(set_b.contains(id));
            }
        }
    }

    #[test]
    fn delta_same_region_reads_nothing() {
        let (store, _, _dir) = build("delta-same", 800, 256);
        let region = Region::new(vec![25.0, 25.0, 25.0], vec![75.0, 75.0, 75.0]).unwrap();
        let chunks = chunks_for(&store, &region);
        let (first, _, set) =
            reconstruct_region_delta(&store, &region, &chunks, None, ChunkFetch::Uncached).unwrap();
        let before = store.tracker().snapshot();
        let (second, stats, _) =
            reconstruct_region_delta(&store, &region, &chunks, Some(&set), ChunkFetch::Uncached)
                .unwrap();
        assert_eq!(first, second);
        assert_eq!(stats.chunks_loaded, 0);
        assert_eq!(stats.chunk_bytes, 0);
        assert_eq!(store.tracker().delta(&before).stats.bytes_read, 0);
    }

    #[test]
    fn delta_composes_with_shared_cache() {
        let (store, _, _dir) = build("delta-shared", 1000, 256);
        let cache = SharedChunkCache::new(64 << 20, 4);
        let a = Region::new(vec![0.0, 0.0, 0.0], vec![50.0, 50.0, 50.0]).unwrap();
        let b = Region::new(vec![10.0, 10.0, 10.0], vec![60.0, 60.0, 60.0]).unwrap();
        let (_, _, set_a) = reconstruct_region_delta(
            &store,
            &a,
            &chunks_for(&store, &a),
            None,
            ChunkFetch::Shared(&cache),
        )
        .unwrap();
        let hits_before = cache.stats().hits;
        let (rows_b, stats_b, _) = reconstruct_region_delta(
            &store,
            &b,
            &chunks_for(&store, &b),
            Some(&set_a),
            ChunkFetch::Shared(&cache),
        )
        .unwrap();
        // Reused chunks never touch the cache: hit count only moves for
        // the delta chunks (which may hit if b's extra chunks were loaded
        // for a — impossible here since set_a covers exactly a's chunks).
        assert_eq!(cache.stats().hits, hits_before);
        let (rows_full, _) = reconstruct_region(&store, &b, None).unwrap();
        assert_eq!(rows_b, rows_full);
        assert!(stats_b.chunks_reused > 0);
    }

    #[test]
    fn shared_fetch_matches_uncached() {
        let (store, rows, _dir) = build("sharedfetch", 900, 256);
        let region = Region::new(vec![15.0, 5.0, 30.0], vec![85.0, 95.0, 70.0]).unwrap();
        let cache = SharedChunkCache::new(64 << 20, 4);
        let (got, stats) = reconstruct_region_with_chunks(
            &store,
            &region,
            &chunks_for(&store, &region),
            ChunkFetch::Shared(&cache),
        )
        .unwrap();
        let got_ids: Vec<u64> = got.iter().map(|p| p.id.as_u64()).collect();
        assert_eq!(got_ids, brute_force(&rows, &region));
        assert!(stats.chunks_loaded > 0);
        // Second pass: all hits, zero modeled I/O.
        let before = store.tracker().snapshot();
        let (again, _) = reconstruct_region_with_chunks(
            &store,
            &region,
            &chunks_for(&store, &region),
            ChunkFetch::Shared(&cache),
        )
        .unwrap();
        assert_eq!(got, again);
        assert_eq!(store.tracker().delta(&before).stats.bytes_read, 0);
    }

    #[test]
    fn stats_entries_bounded_by_work() {
        let (store, _, _dir) = build("stats", 600, 256);
        let region = Region::new(vec![40.0, 40.0, 40.0], vec![60.0, 60.0, 60.0]).unwrap();
        let (_, stats) = reconstruct_region(&store, &region, None).unwrap();
        assert!(stats.id_updates >= stats.result_rows * 3, "each result row updated 3 times");
        assert!(stats.seed_candidates >= stats.result_rows);
    }
}
