//! Hash-table reconstruction of a subspace from its chunks.
//!
//! Implements the merge process of paper §3.1: "to reconstruct each g when
//! needed, UEI utilizes a hash table [...] UEI iterates through each
//! dimension and loads the corresponding chunks to the memory one at a
//! time, and each entry in the chunk would be visited in a sequential
//! manner. For each object ID that is recorded in a loaded data chunk, the
//! value associated with the ID will be inserted into the corresponding
//! entry in the hash table. Once a chunk has been examined, UEI will
//! release the memory space used to hold the data chunk."
//!
//! A row belongs to the subspace only if *every* dimension's value falls in
//! the cell's range, so the hash table doubles as an intersection: after
//! dimension 0 seeds the candidate set, later dimensions only fill in
//! values for rows already present, and rows that miss any dimension are
//! dropped at the end.

use std::collections::HashMap;
use std::sync::Arc;

use rayon::prelude::*;
use uei_types::{DataPoint, Region, Result, UeiError};

use crate::cache::ChunkCache;
use crate::chunk::{Chunk, ChunkId};
use crate::store::ColumnStore;

/// Work counters from one reconstruction; these are the `e` of the paper's
/// O(ke) per-iteration complexity claim (§3.3).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MergeStats {
    /// Chunk files touched.
    pub chunks_loaded: u64,
    /// Total encoded bytes of the touched chunks.
    pub chunk_bytes: u64,
    /// Posting-list entries whose key fell inside the per-dimension range.
    pub entries_matched: u64,
    /// Row-id insertions/updates performed on the hash table.
    pub id_updates: u64,
    /// Candidate rows after the seed dimension.
    pub seed_candidates: u64,
    /// Rows in the reconstructed subspace.
    pub result_rows: u64,
}

#[derive(Debug)]
struct Candidate {
    values: Vec<f64>,
    seen: u64, // bitmask of dimensions filled in
}

/// Reconstructs every row of `region` from the store's inverted chunks.
///
/// Chunks are fetched through `cache` when provided (UEI's configurable
/// in-memory chunk budget), otherwise read chunk-at-a-time and dropped, the
/// paper's default. Supports up to 64 dimensions (the bitmask width); the
/// paper's experiments use 5.
///
/// Returns the rows (ordered by row id) and the work counters.
pub fn reconstruct_region(
    store: &ColumnStore,
    region: &Region,
    cache: Option<&mut ChunkCache>,
) -> Result<(Vec<DataPoint>, MergeStats)> {
    let dims = store.schema().dims();
    if region.dims() != dims {
        return Err(UeiError::DimensionMismatch { expected: dims, actual: region.dims() });
    }
    let mut chunks_per_dim = Vec::with_capacity(dims);
    for d in 0..dims {
        let metas = store.manifest().chunks_overlapping(d, region.lo[d], region.hi[d])?;
        chunks_per_dim.push(metas.iter().map(|m| m.id()).collect());
    }
    reconstruct_region_with_chunks(store, region, &chunks_per_dim, cache)
}

/// Like [`reconstruct_region`], but reads exactly the chunks the caller
/// names (per dimension). This is the entry point the Uncertainty
/// Estimation Index uses: its mapping method `m` has already resolved the
/// chunk set for the chosen subspace, so no catalog lookup happens here.
pub fn reconstruct_region_with_chunks(
    store: &ColumnStore,
    region: &Region,
    chunks_per_dim: &[Vec<crate::chunk::ChunkId>],
    mut cache: Option<&mut ChunkCache>,
) -> Result<(Vec<DataPoint>, MergeStats)> {
    let dims = store.schema().dims();
    if region.dims() != dims {
        return Err(UeiError::DimensionMismatch { expected: dims, actual: region.dims() });
    }
    if chunks_per_dim.len() != dims {
        return Err(UeiError::DimensionMismatch { expected: dims, actual: chunks_per_dim.len() });
    }
    if dims > 64 {
        return Err(UeiError::invalid_config(format!(
            "reconstruct_region supports at most 64 dimensions, got {dims}"
        )));
    }
    let inclusive_hi = region.is_closed();
    let mut stats = MergeStats::default();
    let mut table: HashMap<u64, Candidate> = HashMap::new();

    for d in 0..dims {
        let (lo, hi) = (region.lo[d], region.hi[d]);
        let bit = 1u64 << d;
        // Materialize this dimension's chunks first. Cached mode keeps the
        // original chunk-at-a-time behaviour through the cache; uncached
        // mode reads every file sequentially (deterministic modeled I/O)
        // and then runs the CPU-bound CRC-validating decodes in parallel.
        let loaded: Vec<(Arc<Chunk>, u64)> = match cache.as_deref_mut() {
            Some(c) => {
                let mut v = Vec::with_capacity(chunks_per_dim[d].len());
                for &chunk_id in &chunks_per_dim[d] {
                    let file_size = store.manifest().chunk_meta(chunk_id)?.file_size;
                    v.push((c.get_or_load(store, chunk_id)?, file_size));
                }
                v
            }
            None => decode_chunks_uncached(store, &chunks_per_dim[d])?,
        };
        for (chunk, file_size) in loaded {
            stats.chunks_loaded += 1;
            stats.chunk_bytes += file_size;
            chunk.scan_range(lo, hi, inclusive_hi, |entry| {
                stats.entries_matched += 1;
                for &id in &entry.ids {
                    if d == 0 {
                        stats.id_updates += 1;
                        table.insert(
                            id,
                            Candidate { values: {
                                let mut v = vec![0.0; dims];
                                v[0] = entry.key;
                                v
                            }, seen: bit },
                        );
                    } else if let Some(c) = table.get_mut(&id) {
                        stats.id_updates += 1;
                        c.values[d] = entry.key;
                        c.seen |= bit;
                    }
                }
            });
            // `chunk` drops here; memory held at once is bounded by one
            // dimension's chunk set for the cell (plus whatever the cache
            // retains within its budget).
        }
        if d == 0 {
            stats.seed_candidates = table.len() as u64;
            if table.is_empty() {
                // No candidate can survive the intersection; skip the
                // remaining dimensions entirely.
                break;
            }
        }
    }

    let full = if dims == 64 { u64::MAX } else { (1u64 << dims) - 1 };
    let mut rows: Vec<DataPoint> = table
        .into_iter()
        .filter(|(_, c)| c.seen == full)
        .map(|(id, c)| DataPoint::new(id, c.values))
        .collect();
    rows.sort_unstable_by_key(|p| p.id);
    stats.result_rows = rows.len() as u64;
    Ok((rows, stats))
}

/// Reads and decodes one dimension's chunk set without a cache: all file
/// reads happen first, sequentially and in chunk order (the I/O model
/// charges seeks in issue order, so accounting is identical to the
/// chunk-at-a-time loop), then the decodes — CRC validation plus posting
/// list deserialization, pure CPU — fan out across cores. Returns
/// `(chunk, file_size)` pairs in the caller's chunk order.
fn decode_chunks_uncached(
    store: &ColumnStore,
    chunk_ids: &[ChunkId],
) -> Result<Vec<(Arc<Chunk>, u64)>> {
    let mut raw = Vec::with_capacity(chunk_ids.len());
    for &chunk_id in chunk_ids {
        let file_size = store.manifest().chunk_meta(chunk_id)?.file_size;
        raw.push((chunk_id, file_size, store.read_chunk_bytes(chunk_id)?));
    }
    let decode = |(chunk_id, file_size, bytes): &(ChunkId, u64, Vec<u8>)| {
        store.decode_chunk(*chunk_id, bytes).map(|c| (Arc::new(c), *file_size))
    };
    let decoded: Vec<Result<(Arc<Chunk>, u64)>> =
        if raw.len() >= 2 && rayon::current_num_threads() > 1 {
            raw.par_iter().map(decode).collect()
        } else {
            raw.iter().map(decode).collect()
        };
    decoded.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{DiskTracker, IoProfile};
    use crate::store::StoreConfig;
    use std::path::PathBuf;
    use uei_types::{AttributeDef, Rng, Schema};

    fn build(tag: &str, n: usize, chunk_bytes: usize) -> (ColumnStore, Vec<DataPoint>, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "uei-merge-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let schema = Schema::new(vec![
            AttributeDef::new("x", 0.0, 100.0).unwrap(),
            AttributeDef::new("y", 0.0, 100.0).unwrap(),
            AttributeDef::new("z", 0.0, 100.0).unwrap(),
        ])
        .unwrap();
        let mut rng = Rng::new(9);
        let rows: Vec<DataPoint> = (0..n)
            .map(|i| {
                DataPoint::new(
                    i as u64,
                    vec![
                        rng.range_f64(0.0, 100.0),
                        rng.range_f64(0.0, 100.0),
                        rng.range_f64(0.0, 100.0),
                    ],
                )
            })
            .collect();
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            &dir,
            schema,
            &rows,
            StoreConfig { chunk_target_bytes: chunk_bytes },
            tracker,
        )
        .unwrap();
        (store, rows, dir)
    }

    fn brute_force(rows: &[DataPoint], region: &Region) -> Vec<u64> {
        rows.iter()
            .filter(|p| region.contains(&p.values).unwrap())
            .map(|p| p.id.as_u64())
            .collect()
    }

    #[test]
    fn matches_brute_force_half_open() {
        let (store, rows, dir) = build("halfopen", 800, 512);
        let region = Region::new(vec![20.0, 30.0, 0.0], vec![60.0, 70.0, 50.0]).unwrap();
        let (got, stats) = reconstruct_region(&store, &region, None).unwrap();
        let got_ids: Vec<u64> = got.iter().map(|p| p.id.as_u64()).collect();
        assert_eq!(got_ids, brute_force(&rows, &region));
        assert_eq!(stats.result_rows as usize, got.len());
        assert!(stats.chunks_loaded > 0);
        // Reconstructed values must equal the originals.
        for p in &got {
            assert_eq!(p, &rows[p.id.as_usize()]);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn matches_brute_force_closed() {
        let (store, rows, dir) = build("closed", 500, 512);
        let region = Region::closed(vec![0.0, 0.0, 0.0], vec![100.0, 100.0, 100.0]).unwrap();
        let (got, _) = reconstruct_region(&store, &region, None).unwrap();
        assert_eq!(got.len(), rows.len(), "full-space region reconstructs every row");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_region_short_circuits() {
        let (store, _, dir) = build("empty", 300, 512);
        // x-range outside the domain: dimension 0 seeds nothing.
        let region = Region::new(vec![200.0, 0.0, 0.0], vec![300.0, 100.0, 100.0]).unwrap();
        let before = store.tracker().snapshot();
        let (got, stats) = reconstruct_region(&store, &region, None).unwrap();
        assert!(got.is_empty());
        assert_eq!(stats.seed_candidates, 0);
        // Later dimensions were skipped, so almost nothing was read.
        assert_eq!(store.tracker().delta(&before).stats.bytes_read, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn narrow_region_touches_fewer_chunks_than_full() {
        let (store, _, dir) = build("narrow", 2000, 256);
        let full = Region::new(vec![0.0; 3], vec![100.0; 3]).unwrap();
        let narrow = Region::new(vec![10.0, 10.0, 10.0], vec![15.0, 15.0, 15.0]).unwrap();
        let (_, full_stats) = reconstruct_region(&store, &full, None).unwrap();
        let (_, narrow_stats) = reconstruct_region(&store, &narrow, None).unwrap();
        assert!(
            narrow_stats.chunk_bytes < full_stats.chunk_bytes,
            "narrow {} vs full {}",
            narrow_stats.chunk_bytes,
            full_stats.chunk_bytes
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_reuse_avoids_rereads() {
        let (store, _, dir) = build("cached", 800, 512);
        let region = Region::new(vec![20.0, 20.0, 20.0], vec![80.0, 80.0, 80.0]).unwrap();
        let mut cache = ChunkCache::new(64 << 20);
        let (first, _) = reconstruct_region(&store, &region, Some(&mut cache)).unwrap();
        let before = store.tracker().snapshot();
        let (second, _) = reconstruct_region(&store, &region, Some(&mut cache)).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            store.tracker().delta(&before).stats.bytes_read,
            0,
            "second reconstruction fully served from cache"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (store, _, dir) = build("dims", 50, 512);
        let region = Region::new(vec![0.0], vec![1.0]).unwrap();
        assert!(reconstruct_region(&store, &region, None).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_entries_bounded_by_work() {
        let (store, _, dir) = build("stats", 600, 256);
        let region = Region::new(vec![40.0, 40.0, 40.0], vec![60.0, 60.0, 60.0]).unwrap();
        let (_, stats) = reconstruct_region(&store, &region, None).unwrap();
        assert!(stats.id_updates >= stats.result_rows * 3, "each result row updated 3 times");
        assert!(stats.seed_candidates >= stats.result_rows);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
