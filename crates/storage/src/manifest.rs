//! The store manifest: a catalog of every chunk and its key range.
//!
//! The manifest is the durable half of the paper's mapping method `m`: it
//! records, for each dimension, the ascending sequence of chunks with their
//! `[min_key, max_key]` ranges. `uei-index` combines this with the grid to
//! answer "which chunk files must be read to reconstruct subspace g_i"
//! without touching the data itself.
//!
//! Persisted as JSON (`manifest.json`) so a store directory is
//! self-describing and inspectable.

use std::path::Path;

use serde::{Deserialize, Serialize};
use uei_types::{Result, Schema, UeiError};

use crate::chunk::ChunkId;
use crate::io::DiskTracker;

/// Catalog entry for one chunk file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunkMeta {
    /// Dimension index.
    pub dim: u32,
    /// Ordinal within the dimension.
    pub seq: u32,
    /// Smallest key in the chunk.
    pub min_key: f64,
    /// Largest key in the chunk.
    pub max_key: f64,
    /// Number of posting lists.
    pub num_entries: u64,
    /// Total number of row ids.
    pub num_ids: u64,
    /// Size of the chunk file in bytes.
    pub file_size: u64,
}

impl ChunkMeta {
    /// The chunk's identity.
    pub fn id(&self) -> ChunkId {
        ChunkId::new(self.dim, self.seq)
    }

    /// Whether the chunk's key range `[min_key, max_key]` intersects
    /// `[lo, hi]`.
    pub fn overlaps(&self, lo: f64, hi: f64) -> bool {
        self.max_key >= lo && self.min_key <= hi
    }
}

/// The manifest of a [`crate::store::ColumnStore`] directory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Dataset schema.
    pub schema: Schema,
    /// Total number of rows in the dataset.
    pub num_rows: u64,
    /// Target chunk payload size the store was built with (bytes).
    pub chunk_target_bytes: u64,
    /// Per-dimension chunk catalogs; `dims[d]` is ascending by key range.
    pub dims: Vec<Vec<ChunkMeta>>,
}

/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// File name of the manifest inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.json";

impl Manifest {
    /// Validates internal consistency: one catalog per schema dimension,
    /// ascending and non-overlapping key ranges, contiguous sequence
    /// numbers.
    pub fn validate(&self) -> Result<()> {
        if self.dims.len() != self.schema.dims() {
            return Err(UeiError::corrupt(format!(
                "manifest has {} dimension catalogs for a {}-dimensional schema",
                self.dims.len(),
                self.schema.dims()
            )));
        }
        for (d, chunks) in self.dims.iter().enumerate() {
            for (i, c) in chunks.iter().enumerate() {
                if c.dim as usize != d {
                    return Err(UeiError::corrupt(format!(
                        "chunk in catalog {d} claims dim {}",
                        c.dim
                    )));
                }
                if c.seq as usize != i {
                    return Err(UeiError::corrupt(format!(
                        "chunk sequence gap in dim {d}: expected seq {i}, found {}",
                        c.seq
                    )));
                }
                if !(c.min_key <= c.max_key) {
                    return Err(UeiError::corrupt(format!(
                        "chunk {} has inverted key range",
                        c.id()
                    )));
                }
                if i > 0 && !(chunks[i - 1].max_key < c.min_key) {
                    return Err(UeiError::corrupt(format!(
                        "chunk {} key range overlaps predecessor (paper requires \
                         strictly ascending chunk sequences)",
                        c.id()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Chunks of dimension `dim` whose key range intersects `[lo, hi]`.
    ///
    /// Because chunk ranges are sorted and disjoint, this is a binary search
    /// for the first overlapping chunk plus a linear walk.
    pub fn chunks_overlapping(&self, dim: usize, lo: f64, hi: f64) -> Result<&[ChunkMeta]> {
        let chunks = self
            .dims
            .get(dim)
            .ok_or_else(|| UeiError::not_found(format!("dimension {dim}")))?;
        let start = chunks.partition_point(|c| c.max_key < lo);
        let mut end = start;
        while end < chunks.len() && chunks[end].min_key <= hi {
            end += 1;
        }
        Ok(&chunks[start..end])
    }

    /// Looks up one chunk's metadata.
    pub fn chunk_meta(&self, id: ChunkId) -> Result<&ChunkMeta> {
        self.dims
            .get(id.dim as usize)
            .and_then(|c| c.get(id.seq as usize))
            .ok_or_else(|| UeiError::not_found(format!("chunk {id}")))
    }

    /// Total number of chunk files across all dimensions.
    pub fn total_chunks(&self) -> usize {
        self.dims.iter().map(|d| d.len()).sum()
    }

    /// Total bytes across all chunk files.
    pub fn total_chunk_bytes(&self) -> u64 {
        self.dims.iter().flatten().map(|c| c.file_size).sum()
    }

    /// Serializes and writes the manifest into `dir` via the tracker.
    pub fn save(&self, dir: &Path, tracker: &DiskTracker) -> Result<()> {
        let json = serde_json::to_vec_pretty(self)
            .map_err(|e| UeiError::corrupt(format!("manifest serialization failed: {e}")))?;
        tracker.write_file(&dir.join(MANIFEST_FILE), &json)
    }

    /// Loads and validates the manifest from `dir`.
    pub fn load(dir: &Path, tracker: &DiskTracker) -> Result<Manifest> {
        let bytes = tracker.read_file(&dir.join(MANIFEST_FILE))?;
        let manifest: Manifest = serde_json::from_slice(&bytes)
            .map_err(|e| UeiError::corrupt(format!("manifest parse failed: {e}")))?;
        if manifest.version != MANIFEST_VERSION {
            return Err(UeiError::corrupt(format!(
                "unsupported manifest version {}",
                manifest.version
            )));
        }
        manifest.validate()?;
        Ok(manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uei_types::{AttributeDef, Schema};

    fn meta(dim: u32, seq: u32, min: f64, max: f64) -> ChunkMeta {
        ChunkMeta {
            dim,
            seq,
            min_key: min,
            max_key: max,
            num_entries: 10,
            num_ids: 100,
            file_size: 1024,
        }
    }

    fn two_dim_manifest() -> Manifest {
        let schema = Schema::new(vec![
            AttributeDef::new("x", 0.0, 100.0).unwrap(),
            AttributeDef::new("y", 0.0, 100.0).unwrap(),
        ])
        .unwrap();
        Manifest {
            version: MANIFEST_VERSION,
            schema,
            num_rows: 1000,
            chunk_target_bytes: 470 * 1024,
            dims: vec![
                vec![meta(0, 0, 0.0, 24.0), meta(0, 1, 25.0, 60.0), meta(0, 2, 61.0, 100.0)],
                vec![meta(1, 0, 0.0, 49.0), meta(1, 1, 50.0, 100.0)],
            ],
        }
    }

    #[test]
    fn validate_accepts_well_formed() {
        two_dim_manifest().validate().unwrap();
    }

    #[test]
    fn validate_rejects_overlap() {
        let mut m = two_dim_manifest();
        m.dims[0][1].min_key = 20.0; // overlaps chunk 0's [0, 24]
        assert!(m.validate().is_err());
    }

    #[test]
    fn validate_rejects_seq_gap() {
        let mut m = two_dim_manifest();
        m.dims[0][2].seq = 5;
        assert!(m.validate().is_err());
    }

    #[test]
    fn validate_rejects_wrong_dim_count() {
        let mut m = two_dim_manifest();
        m.dims.pop();
        assert!(m.validate().is_err());
    }

    #[test]
    fn chunks_overlapping_finds_ranges() {
        let m = two_dim_manifest();
        let hit = m.chunks_overlapping(0, 10.0, 30.0).unwrap();
        assert_eq!(hit.iter().map(|c| c.seq).collect::<Vec<_>>(), vec![0, 1]);
        let hit = m.chunks_overlapping(0, 24.5, 24.9).unwrap();
        assert!(hit.is_empty(), "gap between chunks yields nothing");
        let hit = m.chunks_overlapping(0, -10.0, 1000.0).unwrap();
        assert_eq!(hit.len(), 3);
        let hit = m.chunks_overlapping(1, 50.0, 50.0).unwrap();
        assert_eq!(hit.iter().map(|c| c.seq).collect::<Vec<_>>(), vec![1]);
        assert!(m.chunks_overlapping(2, 0.0, 1.0).is_err());
    }

    #[test]
    fn chunk_meta_lookup() {
        let m = two_dim_manifest();
        assert_eq!(m.chunk_meta(ChunkId::new(1, 1)).unwrap().min_key, 50.0);
        assert!(m.chunk_meta(ChunkId::new(1, 9)).is_err());
        assert!(m.chunk_meta(ChunkId::new(9, 0)).is_err());
    }

    #[test]
    fn totals() {
        let m = two_dim_manifest();
        assert_eq!(m.total_chunks(), 5);
        assert_eq!(m.total_chunk_bytes(), 5 * 1024);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("uei-manifest-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let tracker = DiskTracker::default();
        let m = two_dim_manifest();
        m.save(&dir, &tracker).unwrap();
        let loaded = Manifest::load(&dir, &tracker).unwrap();
        assert_eq!(loaded.num_rows, m.num_rows);
        assert_eq!(loaded.dims, m.dims);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_bad_version() {
        let dir =
            std::env::temp_dir().join(format!("uei-manifest-ver-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let tracker = DiskTracker::default();
        let mut m = two_dim_manifest();
        m.version = 999;
        let json = serde_json::to_vec(&m).unwrap();
        std::fs::write(dir.join(MANIFEST_FILE), json).unwrap();
        assert!(Manifest::load(&dir, &tracker).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overlaps_predicate() {
        let c = meta(0, 0, 10.0, 20.0);
        assert!(c.overlaps(15.0, 25.0));
        assert!(c.overlaps(20.0, 30.0));
        assert!(c.overlaps(0.0, 10.0));
        assert!(!c.overlaps(20.1, 30.0));
        assert!(!c.overlaps(0.0, 9.9));
    }
}
