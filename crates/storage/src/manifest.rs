//! The store manifest: a catalog of every chunk and its key range.
//!
//! The manifest is the durable half of the paper's mapping method `m`: it
//! records, for each dimension, the ascending sequence of chunks with their
//! `[min_key, max_key]` ranges. `uei-index` combines this with the grid to
//! answer "which chunk files must be read to reconstruct subspace g_i"
//! without touching the data itself.
//!
//! Persisted as JSON (`manifest.json`) so a store directory is
//! self-describing and inspectable. Integrity is covered twice: the catalog
//! records a CRC-32 per chunk file (verified on every chunk read, before
//! decode), and the manifest itself is protected by a checksum sidecar
//! (`manifest.crc`) that [`Manifest::load`] verifies *fail-closed* — a
//! missing or mismatched sidecar is [`uei_types::UeiError::Corrupt`], never
//! a silent parse of rotten JSON.

use std::path::Path;

use serde::{Deserialize, Serialize};
use uei_types::{Result, Schema, UeiError};

use crate::chunk::ChunkId;
use crate::io::DiskTracker;

/// Catalog entry for one chunk file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunkMeta {
    /// Dimension index.
    pub dim: u32,
    /// Ordinal within the dimension.
    pub seq: u32,
    /// Smallest key in the chunk.
    pub min_key: f64,
    /// Largest key in the chunk.
    pub max_key: f64,
    /// Number of posting lists.
    pub num_entries: u64,
    /// Total number of row ids.
    pub num_ids: u64,
    /// Size of the chunk file in bytes.
    pub file_size: u64,
    /// CRC-32 of the encoded chunk file, written at build time and verified
    /// on every read before decoding. `0` means "unknown" (catalog written
    /// before checksums existed); verification is skipped for such entries.
    #[serde(default)]
    pub crc32: u32,
}

impl ChunkMeta {
    /// The chunk's identity.
    pub fn id(&self) -> ChunkId {
        ChunkId::new(self.dim, self.seq)
    }

    /// Whether the chunk's key range `[min_key, max_key]` intersects
    /// `[lo, hi]`.
    pub fn overlaps(&self, lo: f64, hi: f64) -> bool {
        self.max_key >= lo && self.min_key <= hi
    }
}

/// The manifest of a [`crate::store::ColumnStore`] directory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Dataset schema.
    pub schema: Schema,
    /// Total number of rows in the dataset.
    pub num_rows: u64,
    /// Target chunk payload size the store was built with (bytes).
    pub chunk_target_bytes: u64,
    /// Per-dimension chunk catalogs; `dims[d]` is ascending by key range.
    pub dims: Vec<Vec<ChunkMeta>>,
}

/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// File name of the manifest inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// File name of the manifest checksum sidecar: the CRC-32 of
/// `manifest.json`, as 8 lowercase hex digits.
pub const MANIFEST_CHECKSUM_FILE: &str = "manifest.crc";

impl Manifest {
    /// Validates internal consistency: one catalog per schema dimension,
    /// ascending and non-overlapping key ranges, contiguous sequence
    /// numbers.
    pub fn validate(&self) -> Result<()> {
        if self.dims.len() != self.schema.dims() {
            return Err(UeiError::corrupt(format!(
                "manifest has {} dimension catalogs for a {}-dimensional schema",
                self.dims.len(),
                self.schema.dims()
            )));
        }
        for (d, chunks) in self.dims.iter().enumerate() {
            for (i, c) in chunks.iter().enumerate() {
                if c.dim as usize != d {
                    return Err(UeiError::corrupt(format!(
                        "chunk in catalog {d} claims dim {}",
                        c.dim
                    )));
                }
                if c.seq as usize != i {
                    return Err(UeiError::corrupt(format!(
                        "chunk sequence gap in dim {d}: expected seq {i}, found {}",
                        c.seq
                    )));
                }
                if !(c.min_key <= c.max_key) {
                    return Err(UeiError::corrupt(format!(
                        "chunk {} has inverted key range",
                        c.id()
                    )));
                }
                if i > 0 && !(chunks[i - 1].max_key < c.min_key) {
                    return Err(UeiError::corrupt(format!(
                        "chunk {} key range overlaps predecessor (paper requires \
                         strictly ascending chunk sequences)",
                        c.id()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Chunks of dimension `dim` whose key range intersects `[lo, hi]`.
    ///
    /// Because chunk ranges are sorted and disjoint, this is a binary search
    /// for the first overlapping chunk plus a linear walk.
    pub fn chunks_overlapping(&self, dim: usize, lo: f64, hi: f64) -> Result<&[ChunkMeta]> {
        let chunks =
            self.dims.get(dim).ok_or_else(|| UeiError::not_found(format!("dimension {dim}")))?;
        let start = chunks.partition_point(|c| c.max_key < lo);
        let mut end = start;
        while end < chunks.len() && chunks[end].min_key <= hi {
            end += 1;
        }
        Ok(&chunks[start..end])
    }

    /// Looks up one chunk's metadata.
    pub fn chunk_meta(&self, id: ChunkId) -> Result<&ChunkMeta> {
        self.dims
            .get(id.dim as usize)
            .and_then(|c| c.get(id.seq as usize))
            .ok_or_else(|| UeiError::not_found(format!("chunk {id}")))
    }

    /// Total number of chunk files across all dimensions.
    pub fn total_chunks(&self) -> usize {
        self.dims.iter().map(|d| d.len()).sum()
    }

    /// Total bytes across all chunk files.
    pub fn total_chunk_bytes(&self) -> u64 {
        self.dims.iter().flatten().map(|c| c.file_size).sum()
    }

    /// Serializes and writes the manifest into `dir` via the tracker,
    /// together with its checksum sidecar (`manifest.crc`).
    pub fn save(&self, dir: &Path, tracker: &DiskTracker) -> Result<()> {
        let json = serde_json::to_vec_pretty(self)
            .map_err(|e| UeiError::corrupt(format!("manifest serialization failed: {e}")))?;
        tracker.write_file(&dir.join(MANIFEST_FILE), &json)?;
        let sum = format!("{:08x}\n", crate::checksum::crc32(&json));
        tracker.write_file(&dir.join(MANIFEST_CHECKSUM_FILE), sum.as_bytes())
    }

    /// Loads, checksum-verifies, and validates the manifest from `dir`.
    ///
    /// Fails closed: a missing or unparsable `manifest.crc` sidecar, or a
    /// CRC mismatch, is reported as [`UeiError::Corrupt`] naming
    /// `manifest.json` — the store refuses to trust an unverifiable catalog.
    pub fn load(dir: &Path, tracker: &DiskTracker) -> Result<Manifest> {
        let path = dir.join(MANIFEST_FILE);
        let bytes = tracker.read_file(&path)?;
        let sum_path = dir.join(MANIFEST_CHECKSUM_FILE);
        let sum_bytes = match tracker.read_file(&sum_path) {
            Ok(b) => b,
            // A transient (possibly injected) failure is the device's
            // problem, not evidence of rot — let the caller retry it.
            Err(e) if e.is_retryable() => return Err(e),
            Err(e) => {
                return Err(UeiError::corrupt(format!(
                    "{} has no readable checksum sidecar {} ({e}); refusing to trust it",
                    path.display(),
                    MANIFEST_CHECKSUM_FILE
                )))
            }
        };
        let expected = std::str::from_utf8(&sum_bytes)
            .ok()
            .and_then(|s| u32::from_str_radix(s.trim(), 16).ok())
            .ok_or_else(|| {
                UeiError::corrupt(format!(
                    "checksum sidecar for {} is not 8 hex digits",
                    path.display()
                ))
            })?;
        let actual = crate::checksum::crc32(&bytes);
        if actual != expected {
            return Err(UeiError::corrupt(format!(
                "{} failed its checksum: crc32 {actual:08x} != recorded {expected:08x}",
                path.display()
            )));
        }
        let manifest: Manifest = serde_json::from_slice(&bytes)
            .map_err(|e| UeiError::corrupt(format!("manifest parse failed: {e}")))?;
        if manifest.version != MANIFEST_VERSION {
            return Err(UeiError::corrupt(format!(
                "unsupported manifest version {}",
                manifest.version
            )));
        }
        manifest.validate()?;
        Ok(manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uei_types::{AttributeDef, Schema};

    fn meta(dim: u32, seq: u32, min: f64, max: f64) -> ChunkMeta {
        ChunkMeta {
            dim,
            seq,
            min_key: min,
            max_key: max,
            num_entries: 10,
            num_ids: 100,
            file_size: 1024,
            crc32: 0,
        }
    }

    fn two_dim_manifest() -> Manifest {
        let schema = Schema::new(vec![
            AttributeDef::new("x", 0.0, 100.0).unwrap(),
            AttributeDef::new("y", 0.0, 100.0).unwrap(),
        ])
        .unwrap();
        Manifest {
            version: MANIFEST_VERSION,
            schema,
            num_rows: 1000,
            chunk_target_bytes: 470 * 1024,
            dims: vec![
                vec![meta(0, 0, 0.0, 24.0), meta(0, 1, 25.0, 60.0), meta(0, 2, 61.0, 100.0)],
                vec![meta(1, 0, 0.0, 49.0), meta(1, 1, 50.0, 100.0)],
            ],
        }
    }

    #[test]
    fn validate_accepts_well_formed() {
        two_dim_manifest().validate().unwrap();
    }

    #[test]
    fn validate_rejects_overlap() {
        let mut m = two_dim_manifest();
        m.dims[0][1].min_key = 20.0; // overlaps chunk 0's [0, 24]
        assert!(m.validate().is_err());
    }

    #[test]
    fn validate_rejects_seq_gap() {
        let mut m = two_dim_manifest();
        m.dims[0][2].seq = 5;
        assert!(m.validate().is_err());
    }

    #[test]
    fn validate_rejects_wrong_dim_count() {
        let mut m = two_dim_manifest();
        m.dims.pop();
        assert!(m.validate().is_err());
    }

    #[test]
    fn chunks_overlapping_finds_ranges() {
        let m = two_dim_manifest();
        let hit = m.chunks_overlapping(0, 10.0, 30.0).unwrap();
        assert_eq!(hit.iter().map(|c| c.seq).collect::<Vec<_>>(), vec![0, 1]);
        let hit = m.chunks_overlapping(0, 24.5, 24.9).unwrap();
        assert!(hit.is_empty(), "gap between chunks yields nothing");
        let hit = m.chunks_overlapping(0, -10.0, 1000.0).unwrap();
        assert_eq!(hit.len(), 3);
        let hit = m.chunks_overlapping(1, 50.0, 50.0).unwrap();
        assert_eq!(hit.iter().map(|c| c.seq).collect::<Vec<_>>(), vec![1]);
        assert!(m.chunks_overlapping(2, 0.0, 1.0).is_err());
    }

    #[test]
    fn chunk_meta_lookup() {
        let m = two_dim_manifest();
        assert_eq!(m.chunk_meta(ChunkId::new(1, 1)).unwrap().min_key, 50.0);
        assert!(m.chunk_meta(ChunkId::new(1, 9)).is_err());
        assert!(m.chunk_meta(ChunkId::new(9, 0)).is_err());
    }

    #[test]
    fn totals() {
        let m = two_dim_manifest();
        assert_eq!(m.total_chunks(), 5);
        assert_eq!(m.total_chunk_bytes(), 5 * 1024);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = crate::testutil::TempDir::new("manifest-test");
        let tracker = DiskTracker::default();
        let m = two_dim_manifest();
        m.save(dir.path(), &tracker).unwrap();
        assert!(dir.join(MANIFEST_CHECKSUM_FILE).is_file(), "sidecar written");
        let loaded = Manifest::load(dir.path(), &tracker).unwrap();
        assert_eq!(loaded.num_rows, m.num_rows);
        assert_eq!(loaded.dims, m.dims);
    }

    #[test]
    fn load_rejects_bad_version() {
        let dir = crate::testutil::TempDir::new("manifest-ver-test");
        let tracker = DiskTracker::default();
        let mut m = two_dim_manifest();
        m.version = 999;
        // Save writes a valid sidecar, so the version check is what trips.
        m.save(dir.path(), &tracker).unwrap();
        let err = Manifest::load(dir.path(), &tracker).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn load_fails_closed_on_corrupt_manifest_naming_the_file() {
        let dir = crate::testutil::TempDir::new("manifest-corrupt-test");
        let tracker = DiskTracker::default();
        two_dim_manifest().save(dir.path(), &tracker).unwrap();
        // Rot one byte of the JSON on disk; the sidecar still holds the
        // checksum of the clean bytes.
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, bytes).unwrap();
        match Manifest::load(dir.path(), &tracker) {
            Err(UeiError::Corrupt { detail }) => {
                assert!(detail.contains(MANIFEST_FILE), "must name the file: {detail}");
                assert!(detail.contains("checksum"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn load_fails_closed_on_missing_sidecar() {
        let dir = crate::testutil::TempDir::new("manifest-nosum-test");
        let tracker = DiskTracker::default();
        two_dim_manifest().save(dir.path(), &tracker).unwrap();
        std::fs::remove_file(dir.join(MANIFEST_CHECKSUM_FILE)).unwrap();
        match Manifest::load(dir.path(), &tracker) {
            Err(UeiError::Corrupt { detail }) => {
                assert!(detail.contains(MANIFEST_FILE), "must name the file: {detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn chunk_meta_crc_defaults_for_legacy_catalogs() {
        // A catalog serialized before the crc32 field existed must still
        // deserialize, with crc32 = 0 meaning "skip verification".
        let json = br#"{"dim":0,"seq":0,"min_key":0.0,"max_key":1.0,
                        "num_entries":1,"num_ids":2,"file_size":64}"#;
        let m: ChunkMeta = serde_json::from_slice(json).unwrap();
        assert_eq!(m.crc32, 0);
    }

    #[test]
    fn overlaps_predicate() {
        let c = meta(0, 0, 10.0, 20.0);
        assert!(c.overlaps(15.0, 25.0));
        assert!(c.overlaps(20.0, 30.0));
        assert!(c.overlaps(0.0, 10.0));
        assert!(!c.overlaps(20.1, 30.0));
        assert!(!c.overlaps(0.0, 9.9));
    }
}
