//! The on-disk chunk file format.
//!
//! UEI "splits the distinct values of each dimension d into a set of
//! equal-sized data chunks, where each chunk will be stored as a separate
//! file on the disk" (§3.1). A chunk holds a run of consecutive posting
//! lists of one dimension; across chunks of a dimension the key ranges are
//! disjoint and ascending ("values stored in each subsequent chunk will be
//! larger than the values that have been stored" before it).
//!
//! ## Layout
//!
//! ```text
//! magic    8 bytes  "UEICHNK1"
//! dim      u32      dimension index
//! chunk    u32      chunk id within the dimension
//! entries  u32      number of posting lists
//! payload  entries × PostingList (see `postings`)
//! crc      u32      CRC-32 of everything above
//! ```

use uei_types::codec::{Reader, Writer};
use uei_types::{Result, UeiError};

use crate::checksum::crc32;
use crate::postings::PostingList;

/// File-format magic for chunk files.
pub const CHUNK_MAGIC: &[u8; 8] = b"UEICHNK1";

/// Identifies a chunk: `(dimension, position within the dimension)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkId {
    /// Dimension (attribute) index.
    pub dim: u32,
    /// Ordinal of the chunk within the dimension (0-based; key ranges
    /// ascend with this ordinal).
    pub seq: u32,
}

impl ChunkId {
    /// Creates a chunk id.
    pub fn new(dim: u32, seq: u32) -> Self {
        ChunkId { dim, seq }
    }

    /// Canonical file name of this chunk inside a store directory.
    pub fn file_name(&self) -> String {
        format!("d{:03}_c{:06}.uei", self.dim, self.seq)
    }
}

impl std::fmt::Display for ChunkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}c{}", self.dim, self.seq)
    }
}

/// An in-memory chunk: a run of ascending-key posting lists of one dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    /// Chunk identity.
    pub id: ChunkId,
    /// Posting lists with strictly ascending keys.
    pub entries: Vec<PostingList>,
}

impl Chunk {
    /// Creates a chunk, validating that entries are non-empty and keys are
    /// strictly ascending.
    pub fn new(id: ChunkId, entries: Vec<PostingList>) -> Result<Self> {
        if entries.is_empty() {
            return Err(UeiError::corrupt(format!("chunk {id} has no entries")));
        }
        for w in entries.windows(2) {
            if w[1].key <= w[0].key {
                return Err(UeiError::corrupt(format!(
                    "chunk {id} keys not strictly ascending: {} after {}",
                    w[1].key, w[0].key
                )));
            }
        }
        Ok(Chunk { id, entries })
    }

    /// Smallest key stored in the chunk.
    pub fn min_key(&self) -> f64 {
        self.entries.first().expect("validated chunk is non-empty").key
    }

    /// Largest key stored in the chunk.
    pub fn max_key(&self) -> f64 {
        self.entries.last().expect("validated chunk is non-empty").key
    }

    /// Number of posting lists.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Total number of row ids across all posting lists.
    pub fn num_ids(&self) -> usize {
        self.entries.iter().map(|e| e.len()).sum()
    }

    /// Serializes the chunk to its file representation. Fails only if the
    /// chunk's entry invariants were violated after construction; the
    /// store's write path propagates this instead of panicking mid-build.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut w = Writer::with_capacity(64 + self.entries.len() * 24);
        w.write_bytes(CHUNK_MAGIC);
        w.write_u32(self.id.dim);
        w.write_u32(self.id.seq);
        w.write_u32(self.entries.len() as u32);
        for e in &self.entries {
            e.encode(&mut w)?;
        }
        let crc = crc32(w.as_bytes());
        w.write_u32(crc);
        Ok(w.into_bytes())
    }

    /// Parses and validates a chunk file image.
    pub fn decode(bytes: &[u8]) -> Result<Chunk> {
        if bytes.len() < CHUNK_MAGIC.len() + 4 * 3 + 4 {
            return Err(UeiError::corrupt(format!("chunk file too small: {} bytes", bytes.len())));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte split"));
        let actual_crc = crc32(body);
        if stored_crc != actual_crc {
            return Err(UeiError::corrupt(format!(
                "chunk crc mismatch: stored {stored_crc:#x}, computed {actual_crc:#x}"
            )));
        }
        let mut r = Reader::new(body);
        let magic = r.read_bytes(CHUNK_MAGIC.len())?;
        if magic != CHUNK_MAGIC {
            return Err(UeiError::corrupt("bad chunk magic"));
        }
        let dim = r.read_u32()?;
        let seq = r.read_u32()?;
        let n = r.read_u32()? as usize;
        let mut entries = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            entries.push(PostingList::decode(&mut r)?);
        }
        if !r.is_empty() {
            return Err(UeiError::corrupt(format!(
                "chunk has {} trailing bytes after {} entries",
                r.remaining(),
                n
            )));
        }
        Chunk::new(ChunkId::new(dim, seq), entries)
    }

    /// Scans the chunk for posting lists whose key falls in `[lo, hi)`
    /// (or `[lo, hi]` when `inclusive_hi`), visiting them in ascending key
    /// order. The entries are sorted, so the scan starts at the first
    /// qualifying key via binary search.
    pub fn scan_range(
        &self,
        lo: f64,
        hi: f64,
        inclusive_hi: bool,
        mut visit: impl FnMut(&PostingList),
    ) {
        let start = self.entries.partition_point(|e| e.key < lo);
        for e in &self.entries[start..] {
            let beyond = if inclusive_hi { e.key > hi } else { e.key >= hi };
            if beyond {
                break;
            }
            visit(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chunk() -> Chunk {
        Chunk::new(
            ChunkId::new(2, 7),
            vec![
                PostingList::new(-5.0, vec![3, 9]).unwrap(),
                PostingList::new(0.0, vec![1]).unwrap(),
                PostingList::new(4.5, vec![2, 4, 6]).unwrap(),
                PostingList::new(9.0, vec![0]).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        let id = ChunkId::new(0, 0);
        assert!(Chunk::new(id, vec![]).is_err());
        let unordered =
            vec![PostingList::new(2.0, vec![1]).unwrap(), PostingList::new(1.0, vec![2]).unwrap()];
        assert!(Chunk::new(id, unordered).is_err());
        let dup =
            vec![PostingList::new(1.0, vec![1]).unwrap(), PostingList::new(1.0, vec![2]).unwrap()];
        assert!(Chunk::new(id, dup).is_err());
    }

    #[test]
    fn accessors() {
        let c = sample_chunk();
        assert_eq!(c.min_key(), -5.0);
        assert_eq!(c.max_key(), 9.0);
        assert_eq!(c.num_entries(), 4);
        assert_eq!(c.num_ids(), 7);
        assert_eq!(c.id.file_name(), "d002_c000007.uei");
    }

    #[test]
    fn encode_decode_round_trip() {
        let c = sample_chunk();
        let bytes = c.encode().unwrap();
        let got = Chunk::decode(&bytes).unwrap();
        assert_eq!(got, c);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut bytes = sample_chunk().encode().unwrap();
        bytes[0] ^= 0xFF;
        assert!(Chunk::decode(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_bit_flip_anywhere() {
        let bytes = sample_chunk().encode().unwrap();
        for pos in [0, 8, 12, 20, bytes.len() / 2, bytes.len() - 5, bytes.len() - 1] {
            let mut copy = bytes.clone();
            copy[pos] ^= 0x01;
            assert!(Chunk::decode(&copy).is_err(), "bit flip at {pos} undetected");
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = sample_chunk().encode().unwrap();
        for cut in [0, 1, 10, bytes.len() - 1] {
            assert!(Chunk::decode(&bytes[..cut]).is_err(), "truncation at {cut} undetected");
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        // Appending bytes invalidates the CRC position, so this must fail.
        let mut bytes = sample_chunk().encode().unwrap();
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        assert!(Chunk::decode(&bytes).is_err());
    }

    #[test]
    fn scan_range_half_open() {
        let c = sample_chunk();
        let mut seen = Vec::new();
        c.scan_range(0.0, 9.0, false, |e| seen.push(e.key));
        assert_eq!(seen, vec![0.0, 4.5]);
    }

    #[test]
    fn scan_range_inclusive() {
        let c = sample_chunk();
        let mut seen = Vec::new();
        c.scan_range(0.0, 9.0, true, |e| seen.push(e.key));
        assert_eq!(seen, vec![0.0, 4.5, 9.0]);
    }

    #[test]
    fn scan_range_outside_is_empty() {
        let c = sample_chunk();
        let mut count = 0;
        c.scan_range(100.0, 200.0, true, |_| count += 1);
        c.scan_range(-100.0, -50.0, true, |_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn scan_range_full_cover() {
        let c = sample_chunk();
        let mut ids: Vec<u64> = Vec::new();
        c.scan_range(f64::NEG_INFINITY, f64::INFINITY, false, |e| ids.extend(&e.ids));
        assert_eq!(ids.len(), c.num_ids());
    }
}
