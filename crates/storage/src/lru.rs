//! A generic intrusive-list LRU map.
//!
//! Used by the [`crate::cache::ChunkCache`] (byte-budgeted chunk caching for
//! UEI) and by the `uei-dbms` buffer pool (page-count-budgeted). Entries are
//! stored in a slab with intrusive prev/next links, so every operation is
//! O(1) amortized and there is one allocation per slot, reused on eviction.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    // `None` only while the slot sits on the free list.
    value: Option<V>,
    prev: usize,
    next: usize,
}

/// A least-recently-used ordered map.
///
/// The LRU has no built-in capacity: callers decide *when* to evict (by
/// entry count, by byte budget, …) and call [`LruMap::pop_lru`]. This keeps
/// one implementation serving both the chunk cache and the buffer pool.
#[derive(Debug)]
pub struct LruMap<K, V> {
    slots: Vec<Node<K, V>>,
    free: Vec<usize>,
    map: HashMap<K, usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl<K: Eq + Hash + Clone, V> Default for LruMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, V> LruMap<K, V> {
    /// Creates an empty LRU map.
    pub fn new() -> Self {
        LruMap { slots: Vec::new(), free: Vec::new(), map: HashMap::new(), head: NIL, tail: NIL }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `key` is present (does not affect recency).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    fn attach_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Gets a value and marks it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        if idx != self.head {
            self.detach(idx);
            self.attach_front(idx);
        }
        self.slots[idx].value.as_ref()
    }

    /// Gets a mutable value and marks it most recently used.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let idx = *self.map.get(key)?;
        if idx != self.head {
            self.detach(idx);
            self.attach_front(idx);
        }
        self.slots[idx].value.as_mut()
    }

    /// Gets a value without touching recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).and_then(|&idx| self.slots[idx].value.as_ref())
    }

    /// Inserts or replaces a value, marking it most recently used. Returns
    /// the previous value if the key was present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if let Some(&idx) = self.map.get(&key) {
            self.detach(idx);
            self.attach_front(idx);
            return self.slots[idx].value.replace(value);
        }
        let idx = if let Some(idx) = self.free.pop() {
            self.slots[idx] = Node { key: key.clone(), value: Some(value), prev: NIL, next: NIL };
            idx
        } else {
            self.slots.push(Node { key: key.clone(), value: Some(value), prev: NIL, next: NIL });
            self.slots.len() - 1
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
        None
    }

    /// Removes a specific key, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.detach(idx);
        self.free.push(idx);
        self.slots[idx].value.take()
    }

    /// Evicts and returns the least-recently-used entry.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        let key = self.slots[idx].key.clone();
        self.map.remove(&key);
        self.detach(idx);
        self.free.push(idx);
        let value = self.slots[idx].value.take().expect("live LRU slot has a value");
        Some((key, value))
    }

    /// The least-recently-used key, if any (does not evict).
    pub fn lru_key(&self) -> Option<&K> {
        if self.tail == NIL {
            None
        } else {
            Some(&self.slots[self.tail].key)
        }
    }

    /// Iterates keys from most to least recently used.
    pub fn keys_mru_to_lru(&self) -> impl Iterator<Item = &K> {
        LruIter { lru: self, idx: self.head }
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        while self.pop_lru().is_some() {}
    }
}

struct LruIter<'a, K, V> {
    lru: &'a LruMap<K, V>,
    idx: usize,
}

impl<'a, K, V> Iterator for LruIter<'a, K, V> {
    type Item = &'a K;
    fn next(&mut self) -> Option<&'a K> {
        if self.idx == NIL {
            return None;
        }
        let node = &self.lru.slots[self.idx];
        self.idx = node.next;
        Some(&node.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_order() {
        let mut lru = LruMap::new();
        lru.insert("a", 1);
        lru.insert("b", 2);
        lru.insert("c", 3);
        assert_eq!(lru.len(), 3);
        let order: Vec<_> = lru.keys_mru_to_lru().copied().collect();
        assert_eq!(order, vec!["c", "b", "a"]);
        // Touch "a": now most recent.
        assert_eq!(lru.get(&"a"), Some(&1));
        let order: Vec<_> = lru.keys_mru_to_lru().copied().collect();
        assert_eq!(order, vec!["a", "c", "b"]);
        assert_eq!(lru.lru_key(), Some(&"b"));
    }

    #[test]
    fn pop_lru_evicts_oldest() {
        let mut lru = LruMap::new();
        for i in 0..5 {
            lru.insert(i, i * 10);
        }
        assert_eq!(lru.pop_lru(), Some((0, 0)));
        assert_eq!(lru.pop_lru(), Some((1, 10)));
        lru.get(&2); // bump 2
        assert_eq!(lru.pop_lru(), Some((3, 30)));
        assert_eq!(lru.pop_lru(), Some((4, 40)));
        assert_eq!(lru.pop_lru(), Some((2, 20)));
        assert_eq!(lru.pop_lru(), None);
        assert!(lru.is_empty());
    }

    #[test]
    fn insert_existing_replaces_and_bumps() {
        let mut lru = LruMap::new();
        lru.insert("x", 1);
        lru.insert("y", 2);
        assert_eq!(lru.insert("x", 10), Some(1));
        assert_eq!(lru.peek(&"x"), Some(&10));
        assert_eq!(lru.lru_key(), Some(&"y"));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn remove_specific_key() {
        let mut lru = LruMap::new();
        lru.insert(1, "one");
        lru.insert(2, "two");
        lru.insert(3, "three");
        assert_eq!(lru.remove(&2), Some("two"));
        assert_eq!(lru.remove(&2), None);
        assert_eq!(lru.len(), 2);
        let order: Vec<_> = lru.keys_mru_to_lru().copied().collect();
        assert_eq!(order, vec![3, 1]);
    }

    #[test]
    fn slots_are_reused_after_eviction() {
        let mut lru = LruMap::new();
        for i in 0..100 {
            lru.insert(i, vec![i; 4]);
            if lru.len() > 4 {
                lru.pop_lru();
            }
        }
        assert_eq!(lru.len(), 4);
        // Slab should be bounded near the working set, not grow with inserts.
        assert!(lru.slots.len() <= 5, "slab grew to {}", lru.slots.len());
    }

    #[test]
    fn get_mut_mutates() {
        let mut lru = LruMap::new();
        lru.insert("k", 1);
        *lru.get_mut(&"k").unwrap() += 41;
        assert_eq!(lru.peek(&"k"), Some(&42));
    }

    #[test]
    fn clear_empties() {
        let mut lru = LruMap::new();
        for i in 0..10 {
            lru.insert(i, i);
        }
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.pop_lru(), None);
        // Reusable after clear.
        lru.insert(7, 7);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn string_values_dropped_correctly() {
        // Exercise remove/pop with heap values to catch double-drop bugs
        // (the slab uses ptr::read internally).
        let mut lru: LruMap<u32, String> = LruMap::new();
        for i in 0..50 {
            lru.insert(i, format!("value-{i}"));
        }
        for i in 0..25 {
            assert_eq!(lru.remove(&i), Some(format!("value-{i}")));
        }
        while lru.pop_lru().is_some() {}
        lru.insert(1, "again".to_string());
        assert_eq!(lru.get(&1), Some(&"again".to_string()));
    }
}
