//! The [`ChunkSource`] abstraction: where chunks come from.
//!
//! `RegionLoader`, `Prefetcher`, and the chunk caches only need four things
//! from the storage layer: the dataset dimensionality, the catalog's encoded
//! size of a chunk, the (tracked, integrity-checked) bytes of a chunk, and a
//! tracker to charge modeled I/O against. Extracting that surface into a
//! trait lets the whole read path run against either the real on-disk
//! [`ColumnStore`] or an in-memory double — and lets one store be shared by
//! many sessions behind `Arc<dyn ChunkSource>` handles that differ only in
//! which [`DiskTracker`] they charge.

use std::collections::HashMap;
use std::sync::Arc;

use uei_types::{DataPoint, Result, Schema, UeiError};

use crate::chunk::{Chunk, ChunkId};
use crate::column::{split_into_chunks, vertical_decompose};
use crate::io::DiskTracker;
use crate::store::ColumnStore;

/// A tracked, integrity-checked supplier of chunks.
///
/// Implementations must be usable from many threads at once (`Send + Sync`):
/// the prefetcher reads on a background thread while the foreground loader
/// reads on the session thread, and an `EngineCore` hands clones of one
/// source to every session.
pub trait ChunkSource: Send + Sync {
    /// Dataset dimensionality (number of inverted columns).
    fn dims(&self) -> usize;

    /// Encoded on-"disk" size of chunk `id` per the catalog, without
    /// touching the payload. Used for cache admission and modeled-I/O
    /// charging.
    fn chunk_file_size(&self, id: ChunkId) -> Result<u64>;

    /// Reads chunk `id`'s raw encoded bytes through the tracked I/O path,
    /// verifying catalog integrity (size + CRC) but not decoding. Paired
    /// with [`ChunkSource::decode_chunk`] so callers can keep reads
    /// sequential while decoding in parallel.
    fn read_chunk_bytes(&self, id: ChunkId) -> Result<Vec<u8>>;

    /// Decodes bytes produced by [`ChunkSource::read_chunk_bytes`],
    /// validating that they really hold chunk `id`. Pure CPU work.
    fn decode_chunk(&self, id: ChunkId, bytes: &[u8]) -> Result<Chunk>;

    /// Reads and decodes one chunk.
    fn read_chunk(&self, id: ChunkId) -> Result<Chunk> {
        let bytes = self.read_chunk_bytes(id)?;
        self.decode_chunk(id, &bytes)
    }

    /// The tracker charged by this source's reads. Each session holds a
    /// source handle with its own tracker, so modeled I/O is accounted
    /// per session even when the underlying files are shared.
    fn tracker(&self) -> &DiskTracker;
}

impl ChunkSource for ColumnStore {
    fn dims(&self) -> usize {
        self.schema().dims()
    }

    fn chunk_file_size(&self, id: ChunkId) -> Result<u64> {
        Ok(self.manifest().chunk_meta(id)?.file_size)
    }

    fn read_chunk_bytes(&self, id: ChunkId) -> Result<Vec<u8>> {
        ColumnStore::read_chunk_bytes(self, id)
    }

    fn decode_chunk(&self, id: ChunkId, bytes: &[u8]) -> Result<Chunk> {
        ColumnStore::decode_chunk(self, id, bytes)
    }

    fn tracker(&self) -> &DiskTracker {
        ColumnStore::tracker(self)
    }
}

/// An in-memory [`ChunkSource`]: the same vertical decomposition, chunking,
/// and encoding as [`ColumnStore::create`], but the encoded chunks live in a
/// `HashMap` instead of files. Reads charge the tracker's model exactly like
/// disk reads (one seek plus the encoded length), so loader tests and
/// determinism tests can run without a scratch directory.
#[derive(Debug)]
pub struct MemChunkSource {
    schema: Schema,
    chunks: Arc<HashMap<ChunkId, Vec<u8>>>,
    tracker: DiskTracker,
}

impl MemChunkSource {
    /// Builds an in-memory source from row data. `rows` must carry dense
    /// ids (a permutation of `0..rows.len()`), like [`ColumnStore::create`].
    pub fn from_rows(
        schema: Schema,
        rows: &[DataPoint],
        chunk_target_bytes: usize,
        tracker: DiskTracker,
    ) -> Result<MemChunkSource> {
        if chunk_target_bytes == 0 {
            return Err(UeiError::invalid_config("chunk_target_bytes must be positive"));
        }
        let dims = schema.dims();
        let columns = vertical_decompose(rows, dims)?;
        let mut chunks = HashMap::new();
        for column in columns {
            let dim = column.dim as u32;
            for (seq, run) in split_into_chunks(column, chunk_target_bytes)?.into_iter().enumerate()
            {
                let chunk = Chunk::new(ChunkId::new(dim, seq as u32), run)?;
                chunks.insert(chunk.id, chunk.encode()?);
            }
        }
        Ok(MemChunkSource { schema, chunks: Arc::new(chunks), tracker })
    }

    /// A handle over the same in-memory chunks charging a different
    /// tracker — the in-memory analogue of [`ColumnStore::with_tracker`].
    pub fn with_tracker(&self, tracker: DiskTracker) -> MemChunkSource {
        MemChunkSource { schema: self.schema.clone(), chunks: Arc::clone(&self.chunks), tracker }
    }

    /// Number of chunks held.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }
}

impl ChunkSource for MemChunkSource {
    fn dims(&self) -> usize {
        self.schema.dims()
    }

    fn chunk_file_size(&self, id: ChunkId) -> Result<u64> {
        let bytes = self
            .chunks
            .get(&id)
            .ok_or_else(|| UeiError::not_found(format!("chunk {id} not in memory source")))?;
        Ok(bytes.len() as u64)
    }

    fn read_chunk_bytes(&self, id: ChunkId) -> Result<Vec<u8>> {
        let bytes = self
            .chunks
            .get(&id)
            .ok_or_else(|| UeiError::not_found(format!("chunk {id} not in memory source")))?;
        self.tracker.record_read(bytes.len() as u64, 1);
        Ok(bytes.clone())
    }

    fn decode_chunk(&self, id: ChunkId, bytes: &[u8]) -> Result<Chunk> {
        let chunk = Chunk::decode(bytes)?;
        if chunk.id != id {
            return Err(UeiError::corrupt(format!("memory slot {id} holds chunk {}", chunk.id)));
        }
        Ok(chunk)
    }

    fn tracker(&self) -> &DiskTracker {
        &self.tracker
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::IoProfile;
    use uei_types::{AttributeDef, Rng};

    fn synthetic_rows(n: usize, dims: usize, seed: u64) -> (Schema, Vec<DataPoint>) {
        let mut rng = Rng::new(seed);
        let schema = Schema::new(
            (0..dims).map(|d| AttributeDef::new(format!("d{d}"), 0.0, 100.0).unwrap()).collect(),
        )
        .unwrap();
        let rows = (0..n)
            .map(|id| {
                DataPoint::new(id as u64, (0..dims).map(|_| rng.range_f64(0.0, 100.0)).collect())
            })
            .collect();
        (schema, rows)
    }

    #[test]
    fn mem_source_matches_disk_store_chunk_for_chunk() {
        let (schema, rows) = synthetic_rows(300, 2, 7);
        let dir = crate::testutil::TempDir::new("mem_source_matches");
        let store = ColumnStore::create(
            dir.path(),
            schema.clone(),
            &rows,
            crate::store::StoreConfig { chunk_target_bytes: 2048 },
            DiskTracker::new(IoProfile::instant()),
        )
        .unwrap();
        let mem =
            MemChunkSource::from_rows(schema, &rows, 2048, DiskTracker::new(IoProfile::instant()))
                .unwrap();

        assert_eq!(mem.num_chunks(), store.manifest().total_chunks());
        assert_eq!(ChunkSource::dims(&mem), ChunkSource::dims(&store));
        for dim in store.manifest().dims.iter() {
            for meta in dim {
                let id = ChunkId::new(meta.dim, meta.seq);
                assert_eq!(mem.chunk_file_size(id).unwrap(), meta.file_size);
                let a = ChunkSource::read_chunk(&store, id).unwrap();
                let b = ChunkSource::read_chunk(&mem, id).unwrap();
                assert_eq!(a.encode().unwrap(), b.encode().unwrap(), "chunk {id} differs");
            }
        }
    }

    #[test]
    fn mem_source_charges_model_like_disk() {
        let (schema, rows) = synthetic_rows(200, 2, 11);
        let mem =
            MemChunkSource::from_rows(schema, &rows, 1024, DiskTracker::new(IoProfile::default()))
                .unwrap();
        let id = *mem.chunks.keys().next().unwrap();
        let before = mem.tracker().snapshot();
        mem.read_chunk(id).unwrap();
        let delta = mem.tracker().delta(&before);
        assert_eq!(delta.stats.bytes_read, mem.chunk_file_size(id).unwrap());
        assert_eq!(delta.stats.seeks, 1);
        assert!(delta.virtual_elapsed > std::time::Duration::ZERO);
    }

    #[test]
    fn mem_source_unknown_chunk_is_not_found() {
        let (schema, rows) = synthetic_rows(50, 1, 3);
        let mem =
            MemChunkSource::from_rows(schema, &rows, 4096, DiskTracker::new(IoProfile::instant()))
                .unwrap();
        let missing = ChunkId::new(9, 9);
        assert!(mem.read_chunk(missing).is_err());
        assert!(mem.chunk_file_size(missing).is_err());
    }
}
