//! # uei-storage
//!
//! The secondary-storage engine of the UEI reproduction.
//!
//! The paper (§3.1) stores the exploration dataset `D` on disk in a *fully
//! inverted columnar format*: each dimension is vertically decomposed,
//! sorted ascending, compressed into `<key, {row-ids}>` posting lists, and
//! split into equal-size chunk files whose key ranges are disjoint and
//! sequential. This crate implements that store end to end:
//!
//! - [`io`] — an I/O accounting layer ([`io::DiskTracker`]) that both
//!   performs real file I/O and charges every read to a *modeled* disk
//!   ([`io::IoProfile`], default: the paper's 3.4 GB/s NVMe SSD) on a
//!   virtual clock. All experiment response times are reported from this
//!   model so that "dataset 100× larger than memory" can be reproduced on a
//!   laptop (see DESIGN.md §2, substitution 8);
//! - [`postings`] / [`chunk`] — the on-disk chunk format (delta-encoded
//!   varint posting lists, CRC-32 protected);
//! - [`manifest`] — the per-dataset catalog of chunks and their key ranges;
//! - [`column`](mod@column) — vertical decomposition of row data into sorted postings;
//! - [`store`] — [`store::ColumnStore`]: creation (index-initialization
//!   phase, Algorithm 2 lines 2–6) and reading;
//! - [`merge`] — hash-table reconstruction of a subspace from its chunks
//!   (Algorithm 2 line 19), chunk-at-a-time to bound memory;
//! - [`cache`] — byte-budgeted LRU chunk caches: a single-owner
//!   [`cache::ChunkCache`], a sharded, lock-striped
//!   [`cache::SharedChunkCache`] shared by the foreground loader, the
//!   background prefetcher, and every session of an engine (single-flight
//!   per chunk), and the per-session [`cache::SessionChunkView`] whose
//!   ghost ledger keeps per-session modeled I/O deterministic;
//! - [`source`](mod@source) — the [`source::ChunkSource`] trait the read path is
//!   programmed against, implemented by [`store::ColumnStore`] and by the
//!   in-memory [`source::MemChunkSource`] test double;
//! - [`lru`] — the generic LRU used by the chunk cache and by the
//!   `uei-dbms` buffer pool;
//! - [`fault`] — deterministic, seed-driven fault injection
//!   ([`fault::FaultInjector`]) for chunk/manifest reads and journal
//!   writes (torn appends, failed renames, fsync errors, armed kill
//!   points) plus the bounded exponential-backoff [`fault::RetryPolicy`],
//!   the storage half of the degradation ladder (DESIGN.md §8);
//! - [`journal`] — the durable per-session write-ahead journal
//!   ([`journal::SessionJournal`]): CRC-framed records, atomic segment
//!   rotation, snapshots, and crash recovery (DESIGN.md §13);
//! - [`testutil`] — RAII temp directories for tests and benches.

#![warn(missing_docs)]
// Lint policy: `!(a <= b)` comparisons are deliberate — they reject NaN as
// well as inverted bounds, which `a > b` would silently accept. Indexed
// loops that clippy flags as `needless_range_loop` walk several parallel
// arrays by dimension; the index form keeps that symmetry readable.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]

pub mod cache;
pub mod checksum;
pub mod chunk;
pub mod column;
pub mod fault;
pub mod io;
pub mod journal;
pub mod lru;
pub mod manifest;
pub mod merge;
pub mod postings;
pub mod source;
pub mod store;
pub mod testutil;

pub use cache::{
    approx_chunk_bytes, CacheStats, ChunkCache, SessionChunkView, SharedChunkCache,
    DEFAULT_CACHE_SHARDS,
};
pub use chunk::{Chunk, ChunkId};
pub use column::merge_sources;
pub use fault::{
    FaultConfig, FaultInjector, FaultStats, InjectedWriteFaults, KillMode, RetryPolicy,
};
pub use io::{DiskTracker, IoProfile, IoSnapshot, IoStats};
pub use journal::{FsyncPolicy, JournalConfig, JournalContents, SessionJournal};
pub use manifest::{ChunkMeta, Manifest};
pub use merge::{
    reconstruct_region, reconstruct_region_delta, reconstruct_region_with_chunks, ChunkFetch,
    MergeStats, RegionChunkSet,
};
pub use postings::PostingList;
pub use source::{ChunkSource, MemChunkSource};
pub use store::{ColumnStore, StoreConfig};
pub use testutil::TempDir;
