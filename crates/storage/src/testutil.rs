//! Test support: RAII temporary directories.
//!
//! Tests across the workspace build throwaway column stores on disk. The
//! historical pattern — `std::fs::create_dir_all` at the top, a manual
//! `std::fs::remove_dir_all(&dir).unwrap()` at the bottom — leaks the
//! directory whenever an assertion in between panics, and the leftover
//! files then poison the next run of the same test. [`TempDir`] removes the
//! directory in `Drop`, which runs during unwinding too.

use std::path::{Path, PathBuf};

/// A uniquely named temporary directory that is deleted on drop.
///
/// The name embeds the caller's tag, the process id, and the thread id, so
/// parallel test threads (and concurrently running test binaries) never
/// collide. Any stale directory of the same name from a crashed previous
/// run is removed on creation.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates (and if necessary first cleans) `$TMPDIR/uei-<tag>-<pid>-<tid>`.
    ///
    /// # Panics
    /// Panics if the directory cannot be created — tests cannot proceed
    /// without it.
    pub fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "uei-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        // A stale directory from a killed process would make store creation
        // (which refuses to overwrite) fail spuriously.
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// `self.path().join(name)`.
    pub fn join(&self, name: impl AsRef<Path>) -> PathBuf {
        self.path.join(name)
    }
}

impl AsRef<Path> for TempDir {
    fn as_ref(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Best-effort cleanup: a failure to delete must not turn a passing
        // test into a panic-while-panicking abort.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes_on_drop() {
        let kept_path;
        {
            let dir = TempDir::new("testutil-drop");
            kept_path = dir.path().to_path_buf();
            assert!(kept_path.is_dir());
            std::fs::write(dir.join("f.txt"), b"x").unwrap();
        }
        assert!(!kept_path.exists(), "directory must be removed on drop");
    }

    #[test]
    fn cleans_stale_directory_on_create() {
        let first = TempDir::new("testutil-stale");
        let stale_file = first.join("stale.bin");
        std::fs::write(&stale_file, b"old").unwrap();
        // Simulate a crashed run: forget the guard so Drop never fires.
        let path = first.path().to_path_buf();
        std::mem::forget(first);
        assert!(stale_file.exists());

        let second = TempDir::new("testutil-stale");
        assert_eq!(second.path(), path);
        assert!(!stale_file.exists(), "stale contents must be cleared");
    }
}
