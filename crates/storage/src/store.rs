//! The on-disk column store: creation and reading.
//!
//! A store directory contains:
//!
//! - `manifest.json` — the chunk catalog ([`crate::manifest::Manifest`]);
//! - `dNNN_cNNNNNN.uei` — one file per chunk (paper: "each chunk will be
//!   stored as a separate file on the disk");
//! - `rows.dat` — a dense row-major copy of the data (fixed-width `f64`
//!   records addressed by row id).
//!
//! `rows.dat` is an engineering addition over the paper's description: the
//! exploration phase needs to (a) uniformly sample the unlabeled cache `U`
//! from the underlying dataset (Algorithm 2 line 12) and (b) retrieve result
//! tuples (line 26), both of which require row-id → tuple access that a
//! purely inverted layout cannot serve without reconstructing every
//! dimension. All reads of `rows.dat` go through the same [`DiskTracker`]
//! model, so it is charged like any other secondary-storage access.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use rayon::prelude::*;
use uei_types::{DataPoint, Result, Schema, UeiError};

use crate::chunk::{Chunk, ChunkId};
use crate::column::{split_into_chunks, vertical_decompose};
use crate::io::DiskTracker;
use crate::manifest::{ChunkMeta, Manifest, MANIFEST_VERSION};

/// File name of the row-major data file inside a store directory.
pub const ROWS_FILE: &str = "rows.dat";

/// Magic prefix of `rows.dat`.
pub const ROWS_MAGIC: &[u8; 8] = b"UEIROWS1";

/// Byte length of the `rows.dat` header.
const ROWS_HEADER_LEN: u64 = 8 + 4 + 8;

/// Configuration for creating a [`ColumnStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Target encoded payload per chunk, in bytes. The paper's evaluation
    /// uses 470 KB chunks (Table 1).
    pub chunk_target_bytes: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { chunk_target_bytes: 470 * 1024 }
    }
}

/// A readable, immutable column store rooted at a directory.
#[derive(Debug)]
pub struct ColumnStore {
    dir: PathBuf,
    manifest: Arc<Manifest>,
    tracker: DiskTracker,
}

impl ColumnStore {
    /// Creates a store from row data — the paper's *index initialization*
    /// phase for storage (Algorithm 2 lines 2–6): vertical decomposition,
    /// per-dimension sort, grouping into `<key, {ids}>`, and splitting into
    /// equal-size chunk files.
    ///
    /// `rows` must carry dense ids: a permutation of `0..rows.len()`.
    #[must_use = "dropping the store discards the only handle to the files just written; \
                  check the Result — creation performs real disk I/O that can fail"]
    pub fn create(
        dir: impl Into<PathBuf>,
        schema: Schema,
        rows: &[DataPoint],
        config: StoreConfig,
        tracker: DiskTracker,
    ) -> Result<ColumnStore> {
        let dir = dir.into();
        if config.chunk_target_bytes == 0 {
            return Err(UeiError::invalid_config("chunk_target_bytes must be positive"));
        }
        std::fs::create_dir_all(&dir).map_err(|e| UeiError::io(&dir, e))?;

        validate_dense_ids(rows)?;
        let dims = schema.dims();

        // Vertical decomposition and chunking, one dimension at a time.
        let columns = vertical_decompose(rows, dims)?;
        let mut catalogs: Vec<Vec<ChunkMeta>> = Vec::with_capacity(dims);
        for column in columns {
            let dim = column.dim as u32;
            let mut catalog = Vec::new();
            for (seq, run) in
                split_into_chunks(column, config.chunk_target_bytes)?.into_iter().enumerate()
            {
                let chunk = Chunk::new(ChunkId::new(dim, seq as u32), run)?;
                let bytes = chunk.encode()?;
                let meta = ChunkMeta {
                    dim,
                    seq: seq as u32,
                    min_key: chunk.min_key(),
                    max_key: chunk.max_key(),
                    num_entries: chunk.num_entries() as u64,
                    num_ids: chunk.num_ids() as u64,
                    file_size: bytes.len() as u64,
                    // Written once at build time, verified on every read
                    // (before decode) so corruption can never reach the
                    // learner as plausible rows.
                    crc32: crate::checksum::crc32(&bytes),
                };
                tracker.write_file(&dir.join(chunk.id.file_name()), &bytes)?;
                catalog.push(meta);
            }
            catalogs.push(catalog);
        }

        write_rows_file(&dir, dims, rows, &tracker)?;

        let manifest = Manifest {
            version: MANIFEST_VERSION,
            schema,
            num_rows: rows.len() as u64,
            chunk_target_bytes: config.chunk_target_bytes as u64,
            dims: catalogs,
        };
        manifest.validate()?;
        manifest.save(&dir, &tracker)?;

        Ok(ColumnStore { dir, manifest: Arc::new(manifest), tracker })
    }

    /// Opens an existing store directory.
    #[must_use = "an unchecked open hides manifest corruption until the first read; \
                  handle the Result"]
    pub fn open(dir: impl Into<PathBuf>, tracker: DiskTracker) -> Result<ColumnStore> {
        let dir = dir.into();
        let manifest = Manifest::load(&dir, &tracker)?;
        Ok(ColumnStore { dir, manifest: Arc::new(manifest), tracker })
    }

    /// A handle over the same store files and catalog charging a different
    /// tracker. The directory path and the decoded manifest are shared
    /// (`Arc`), so opening one handle per session copies no store data:
    /// sessions differ only in which I/O ledger their reads are billed to.
    pub fn with_tracker(&self, tracker: DiskTracker) -> ColumnStore {
        ColumnStore { dir: self.dir.clone(), manifest: Arc::clone(&self.manifest), tracker }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The chunk catalog.
    pub fn manifest(&self) -> &Manifest {
        self.manifest.as_ref()
    }

    /// Dataset schema.
    pub fn schema(&self) -> &Schema {
        &self.manifest.schema
    }

    /// Number of rows in the dataset.
    pub fn num_rows(&self) -> u64 {
        self.manifest.num_rows
    }

    /// The I/O tracker charged by this store's reads.
    pub fn tracker(&self) -> &DiskTracker {
        &self.tracker
    }

    /// Reads and validates one chunk file.
    pub fn read_chunk(&self, id: ChunkId) -> Result<Chunk> {
        let bytes = self.read_chunk_bytes(id)?;
        self.decode_chunk(id, &bytes)
    }

    /// Reads one chunk file's raw encoded bytes through the tracked I/O
    /// path, without decoding. Paired with [`Self::decode_chunk`] this
    /// lets callers keep reads sequential (the I/O model charges seeks in
    /// issue order) while spreading the CPU-bound CRC-validating decode
    /// across cores.
    pub fn read_chunk_bytes(&self, id: ChunkId) -> Result<Vec<u8>> {
        // Existence check against the catalog first: a miss is NotFound,
        // not Io.
        let meta = self.manifest.chunk_meta(id)?;
        let expected_crc = meta.crc32;
        let expected_len = meta.file_size;
        let bytes = self.tracker.read_file(&self.dir.join(id.file_name()))?;
        // Catalog-level integrity, checked before any decode work: the
        // build-time CRC must match the bytes that came off the device.
        // crc32 == 0 means a legacy catalog without checksums.
        if expected_crc != 0 {
            if bytes.len() as u64 != expected_len {
                return Err(UeiError::corrupt(format!(
                    "chunk file {} is {} bytes, catalog says {expected_len} (truncated?)",
                    id.file_name(),
                    bytes.len()
                )));
            }
            let actual = crate::checksum::crc32(&bytes);
            if actual != expected_crc {
                return Err(UeiError::corrupt(format!(
                    "chunk file {} failed its catalog checksum: \
                     crc32 {actual:08x} != recorded {expected_crc:08x}",
                    id.file_name()
                )));
            }
        }
        Ok(bytes)
    }

    /// Decodes bytes read by [`Self::read_chunk_bytes`], validating that
    /// the file really holds chunk `id`. Pure CPU work — safe to run in
    /// parallel for independent chunks.
    pub fn decode_chunk(&self, id: ChunkId, bytes: &[u8]) -> Result<Chunk> {
        let chunk = Chunk::decode(bytes)?;
        if chunk.id != id {
            return Err(UeiError::corrupt(format!(
                "chunk file {} contains chunk {}",
                id.file_name(),
                chunk.id
            )));
        }
        Ok(chunk)
    }

    /// Fetches one row by id from `rows.dat`.
    pub fn fetch_row(&self, id: u64) -> Result<DataPoint> {
        self.fetch_rows(&[id])?
            .pop()
            .ok_or_else(|| UeiError::not_found(format!("row {id} not present in rows.dat")))
    }

    /// Fetches rows by id from `rows.dat`.
    ///
    /// Ids are sorted and coalesced into contiguous runs so that the I/O
    /// model charges one seek per run rather than one per row. Results are
    /// returned in the caller's id order.
    pub fn fetch_rows(&self, ids: &[u64]) -> Result<Vec<DataPoint>> {
        let dims = self.schema().dims();
        let row_len = (dims * 8) as u64;
        for &id in ids {
            if id >= self.num_rows() {
                return Err(UeiError::not_found(format!(
                    "row {id} (store has {} rows)",
                    self.num_rows()
                )));
            }
        }
        let mut sorted: Vec<u64> = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();

        let path = self.dir.join(ROWS_FILE);

        // Phase 1 — I/O: read every coalesced run sequentially, in id
        // order, so the modeled seek/byte accounting is deterministic.
        let mut runs: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut run_start = 0usize;
        while run_start < sorted.len() {
            let mut run_end = run_start + 1;
            while run_end < sorted.len() && sorted[run_end] == sorted[run_end - 1] + 1 {
                run_end += 1;
            }
            let first = sorted[run_start];
            let count = (run_end - run_start) as u64;
            let offset = ROWS_HEADER_LEN + first * row_len;
            let buf = self.tracker.read_at(&path, offset, (count * row_len) as usize)?;
            runs.push((first, buf));
            run_start = run_end;
        }

        // Phase 2 — CPU: bit-decode the rows of each run, fanning runs out
        // across cores for large fetches. Row values are exact bit copies,
        // so parallel order cannot affect the result.
        let decode_run = |(first, buf): &(u64, Vec<u8>)| -> Vec<(u64, Vec<f64>)> {
            let count = buf.len() / row_len as usize;
            (0..count)
                .map(|i| {
                    let base = i * row_len as usize;
                    let mut values = Vec::with_capacity(dims);
                    for d in 0..dims {
                        let s = base + d * 8;
                        let bits =
                            u64::from_le_bytes(buf[s..s + 8].try_into().expect("slice is 8 bytes"));
                        values.push(f64::from_bits(bits));
                    }
                    (first + i as u64, values)
                })
                .collect()
        };
        let decoded: Vec<Vec<(u64, Vec<f64>)>> =
            if sorted.len() >= 256 && runs.len() >= 2 && rayon::current_num_threads() > 1 {
                runs.par_iter().map(decode_run).collect()
            } else {
                runs.iter().map(decode_run).collect()
            };
        let mut by_id = std::collections::HashMap::with_capacity(sorted.len());
        for run in decoded {
            for (id, values) in run {
                by_id.insert(id, values);
            }
        }
        Ok(ids
            .iter()
            .map(|&id| DataPoint::new(id, by_id.get(&id).expect("fetched above").clone()))
            .collect())
    }

    /// Uniformly samples `k` distinct rows (all rows when `k >= num_rows`),
    /// reading them through the tracked I/O path — this is how the
    /// exploration phase fills the unlabeled cache `U` (Algorithm 2 line 12).
    pub fn sample_rows(&self, k: usize, rng: &mut uei_types::Rng) -> Result<Vec<DataPoint>> {
        let n = self.num_rows() as usize;
        let mut ids: Vec<u64> = rng.sample_indices(n, k).into_iter().map(|i| i as u64).collect();
        ids.sort_unstable();
        self.fetch_rows(&ids)
    }

    /// Streams every row through `visit`, reading `rows.dat` sequentially in
    /// large blocks. One seek is charged for the whole scan; this is the
    /// cheapest possible full pass and is what the DBMS baseline's
    /// exhaustive search is compared against.
    pub fn scan_all(&self, mut visit: impl FnMut(DataPoint)) -> Result<()> {
        use std::io::Read;
        let dims = self.schema().dims();
        let row_len = dims * 8;
        let path = self.dir.join(ROWS_FILE);
        let mut f = std::fs::File::open(&path).map_err(|e| UeiError::io(&path, e))?;

        let mut header = vec![0u8; ROWS_HEADER_LEN as usize];
        f.read_exact(&mut header).map_err(|e| UeiError::io(&path, e))?;
        self.tracker.record_read(ROWS_HEADER_LEN, 1);
        validate_rows_header(&header, dims, self.num_rows())?;

        let rows_per_block = (1 << 20) / row_len.max(1);
        let mut buf = vec![0u8; rows_per_block.max(1) * row_len];
        let mut next_id = 0u64;
        while next_id < self.num_rows() {
            let batch = ((self.num_rows() - next_id) as usize).min(rows_per_block.max(1));
            let want = batch * row_len;
            f.read_exact(&mut buf[..want]).map_err(|e| UeiError::io(&path, e))?;
            // Sequential continuation: bytes only, no extra seek.
            self.tracker.record_read(want as u64, 0);
            for r in 0..batch {
                let base = r * row_len;
                let mut values = Vec::with_capacity(dims);
                for d in 0..dims {
                    let s = base + d * 8;
                    let bits = u64::from_le_bytes(buf[s..s + 8].try_into().expect("8-byte slice"));
                    values.push(f64::from_bits(bits));
                }
                visit(DataPoint::new(next_id, values));
                next_id += 1;
            }
        }
        Ok(())
    }

    /// Size of the row-major file in bytes (header included).
    pub fn rows_file_bytes(&self) -> u64 {
        ROWS_HEADER_LEN + self.num_rows() * (self.schema().dims() as u64) * 8
    }

    /// Full integrity check of the store directory.
    ///
    /// Reads and CRC-validates every chunk, verifies that each chunk's key
    /// range and counts match its catalog entry, that the chunk sequence
    /// of every dimension ascends, that each dimension's posting lists
    /// cover exactly the row ids `0..num_rows` once, and that `rows.dat`
    /// has the expected length. Returns per-dimension chunk counts on
    /// success. This is an offline operation (think `fsck`): it reads the
    /// whole store through the tracked I/O path.
    pub fn verify(&self) -> Result<VerifyReport> {
        let dims = self.schema().dims();
        let mut chunks_per_dim = Vec::with_capacity(dims);
        for d in 0..dims {
            let catalog = &self.manifest.dims[d];
            let mut covered = vec![false; self.num_rows() as usize];
            let mut last_key = f64::NEG_INFINITY;
            for meta in catalog {
                let chunk = self.read_chunk(meta.id())?;
                if chunk.min_key() != meta.min_key
                    || chunk.max_key() != meta.max_key
                    || chunk.num_entries() as u64 != meta.num_entries
                    || chunk.num_ids() as u64 != meta.num_ids
                {
                    return Err(UeiError::corrupt(format!(
                        "chunk {} disagrees with its catalog entry",
                        meta.id()
                    )));
                }
                if chunk.min_key() <= last_key {
                    return Err(UeiError::corrupt(format!(
                        "chunk {} breaks the ascending chunk sequence",
                        meta.id()
                    )));
                }
                last_key = chunk.max_key();
                for entry in &chunk.entries {
                    for &id in &entry.ids {
                        let slot = covered.get_mut(id as usize).ok_or_else(|| {
                            UeiError::corrupt(format!("dim {d}: posting id {id} out of range"))
                        })?;
                        if *slot {
                            return Err(UeiError::corrupt(format!(
                                "dim {d}: row {id} posted twice"
                            )));
                        }
                        *slot = true;
                    }
                }
            }
            if let Some(missing) = covered.iter().position(|&c| !c) {
                return Err(UeiError::corrupt(format!(
                    "dim {d}: row {missing} missing from the inverted column"
                )));
            }
            chunks_per_dim.push(catalog.len());
        }
        // rows.dat header + length.
        let rows_path = self.dir.join(ROWS_FILE);
        let len = std::fs::metadata(&rows_path).map_err(|e| UeiError::io(&rows_path, e))?.len();
        if len != self.rows_file_bytes() {
            return Err(UeiError::corrupt(format!(
                "rows.dat is {len} bytes, expected {}",
                self.rows_file_bytes()
            )));
        }
        Ok(VerifyReport { dims, rows: self.num_rows(), chunks_per_dim })
    }
}

/// Outcome of [`ColumnStore::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Dimensions checked.
    pub dims: usize,
    /// Rows covered by every dimension.
    pub rows: u64,
    /// Number of chunks per dimension.
    pub chunks_per_dim: Vec<usize>,
}

fn validate_dense_ids(rows: &[DataPoint]) -> Result<()> {
    let n = rows.len() as u64;
    let mut seen = vec![false; rows.len()];
    for row in rows {
        let id = row.id.as_u64();
        if id >= n {
            return Err(UeiError::invalid_config(format!(
                "row id {id} out of range for {n} rows (ids must be dense 0..n)"
            )));
        }
        if seen[id as usize] {
            return Err(UeiError::invalid_config(format!("duplicate row id {id}")));
        }
        seen[id as usize] = true;
    }
    Ok(())
}

fn write_rows_file(
    dir: &Path,
    dims: usize,
    rows: &[DataPoint],
    tracker: &DiskTracker,
) -> Result<()> {
    let mut buf = Vec::with_capacity(ROWS_HEADER_LEN as usize + rows.len() * dims * 8);
    buf.extend_from_slice(ROWS_MAGIC);
    buf.extend_from_slice(&(dims as u32).to_le_bytes());
    buf.extend_from_slice(&(rows.len() as u64).to_le_bytes());
    // Records are laid out by row id, independent of input order.
    let mut ordered: Vec<&DataPoint> = rows.iter().collect();
    ordered.sort_unstable_by_key(|r| r.id);
    for row in ordered {
        for &v in &row.values {
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    tracker.write_file(&dir.join(ROWS_FILE), &buf)
}

fn validate_rows_header(header: &[u8], dims: usize, num_rows: u64) -> Result<()> {
    if &header[..8] != ROWS_MAGIC {
        return Err(UeiError::corrupt("bad rows.dat magic"));
    }
    let file_dims = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    let file_rows = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
    if file_dims as usize != dims || file_rows != num_rows {
        return Err(UeiError::corrupt(format!(
            "rows.dat header mismatch: file says {file_dims} dims / {file_rows} rows, \
             manifest says {dims} / {num_rows}"
        )));
    }
    Ok(())
}

/// Re-export for `RowId` users of this module.
pub use uei_types::point::RowId as StoreRowId;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::IoProfile;
    use uei_types::{AttributeDef, Rng};

    fn schema2() -> Schema {
        Schema::new(vec![
            AttributeDef::new("x", 0.0, 100.0).unwrap(),
            AttributeDef::new("y", 0.0, 100.0).unwrap(),
        ])
        .unwrap()
    }

    fn make_rows(n: usize) -> Vec<DataPoint> {
        let mut rng = Rng::new(42);
        (0..n)
            .map(|i| {
                DataPoint::new(i as u64, vec![rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)])
            })
            .collect()
    }

    fn temp_dir(tag: &str) -> crate::testutil::TempDir {
        crate::testutil::TempDir::new(&format!("store-{tag}"))
    }

    #[test]
    fn create_open_round_trip() {
        let dir = temp_dir("roundtrip");
        let rows = make_rows(500);
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.path(),
            schema2(),
            &rows,
            StoreConfig { chunk_target_bytes: 256 },
            tracker.clone(),
        )
        .unwrap();
        assert_eq!(store.num_rows(), 500);
        assert!(store.manifest().total_chunks() > 2, "small target should split chunks");

        let reopened = ColumnStore::open(dir.path(), tracker).unwrap();
        assert_eq!(reopened.num_rows(), 500);
        assert_eq!(reopened.manifest().dims, store.manifest().dims);
    }

    #[test]
    fn chunks_cover_all_ids_in_order() {
        let dir = temp_dir("coverage");
        let rows = make_rows(300);
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.path(),
            schema2(),
            &rows,
            StoreConfig { chunk_target_bytes: 200 },
            tracker,
        )
        .unwrap();
        for dim in 0..2 {
            let mut all_ids: Vec<u64> = Vec::new();
            let mut last_key = f64::NEG_INFINITY;
            for meta in &store.manifest().dims[dim] {
                let chunk = store.read_chunk(meta.id()).unwrap();
                assert!(chunk.min_key() > last_key, "chunk sequences ascend");
                last_key = chunk.max_key();
                for e in &chunk.entries {
                    all_ids.extend(&e.ids);
                }
            }
            all_ids.sort_unstable();
            assert_eq!(all_ids, (0..300u64).collect::<Vec<_>>(), "dim {dim} covers every row");
        }
    }

    #[test]
    fn fetch_rows_returns_exact_values() {
        let dir = temp_dir("fetch");
        let rows = make_rows(100);
        let tracker = DiskTracker::new(IoProfile::instant());
        let store =
            ColumnStore::create(dir.path(), schema2(), &rows, StoreConfig::default(), tracker)
                .unwrap();
        let got = store.fetch_rows(&[17, 3, 99, 4]).unwrap();
        assert_eq!(got.len(), 4);
        assert_eq!(got[0], rows[17]);
        assert_eq!(got[1], rows[3]);
        assert_eq!(got[2], rows[99]);
        assert_eq!(got[3], rows[4]);
        assert!(store.fetch_rows(&[100]).is_err());
    }

    #[test]
    fn fetch_contiguous_run_charges_one_seek() {
        let dir = temp_dir("seeks");
        let rows = make_rows(64);
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.path(),
            schema2(),
            &rows,
            StoreConfig::default(),
            tracker.clone(),
        )
        .unwrap();
        let before = tracker.snapshot();
        store.fetch_rows(&[10, 11, 12, 13]).unwrap();
        let d = tracker.delta(&before);
        assert_eq!(d.stats.seeks, 1, "contiguous ids coalesce into one read");
        let before = tracker.snapshot();
        store.fetch_rows(&[1, 30, 60]).unwrap();
        let d = tracker.delta(&before);
        assert_eq!(d.stats.seeks, 3);
    }

    #[test]
    fn scan_all_streams_everything_once() {
        let dir = temp_dir("scan");
        let rows = make_rows(1000);
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.path(),
            schema2(),
            &rows,
            StoreConfig::default(),
            tracker.clone(),
        )
        .unwrap();
        let before = tracker.snapshot();
        let mut seen = Vec::new();
        store.scan_all(|p| seen.push(p)).unwrap();
        assert_eq!(seen.len(), 1000);
        assert_eq!(seen[123], rows[123]);
        let d = tracker.delta(&before);
        assert_eq!(d.stats.seeks, 1, "sequential scan charges one seek");
        assert_eq!(d.stats.bytes_read, store.rows_file_bytes());
    }

    #[test]
    fn sample_rows_is_uniform_subset() {
        let dir = temp_dir("sample");
        let rows = make_rows(200);
        let tracker = DiskTracker::new(IoProfile::instant());
        let store =
            ColumnStore::create(dir.path(), schema2(), &rows, StoreConfig::default(), tracker)
                .unwrap();
        let mut rng = Rng::new(7);
        let sample = store.sample_rows(50, &mut rng).unwrap();
        assert_eq!(sample.len(), 50);
        let mut ids: Vec<u64> = sample.iter().map(|p| p.id.as_u64()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 50);
        for p in &sample {
            assert_eq!(p, &rows[p.id.as_usize()]);
        }
        // k >= n returns everything.
        let all = store.sample_rows(500, &mut rng).unwrap();
        assert_eq!(all.len(), 200);
    }

    #[test]
    fn create_rejects_non_dense_ids() {
        let dir = temp_dir("dense");
        let tracker = DiskTracker::new(IoProfile::instant());
        let bad = vec![DataPoint::new(5u64, vec![1.0, 1.0])];
        assert!(ColumnStore::create(
            dir.path(),
            schema2(),
            &bad,
            StoreConfig::default(),
            tracker.clone()
        )
        .is_err());
        let dup = vec![DataPoint::new(0u64, vec![1.0, 1.0]), DataPoint::new(0u64, vec![2.0, 2.0])];
        assert!(ColumnStore::create(dir.path(), schema2(), &dup, StoreConfig::default(), tracker)
            .is_err());
    }

    #[test]
    fn create_rejects_zero_chunk_target() {
        let dir = temp_dir("zerochunk");
        let tracker = DiskTracker::new(IoProfile::instant());
        assert!(ColumnStore::create(
            dir.path(),
            schema2(),
            &make_rows(10),
            StoreConfig { chunk_target_bytes: 0 },
            tracker
        )
        .is_err());
    }

    #[test]
    fn read_chunk_detects_corruption() {
        let dir = temp_dir("corrupt");
        let rows = make_rows(100);
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.path(),
            schema2(),
            &rows,
            StoreConfig { chunk_target_bytes: 128 },
            tracker,
        )
        .unwrap();
        let id = store.manifest().dims[0][0].id();
        let path = dir.join(id.file_name());
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match store.read_chunk(id) {
            Err(UeiError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn read_unknown_chunk_is_not_found() {
        let dir = temp_dir("missing");
        let rows = make_rows(10);
        let tracker = DiskTracker::new(IoProfile::instant());
        let store =
            ColumnStore::create(dir.path(), schema2(), &rows, StoreConfig::default(), tracker)
                .unwrap();
        match store.read_chunk(ChunkId::new(0, 999)) {
            Err(UeiError::NotFound { .. }) => {}
            other => panic!("expected NotFound, got {other:?}"),
        }
    }

    #[test]
    fn verify_passes_on_healthy_store() {
        let dir = temp_dir("verify-ok");
        let rows = make_rows(400);
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.path(),
            schema2(),
            &rows,
            StoreConfig { chunk_target_bytes: 256 },
            tracker,
        )
        .unwrap();
        let report = store.verify().unwrap();
        assert_eq!(report.dims, 2);
        assert_eq!(report.rows, 400);
        assert_eq!(report.chunks_per_dim.len(), 2);
        assert!(report.chunks_per_dim.iter().all(|&c| c > 1));
    }

    #[test]
    fn verify_catches_chunk_tampering() {
        let dir = temp_dir("verify-bad");
        let rows = make_rows(300);
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.path(),
            schema2(),
            &rows,
            StoreConfig { chunk_target_bytes: 256 },
            tracker,
        )
        .unwrap();
        // Rewrite a chunk file with a valid chunk that drops one posting:
        // the CRC is fine, but coverage breaks.
        let meta = store.manifest().dims[0][0].clone();
        let chunk = store.read_chunk(meta.id()).unwrap();
        let mut entries = chunk.entries.clone();
        entries.pop();
        let forged = crate::chunk::Chunk::new(meta.id(), entries).unwrap();
        std::fs::write(dir.join(meta.id().file_name()), forged.encode().unwrap()).unwrap();
        match store.verify() {
            Err(UeiError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn verify_catches_truncated_rows_file() {
        let dir = temp_dir("verify-rows");
        let rows = make_rows(200);
        let tracker = DiskTracker::new(IoProfile::instant());
        let store =
            ColumnStore::create(dir.path(), schema2(), &rows, StoreConfig::default(), tracker)
                .unwrap();
        let path = dir.join(ROWS_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 8]).unwrap();
        assert!(store.verify().is_err());
    }

    #[test]
    fn empty_dataset_store() {
        let dir = temp_dir("empty");
        let tracker = DiskTracker::new(IoProfile::instant());
        let store =
            ColumnStore::create(dir.path(), schema2(), &[], StoreConfig::default(), tracker)
                .unwrap();
        assert_eq!(store.num_rows(), 0);
        assert_eq!(store.manifest().total_chunks(), 0);
        let mut count = 0;
        store.scan_all(|_| count += 1).unwrap();
        assert_eq!(count, 0);
    }
}
