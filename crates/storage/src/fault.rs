//! Deterministic storage fault injection and retry policy.
//!
//! Production-scale interactive exploration cannot assume every chunk read
//! succeeds within the latency threshold σ: devices return transient errors,
//! files rot, and tail latencies spike. This module provides the two halves
//! of the fault-tolerance story that live in the storage layer:
//!
//! - [`FaultInjector`] — a seed-driven fault source that a [`DiskTracker`]
//!   consults on every *chunk or manifest* read (data-row files are exempt;
//!   see [`FaultInjector::applies_to`]). Per operation it can, with
//!   configured probabilities, (a) fail the read with
//!   [`UeiError::Transient`], (b) corrupt the returned payload in memory
//!   (single-bit flip or truncation — the file on disk is untouched), or
//!   (c) charge a latency spike to the virtual clock. The injector is
//!   deterministic: the same seed and the same sequence of reads produce the
//!   same faults, so failing runs replay exactly.
//! - [`RetryPolicy`] — bounded attempts with exponential backoff. Backoff
//!   is charged to the tracker's virtual clock (like all modeled costs in
//!   this workspace), so retried iterations show realistic response-time
//!   penalties. Only [retryable](UeiError::is_retryable) errors are retried;
//!   corruption never is, because re-reading bad bytes cannot fix them —
//!   corrupt reads surface immediately so the caller can fall back to the
//!   next-ranked cell.
//!
//! The injector mutates payloads *after* the real file read, which means the
//! checksum machinery (per-chunk CRC-32 in the manifest catalog, the chunk
//! trailer CRC, the manifest sidecar sum) is what detects the corruption —
//! exactly the path a real bit flip would take.
//!
//! # Dice order
//!
//! All faults — read and write — draw from **one** seeded RNG behind a
//! mutex, so a seed plus the global sequence of consulted operations
//! replays one fault schedule exactly. Per operation the draw order is
//! fixed and every die is always thrown, even when an earlier one already
//! fired, so outcomes never shift the stream:
//!
//! - read ([`FaultInjector::roll_for_read`]): `transient` →
//!   `corrupt?` → `corrupt kind` → `corrupt position` → `spike`;
//! - journal write ([`FaultInjector::roll_for_journal_write`]): `torn
//!   append` → `rename failure` → `fsync failure`.
//!
//! Write faults are consulted explicitly by [`SessionJournal`] on each of
//! its write operations (appends, segment rotations, snapshots, manifest
//! updates), not path-gated like read faults; journal files are exempt
//! from the *read* dice so recovery itself replays deterministically. On
//! top of the probabilistic dice, [`FaultInjector::arm_journal_kill`]
//! plants a one-shot simulated crash at an exact write-operation index —
//! the kill-point matrix test uses it to crash at every write boundary.
//!
//! [`SessionJournal`]: crate::journal::SessionJournal

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use uei_types::{Result, Rng, UeiError};

use crate::io::DiskTracker;
use crate::manifest::{MANIFEST_CHECKSUM_FILE, MANIFEST_FILE};

/// Per-operation fault probabilities and the seed that drives them.
///
/// All probabilities are independent per read: one operation can both be
/// slow and fail transiently. Probabilities are in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for the injector's private RNG; same seed → same fault sequence.
    pub seed: u64,
    /// Probability that a read fails with [`UeiError::Transient`].
    pub transient_prob: f64,
    /// Probability that a read returns a corrupted payload (single-bit flip
    /// or truncation, chosen pseudo-randomly).
    pub corrupt_prob: f64,
    /// Probability that a read suffers a latency spike.
    pub slow_prob: f64,
    /// Virtual-clock penalty charged when a latency spike fires, seconds.
    pub slow_penalty_secs: f64,
    /// Probability that a journal append is torn mid-frame (the partial
    /// frame reaches disk, then the process "crashes").
    pub torn_append_prob: f64,
    /// Probability that an atomic tmp+rename publish fails after the tmp
    /// file is written but before the rename lands.
    pub rename_fail_prob: f64,
    /// Probability that an fsync requested by the journal's durability
    /// policy reports an error.
    pub fsync_fail_prob: f64,
}

impl FaultConfig {
    /// A configuration that injects nothing (all probabilities zero).
    pub fn off() -> Self {
        FaultConfig {
            seed: 0,
            transient_prob: 0.0,
            corrupt_prob: 0.0,
            slow_prob: 0.0,
            slow_penalty_secs: 0.0,
            torn_append_prob: 0.0,
            rename_fail_prob: 0.0,
            fsync_fail_prob: 0.0,
        }
    }

    /// Validates probability ranges and the spike penalty.
    pub fn validate(&self) -> Result<()> {
        for (name, p) in [
            ("transient_prob", self.transient_prob),
            ("corrupt_prob", self.corrupt_prob),
            ("slow_prob", self.slow_prob),
            ("torn_append_prob", self.torn_append_prob),
            ("rename_fail_prob", self.rename_fail_prob),
            ("fsync_fail_prob", self.fsync_fail_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(UeiError::invalid_config(format!(
                    "fault {name} must be in [0, 1], got {p}"
                )));
            }
        }
        if !(self.slow_penalty_secs >= 0.0) || !self.slow_penalty_secs.is_finite() {
            return Err(UeiError::invalid_config(format!(
                "fault slow_penalty_secs must be finite and >= 0, got {}",
                self.slow_penalty_secs
            )));
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::off()
    }
}

/// Cumulative counts of faults the injector has actually applied.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Reads the injector was consulted for (chunk/manifest reads only).
    pub reads_seen: u64,
    /// Reads failed with [`UeiError::Transient`].
    pub transient_errors: u64,
    /// Payloads corrupted in memory (bit flip or truncation).
    pub corruptions: u64,
    /// Latency spikes charged to the virtual clock.
    pub latency_spikes: u64,
    /// Journal write operations the injector was consulted for.
    pub writes_seen: u64,
    /// Journal appends torn mid-frame.
    pub torn_appends: u64,
    /// tmp+rename publishes failed before the rename.
    pub rename_failures: u64,
    /// fsyncs that reported an injected error.
    pub fsync_failures: u64,
    /// Armed kill points that fired.
    pub kills_fired: u64,
}

/// The faults rolled for one read operation.
///
/// Produced by [`FaultInjector::roll_for_read`]; the tracker applies them in
/// a fixed order: spike (always charged — a slow device is slow whether or
/// not the read then fails), then transient failure, then payload
/// corruption. All three dice are thrown on every consulted read so the
/// random stream — and therefore the whole fault schedule — does not depend
/// on which faults happened to fire earlier.
#[derive(Debug, Clone, Copy)]
pub struct InjectedFaults {
    /// Fail this read with [`UeiError::Transient`].
    pub transient: bool,
    /// Corrupt the payload, using these raw draws as `(kind, position)`
    /// material for [`FaultInjector::corrupt_payload`].
    pub corrupt: Option<(u64, u64)>,
    /// Charge this latency spike to the virtual clock.
    pub spike: Option<Duration>,
}

/// Where, relative to a journal write operation, an armed kill fires.
///
/// Together the three modes cover every crash boundary the recovery path
/// must survive: nothing written (`BeforeWrite`), a torn artifact on disk
/// (`Torn` — a partial frame for appends, a tmp file that never renamed
/// for rotations/snapshots/manifest updates), and a completed write whose
/// *successors* never happened (`AfterWrite` — e.g. a renamed snapshot
/// with a stale manifest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillMode {
    /// Crash before the operation touches disk.
    BeforeWrite,
    /// Crash halfway through: the operation's torn artifact stays on disk.
    Torn,
    /// Crash after the operation completed durably.
    AfterWrite,
}

/// The faults rolled for one journal write operation.
///
/// Produced by [`FaultInjector::roll_for_journal_write`]. `kill` comes from
/// an armed one-shot kill point and overrides the probabilistic dice; the
/// journal interprets `torn` only for appends and `rename_fail` only for
/// tmp+rename publishes, but all dice are always thrown to keep the stream
/// aligned.
#[derive(Debug, Clone, Copy)]
pub struct InjectedWriteFaults {
    /// A one-shot armed kill fires at this operation.
    pub kill: Option<KillMode>,
    /// Tear this append mid-frame and simulate a crash.
    pub torn: bool,
    /// Fail this tmp+rename publish after the tmp write.
    pub rename_fail: bool,
    /// Report an error from this operation's fsync.
    pub fsync_fail: bool,
}

impl InjectedWriteFaults {
    /// No faults for this operation.
    pub fn none() -> Self {
        InjectedWriteFaults { kill: None, torn: false, rename_fail: false, fsync_fail: false }
    }
}

#[derive(Debug)]
struct InjectorState {
    rng: Rng,
    stats: FaultStats,
    /// One-shot kill armed at an absolute write-operation index.
    armed_kill: Option<(u64, KillMode)>,
}

/// Deterministic, seed-driven storage fault source.
///
/// Attach one to a tracker with [`DiskTracker::set_fault_injector`]; every
/// clone of that tracker (store handles, loaders) then consults it on chunk
/// and manifest reads. Thread-safe; a single RNG behind a mutex keeps the
/// fault sequence globally ordered.
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    state: Mutex<InjectorState>,
}

impl FaultInjector {
    /// Creates an injector; fails if the configuration is out of range.
    pub fn new(config: FaultConfig) -> Result<Arc<Self>> {
        config.validate()?;
        Ok(Arc::new(FaultInjector {
            config,
            state: Mutex::new(InjectorState {
                rng: Rng::new(config.seed),
                stats: FaultStats::default(),
                armed_kill: None,
            }),
        }))
    }

    /// The configuration this injector was built with.
    pub fn config(&self) -> FaultConfig {
        self.config
    }

    /// Counts of faults applied so far.
    pub fn stats(&self) -> FaultStats {
        self.state.lock().stats
    }

    /// Whether faults apply to reads of `path`.
    ///
    /// Only chunk files (`*.uei`) and the manifest (plus its checksum
    /// sidecar) are targeted: those are the reads the degradation ladder
    /// can recover from. Row-data files used for bootstrap sampling and
    /// ground-truth scans are exempt so a fault cannot invalidate the
    /// experiment itself.
    pub fn applies_to(path: &Path) -> bool {
        if path.extension().is_some_and(|e| e == "uei") {
            return true;
        }
        path.file_name().is_some_and(|n| n == MANIFEST_FILE || n == MANIFEST_CHECKSUM_FILE)
    }

    /// Rolls the fault dice for one read operation and updates [`FaultStats`].
    pub fn roll_for_read(&self) -> InjectedFaults {
        let mut s = self.state.lock();
        s.stats.reads_seen += 1;
        // Fixed draw order (transient, corrupt kind+position, spike) keeps
        // the stream aligned across runs regardless of outcomes.
        let transient = s.rng.bool(self.config.transient_prob);
        let corrupt_roll = s.rng.bool(self.config.corrupt_prob);
        let corrupt_kind = s.rng.next_u64();
        let corrupt_pos = s.rng.next_u64();
        let spike_roll = s.rng.bool(self.config.slow_prob);

        let spike = if spike_roll {
            s.stats.latency_spikes += 1;
            Some(Duration::from_secs_f64(self.config.slow_penalty_secs))
        } else {
            None
        };
        if transient {
            s.stats.transient_errors += 1;
            return InjectedFaults { transient: true, corrupt: None, spike };
        }
        let corrupt = if corrupt_roll {
            s.stats.corruptions += 1;
            Some((corrupt_kind, corrupt_pos))
        } else {
            None
        };
        InjectedFaults { transient: false, corrupt, spike }
    }

    /// Arms a one-shot simulated crash at journal write operation
    /// `op_index` (absolute, 0-based — the injector's write counter starts
    /// at zero when it is created). The kill fires at most once; arming
    /// again replaces any previous armed kill.
    pub fn arm_journal_kill(&self, op_index: u64, mode: KillMode) {
        self.state.lock().armed_kill = Some((op_index, mode));
    }

    /// The armed kill point, if it has not fired yet.
    pub fn armed_journal_kill(&self) -> Option<(u64, KillMode)> {
        self.state.lock().armed_kill
    }

    /// Rolls the write-path dice for one journal write operation and
    /// updates [`FaultStats`]. Dice order: torn append, rename failure,
    /// fsync failure (all always drawn). An armed kill at this operation's
    /// index is consumed and overrides the dice.
    pub fn roll_for_journal_write(&self) -> InjectedWriteFaults {
        let mut s = self.state.lock();
        let idx = s.stats.writes_seen;
        s.stats.writes_seen += 1;
        let torn = s.rng.bool(self.config.torn_append_prob);
        let rename_fail = s.rng.bool(self.config.rename_fail_prob);
        let fsync_fail = s.rng.bool(self.config.fsync_fail_prob);

        if let Some((at, mode)) = s.armed_kill {
            if at == idx {
                s.armed_kill = None;
                s.stats.kills_fired += 1;
                return InjectedWriteFaults {
                    kill: Some(mode),
                    torn: false,
                    rename_fail: false,
                    fsync_fail: false,
                };
            }
        }
        if torn {
            s.stats.torn_appends += 1;
        }
        if rename_fail {
            s.stats.rename_failures += 1;
        }
        if fsync_fail {
            s.stats.fsync_failures += 1;
        }
        InjectedWriteFaults { kill: None, torn, rename_fail, fsync_fail }
    }

    /// Corrupts `data` in place using the raw draws from
    /// [`FaultInjector::roll_for_read`]: even `kind` flips one bit at a
    /// pseudo-random position, odd `kind` truncates to a pseudo-random
    /// prefix. Empty payloads are left alone.
    pub fn corrupt_payload(data: &mut Vec<u8>, kind: u64, pos: u64) {
        if data.is_empty() {
            return;
        }
        if kind & 1 == 0 {
            let byte = (pos as usize) % data.len();
            let bit = ((pos >> 32) % 8) as u8;
            data[byte] ^= 1 << bit;
        } else {
            let keep = (pos as usize) % data.len();
            data.truncate(keep);
        }
    }
}

/// Bounded-retry policy with exponential backoff on the virtual clock.
///
/// `max_attempts` counts the initial try: `max_attempts == 1` disables
/// retries entirely. Before the *n*-th retry (0-based) the policy charges
/// `initial_backoff_secs × backoff_multiplier^n` to the tracker's virtual
/// clock, so retried operations pay a modeled latency cost visible in
/// response-time reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (must be ≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, virtual seconds.
    pub initial_backoff_secs: f64,
    /// Multiplier applied to the backoff after each retry (must be ≥ 1).
    pub backoff_multiplier: f64,
}

impl RetryPolicy {
    /// No retries: fail on the first error.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, initial_backoff_secs: 0.0, backoff_multiplier: 1.0 }
    }

    /// Validates attempt count and backoff parameters.
    pub fn validate(&self) -> Result<()> {
        if self.max_attempts == 0 {
            return Err(UeiError::invalid_config("retry max_attempts must be >= 1"));
        }
        if !(self.initial_backoff_secs >= 0.0) || !self.initial_backoff_secs.is_finite() {
            return Err(UeiError::invalid_config(format!(
                "retry initial_backoff_secs must be finite and >= 0, got {}",
                self.initial_backoff_secs
            )));
        }
        if !(self.backoff_multiplier >= 1.0) || !self.backoff_multiplier.is_finite() {
            return Err(UeiError::invalid_config(format!(
                "retry backoff_multiplier must be finite and >= 1, got {}",
                self.backoff_multiplier
            )));
        }
        Ok(())
    }

    /// Backoff charged before retry number `retry` (0-based).
    pub fn backoff_before(&self, retry: u32) -> Duration {
        Duration::from_secs_f64(
            self.initial_backoff_secs * self.backoff_multiplier.powi(retry as i32),
        )
    }

    /// Runs `op` with this policy, charging backoff between attempts to
    /// `tracker`'s virtual clock. Returns the successful value together with
    /// the number of retries that were needed (0 = first try succeeded).
    /// Non-retryable errors — corruption above all — propagate immediately.
    pub fn run<T>(
        &self,
        tracker: &DiskTracker,
        mut op: impl FnMut() -> Result<T>,
    ) -> Result<(T, u64)> {
        let mut retries: u64 = 0;
        loop {
            match op() {
                Ok(value) => return Ok((value, retries)),
                Err(e) if e.is_retryable() && retries + 1 < u64::from(self.max_attempts) => {
                    tracker.charge_delay(self.backoff_before(retries as u32));
                    retries += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, initial_backoff_secs: 1e-3, backoff_multiplier: 2.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::IoProfile;
    use std::path::PathBuf;

    #[test]
    fn config_validation_rejects_out_of_range() {
        let mut c = FaultConfig::off();
        c.transient_prob = 1.5;
        assert!(c.validate().is_err());
        c = FaultConfig::off();
        c.corrupt_prob = -0.1;
        assert!(c.validate().is_err());
        c = FaultConfig::off();
        c.slow_penalty_secs = f64::NAN;
        assert!(c.validate().is_err());
        assert!(FaultConfig::off().validate().is_ok());
    }

    #[test]
    fn injector_is_deterministic_per_seed() {
        let cfg = FaultConfig {
            seed: 42,
            transient_prob: 0.3,
            corrupt_prob: 0.2,
            slow_prob: 0.1,
            slow_penalty_secs: 0.5,
            ..FaultConfig::off()
        };
        let a = FaultInjector::new(cfg).unwrap();
        let b = FaultInjector::new(cfg).unwrap();
        for _ in 0..200 {
            let fa = a.roll_for_read();
            let fb = b.roll_for_read();
            assert_eq!(fa.transient, fb.transient);
            assert_eq!(fa.corrupt, fb.corrupt);
            assert_eq!(fa.spike, fb.spike);
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.stats().reads_seen, 200);
    }

    #[test]
    fn off_config_injects_nothing() {
        let inj = FaultInjector::new(FaultConfig::off()).unwrap();
        for _ in 0..100 {
            let f = inj.roll_for_read();
            assert!(!f.transient && f.corrupt.is_none() && f.spike.is_none());
        }
        let s = inj.stats();
        assert_eq!(s.reads_seen, 100);
        assert_eq!(s.transient_errors + s.corruptions + s.latency_spikes, 0);
    }

    #[test]
    fn probabilities_are_roughly_honored() {
        let cfg = FaultConfig {
            seed: 7,
            transient_prob: 0.25,
            corrupt_prob: 0.25,
            slow_prob: 0.25,
            slow_penalty_secs: 0.1,
            ..FaultConfig::off()
        };
        let inj = FaultInjector::new(cfg).unwrap();
        for _ in 0..4000 {
            inj.roll_for_read();
        }
        let s = inj.stats();
        // Transients hit ~25% of 4000; corruption only counts when the same
        // read did not also fail transiently (~25% of the remaining 75%).
        assert!((800..=1200).contains(&(s.transient_errors as i64)), "{s:?}");
        assert!((550..=950).contains(&(s.corruptions as i64)), "{s:?}");
        assert!((800..=1200).contains(&(s.latency_spikes as i64)), "{s:?}");
    }

    #[test]
    fn applies_to_targets_chunks_and_manifest_only() {
        assert!(FaultInjector::applies_to(&PathBuf::from("/data/d03_c0007.uei")));
        assert!(FaultInjector::applies_to(&PathBuf::from("/data/manifest.json")));
        assert!(FaultInjector::applies_to(&PathBuf::from("/data/manifest.crc")));
        assert!(!FaultInjector::applies_to(&PathBuf::from("/data/rows.dat")));
        assert!(!FaultInjector::applies_to(&PathBuf::from("/data/other.bin")));
    }

    #[test]
    fn corrupt_payload_bit_flip_changes_exactly_one_bit() {
        let orig: Vec<u8> = (0..64u8).collect();
        let mut data = orig.clone();
        FaultInjector::corrupt_payload(&mut data, 0, 0x0000_0003_0000_0029);
        assert_eq!(data.len(), orig.len());
        let diff_bits: u32 = data.iter().zip(&orig).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(diff_bits, 1);
    }

    #[test]
    fn corrupt_payload_truncation_shortens() {
        let mut data: Vec<u8> = (0..64u8).collect();
        FaultInjector::corrupt_payload(&mut data, 1, 10);
        assert_eq!(data.len(), 10);
        let mut empty: Vec<u8> = vec![];
        FaultInjector::corrupt_payload(&mut empty, 1, 10);
        assert!(empty.is_empty());
    }

    #[test]
    fn write_dice_are_deterministic_per_seed() {
        let cfg = FaultConfig {
            seed: 99,
            torn_append_prob: 0.2,
            rename_fail_prob: 0.15,
            fsync_fail_prob: 0.1,
            ..FaultConfig::off()
        };
        let a = FaultInjector::new(cfg).unwrap();
        let b = FaultInjector::new(cfg).unwrap();
        for _ in 0..300 {
            let fa = a.roll_for_journal_write();
            let fb = b.roll_for_journal_write();
            assert_eq!(fa.torn, fb.torn);
            assert_eq!(fa.rename_fail, fb.rename_fail);
            assert_eq!(fa.fsync_fail, fb.fsync_fail);
            assert!(fa.kill.is_none() && fb.kill.is_none());
        }
        let s = a.stats();
        assert_eq!(s, b.stats());
        assert_eq!(s.writes_seen, 300);
        assert!(s.torn_appends > 0 && s.rename_failures > 0 && s.fsync_failures > 0);
    }

    #[test]
    fn read_and_write_dice_share_one_stream() {
        // Interleaving write rolls between read rolls shifts the read
        // schedule: the contract is one global stream, not two.
        let cfg = FaultConfig { seed: 5, transient_prob: 0.5, ..FaultConfig::off() };
        let pure = FaultInjector::new(cfg).unwrap();
        let mixed = FaultInjector::new(cfg).unwrap();
        let pure_seq: Vec<bool> = (0..64).map(|_| pure.roll_for_read().transient).collect();
        let mut mixed_seq = Vec::new();
        for i in 0..64 {
            if i == 32 {
                mixed.roll_for_journal_write();
            }
            mixed_seq.push(mixed.roll_for_read().transient);
        }
        assert_eq!(pure_seq[..32], mixed_seq[..32]);
        assert_ne!(pure_seq[32..], mixed_seq[32..], "write roll should advance the shared RNG");
    }

    #[test]
    fn armed_kill_fires_exactly_once_at_its_index() {
        let inj = FaultInjector::new(FaultConfig::off()).unwrap();
        inj.arm_journal_kill(3, KillMode::Torn);
        for i in 0..8u64 {
            let f = inj.roll_for_journal_write();
            if i == 3 {
                assert_eq!(f.kill, Some(KillMode::Torn), "kill must fire at op 3");
            } else {
                assert!(f.kill.is_none(), "kill leaked to op {i}");
            }
        }
        assert_eq!(inj.armed_journal_kill(), None);
        let s = inj.stats();
        assert_eq!(s.kills_fired, 1);
        assert_eq!(s.writes_seen, 8);
    }

    #[test]
    fn off_config_write_path_injects_nothing() {
        let inj = FaultInjector::new(FaultConfig::off()).unwrap();
        for _ in 0..50 {
            let f = inj.roll_for_journal_write();
            assert!(f.kill.is_none() && !f.torn && !f.rename_fail && !f.fsync_fail);
        }
        let s = inj.stats();
        assert_eq!(s.writes_seen, 50);
        assert_eq!(s.torn_appends + s.rename_failures + s.fsync_failures + s.kills_fired, 0);
    }

    #[test]
    fn retry_policy_retries_transient_until_success() {
        let tracker = DiskTracker::new(IoProfile::instant());
        let mut fails_left = 2;
        let policy =
            RetryPolicy { max_attempts: 4, initial_backoff_secs: 0.5, backoff_multiplier: 2.0 };
        let (value, retries) = policy
            .run(&tracker, || {
                if fails_left > 0 {
                    fails_left -= 1;
                    Err(UeiError::transient("flaky"))
                } else {
                    Ok(99)
                }
            })
            .unwrap();
        assert_eq!(value, 99);
        assert_eq!(retries, 2);
        // Backoff charged to the virtual clock: 0.5 s + 1.0 s.
        assert!((tracker.virtual_elapsed().as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn retry_policy_gives_up_after_max_attempts() {
        let tracker = DiskTracker::new(IoProfile::instant());
        let mut calls = 0;
        let policy =
            RetryPolicy { max_attempts: 3, initial_backoff_secs: 0.0, backoff_multiplier: 1.0 };
        let err = policy
            .run(&tracker, || -> Result<()> {
                calls += 1;
                Err(UeiError::transient("always down"))
            })
            .unwrap_err();
        assert!(matches!(err, UeiError::Transient { .. }));
        assert_eq!(calls, 3);
    }

    #[test]
    fn retry_policy_never_retries_corruption() {
        let tracker = DiskTracker::new(IoProfile::instant());
        let mut calls = 0;
        let err = RetryPolicy::default()
            .run(&tracker, || -> Result<()> {
                calls += 1;
                Err(UeiError::corrupt("bad crc"))
            })
            .unwrap_err();
        assert!(matches!(err, UeiError::Corrupt { .. }));
        assert_eq!(calls, 1);
        assert_eq!(tracker.virtual_elapsed(), Duration::ZERO);
    }

    #[test]
    fn retry_policy_validation() {
        assert!(RetryPolicy::default().validate().is_ok());
        assert!(RetryPolicy::none().validate().is_ok());
        let bad = RetryPolicy { max_attempts: 0, ..RetryPolicy::default() };
        assert!(bad.validate().is_err());
        let bad = RetryPolicy { backoff_multiplier: 0.5, ..RetryPolicy::default() };
        assert!(bad.validate().is_err());
        let bad = RetryPolicy { initial_backoff_secs: -1.0, ..RetryPolicy::default() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p =
            RetryPolicy { max_attempts: 5, initial_backoff_secs: 0.001, backoff_multiplier: 2.0 };
        assert!((p.backoff_before(0).as_secs_f64() - 0.001).abs() < 1e-12);
        assert!((p.backoff_before(3).as_secs_f64() - 0.008).abs() < 1e-12);
    }
}
