//! CRC-32 (IEEE 802.3) checksums for on-disk artifacts.
//!
//! Every chunk file and every DBMS page carries a CRC so that torn writes
//! and bit rot surface as [`uei_types::UeiError::Corrupt`] instead of
//! silently wrong exploration results.

/// CRC-32 polynomial (reflected IEEE).
const POLY: u32 = 0xEDB8_8320;

/// Lazily built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *entry = crc;
        }
        t
    })
}

/// Computes the CRC-32 (IEEE) of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"hello world");
        let mut data = b"hello world".to_vec();
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
    }
}
