//! Posting lists: the `<key, {row-ids}>` unit of the inverted columnar store.
//!
//! The paper (§3.1, Figure 2) compresses each vertically decomposed
//! dimension by grouping equal values: each distinct value becomes a *key*
//! and the ids of the objects holding that value become its posting list.
//! Lists are persisted with the key as a raw `f64` followed by the ids
//! delta-encoded as varints (ids are kept strictly ascending).

use uei_types::codec::{decode_ascending_ids, encode_ascending_ids, Reader, Writer};
use uei_types::{Result, UeiError};

/// One `<key, {row-ids}>` entry of an inverted column.
#[derive(Debug, Clone, PartialEq)]
pub struct PostingList {
    /// The attribute value shared by every id in the list.
    pub key: f64,
    /// Row ids holding `key` in this dimension, strictly ascending.
    pub ids: Vec<u64>,
}

impl PostingList {
    /// Creates a posting list, validating that ids are strictly ascending
    /// and non-empty.
    pub fn new(key: f64, ids: Vec<u64>) -> Result<Self> {
        if ids.is_empty() {
            return Err(UeiError::corrupt("posting list must not be empty"));
        }
        if key.is_nan() {
            return Err(UeiError::corrupt("posting key must not be NaN"));
        }
        for w in ids.windows(2) {
            if w[1] <= w[0] {
                return Err(UeiError::corrupt(format!(
                    "posting ids not strictly ascending: {} after {}",
                    w[1], w[0]
                )));
            }
        }
        Ok(PostingList { key, ids })
    }

    /// Number of row ids in the list.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the list is empty (never true for validated lists).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Serialized size in bytes (exact, by encoding into a scratch writer).
    /// Fails only if the list's invariants were violated after
    /// construction — the write path propagates this instead of panicking.
    pub fn encoded_len(&self) -> Result<usize> {
        let mut w = Writer::new();
        self.encode(&mut w)?;
        Ok(w.len())
    }

    /// Appends the binary encoding of this list to `w`.
    pub fn encode(&self, w: &mut Writer) -> Result<()> {
        w.write_f64(self.key);
        encode_ascending_ids(w, &self.ids)
    }

    /// Decodes one posting list from `r`.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let key = r.read_f64()?;
        if key.is_nan() {
            return Err(UeiError::corrupt("decoded posting key is NaN"));
        }
        let ids = decode_ascending_ids(r)?;
        if ids.is_empty() {
            return Err(UeiError::corrupt("decoded posting list is empty"));
        }
        Ok(PostingList { key, ids })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rules() {
        assert!(PostingList::new(1.0, vec![]).is_err());
        assert!(PostingList::new(f64::NAN, vec![1]).is_err());
        assert!(PostingList::new(1.0, vec![3, 3]).is_err());
        assert!(PostingList::new(1.0, vec![3, 2]).is_err());
        assert!(PostingList::new(1.0, vec![1, 2, 3]).is_ok());
        assert!(PostingList::new(f64::NEG_INFINITY, vec![0]).is_ok());
    }

    #[test]
    fn encode_decode_round_trip() {
        let list = PostingList::new(-273.15, vec![0, 7, 8, 1000, 1_000_000]).unwrap();
        let mut w = Writer::new();
        list.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let got = PostingList::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(got, list);
    }

    #[test]
    fn several_lists_stream() {
        let lists = vec![
            PostingList::new(1.0, vec![5]).unwrap(),
            PostingList::new(2.5, vec![1, 2, 3]).unwrap(),
            PostingList::new(100.0, vec![999]).unwrap(),
        ];
        let mut w = Writer::new();
        for l in &lists {
            l.encode(&mut w).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for l in &lists {
            assert_eq!(&PostingList::decode(&mut r).unwrap(), l);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn encoded_len_matches_actual() {
        let list = PostingList::new(3.25, vec![10, 20, 4096]).unwrap();
        let mut w = Writer::new();
        list.encode(&mut w).unwrap();
        assert_eq!(list.encoded_len().unwrap(), w.len());
    }

    #[test]
    fn truncated_decode_errors() {
        let list = PostingList::new(1.0, vec![1, 2, 3]).unwrap();
        let mut w = Writer::new();
        list.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let r = PostingList::decode(&mut Reader::new(&bytes[..cut]));
            assert!(r.is_err(), "decode of {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn delta_encoding_is_compact() {
        // 1000 consecutive ids should cost ~1 byte each after the header.
        let ids: Vec<u64> = (1_000_000..1_001_000).collect();
        let list = PostingList::new(42.0, ids).unwrap();
        let len = list.encoded_len().unwrap();
        assert!(len < 8 + 3 + 4 + 1000 + 16, "encoded len {len} not compact");
    }
}
