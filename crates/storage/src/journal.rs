//! Durable per-session write-ahead journal (DESIGN.md §13).
//!
//! Interactive exploration accumulates irreplaceable analyst state: every
//! label costs real user effort, so a process crash must never lose one.
//! This module provides the storage half of the durability story — an
//! append-only, CRC-framed journal with periodic snapshots — while the
//! exploration layer decides *what* to journal and how to replay it
//! (`uei_explore::session`).
//!
//! # On-disk layout
//!
//! A journal is a directory holding:
//!
//! - `seg-NNNNNN.wal` — append-only record segments, numbered from 1.
//!   Each record is framed as `[len: u32 LE][crc32(payload): u32 LE]
//!   [payload]`; payloads are opaque bytes to this layer. Segments are
//!   created atomically (tmp + rename of an empty file) and rotated when
//!   they exceed [`JournalConfig::segment_bytes`].
//! - `snap-NNNNNN.snap` — state snapshots, one CRC frame per file,
//!   written tmp + fsync + rename so a snapshot is either absent or
//!   whole. After a snapshot lands, the journal rotates to a fresh
//!   segment and garbage-collects all older segments: the snapshot
//!   payload must therefore capture everything the discarded records did.
//! - `journal.json` / `journal.crc` — an *advisory* manifest naming the
//!   newest snapshot and segment. Recovery verifies it against the
//!   sidecar but never trusts it over the directory: a stale manifest
//!   (crash after a snapshot rename, before the manifest update) only
//!   means recovery replays a longer suffix.
//! - `*.tmp` — torn tmp+rename publishes; ignored and deleted.
//!
//! # Recovery invariants
//!
//! [`SessionJournal::recover`] scans the directory and returns the newest
//! valid snapshot plus every surviving record in append order. A torn
//! frame at the tail of the *newest* segment marks the end of the journal
//! and is truncated; a bad frame anywhere else is [`UeiError::Corrupt`].
//! An acknowledged append — one that returned `Ok` — is always
//! recovered, because `Ok` is only returned once the whole frame reached
//! the segment file (and, per [`FsyncPolicy`], the device).
//!
//! # Fault injection
//!
//! Every write operation (append, rotation, snapshot, manifest update)
//! consults the tracker's [`FaultInjector`](crate::fault::FaultInjector)
//! via [`roll_for_journal_write`][crate::fault::FaultInjector::roll_for_journal_write],
//! honoring both the
//! probabilistic write dice and armed one-shot kill points
//! ([`KillMode`]). After any failed write the journal poisons itself:
//! further operations return [`UeiError::InvalidState`], forcing the
//! caller through recovery rather than appending after a torn frame.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use uei_types::{Result, UeiError};

use crate::checksum::crc32;
use crate::fault::{InjectedWriteFaults, KillMode};
use crate::io::DiskTracker;

/// File name of the advisory journal manifest.
pub const JOURNAL_MANIFEST_FILE: &str = "journal.json";
/// File name of the manifest's checksum sidecar.
pub const JOURNAL_MANIFEST_CHECKSUM_FILE: &str = "journal.crc";

/// Bytes of frame header: `len: u32 LE` + `crc32: u32 LE`.
const FRAME_HEADER_BYTES: usize = 8;
/// Upper bound on a single record payload; larger lengths in a frame
/// header are treated as corruption (or a torn tail), never allocated.
const MAX_RECORD_BYTES: u32 = 64 << 20;

/// When appends are flushed to the device with `fsync`.
///
/// Every tmp+rename publish (segment creation, snapshot, manifest) syncs
/// the tmp file before the rename regardless of policy; this knob only
/// governs record appends. `Ok` from an append always means the frame
/// reached the segment file (process-crash durability); `fsync` extends
/// that to power loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsyncPolicy {
    /// `fsync` after every append: no acknowledged record is ever lost,
    /// even to power failure.
    Always,
    /// `fsync` after every n-th append (n ≥ 1). Bounds the power-loss
    /// exposure window to n records while amortizing the sync cost.
    Interval(u32),
    /// Never `fsync` appends; durability is bounded by the OS page cache.
    Never,
}

impl FsyncPolicy {
    /// Validates the interval.
    pub fn validate(&self) -> Result<()> {
        if let FsyncPolicy::Interval(n) = self {
            if *n == 0 {
                return Err(UeiError::invalid_config("fsync interval must be >= 1"));
            }
        }
        Ok(())
    }
}

/// Durability knobs for a session journal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JournalConfig {
    /// When appended records are fsynced (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Segment size that triggers rotation to a new `seg-*.wal`.
    pub segment_bytes: u64,
    /// Exploration iterations between snapshots (consumed by the session
    /// layer; the journal itself snapshots only when asked).
    pub snapshot_every: u32,
}

impl JournalConfig {
    /// Validates all fields.
    pub fn validate(&self) -> Result<()> {
        self.fsync.validate()?;
        if self.segment_bytes == 0 {
            return Err(UeiError::invalid_config("journal segment_bytes must be >= 1"));
        }
        if self.snapshot_every == 0 {
            return Err(UeiError::invalid_config("journal snapshot_every must be >= 1"));
        }
        Ok(())
    }
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            fsync: FsyncPolicy::Interval(16),
            segment_bytes: 256 << 10,
            snapshot_every: 25,
        }
    }
}

/// Advisory manifest contents; recovery verifies but never trusts it
/// over the directory scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct JournalManifest {
    /// Newest snapshot sequence number (0 = none).
    snapshot_seq: u64,
    /// Segment receiving appends when the manifest was written.
    segment_seq: u64,
}

/// Everything a recovery scan found: the newest valid snapshot payload
/// and all surviving record payloads, oldest first.
#[derive(Debug)]
pub struct JournalContents {
    /// Payload of the newest valid snapshot, if any snapshot survived.
    pub snapshot: Option<Vec<u8>>,
    /// Surviving record payloads in append order. With snapshots this
    /// can include records the snapshot already covers (a snapshot can
    /// land mid-segment); the replaying layer deduplicates.
    pub records: Vec<Vec<u8>>,
    /// Whether the advisory manifest was present, checksum-valid, and in
    /// agreement with the directory scan.
    pub manifest_fresh: bool,
    /// Bytes of torn tail truncated from the newest segment.
    pub torn_tail_bytes: u64,
}

/// A durable, CRC-framed, crash-recoverable write-ahead journal.
///
/// One journal belongs to one exploration session; it is not thread-safe
/// (sessions are single-threaded by construction) and poisons itself on
/// the first failed write.
#[derive(Debug)]
pub struct SessionJournal {
    dir: PathBuf,
    config: JournalConfig,
    tracker: DiskTracker,
    seg_seq: u64,
    seg_file: File,
    seg_bytes: u64,
    snap_seq: u64,
    appends_since_sync: u32,
    poisoned: bool,
}

impl SessionJournal {
    /// Creates a fresh journal in `dir` (created if missing), opening
    /// segment 1. Fails with [`UeiError::InvalidState`] if the directory
    /// already holds journal artifacts — recover those instead of
    /// silently appending to them.
    pub fn create(dir: &Path, config: JournalConfig, tracker: DiskTracker) -> Result<Self> {
        config.validate()?;
        std::fs::create_dir_all(dir).map_err(|e| UeiError::io(dir, e))?;
        let scan = scan_dir(dir)?;
        if !scan.segments.is_empty() || !scan.snapshots.is_empty() {
            return Err(UeiError::invalid_state(format!(
                "journal directory {} is not empty; recover it instead of creating over it",
                dir.display()
            )));
        }
        let mut journal = SessionJournal {
            dir: dir.to_path_buf(),
            config,
            tracker,
            seg_seq: 0,
            // Replaced by the rotation below; a placeholder handle on the
            // directory would complicate errors, so open lazily instead.
            seg_file: File::open(dir).map_err(|e| UeiError::io(dir, e))?,
            seg_bytes: 0,
            snap_seq: 0,
            appends_since_sync: 0,
            poisoned: false,
        };
        journal.rotate_segment()?;
        Ok(journal)
    }

    /// Scans `dir`, truncates any torn tail off the newest segment, and
    /// reopens the journal for appending. Returns the surviving contents
    /// together with the reopened journal. An empty or missing directory
    /// recovers to an empty journal (no snapshot, no records).
    pub fn recover(
        dir: &Path,
        config: JournalConfig,
        tracker: DiskTracker,
    ) -> Result<(JournalContents, Self)> {
        config.validate()?;
        std::fs::create_dir_all(dir).map_err(|e| UeiError::io(dir, e))?;
        let scan = scan_dir(dir)?;
        for tmp in &scan.tmp_files {
            // Torn tmp+rename publishes: never valid, always discarded.
            std::fs::remove_file(tmp).map_err(|e| UeiError::io(tmp, e))?;
        }

        // Newest snapshot whose single frame validates wins; invalid
        // snapshot files are skipped (renames are atomic, so these only
        // arise from external damage), older valid ones still count.
        let mut snapshot = None;
        let mut snap_seq = 0;
        for (seq, path) in scan.snapshots.iter().rev() {
            let data = tracker.read_file(path)?;
            if let Some(payload) = parse_snapshot_frame(&data) {
                snapshot = Some(payload);
                snap_seq = *seq;
                break;
            }
        }

        // All surviving records, oldest segment first. Only the newest
        // segment may end in a torn frame.
        let mut records = Vec::new();
        let mut torn_tail_bytes = 0u64;
        let mut last_valid_len = 0u64;
        for (i, (_, path)) in scan.segments.iter().enumerate() {
            let newest = i + 1 == scan.segments.len();
            let data = tracker.read_file(path)?;
            let (mut frames, valid_len) = parse_frames(&data, path, newest)?;
            records.append(&mut frames);
            if newest {
                torn_tail_bytes = (data.len() - valid_len) as u64;
                last_valid_len = valid_len as u64;
                if torn_tail_bytes > 0 {
                    let f = OpenOptions::new()
                        .write(true)
                        .open(path)
                        .map_err(|e| UeiError::io(path, e))?;
                    f.set_len(last_valid_len).map_err(|e| UeiError::io(path, e))?;
                    f.sync_all().map_err(|e| UeiError::io(path, e))?;
                }
            }
        }

        let manifest_fresh = match read_manifest(dir, &tracker) {
            Some(m) => {
                m.snapshot_seq == snap_seq
                    && m.segment_seq == scan.segments.last().map_or(0, |&(s, _)| s)
            }
            None => false,
        };

        let (seg_seq, seg_file, seg_bytes) = match scan.segments.last() {
            Some((seq, path)) => {
                let f = OpenOptions::new()
                    .append(true)
                    .open(path)
                    .map_err(|e| UeiError::io(path, e))?;
                (*seq, f, last_valid_len)
            }
            None => {
                // No segment survived (crash before the first rotation
                // renamed one): recreate segment 1 below via rotation.
                let placeholder = File::open(dir).map_err(|e| UeiError::io(dir, e))?;
                (0, placeholder, 0)
            }
        };

        let mut journal = SessionJournal {
            dir: dir.to_path_buf(),
            config,
            tracker,
            seg_seq,
            seg_file,
            seg_bytes,
            snap_seq,
            appends_since_sync: 0,
            poisoned: false,
        };
        if journal.seg_seq == 0 {
            journal.rotate_segment()?;
        }
        Ok((JournalContents { snapshot, records, manifest_fresh, torn_tail_bytes }, journal))
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The durability configuration.
    pub fn config(&self) -> JournalConfig {
        self.config
    }

    /// Sequence number of the segment currently being appended to. Over
    /// a journal's lifetime this equals the rotations performed (the
    /// initial segment counts as the first), so observers can diff it to
    /// detect rotations without touching the write path.
    pub fn segment_seq(&self) -> u64 {
        self.seg_seq
    }

    /// Sequence number of the newest published snapshot (0 = none yet).
    pub fn snapshot_seq(&self) -> u64 {
        self.snap_seq
    }

    /// Appends one record, framing it with length and CRC-32. `Ok` means
    /// the whole frame reached the current segment file (and the device,
    /// per the [`FsyncPolicy`]): the record will survive recovery.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        self.check_usable()?;
        if payload.len() as u64 > u64::from(MAX_RECORD_BYTES) {
            return Err(UeiError::invalid_config(format!(
                "journal record of {} bytes exceeds the {} byte limit",
                payload.len(),
                MAX_RECORD_BYTES
            )));
        }
        if self.seg_bytes >= self.config.segment_bytes {
            self.rotate_segment()?;
        }
        let faults = self.roll();
        let seg_path = self.segment_path(self.seg_seq);
        let frame = frame_record(payload);
        if faults.kill == Some(KillMode::BeforeWrite) {
            return Err(self.poison_crash(&seg_path, "before append"));
        }
        if faults.kill == Some(KillMode::Torn) || faults.torn {
            // Half the frame reaches disk, then the process "dies".
            let torn = &frame[..FRAME_HEADER_BYTES + payload.len() / 2];
            self.seg_file.write_all(torn).map_err(|e| UeiError::io(&seg_path, e))?;
            self.seg_file.flush().map_err(|e| UeiError::io(&seg_path, e))?;
            return Err(self.poison_crash(&seg_path, "torn append"));
        }
        self.seg_file.write_all(&frame).map_err(|e| self.poison_io(&seg_path, e))?;
        self.seg_file.flush().map_err(|e| self.poison_io(&seg_path, e))?;
        self.seg_bytes += frame.len() as u64;
        self.tracker.record_write(frame.len() as u64, 1);
        self.maybe_fsync(&seg_path, &faults)?;
        if faults.kill == Some(KillMode::AfterWrite) {
            return Err(self.poison_crash(&seg_path, "after append"));
        }
        Ok(())
    }

    /// Writes a snapshot, rotates to a fresh segment, updates the
    /// advisory manifest, and garbage-collects all pre-snapshot
    /// segments. The payload must capture everything the discarded
    /// records did. `Ok` means the snapshot is durable.
    pub fn snapshot(&mut self, payload: &[u8]) -> Result<()> {
        self.check_usable()?;
        let seq = self.snap_seq + 1;
        let path = self.dir.join(format!("snap-{seq:06}.snap"));
        self.publish_atomic(&path, &frame_record(payload))?;
        self.snap_seq = seq;
        let old_seg = self.seg_seq;
        self.rotate_segment()?;
        self.write_manifest()?;
        for gc in 1..=old_seg {
            let seg = self.segment_path(gc);
            if seg.exists() {
                std::fs::remove_file(&seg).map_err(|e| UeiError::io(&seg, e))?;
            }
        }
        // Retire superseded snapshots too; only the newest is ever read.
        for old in 1..seq {
            let snap = self.dir.join(format!("snap-{old:06}.snap"));
            if snap.exists() {
                std::fs::remove_file(&snap).map_err(|e| UeiError::io(&snap, e))?;
            }
        }
        Ok(())
    }

    /// Flushes and fsyncs the current segment regardless of policy.
    /// Call before an orderly shutdown.
    pub fn sync(&mut self) -> Result<()> {
        self.check_usable()?;
        let path = self.segment_path(self.seg_seq);
        self.seg_file.flush().map_err(|e| self.poison_io(&path, e))?;
        self.seg_file.sync_all().map_err(|e| self.poison_io(&path, e))?;
        self.appends_since_sync = 0;
        Ok(())
    }

    // ---- internals ------------------------------------------------------

    fn check_usable(&self) -> Result<()> {
        if self.poisoned {
            return Err(UeiError::invalid_state(format!(
                "journal {} is poisoned after a failed write; recover it before appending",
                self.dir.display()
            )));
        }
        Ok(())
    }

    fn segment_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("seg-{seq:06}.wal"))
    }

    fn roll(&self) -> InjectedWriteFaults {
        match self.tracker.fault_injector() {
            Some(inj) => inj.roll_for_journal_write(),
            None => InjectedWriteFaults::none(),
        }
    }

    fn poison_crash(&mut self, path: &Path, what: &str) -> UeiError {
        self.poisoned = true;
        UeiError::io(path, std::io::Error::other(format!("injected crash: {what}")))
    }

    fn poison_io(&mut self, path: &Path, e: std::io::Error) -> UeiError {
        self.poisoned = true;
        UeiError::io(path, e)
    }

    /// Publishes `data` at `path` atomically: tmp write, fsync, rename.
    /// One injector-consulted write operation.
    fn publish_atomic(&mut self, path: &Path, data: &[u8]) -> Result<()> {
        let faults = self.roll();
        if faults.kill == Some(KillMode::BeforeWrite) {
            return Err(self.poison_crash(path, "before publish"));
        }
        let tmp = tmp_sibling(path);
        std::fs::write(&tmp, data).map_err(|e| self.poison_io(&tmp, e))?;
        let tf = File::open(&tmp).map_err(|e| self.poison_io(&tmp, e))?;
        if faults.fsync_fail {
            self.poisoned = true;
            return Err(UeiError::io(&tmp, std::io::Error::other("injected fsync failure")));
        }
        tf.sync_all().map_err(|e| self.poison_io(&tmp, e))?;
        if faults.kill == Some(KillMode::Torn) || faults.rename_fail {
            // The tmp file exists but the rename never lands.
            let what = if faults.rename_fail {
                "injected rename failure"
            } else {
                "injected crash: torn publish"
            };
            self.poisoned = true;
            return Err(UeiError::io(path, std::io::Error::other(what)));
        }
        std::fs::rename(&tmp, path).map_err(|e| self.poison_io(path, e))?;
        self.tracker.record_write(data.len() as u64, 1);
        if faults.kill == Some(KillMode::AfterWrite) {
            return Err(self.poison_crash(path, "after publish"));
        }
        Ok(())
    }

    /// Opens the next segment via atomic empty-file creation. One
    /// injector-consulted write operation.
    fn rotate_segment(&mut self) -> Result<()> {
        let seq = self.seg_seq + 1;
        let path = self.segment_path(seq);
        self.publish_atomic(&path, &[])?;
        self.seg_file =
            OpenOptions::new().append(true).open(&path).map_err(|e| self.poison_io(&path, e))?;
        self.seg_seq = seq;
        self.seg_bytes = 0;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Updates the advisory manifest (json + crc sidecar). One
    /// injector-consulted write operation covering both files.
    fn write_manifest(&mut self) -> Result<()> {
        let manifest = JournalManifest { snapshot_seq: self.snap_seq, segment_seq: self.seg_seq };
        let json = serde_json::to_vec_pretty(&manifest)
            .map_err(|e| UeiError::corrupt(format!("journal manifest failed to serialize: {e}")))?;
        let path = self.dir.join(JOURNAL_MANIFEST_FILE);
        self.publish_atomic(&path, &json)?;
        let sum = format!("{:08x}\n", crc32(&json));
        let crc_path = self.dir.join(JOURNAL_MANIFEST_CHECKSUM_FILE);
        let tmp = tmp_sibling(&crc_path);
        std::fs::write(&tmp, sum.as_bytes()).map_err(|e| self.poison_io(&tmp, e))?;
        std::fs::rename(&tmp, &crc_path).map_err(|e| self.poison_io(&crc_path, e))?;
        Ok(())
    }

    fn maybe_fsync(&mut self, path: &Path, faults: &InjectedWriteFaults) -> Result<()> {
        self.appends_since_sync += 1;
        let due = match self.config.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::Interval(n) => self.appends_since_sync >= n,
            FsyncPolicy::Never => false,
        };
        if !due {
            return Ok(());
        }
        if faults.fsync_fail {
            self.poisoned = true;
            return Err(UeiError::io(path, std::io::Error::other("injected fsync failure")));
        }
        self.seg_file.sync_all().map_err(|e| self.poison_io(path, e))?;
        self.appends_since_sync = 0;
        Ok(())
    }
}

/// Frames one record: length, CRC-32 of the payload, payload.
fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Parses the frames of one segment. Returns the payloads plus the byte
/// length of the valid prefix. In the newest segment an invalid frame
/// marks a torn tail (stop, truncate); anywhere else it is corruption.
fn parse_frames(data: &[u8], path: &Path, newest: bool) -> Result<(Vec<Vec<u8>>, usize)> {
    let mut frames = Vec::new();
    let mut off = 0usize;
    while off < data.len() {
        let bad = match frame_at(data, off) {
            Ok(Some(payload)) => {
                off += FRAME_HEADER_BYTES + payload.len();
                frames.push(payload);
                continue;
            }
            Ok(None) => format!("{}: torn or truncated frame at offset {off}", path.display()),
            Err(detail) => format!("{}: {detail} at offset {off}", path.display()),
        };
        if newest {
            // End of the journal: the crash interrupted this frame.
            break;
        }
        return Err(UeiError::corrupt(bad));
    }
    Ok((frames, off))
}

/// Decodes the frame starting at `off`. `Ok(Some(payload))` for a whole
/// valid frame, `Ok(None)` for a frame cut short by the end of the data,
/// `Err` for one that is present but fails validation.
fn frame_at(data: &[u8], off: usize) -> std::result::Result<Option<Vec<u8>>, String> {
    let Some(header) = data.get(off..off + FRAME_HEADER_BYTES) else { return Ok(None) };
    let len_bytes: [u8; 4] = header[0..4].try_into().map_err(|_| "short header".to_string())?;
    let crc_bytes: [u8; 4] = header[4..8].try_into().map_err(|_| "short header".to_string())?;
    let len = u32::from_le_bytes(len_bytes);
    let crc = u32::from_le_bytes(crc_bytes);
    if len > MAX_RECORD_BYTES {
        return Err(format!("frame claims {len} bytes, over the {MAX_RECORD_BYTES} byte limit"));
    }
    let start = off + FRAME_HEADER_BYTES;
    let Some(payload) = data.get(start..start + len as usize) else { return Ok(None) };
    if crc32(payload) != crc {
        return Err("frame failed its checksum".to_string());
    }
    Ok(Some(payload.to_vec()))
}

/// Parses a snapshot file: exactly one frame spanning the whole file.
fn parse_snapshot_frame(data: &[u8]) -> Option<Vec<u8>> {
    if data.len() < FRAME_HEADER_BYTES {
        return None;
    }
    let len = u32::from_le_bytes(data[0..4].try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(data[4..8].try_into().ok()?);
    if data.len() != FRAME_HEADER_BYTES + len {
        return None;
    }
    let payload = &data[FRAME_HEADER_BYTES..];
    if crc32(payload) != crc {
        return None;
    }
    Some(payload.to_vec())
}

struct DirScan {
    /// `(seq, path)` sorted ascending by sequence number.
    segments: Vec<(u64, PathBuf)>,
    /// `(seq, path)` sorted ascending by sequence number.
    snapshots: Vec<(u64, PathBuf)>,
    tmp_files: Vec<PathBuf>,
}

fn scan_dir(dir: &Path) -> Result<DirScan> {
    let mut scan = DirScan { segments: Vec::new(), snapshots: Vec::new(), tmp_files: Vec::new() };
    let entries = std::fs::read_dir(dir).map_err(|e| UeiError::io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| UeiError::io(dir, e))?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if name.ends_with(".tmp") {
            scan.tmp_files.push(path);
        } else if let Some(seq) = parse_seq(name, "seg-", ".wal") {
            scan.segments.push((seq, path));
        } else if let Some(seq) = parse_seq(name, "snap-", ".snap") {
            scan.snapshots.push((seq, path));
        }
    }
    scan.segments.sort();
    scan.snapshots.sort();
    Ok(scan)
}

fn parse_seq(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok()
}

/// Reads and verifies the advisory manifest; `None` if missing, damaged,
/// or its sidecar disagrees — recovery then relies on the scan alone.
fn read_manifest(dir: &Path, tracker: &DiskTracker) -> Option<JournalManifest> {
    let json = tracker.read_file(&dir.join(JOURNAL_MANIFEST_FILE)).ok()?;
    let sum = tracker.read_file(&dir.join(JOURNAL_MANIFEST_CHECKSUM_FILE)).ok()?;
    let expected = u32::from_str_radix(std::str::from_utf8(&sum).ok()?.trim(), 16).ok()?;
    if crc32(&json) != expected {
        return None;
    }
    serde_json::from_slice(&json).ok()
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultInjector};
    use crate::io::IoProfile;
    use crate::testutil::TempDir;
    use std::sync::Arc;

    fn tracker() -> DiskTracker {
        DiskTracker::new(IoProfile::instant())
    }

    fn small_config() -> JournalConfig {
        JournalConfig { fsync: FsyncPolicy::Never, segment_bytes: 128, snapshot_every: 5 }
    }

    #[test]
    fn config_validation() {
        assert!(JournalConfig::default().validate().is_ok());
        let bad = JournalConfig { segment_bytes: 0, ..JournalConfig::default() };
        assert!(bad.validate().is_err());
        let bad = JournalConfig { snapshot_every: 0, ..JournalConfig::default() };
        assert!(bad.validate().is_err());
        let bad = JournalConfig { fsync: FsyncPolicy::Interval(0), ..JournalConfig::default() };
        assert!(bad.validate().is_err());
        assert!(FsyncPolicy::Always.validate().is_ok());
        assert!(FsyncPolicy::Never.validate().is_ok());
    }

    #[test]
    fn append_and_recover_round_trip() {
        let dir = TempDir::new("journal-rt");
        let payloads: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 1 + i as usize]).collect();
        {
            let mut j = SessionJournal::create(dir.path(), small_config(), tracker()).unwrap();
            for p in &payloads {
                j.append(p).unwrap();
            }
            j.sync().unwrap();
        }
        let (contents, _j) =
            SessionJournal::recover(dir.path(), small_config(), tracker()).unwrap();
        assert_eq!(contents.records, payloads);
        assert!(contents.snapshot.is_none());
        assert_eq!(contents.torn_tail_bytes, 0);
    }

    #[test]
    fn rotation_splits_segments_without_losing_records() {
        let dir = TempDir::new("journal-rot");
        let mut j = SessionJournal::create(dir.path(), small_config(), tracker()).unwrap();
        // 40-byte payloads + 8-byte headers against a 128-byte segment
        // cap: rotation must fire several times.
        let payloads: Vec<Vec<u8>> = (0..12u8).map(|i| vec![i; 40]).collect();
        for p in &payloads {
            j.append(p).unwrap();
        }
        drop(j);
        let segs = std::fs::read_dir(dir.path())
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().ends_with(".wal"))
            .count();
        assert!(segs > 1, "expected rotation to create multiple segments, got {segs}");
        let (contents, _) = SessionJournal::recover(dir.path(), small_config(), tracker()).unwrap();
        assert_eq!(contents.records, payloads);
    }

    #[test]
    fn snapshot_gcs_old_segments_and_survives_recovery() {
        let dir = TempDir::new("journal-snap");
        let mut j = SessionJournal::create(dir.path(), small_config(), tracker()).unwrap();
        for i in 0..10u8 {
            j.append(&[i; 30]).unwrap();
        }
        j.snapshot(b"state-at-10").unwrap();
        j.append(b"post-snap-1").unwrap();
        j.append(b"post-snap-2").unwrap();
        drop(j);
        let (contents, _) = SessionJournal::recover(dir.path(), small_config(), tracker()).unwrap();
        assert_eq!(contents.snapshot.as_deref(), Some(b"state-at-10".as_slice()));
        assert_eq!(contents.records, vec![b"post-snap-1".to_vec(), b"post-snap-2".to_vec()]);
        assert!(contents.manifest_fresh, "manifest was written after the snapshot");
    }

    #[test]
    fn second_snapshot_retires_the_first() {
        let dir = TempDir::new("journal-snap2");
        let mut j = SessionJournal::create(dir.path(), small_config(), tracker()).unwrap();
        j.append(b"a").unwrap();
        j.snapshot(b"s1").unwrap();
        j.append(b"b").unwrap();
        j.snapshot(b"s2").unwrap();
        j.append(b"c").unwrap();
        drop(j);
        let (contents, _) = SessionJournal::recover(dir.path(), small_config(), tracker()).unwrap();
        assert_eq!(contents.snapshot.as_deref(), Some(b"s2".as_slice()));
        assert_eq!(contents.records, vec![b"c".to_vec()]);
        assert!(!dir.join("snap-000001.snap").exists(), "superseded snapshot retired");
    }

    #[test]
    fn torn_tail_is_truncated_and_acked_records_survive() {
        let dir = TempDir::new("journal-torn");
        let cfg = JournalConfig { segment_bytes: 1 << 20, ..small_config() };
        {
            let mut j = SessionJournal::create(dir.path(), cfg, tracker()).unwrap();
            for i in 0..5u8 {
                j.append(&[i; 16]).unwrap();
            }
            j.sync().unwrap();
        }
        // Simulate a torn final append: a frame header plus half a payload.
        let seg = dir.join("seg-000001.wal");
        let mut bytes = std::fs::read(&seg).unwrap();
        let torn = frame_record(&[9u8; 16]);
        bytes.extend_from_slice(&torn[..torn.len() - 8]);
        std::fs::write(&seg, &bytes).unwrap();

        let (contents, mut j) = SessionJournal::recover(dir.path(), cfg, tracker()).unwrap();
        assert_eq!(contents.records.len(), 5, "all acked records survive");
        assert!(contents.torn_tail_bytes > 0);
        // The journal is usable again and appends cleanly after the
        // truncation.
        j.append(b"after-recovery").unwrap();
        drop(j);
        let (contents, _) = SessionJournal::recover(dir.path(), cfg, tracker()).unwrap();
        assert_eq!(contents.records.len(), 6);
        assert_eq!(contents.records[5], b"after-recovery".to_vec());
    }

    #[test]
    fn corrupt_frame_in_older_segment_fails_closed() {
        let dir = TempDir::new("journal-corrupt-mid");
        let mut j = SessionJournal::create(dir.path(), small_config(), tracker()).unwrap();
        for i in 0..12u8 {
            j.append(&[i; 40]).unwrap();
        }
        drop(j);
        // Flip a payload byte in the first (non-newest) segment.
        let seg = dir.join("seg-000001.wal");
        let mut bytes = std::fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&seg, &bytes).unwrap();
        let err = SessionJournal::recover(dir.path(), small_config(), tracker()).unwrap_err();
        assert!(matches!(err, UeiError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn stale_manifest_is_advisory_only() {
        let dir = TempDir::new("journal-stale-manifest");
        let mut j = SessionJournal::create(dir.path(), small_config(), tracker()).unwrap();
        j.append(b"x").unwrap();
        j.snapshot(b"s1").unwrap();
        // Simulate a crash between a later snapshot rename and its
        // manifest update: plant a newer snapshot by hand.
        let snap2 = frame_record(b"s2");
        std::fs::write(dir.join("snap-000002.snap"), &snap2).unwrap();
        drop(j);
        let (contents, _) = SessionJournal::recover(dir.path(), small_config(), tracker()).unwrap();
        assert_eq!(contents.snapshot.as_deref(), Some(b"s2".as_slice()), "scan beats manifest");
        assert!(!contents.manifest_fresh, "stale manifest detected");
    }

    #[test]
    fn tmp_files_are_ignored_and_cleaned() {
        let dir = TempDir::new("journal-tmp");
        let mut j = SessionJournal::create(dir.path(), small_config(), tracker()).unwrap();
        j.append(b"real").unwrap();
        drop(j);
        std::fs::write(dir.join("snap-000009.snap.tmp"), b"torn snapshot").unwrap();
        std::fs::write(dir.join("seg-000009.wal.tmp"), b"torn segment").unwrap();
        let (contents, _) = SessionJournal::recover(dir.path(), small_config(), tracker()).unwrap();
        assert_eq!(contents.records, vec![b"real".to_vec()]);
        assert!(contents.snapshot.is_none());
        assert!(!dir.join("snap-000009.snap.tmp").exists());
        assert!(!dir.join("seg-000009.wal.tmp").exists());
    }

    #[test]
    fn recover_empty_directory_yields_fresh_journal() {
        let dir = TempDir::new("journal-empty");
        let (contents, mut j) =
            SessionJournal::recover(dir.path(), small_config(), tracker()).unwrap();
        assert!(contents.snapshot.is_none());
        assert!(contents.records.is_empty());
        j.append(b"first").unwrap();
        drop(j);
        let (contents, _) = SessionJournal::recover(dir.path(), small_config(), tracker()).unwrap();
        assert_eq!(contents.records, vec![b"first".to_vec()]);
    }

    #[test]
    fn create_refuses_existing_journal() {
        let dir = TempDir::new("journal-exists");
        let mut j = SessionJournal::create(dir.path(), small_config(), tracker()).unwrap();
        j.append(b"x").unwrap();
        drop(j);
        let err = SessionJournal::create(dir.path(), small_config(), tracker()).unwrap_err();
        assert!(matches!(err, UeiError::InvalidState { .. }), "{err}");
    }

    #[test]
    fn injected_torn_append_poisons_but_recovery_keeps_acked_records() {
        let dir = TempDir::new("journal-inj-torn");
        let t = tracker();
        let inj = FaultInjector::new(FaultConfig::off()).unwrap();
        t.set_fault_injector(Some(Arc::clone(&inj)));
        let mut j = SessionJournal::create(dir.path(), small_config(), t.clone()).unwrap();
        j.append(&[1u8; 16]).unwrap();
        j.append(&[2u8; 16]).unwrap();
        // Ops so far: rotation (op 0) + two appends. Tear the next append.
        inj.arm_journal_kill(inj.stats().writes_seen, KillMode::Torn);
        let err = j.append(&[3u8; 16]).unwrap_err();
        assert!(matches!(err, UeiError::Io { .. }), "{err}");
        // Poisoned: no further writes allowed.
        let err = j.append(&[4u8; 16]).unwrap_err();
        assert!(matches!(err, UeiError::InvalidState { .. }), "{err}");
        drop(j);
        t.set_fault_injector(None);
        let (contents, _) = SessionJournal::recover(dir.path(), small_config(), t).unwrap();
        assert_eq!(contents.records, vec![vec![1u8; 16], vec![2u8; 16]]);
        assert!(contents.torn_tail_bytes > 0, "the torn half-frame was on disk");
        assert_eq!(inj.stats().kills_fired, 1);
    }

    #[test]
    fn injected_rename_failure_leaves_snapshot_unpublished() {
        let dir = TempDir::new("journal-inj-rename");
        let t = tracker();
        let inj = FaultInjector::new(FaultConfig::off()).unwrap();
        t.set_fault_injector(Some(Arc::clone(&inj)));
        let mut j = SessionJournal::create(dir.path(), small_config(), t.clone()).unwrap();
        j.append(b"a").unwrap();
        // Next write op is the snapshot publish; tear its rename.
        inj.arm_journal_kill(inj.stats().writes_seen, KillMode::Torn);
        let err = j.snapshot(b"s1").unwrap_err();
        assert!(matches!(err, UeiError::Io { .. }), "{err}");
        drop(j);
        t.set_fault_injector(None);
        let (contents, _) = SessionJournal::recover(dir.path(), small_config(), t).unwrap();
        assert!(contents.snapshot.is_none(), "torn snapshot publish never became visible");
        assert_eq!(contents.records, vec![b"a".to_vec()]);
    }

    #[test]
    fn injected_fsync_failure_is_a_contextual_error() {
        let dir = TempDir::new("journal-inj-fsync");
        let t = tracker();
        let inj =
            FaultInjector::new(FaultConfig { seed: 1, fsync_fail_prob: 1.0, ..FaultConfig::off() })
                .unwrap();
        let cfg = JournalConfig { fsync: FsyncPolicy::Always, ..small_config() };
        // Creation itself publishes segment 1, whose sync is also faulted.
        t.set_fault_injector(Some(inj));
        let err = SessionJournal::create(dir.path(), cfg, t).unwrap_err();
        match err {
            UeiError::Io { path, source } => {
                assert!(path.to_string_lossy().contains("seg-000001.wal"), "{path:?}");
                assert!(source.to_string().contains("fsync"), "{source}");
            }
            other => panic!("expected Io, got {other}"),
        }
    }

    #[test]
    fn appends_charge_modeled_io() {
        let dir = TempDir::new("journal-modeled");
        let t = tracker();
        let before = t.snapshot();
        let mut j = SessionJournal::create(dir.path(), small_config(), t.clone()).unwrap();
        j.append(&[0u8; 100]).unwrap();
        let delta = t.delta(&before);
        let written = delta.stats.bytes_written;
        assert!(written >= 108, "frame bytes charged, got {written}");
    }
}
