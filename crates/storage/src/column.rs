//! Vertical decomposition of row data into sorted inverted columns.
//!
//! Implements Algorithm 2 lines 2–4 of the paper: for each dimension,
//! collect `(value, row-id)` pairs, sort ascending, and group equal values
//! into posting lists (`<key, {values}>` with object ids as the values,
//! Figure 2).

use uei_types::{DataPoint, Result, UeiError};

use crate::postings::PostingList;

/// One fully decomposed, sorted, grouped dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct InvertedColumn {
    /// Dimension index this column came from.
    pub dim: usize,
    /// Posting lists with strictly ascending keys.
    pub postings: Vec<PostingList>,
}

impl InvertedColumn {
    /// Total number of row ids across all lists (equals the row count of
    /// the source data).
    pub fn num_ids(&self) -> usize {
        self.postings.iter().map(|p| p.len()).sum()
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.postings.len()
    }
}

/// Vertically decomposes `rows` into one [`InvertedColumn`] per dimension.
///
/// Every row must have exactly `dims` values and NaN values are rejected
/// (they cannot be ordered, so they cannot live in a sorted inverted
/// column). Row ids must be unique; duplicates are rejected because posting
/// lists require strictly ascending ids.
pub fn vertical_decompose(rows: &[DataPoint], dims: usize) -> Result<Vec<InvertedColumn>> {
    // Gather per-dimension (value, id) pairs.
    let mut pairs: Vec<Vec<(f64, u64)>> =
        (0..dims).map(|_| Vec::with_capacity(rows.len())).collect();
    for row in rows {
        if row.values.len() != dims {
            return Err(UeiError::DimensionMismatch { expected: dims, actual: row.values.len() });
        }
        for (d, &v) in row.values.iter().enumerate() {
            if v.is_nan() {
                return Err(UeiError::corrupt(format!("row {} has NaN in dimension {d}", row.id)));
            }
            pairs[d].push((v, row.id.as_u64()));
        }
    }

    let mut columns = Vec::with_capacity(dims);
    for (dim, mut col) in pairs.into_iter().enumerate() {
        // Sort by (value, id): ids within each posting list come out
        // ascending for free, which the delta encoder requires.
        col.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0).expect("NaN rejected above").then(a.1.cmp(&b.1))
        });
        let mut postings: Vec<PostingList> = Vec::new();
        for (value, id) in col {
            match postings.last_mut() {
                Some(last) if last.key == value => {
                    if last.ids.last() == Some(&id) {
                        return Err(UeiError::corrupt(format!(
                            "duplicate row id {id} in dimension {dim}"
                        )));
                    }
                    last.ids.push(id);
                }
                _ => postings.push(PostingList { key: value, ids: vec![id] }),
            }
        }
        columns.push(InvertedColumn { dim, postings });
    }
    Ok(columns)
}

/// Merges rows from multiple sources into one dataset with fresh dense ids.
///
/// "For each exploration task, UEI stores all needed data in one location,
/// thus when exploring data that are distributed in multiple locations
/// (e.g., tables, files), the data needs to be merged before being
/// utilized in the exploration" (paper §3.1). Rows are concatenated in
/// source order and re-identified `0..n`; every row must share one
/// dimensionality.
pub fn merge_sources(sources: &[Vec<DataPoint>]) -> Result<Vec<DataPoint>> {
    let dims = sources.iter().flat_map(|s| s.first()).map(|p| p.dims()).next().unwrap_or(0);
    let mut merged = Vec::with_capacity(sources.iter().map(|s| s.len()).sum());
    for source in sources {
        for row in source {
            if row.values.len() != dims {
                return Err(UeiError::DimensionMismatch {
                    expected: dims,
                    actual: row.values.len(),
                });
            }
            merged.push(DataPoint::new(merged.len() as u64, row.values.clone()));
        }
    }
    Ok(merged)
}

/// Splits a column's posting lists into chunk-sized runs.
///
/// Each run's *encoded payload* is at least `target_bytes` (except possibly
/// the final run), matching the paper's equal-sized chunk files ("the size
/// of each chunk can be adjusted based on the size of the data and the
/// available hardware resources"). A posting list is never split across
/// chunks, preserving the invariant that chunk key ranges are disjoint.
pub fn split_into_chunks(
    column: InvertedColumn,
    target_bytes: usize,
) -> Result<Vec<Vec<PostingList>>> {
    let mut runs: Vec<Vec<PostingList>> = Vec::new();
    let mut current: Vec<PostingList> = Vec::new();
    let mut current_bytes = 0usize;
    for posting in column.postings {
        let len = posting.encoded_len()?;
        current_bytes += len;
        current.push(posting);
        if current_bytes >= target_bytes {
            runs.push(std::mem::take(&mut current));
            current_bytes = 0;
        }
    }
    if !current.is_empty() {
        runs.push(current);
    }
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uei_types::DataPoint;

    fn rows() -> Vec<DataPoint> {
        vec![
            DataPoint::new(0u64, vec![3.0, 10.0]),
            DataPoint::new(1u64, vec![1.0, 10.0]),
            DataPoint::new(2u64, vec![3.0, 30.0]),
            DataPoint::new(3u64, vec![2.0, 20.0]),
        ]
    }

    #[test]
    fn decompose_sorts_and_groups() {
        let cols = vertical_decompose(&rows(), 2).unwrap();
        assert_eq!(cols.len(), 2);

        let keys: Vec<f64> = cols[0].postings.iter().map(|p| p.key).collect();
        assert_eq!(keys, vec![1.0, 2.0, 3.0]);
        // Value 3.0 appears in rows 0 and 2; ids must be ascending.
        assert_eq!(cols[0].postings[2].ids, vec![0, 2]);

        let keys: Vec<f64> = cols[1].postings.iter().map(|p| p.key).collect();
        assert_eq!(keys, vec![10.0, 20.0, 30.0]);
        assert_eq!(cols[1].postings[0].ids, vec![0, 1]);
    }

    #[test]
    fn decompose_preserves_row_count() {
        let cols = vertical_decompose(&rows(), 2).unwrap();
        for c in &cols {
            assert_eq!(c.num_ids(), 4);
        }
        assert_eq!(cols[0].num_keys(), 3);
    }

    #[test]
    fn decompose_rejects_bad_rows() {
        let bad_dims = vec![DataPoint::new(0u64, vec![1.0])];
        assert!(vertical_decompose(&bad_dims, 2).is_err());

        let nan = vec![DataPoint::new(0u64, vec![1.0, f64::NAN])];
        assert!(vertical_decompose(&nan, 2).is_err());

        let dup_ids =
            vec![DataPoint::new(7u64, vec![1.0, 1.0]), DataPoint::new(7u64, vec![1.0, 2.0])];
        assert!(vertical_decompose(&dup_ids, 2).is_err());
    }

    #[test]
    fn decompose_empty_dataset() {
        let cols = vertical_decompose(&[], 3).unwrap();
        assert_eq!(cols.len(), 3);
        assert!(cols.iter().all(|c| c.postings.is_empty()));
    }

    #[test]
    fn split_respects_target_and_order() {
        let postings: Vec<PostingList> =
            (0..100).map(|i| PostingList::new(i as f64, vec![i]).unwrap()).collect();
        let column = InvertedColumn { dim: 0, postings: postings.clone() };
        let per_list = postings[50].encoded_len().unwrap();
        let runs = split_into_chunks(column, per_list * 10).unwrap();
        assert!(runs.len() > 1);
        // All postings survive, in order.
        let flat: Vec<f64> = runs.iter().flatten().map(|p| p.key).collect();
        assert_eq!(flat, (0..100).map(|i| i as f64).collect::<Vec<_>>());
        // Every run except the last hits the target.
        for run in &runs[..runs.len() - 1] {
            let bytes: usize = run.iter().map(|p| p.encoded_len().unwrap()).sum();
            assert!(bytes >= per_list * 10);
        }
    }

    #[test]
    fn split_single_giant_target_yields_one_chunk() {
        let postings = vec![PostingList::new(1.0, vec![0]).unwrap()];
        let column = InvertedColumn { dim: 0, postings };
        let runs = split_into_chunks(column, usize::MAX).unwrap();
        assert_eq!(runs.len(), 1);
    }

    #[test]
    fn split_tiny_target_yields_one_chunk_per_list() {
        let postings: Vec<PostingList> =
            (0..10).map(|i| PostingList::new(i as f64, vec![i]).unwrap()).collect();
        let column = InvertedColumn { dim: 0, postings };
        let runs = split_into_chunks(column, 1).unwrap();
        assert_eq!(runs.len(), 10);
        assert!(runs.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn split_empty_column() {
        let column = InvertedColumn { dim: 0, postings: vec![] };
        assert!(split_into_chunks(column, 100).unwrap().is_empty());
    }

    #[test]
    fn merge_sources_reassigns_dense_ids() {
        let a = vec![DataPoint::new(10u64, vec![1.0, 2.0]), DataPoint::new(99u64, vec![3.0, 4.0])];
        let b = vec![DataPoint::new(10u64, vec![5.0, 6.0])]; // id collides with a's
        let merged = merge_sources(&[a, b]).unwrap();
        assert_eq!(merged.len(), 3);
        for (i, row) in merged.iter().enumerate() {
            assert_eq!(row.id.as_u64(), i as u64, "dense re-identification");
        }
        assert_eq!(merged[0].values, vec![1.0, 2.0]);
        assert_eq!(merged[2].values, vec![5.0, 6.0]);
    }

    #[test]
    fn merge_sources_rejects_mixed_dims_and_handles_empty() {
        assert_eq!(merge_sources(&[]).unwrap(), Vec::new());
        assert_eq!(merge_sources(&[vec![], vec![]]).unwrap(), Vec::new());
        let a = vec![DataPoint::new(0u64, vec![1.0])];
        let b = vec![DataPoint::new(0u64, vec![1.0, 2.0])];
        assert!(merge_sources(&[a, b]).is_err());
    }
}
