//! Property-based tests for the index: grid partition invariants, mapping
//! completeness, and region loads vs brute force.

use std::sync::Arc;

use proptest::prelude::*;
use uei_index::grid::Grid;
use uei_index::loader::RegionLoader;
use uei_index::mapping::ChunkMapping;
use uei_storage::io::{DiskTracker, IoProfile};
use uei_storage::store::{ColumnStore, StoreConfig};
use uei_types::{AttributeDef, DataPoint, Schema};

fn schema2(x_max: f64, y_max: f64) -> Schema {
    Schema::new(vec![
        AttributeDef::new("x", 0.0, x_max).unwrap(),
        AttributeDef::new("y", -y_max, y_max).unwrap(),
    ])
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn grid_is_a_partition(
        cells in 1usize..8,
        x_max in 1.0f64..1000.0,
        y_max in 1.0f64..1000.0,
        points in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..100),
    ) {
        let schema = schema2(x_max, y_max);
        let grid = Grid::new(&schema, cells).unwrap();
        prop_assert_eq!(grid.num_cells(), cells * cells);
        for &(tx, ty) in &points {
            let p = vec![tx * x_max, (2.0 * ty - 1.0) * y_max];
            let cell = grid.cell_of(&p).unwrap();
            // Exactly one region contains the point.
            let mut containing = 0;
            for id in grid.cell_ids() {
                if grid.cell_region(id).unwrap().contains(&p).unwrap() {
                    containing += 1;
                    prop_assert_eq!(id, cell);
                }
            }
            prop_assert_eq!(containing, 1, "point {:?}", p);
        }
    }

    #[test]
    fn grid_id_coordinate_bijection(cells in 1usize..10) {
        let grid = Grid::new(&schema2(10.0, 10.0), cells).unwrap();
        let mut seen = std::collections::HashSet::new();
        for id in grid.cell_ids() {
            let coords = grid.id_to_coords(id).unwrap();
            prop_assert!(coords.iter().all(|&c| c < cells));
            prop_assert_eq!(grid.coords_to_id(&coords).unwrap(), id);
            prop_assert!(seen.insert(coords));
        }
        prop_assert_eq!(seen.len(), grid.num_cells());
    }

    #[test]
    fn loader_population_partitions_dataset(
        values in proptest::collection::vec((0.0f64..50.0, -25.0f64..25.0), 1..120),
        cells in 1usize..5,
        chunk_bytes in 128usize..2048,
    ) {
        let dir = uei_storage::TempDir::new("prop-load");
        let schema = schema2(50.0, 25.0);
        let rows: Vec<DataPoint> = values
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| DataPoint::new(i as u64, vec![x, y]))
            .collect();
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = Arc::new(ColumnStore::create(
            dir.path(), schema, &rows,
            StoreConfig { chunk_target_bytes: chunk_bytes }, tracker).unwrap());
        let grid = Grid::new(store.schema(), cells).unwrap();
        let mapping = ChunkMapping::build(&grid, store.manifest()).unwrap();
        let mut loader =
            RegionLoader::new(Arc::clone(&store) as Arc<dyn uei_storage::ChunkSource>, 1 << 20);

        let mut total = 0usize;
        let mut seen = std::collections::HashSet::new();
        for cell in grid.cell_ids() {
            let (loaded, _) = loader.load_cell(&grid, &mapping, cell).unwrap();
            // Every loaded row genuinely belongs to the cell.
            let region = grid.cell_region(cell).unwrap();
            for p in &loaded {
                prop_assert!(region.contains(&p.values).unwrap());
                prop_assert!(seen.insert(p.id), "row {} in two cells", p.id);
                prop_assert_eq!(p, &rows[p.id.as_usize()]);
            }
            total += loaded.len();
        }
        prop_assert_eq!(total, rows.len(), "every row in exactly one cell");
    }

    #[test]
    fn mapping_chunk_sets_match_manifest_lookup(
        values in proptest::collection::vec((0.0f64..10.0, -5.0f64..5.0), 5..100),
        cells in 1usize..6,
    ) {
        let dir = uei_storage::TempDir::new("prop-map");
        let schema = schema2(10.0, 5.0);
        let rows: Vec<DataPoint> = values
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| DataPoint::new(i as u64, vec![x, y]))
            .collect();
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.path(), schema, &rows, StoreConfig { chunk_target_bytes: 256 }, tracker).unwrap();
        let grid = Grid::new(store.schema(), cells).unwrap();
        let mapping = ChunkMapping::build(&grid, store.manifest()).unwrap();
        for cell in grid.cell_ids() {
            let region = grid.cell_region(cell).unwrap();
            let chunks = mapping.chunks_for_cell(&grid, cell).unwrap();
            for (d, got) in chunks.iter().enumerate() {
                let want: Vec<_> = store
                    .manifest()
                    .chunks_overlapping(d, region.lo[d], region.hi[d])
                    .unwrap()
                    .iter()
                    .map(|m| m.id())
                    .collect();
                prop_assert_eq!(got, &want);
            }
        }
    }
}
