//! The Uncertainty Estimation Index facade.
//!
//! Ties the components together behind the per-iteration API the
//! exploration loop needs (Algorithm 2):
//!
//! - [`UeiIndex::build`] — lines 7–11: grid, symbolic index points, and the
//!   mapping `m` over an already-initialized column store;
//! - [`UeiIndex::sample_unlabeled`] — line 12: the uniform sample that
//!   seeds the unlabeled cache `U`;
//! - [`UeiIndex::update_uncertainty`] — line 17;
//! - [`UeiIndex::select_and_load`] — lines 18–19: pick `p*`, fetch `g*`
//!   (from the prefetcher when it got there first, otherwise
//!   synchronously), and queue the θ next-most-uncertain cells for
//!   background prefetch.

use std::sync::Arc;
use std::time::Duration;

use uei_learn::strategy::UncertaintyMeasure;
use uei_learn::Classifier;
use uei_storage::cache::SharedChunkCache;
use uei_storage::io::IoStats;
use uei_storage::merge::MergeStats;
use uei_storage::source::ChunkSource;
use uei_storage::store::ColumnStore;
use uei_types::{DataPoint, Result, Rng};

use crate::config::UeiConfig;
use crate::grid::{CellId, Grid};
use crate::loader::{LoadStats, RegionLoader};
use crate::mapping::ChunkMapping;
use crate::points::{IndexPoints, RescoreStats};
use crate::prefetch::{horizon, Prefetcher};

/// How the region of one iteration was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadSource {
    /// Read synchronously from disk during the iteration.
    Synchronous,
    /// Served from a completed background prefetch (no foreground I/O).
    Prefetched,
    /// A deferred swap: the previously served region is still current, so
    /// nothing was read — the caller keeps using the rows it already holds
    /// (`rows` is empty in the [`RegionLoad`]).
    Retained,
}

/// The result of one `select_and_load` iteration step.
#[derive(Debug)]
pub struct RegionLoad {
    /// The chosen most-uncertain cell `p*`.
    pub cell: CellId,
    /// Every tuple of the subspace `g*`.
    pub rows: Vec<DataPoint>,
    /// Load measurements (virtual time is zero for prefetched regions).
    pub stats: LoadStats,
    /// Where the region came from.
    pub source: LoadSource,
    /// How many better-ranked candidates failed with a storage fault
    /// before this cell loaded (0 = the true `p*` was served).
    pub fallback_rank: u64,
}

/// Cumulative graceful-degradation counters of an index.
///
/// Every counter only grows; take a snapshot before an iteration and
/// [`DegradeCounters::since`] after it to get per-iteration deltas.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DegradeCounters {
    /// Transient storage errors absorbed by the foreground retry policy.
    pub retries: u64,
    /// Candidate ranks skipped past storage-faulted cells (each successful
    /// fallback adds its rank, so one iteration can add more than 1).
    pub fallback_cells: u64,
    /// Iterations whose synchronous load exceeded the σ threshold.
    pub sigma_deadline_misses: u64,
    /// Iterations where every ranked candidate failed with a storage fault
    /// (the caller must degrade further, e.g. sample from the resident
    /// cache `U`).
    pub failed_selections: u64,
}

impl DegradeCounters {
    /// The counter deltas accumulated since an `earlier` snapshot.
    pub fn since(&self, earlier: &DegradeCounters) -> DegradeCounters {
        DegradeCounters {
            retries: self.retries.saturating_sub(earlier.retries),
            fallback_cells: self.fallback_cells.saturating_sub(earlier.fallback_cells),
            sigma_deadline_misses: self
                .sigma_deadline_misses
                .saturating_sub(earlier.sigma_deadline_misses),
            failed_selections: self.failed_selections.saturating_sub(earlier.failed_selections),
        }
    }
}

/// The Uncertainty Estimation Index.
pub struct UeiIndex {
    store: Arc<ColumnStore>,
    grid: Arc<Grid>,
    mapping: Arc<ChunkMapping>,
    points: IndexPoints,
    loader: RegionLoader,
    prefetcher: Option<Prefetcher>,
    /// The cache shared between loader and prefetcher, when enabled —
    /// kept here so stats stay readable regardless of loader internals.
    shared_cache: Option<Arc<SharedChunkCache>>,
    config: UeiConfig,
    measure: UncertaintyMeasure,
    /// The most recently served cell (for σ-driven swap deferral).
    last_cell: Option<CellId>,
    /// Swaps deferred so far (diagnostics).
    deferred_swaps: u64,
    /// Candidate ranks skipped past failed cells (degradation ladder).
    fallback_cells: u64,
    /// Iterations whose synchronous load blew the σ threshold.
    sigma_deadline_misses: u64,
    /// Iterations where every ranked candidate failed.
    failed_selections: u64,
    /// Cumulative rescoring work (model-scored vs cache-served points).
    rescore_stats: RescoreStats,
}

impl UeiIndex {
    /// Builds the index over an initialized column store (the in-memory
    /// half of the initialization phase; the on-disk half is
    /// [`ColumnStore::create`]).
    pub fn build(store: Arc<ColumnStore>, config: UeiConfig) -> Result<UeiIndex> {
        Self::build_with_measure(store, config, UncertaintyMeasure::LeastConfidence)
    }

    /// [`UeiIndex::build`] with an explicit uncertainty measure.
    pub fn build_with_measure(
        store: Arc<ColumnStore>,
        config: UeiConfig,
        measure: UncertaintyMeasure,
    ) -> Result<UeiIndex> {
        config.validate(store.schema().dims())?;
        let grid = Arc::new(Grid::new(store.schema(), config.cells_per_dim)?);
        let mapping = Arc::new(ChunkMapping::build(&grid, store.manifest())?);
        let points = IndexPoints::from_grid(&grid)?;
        let source: Arc<dyn ChunkSource> = Arc::clone(&store) as Arc<dyn ChunkSource>;
        let shared_cache = config.shared_cache.then(|| {
            Arc::new(SharedChunkCache::new(config.chunk_cache_bytes, config.cache_shards))
        });
        let mut loader = match &shared_cache {
            Some(cache) => RegionLoader::with_shared(
                Arc::clone(&source),
                Arc::clone(cache),
                config.delta_reconstruction,
            ),
            None => {
                let mut l = RegionLoader::new(Arc::clone(&source), config.chunk_cache_bytes);
                l.set_delta(config.delta_reconstruction);
                l
            }
        };
        loader.set_retry_policy(config.retry);
        let prefetcher = if config.prefetch {
            Some(Prefetcher::spawn_with_cache(
                store.dir(),
                store.tracker().profile(),
                Grid::clone(&grid),
                ChunkMapping::clone(&mapping),
                shared_cache.as_ref().map(Arc::clone),
            )?)
        } else {
            None
        };
        Ok(UeiIndex {
            store,
            grid,
            mapping,
            points,
            loader,
            prefetcher,
            shared_cache,
            config,
            measure,
            last_cell: None,
            deferred_swaps: 0,
            fallback_cells: 0,
            sigma_deadline_misses: 0,
            failed_selections: 0,
            rescore_stats: RescoreStats::default(),
        })
    }

    /// Assembles an index from pre-built parts. Used by
    /// [`crate::engine::EngineCore::open_session`], which shares the grid,
    /// mapping, and chunk cache across sessions; the legacy
    /// [`UeiIndex::build`] path constructs everything itself.
    ///
    /// `shared_cache` here is the *stats-reporting* handle: engine sessions
    /// pass `None` so [`UeiIndex::cache_stats`] reads the session's own
    /// deterministic ghost ledger instead of the cross-session shared
    /// counters (which remain reachable via [`UeiIndex::shared_cache`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        store: Arc<ColumnStore>,
        grid: Arc<Grid>,
        mapping: Arc<ChunkMapping>,
        points: IndexPoints,
        loader: RegionLoader,
        prefetcher: Option<Prefetcher>,
        shared_cache: Option<Arc<SharedChunkCache>>,
        config: UeiConfig,
        measure: UncertaintyMeasure,
    ) -> UeiIndex {
        UeiIndex {
            store,
            grid,
            mapping,
            points,
            loader,
            prefetcher,
            shared_cache,
            config,
            measure,
            last_cell: None,
            deferred_swaps: 0,
            fallback_cells: 0,
            sigma_deadline_misses: 0,
            failed_selections: 0,
            rescore_stats: RescoreStats::default(),
        }
    }

    /// The grid of subspaces.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The symbolic index points with their current scores.
    pub fn points(&self) -> &IndexPoints {
        &self.points
    }

    /// The chunk mapping `m`.
    pub fn mapping(&self) -> &ChunkMapping {
        &self.mapping
    }

    /// The underlying column store.
    pub fn store(&self) -> &Arc<ColumnStore> {
        &self.store
    }

    /// The active configuration.
    pub fn config(&self) -> &UeiConfig {
        &self.config
    }

    /// Uniformly samples `gamma` rows for the unlabeled cache `U`
    /// (Algorithm 2 line 12).
    pub fn sample_unlabeled(&self, gamma: usize, rng: &mut Rng) -> Result<Vec<DataPoint>> {
        self.store.sample_rows(gamma, rng)
    }

    /// Re-scores every index point with the freshly trained model
    /// (Algorithm 2 line 17). Also invalidates prefetched regions older
    /// than the model — the ranking that justified them is gone; keeping
    /// them would serve regions chosen by a stale boundary.
    pub fn update_uncertainty(&mut self, model: &dyn Classifier) {
        let stats = if !self.config.parallel {
            self.points.update_sequential(model, self.measure);
            RescoreStats { points_rescored: self.points.len() as u64, points_cached: 0 }
        } else if self.config.incremental_rescore {
            // Full pass, but through the tracked path so the influence
            // radii are captured and the *next* incremental call can prune.
            self.points.update_tracked(model, self.measure)
        } else {
            self.points.update(model, self.measure);
            RescoreStats { points_rescored: self.points.len() as u64, points_cached: 0 }
        };
        self.rescore_stats.accumulate(stats);
        // Note: ready-but-untaken prefetches remain valid as *data* (cell
        // contents do not change), so they are kept; only their priority
        // was stale, and `select_and_load` re-ranks every iteration anyway.
    }

    /// [`UeiIndex::update_uncertainty`] with locality-pruned invalidation:
    /// `added` are the raw-space training examples labeled since the last
    /// rescoring pass, and only the index points inside their influence
    /// balls (per the model's [`uei_learn::ModelDelta`]) are rescored — the
    /// rest are served from the score cache. Selection is bit-identical to
    /// a full rescore; see [`IndexPoints::update_incremental`].
    ///
    /// Falls back to the full paths of [`UeiIndex::update_uncertainty`]
    /// when incremental rescoring (or the batch path) is disabled.
    pub fn update_uncertainty_incremental(&mut self, model: &dyn Classifier, added: &[&[f64]]) {
        if !self.config.parallel || !self.config.incremental_rescore {
            self.update_uncertainty(model);
            return;
        }
        let stats = self.points.update_incremental(
            model,
            self.measure,
            added,
            self.config.rescore_margin,
            self.config.full_rescore_every,
        );
        self.rescore_stats.accumulate(stats);
    }

    /// Cumulative rescoring work counters: how many index points were
    /// scored through the model versus served from the score cache, summed
    /// over all rescoring passes. Snapshot before an iteration and
    /// [`RescoreStats::since`] after it for per-iteration deltas.
    pub fn rescore_counters(&self) -> RescoreStats {
        self.rescore_stats
    }

    /// Picks the most uncertain cell and loads its subspace (Algorithm 2
    /// lines 18–19), preferring a completed prefetch. Afterwards queues
    /// the θ = ⌈τ/σ⌉ next-most-uncertain cells for background loading.
    ///
    /// With [`UeiConfig::defer_swaps`] on, a swap to a *new* cell is
    /// deferred for this iteration when loading it would be expected to
    /// exceed σ and no prefetched copy is ready — the current region is
    /// served again instead (§3.2 "Tuning Interactive Exploration").
    ///
    /// Storage faults degrade gracefully instead of aborting the iteration:
    /// when loading the top-ranked cell fails with a retryable-or-corrupt
    /// storage error (transient errors are already retried inside the
    /// loader per [`UeiConfig::retry`]), the next-ranked index point is
    /// tried, up to [`UeiConfig::fallback_candidates`] in total. Only when
    /// every candidate fails does the call return the last storage error —
    /// the caller's final rung is to uncertainty-sample from the resident
    /// cache `U` instead of a fresh region.
    pub fn select_and_load(&mut self) -> Result<RegionLoad> {
        let cell = self.points.most_uncertain()?;
        if self.config.defer_swaps {
            if let Some(last) = self.last_cell {
                let would_swap = cell != last;
                if would_swap && !self.prefetched_ready(cell) {
                    let tau = self.loader.recent_load_secs();
                    if tau > self.config.latency_threshold_secs {
                        // Defer: the last-served region stays current; the
                        // caller already holds its rows, so no I/O at all.
                        self.deferred_swaps += 1;
                        self.queue_prefetches(last)?;
                        return Ok(RegionLoad {
                            cell: last,
                            rows: Vec::new(),
                            stats: LoadStats {
                                merge: MergeStats::default(),
                                virtual_time: Duration::ZERO,
                                wall_time: Duration::ZERO,
                                rows: 0,
                                retries: 0,
                            },
                            source: LoadSource::Retained,
                            fallback_rank: 0,
                        });
                    }
                }
            }
        }
        let want = self.config.fallback_candidates.min(self.points.len());
        let candidates = self.points.ranked_top(want)?;
        let mut last_err: Option<uei_types::UeiError> = None;
        for (rank, &candidate) in candidates.iter().enumerate() {
            let mut load = match self.fetch_cell(candidate) {
                Ok(load) => load,
                // Storage faults fall through to the next-ranked index
                // point; anything else (config/state bugs) aborts as usual.
                Err(e) if e.is_storage_fault() => {
                    last_err = Some(e);
                    continue;
                }
                Err(e) => return Err(e),
            };
            load.fallback_rank = rank as u64;
            self.fallback_cells += rank as u64;
            if load.stats.virtual_time.as_secs_f64() > self.config.latency_threshold_secs {
                self.sigma_deadline_misses += 1;
            }
            self.last_cell = Some(candidate);
            self.queue_prefetches(candidate)?;
            return Ok(load);
        }
        self.failed_selections += 1;
        Err(last_err.unwrap_or_else(|| {
            uei_types::UeiError::invalid_state("no candidate cells to select from")
        }))
    }

    fn prefetched_ready(&self, cell: CellId) -> bool {
        // `take` is destructive; peek via is_pending + failure bookkeeping
        // is not enough, so ask cheaply: a ready result is one that is
        // neither pending nor failed after having been requested. The
        // prefetcher exposes take() only, so probe pending state — a cell
        // that is still pending is certainly not ready.
        match &self.prefetcher {
            None => false,
            Some(p) => !p.is_pending(cell) && p.has_ready(cell),
        }
    }

    /// How many region swaps were deferred to hold the latency threshold.
    pub fn deferred_swaps(&self) -> u64 {
        self.deferred_swaps
    }

    /// Cumulative graceful-degradation counters (retries, fallbacks,
    /// σ-deadline misses, exhausted selections).
    pub fn degrade_counters(&self) -> DegradeCounters {
        DegradeCounters {
            retries: self.loader.total_retries(),
            fallback_cells: self.fallback_cells,
            sigma_deadline_misses: self.sigma_deadline_misses,
            failed_selections: self.failed_selections,
        }
    }

    fn fetch_cell(&mut self, cell: CellId) -> Result<RegionLoad> {
        if let Some(pre) = &self.prefetcher {
            if let Some((rows, merge)) = pre.take(cell) {
                let stats = LoadStats {
                    merge,
                    virtual_time: Duration::ZERO,
                    wall_time: Duration::ZERO,
                    rows: rows.len(),
                    retries: 0,
                };
                return Ok(RegionLoad {
                    cell,
                    rows,
                    stats,
                    source: LoadSource::Prefetched,
                    fallback_rank: 0,
                });
            }
        }
        let (rows, stats) = self.loader.load_cell(&self.grid, &self.mapping, cell)?;
        Ok(RegionLoad { cell, rows, stats, source: LoadSource::Synchronous, fallback_rank: 0 })
    }

    fn queue_prefetches(&mut self, just_loaded: CellId) -> Result<()> {
        let Some(pre) = &self.prefetcher else {
            return Ok(());
        };
        let tau = self.loader.recent_load_secs();
        let theta = horizon(tau, self.config.latency_threshold_secs);
        // The likely next regions are the runners-up of the current
        // ranking (the boundary moves slowly between iterations).
        let top = self.points.ranked_top((theta + 1).min(self.points.len()))?;
        for cell in top {
            if cell != just_loaded {
                pre.request(cell);
            }
        }
        Ok(())
    }

    /// All-time average region load time in virtual seconds (diagnostic).
    pub fn average_load_secs(&self) -> f64 {
        self.loader.average_load_secs()
    }

    /// Exponentially weighted recent region load time τ in virtual
    /// seconds — what the prefetch horizon and swap deferral consult.
    pub fn recent_load_secs(&self) -> f64 {
        self.loader.recent_load_secs()
    }

    /// Chunk-cache statistics: of the shared cache when sharing is on
    /// (hits include the prefetcher's), of the private loader cache
    /// otherwise. Engine-opened sessions report their own deterministic
    /// ghost-ledger stats; the engine-wide aggregate lives on
    /// [`crate::engine::EngineCore::cache_stats`].
    pub fn cache_stats(&self) -> uei_storage::cache::CacheStats {
        match &self.shared_cache {
            Some(c) => c.stats(),
            None => self.loader.cache_stats(),
        }
    }

    /// The cache shared between loader and prefetcher, when enabled. For
    /// engine-opened sessions this is the engine-wide shared cache reached
    /// through the session's ghost view.
    pub fn shared_cache(&self) -> Option<&Arc<SharedChunkCache>> {
        self.shared_cache.as_ref().or_else(|| self.loader.shared_cache())
    }

    /// Background I/O accumulated by the prefetcher, if enabled.
    pub fn background_io(&self) -> Option<IoStats> {
        self.prefetcher.as_ref().map(|p| p.background_io())
    }

    /// Directly loads one cell (diagnostics / ablations).
    pub fn load_cell(&mut self, cell: CellId) -> Result<(Vec<DataPoint>, LoadStats)> {
        self.loader.load_cell(&self.grid, &self.mapping, cell)
    }

    /// Merge statistics of the last N loads are not retained; this exposes
    /// the per-cell chunk count for complexity reporting instead.
    pub fn chunks_for_cell(&self, cell: CellId) -> Result<usize> {
        self.mapping.chunk_count_for_cell(&self.grid, cell)
    }
}

/// Re-exported merge counters for downstream reporting.
pub type RegionMergeStats = MergeStats;

#[cfg(test)]
mod tests {
    use super::*;
    use uei_storage::fault::{FaultConfig, FaultInjector, RetryPolicy};
    use uei_storage::io::{DiskTracker, IoProfile};
    use uei_storage::store::StoreConfig;
    use uei_storage::TempDir;
    use uei_types::{AttributeDef, Schema};

    fn build_store(tag: &str, n: usize) -> (Arc<ColumnStore>, Vec<DataPoint>, TempDir) {
        let dir = TempDir::new(&format!("facade-{tag}"));
        let schema = Schema::new(vec![
            AttributeDef::new("x", 0.0, 100.0).unwrap(),
            AttributeDef::new("y", 0.0, 100.0).unwrap(),
        ])
        .unwrap();
        let mut rng = Rng::new(6);
        let rows: Vec<DataPoint> = (0..n)
            .map(|i| {
                DataPoint::new(i as u64, vec![rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)])
            })
            .collect();
        let tracker = DiskTracker::new(IoProfile::nvme());
        let store = ColumnStore::create(
            dir.path(),
            schema,
            &rows,
            StoreConfig { chunk_target_bytes: 512 },
            tracker,
        )
        .unwrap();
        (Arc::new(store), rows, dir)
    }

    fn boundary_model(x_split: f64) -> impl Classifier {
        struct M(f64);
        impl Classifier for M {
            fn predict_proba(&self, x: &[f64]) -> f64 {
                1.0 / (1.0 + (-(x[0] - self.0) * 0.5).exp())
            }
            fn dims(&self) -> usize {
                2
            }
        }
        M(x_split)
    }

    fn small_config() -> UeiConfig {
        UeiConfig { cells_per_dim: 4, ..UeiConfig::default() }
    }

    #[test]
    fn build_and_basic_accessors() {
        let (store, _, _dir) = build_store("accessors", 1000);
        let index = UeiIndex::build(Arc::clone(&store), small_config()).unwrap();
        assert_eq!(index.grid().num_cells(), 16);
        assert_eq!(index.points().len(), 16);
        assert!(index.chunks_for_cell(0).unwrap() > 0);
        assert!(index.background_io().is_none(), "prefetch disabled by default");
    }

    #[test]
    fn select_and_load_returns_boundary_cell() {
        let (store, rows, _dir) = build_store("boundary", 2000);
        let mut index = UeiIndex::build(Arc::clone(&store), small_config()).unwrap();
        // Boundary at x = 50: most uncertain cells are the two middle
        // columns; with 4 columns, centers at 12.5/37.5/62.5/87.5 the
        // nearest to 50 are columns 1 and 2.
        index.update_uncertainty(&boundary_model(50.0));
        let load = index.select_and_load().unwrap();
        let coords = index.grid().id_to_coords(load.cell).unwrap();
        assert!(coords[0] == 1 || coords[0] == 2, "x-column {} not near boundary", coords[0]);
        assert_eq!(load.source, LoadSource::Synchronous);
        // Loaded rows are exactly the population of the cell.
        let region = index.grid().cell_region(load.cell).unwrap();
        let expected: usize = rows.iter().filter(|p| region.contains(&p.values).unwrap()).count();
        assert_eq!(load.rows.len(), expected);
        assert!(load.stats.virtual_time > Duration::ZERO);
    }

    #[test]
    fn loading_a_region_costs_a_fraction_of_full_scan() {
        let (store, _, _dir) = build_store("fraction", 4000);
        let mut index = UeiIndex::build(Arc::clone(&store), small_config()).unwrap();
        index.update_uncertainty(&boundary_model(50.0));
        let before = store.tracker().snapshot();
        index.select_and_load().unwrap();
        let region_bytes = store.tracker().delta(&before).stats.bytes_read;
        let full_bytes = store.manifest().total_chunk_bytes() + store.rows_file_bytes();
        assert!(
            region_bytes * 3 < full_bytes,
            "one region read {region_bytes} B, full dataset is {full_bytes} B"
        );
    }

    #[test]
    fn cannot_load_before_scoring() {
        let (store, _, _dir) = build_store("unscored", 300);
        let mut index = UeiIndex::build(store, small_config()).unwrap();
        assert!(index.select_and_load().is_err());
    }

    #[test]
    fn sample_unlabeled_draws_from_whole_space() {
        let (store, _, _dir) = build_store("sample", 2000);
        let index = UeiIndex::build(store, small_config()).unwrap();
        let mut rng = Rng::new(1);
        let sample = index.sample_unlabeled(200, &mut rng).unwrap();
        assert_eq!(sample.len(), 200);
        // Sample should span many cells, not cluster in one.
        let mut cells = std::collections::HashSet::new();
        for p in &sample {
            cells.insert(index.grid().cell_of(&p.values).unwrap());
        }
        assert!(cells.len() > 8, "uniform sample covers the grid ({} cells)", cells.len());
    }

    #[test]
    fn prefetch_serves_second_iteration() {
        let (store, _, _dir) = build_store("prefetch", 2000);
        let config = UeiConfig { cells_per_dim: 4, prefetch: true, ..UeiConfig::default() };
        let mut index = UeiIndex::build(Arc::clone(&store), config).unwrap();
        index.update_uncertainty(&boundary_model(50.0));
        let first = index.select_and_load().unwrap();
        assert_eq!(first.source, LoadSource::Synchronous);

        // Give the background worker time to finish the runner-up.
        std::thread::sleep(Duration::from_millis(300));

        // Same model → same ranking; the previous top cell is cheap to
        // reload (cache) but the point of this test is the runner-up: force
        // selection of it by re-scoring and loading twice.
        index.update_uncertainty(&boundary_model(50.0));
        let second = index.select_and_load().unwrap();
        let third_cell_candidates = index.points().ranked_top(3).unwrap();
        // At least one of the next loads should be served by prefetch.
        let mut served = second.source == LoadSource::Prefetched;
        for cell in third_cell_candidates {
            if served {
                break;
            }
            if let Some(pre_rows) = index.load_prefetched_for_test(cell) {
                served = pre_rows;
            }
        }
        assert!(
            served || index.background_io().unwrap().bytes_read > 0,
            "prefetcher did background work"
        );
    }

    #[test]
    fn uncertainty_moves_with_model() {
        let (store, _, _dir) = build_store("moves", 1000);
        let mut index = UeiIndex::build(store, small_config()).unwrap();
        index.update_uncertainty(&boundary_model(10.0));
        let left = index.grid().id_to_coords(index.points().most_uncertain().unwrap()).unwrap();
        index.update_uncertainty(&boundary_model(90.0));
        let right = index.grid().id_to_coords(index.points().most_uncertain().unwrap()).unwrap();
        assert!(left[0] < right[0], "boundary shift moves the chosen column");
    }

    impl UeiIndex {
        /// Test helper: whether a prefetched region is ready for `cell`.
        fn load_prefetched_for_test(&self, cell: CellId) -> Option<bool> {
            self.prefetcher.as_ref().map(|p| p.take(cell).is_some())
        }
    }

    #[test]
    fn transient_faults_are_absorbed_by_retries() {
        let (store, _, _dir) = build_store("retrysess", 2000);
        let config = UeiConfig {
            cells_per_dim: 4,
            chunk_cache_bytes: 0, // every load pays real reads → injector fires
            ..UeiConfig::default()
        };
        let mut index = UeiIndex::build(Arc::clone(&store), config).unwrap();
        let injector = FaultInjector::new(FaultConfig {
            seed: 11,
            transient_prob: 0.05,
            ..FaultConfig::off()
        })
        .unwrap();
        store.tracker().set_fault_injector(Some(injector));
        for split in [20.0, 35.0, 50.0, 65.0, 80.0] {
            index.update_uncertainty(&boundary_model(split));
            index.select_and_load().expect("retries absorb transient faults");
        }
        let counters = index.degrade_counters();
        assert!(counters.retries > 0, "some reads must have been retried: {counters:?}");
        assert_eq!(counters.failed_selections, 0);
    }

    #[test]
    fn corrupt_top_cell_falls_back_to_next_ranked() {
        let (store, _, dir) = build_store("fallback", 2000);
        let config = UeiConfig {
            cells_per_dim: 4,
            chunk_cache_bytes: 0,
            fallback_candidates: 16, // allow walking the whole ranking
            ..UeiConfig::default()
        };
        let mut index = UeiIndex::build(Arc::clone(&store), config).unwrap();
        index.update_uncertainty(&boundary_model(50.0));
        let top = index.points().most_uncertain().unwrap();
        // Corrupt every chunk file the top cell needs: its load now fails
        // the catalog checksum, so selection must fall through the ranking.
        for ids in index.mapping().chunks_for_cell(index.grid(), top).unwrap() {
            for id in ids {
                let path = dir.path().join(id.file_name());
                let mut bytes = std::fs::read(&path).unwrap();
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x01;
                std::fs::write(&path, &bytes).unwrap();
            }
        }
        let load = index.select_and_load().expect("a clean lower-ranked cell exists");
        assert_ne!(load.cell, top, "corrupt p* cannot be served");
        assert!(load.fallback_rank > 0);
        let counters = index.degrade_counters();
        assert_eq!(counters.fallback_cells, load.fallback_rank);
        assert_eq!(counters.failed_selections, 0);
    }

    #[test]
    fn exhausted_candidates_surface_the_storage_error() {
        let (store, _, _dir) = build_store("exhaust", 1500);
        let config = UeiConfig {
            cells_per_dim: 4,
            chunk_cache_bytes: 0,
            retry: RetryPolicy::none(),
            ..UeiConfig::default()
        };
        let mut index = UeiIndex::build(Arc::clone(&store), config).unwrap();
        let injector =
            FaultInjector::new(FaultConfig { seed: 3, transient_prob: 1.0, ..FaultConfig::off() })
                .unwrap();
        store.tracker().set_fault_injector(Some(injector));
        index.update_uncertainty(&boundary_model(50.0));
        let err = index.select_and_load().unwrap_err();
        assert!(err.is_storage_fault(), "ladder exhaustion returns the last fault: {err}");
        assert_eq!(index.degrade_counters().failed_selections, 1);
        // Detaching the injector heals the next selection.
        store.tracker().set_fault_injector(None);
        index.select_and_load().expect("selection recovers once faults stop");
        assert_eq!(index.degrade_counters().failed_selections, 1);
    }

    #[test]
    fn sigma_deadline_misses_are_counted() {
        let (store, _, _dir) = build_store("sigma", 2000);
        let config = UeiConfig {
            cells_per_dim: 4,
            chunk_cache_bytes: 0,
            latency_threshold_secs: 1e-9, // modeled NVMe always exceeds 1 ns
            ..UeiConfig::default()
        };
        let mut index = UeiIndex::build(Arc::clone(&store), config).unwrap();
        index.update_uncertainty(&boundary_model(50.0));
        index.select_and_load().unwrap();
        assert!(index.degrade_counters().sigma_deadline_misses >= 1);
    }

    #[test]
    fn incremental_rescoring_prunes_and_matches_full() {
        use uei_learn::Dwknn;
        use uei_types::Label;
        let (store, _, _dir) = build_store("increscore", 1500);
        let mut inc = UeiIndex::build(Arc::clone(&store), small_config()).unwrap();
        let full_cfg =
            UeiConfig { cells_per_dim: 4, incremental_rescore: false, ..UeiConfig::default() };
        let mut full = UeiIndex::build(Arc::clone(&store), full_cfg).unwrap();

        // Labeled examples spread across the whole 0..100 domain.
        let mut examples: Vec<(Vec<f64>, Label)> = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                let p = vec![i as f64 * 20.0 + 10.0, j as f64 * 20.0 + 10.0];
                examples.push((p, Label::from_bool((i + j) % 2 == 0)));
            }
        }
        let mut last_added: Option<Vec<f64>> = None;
        for step in 0..5 {
            let model = Dwknn::fit(3, &examples).unwrap();
            match &last_added {
                None => inc.update_uncertainty(&model),
                Some(p) => {
                    let added: Vec<&[f64]> = vec![p.as_slice()];
                    inc.update_uncertainty_incremental(&model, &added);
                }
            }
            full.update_uncertainty(&model);
            assert_eq!(
                inc.points().ranked_top(16).unwrap(),
                full.points().ranked_top(16).unwrap(),
                "step {step}: incremental selection must be bit-identical"
            );
            // One new label near the middle of the domain each step.
            let p = vec![48.0 + step as f64, 52.0 - step as f64];
            examples.push((p.clone(), Label::from_bool(step % 2 == 0)));
            last_added = Some(p);
        }
        let counters = inc.rescore_counters();
        assert!(counters.points_cached > 0, "locality pruning served some points: {counters:?}");
        assert_eq!(counters.points_rescored + counters.points_cached, 5 * 16);
        assert_eq!(full.rescore_counters().points_cached, 0, "full mode never caches");
    }

    #[test]
    fn degrade_counter_deltas() {
        let a = DegradeCounters { retries: 2, fallback_cells: 1, ..Default::default() };
        let b = DegradeCounters {
            retries: 5,
            fallback_cells: 1,
            sigma_deadline_misses: 3,
            failed_selections: 0,
        };
        let d = b.since(&a);
        assert_eq!(d.retries, 3);
        assert_eq!(d.fallback_cells, 0);
        assert_eq!(d.sigma_deadline_misses, 3);
        assert_eq!(d.failed_selections, 0);
    }

    #[test]
    fn ready_prefetch_survives_model_update() {
        // The invalidation rule: a model update re-ranks the cells, but a
        // ready-but-untaken prefetched region stays valid as *data* (cell
        // contents never change), so update_uncertainty must keep it.
        let (store, _, _dir) = build_store("survive", 1500);
        let config = UeiConfig { cells_per_dim: 4, prefetch: true, ..UeiConfig::default() };
        let mut index = UeiIndex::build(Arc::clone(&store), config).unwrap();
        let pre = index.prefetcher.as_ref().unwrap();
        pre.request(9);
        assert!(pre.take_blocking(9, Duration::from_secs(10)).is_some(), "prefetch completes");
        // Buffer it again (take was destructive) and leave it untaken.
        pre.request(9);
        while index.prefetcher.as_ref().unwrap().is_pending(9) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(index.prefetcher.as_ref().unwrap().has_ready(9));

        index.update_uncertainty(&boundary_model(50.0));
        assert!(
            index.prefetcher.as_ref().unwrap().has_ready(9),
            "model update must not drop ready prefetches"
        );
        // And the retained result is actually served on selection.
        assert_eq!(index.load_prefetched_for_test(9), Some(true));
    }

    #[test]
    fn prefetcher_warmed_chunks_cost_foreground_nothing() {
        // Acceptance: a prefetched-then-swapped region performs zero
        // foreground chunk reads for chunks the prefetcher already loaded.
        let (store, _, _dir) = build_store("warmzero", 1500);
        let config = UeiConfig { cells_per_dim: 4, prefetch: true, ..UeiConfig::default() };
        let mut index = UeiIndex::build(Arc::clone(&store), config).unwrap();
        let pre = index.prefetcher.as_ref().unwrap();
        pre.request(5);
        pre.take_blocking(5, Duration::from_secs(10)).expect("prefetch completes");
        // The ready buffer is now empty for cell 5, so this foreground
        // load goes through the loader — but every chunk is resident in
        // the shared cache the prefetcher filled.
        let before = store.tracker().snapshot();
        let (rows, stats) = index.load_cell(5).unwrap();
        assert!(!rows.is_empty());
        assert!(stats.merge.chunks_loaded > 0);
        assert_eq!(
            store.tracker().delta(&before).stats.bytes_read,
            0,
            "zero foreground chunk reads for prefetcher-warmed chunks"
        );
        assert_eq!(stats.virtual_time, Duration::ZERO);
    }

    #[test]
    fn shared_cache_off_restores_private_layout() {
        let (store, _, _dir) = build_store("nosharing", 800);
        let config = UeiConfig {
            cells_per_dim: 4,
            shared_cache: false,
            delta_reconstruction: false,
            ..UeiConfig::default()
        };
        let mut index = UeiIndex::build(Arc::clone(&store), config).unwrap();
        assert!(index.shared_cache().is_none());
        index.update_uncertainty(&boundary_model(50.0));
        let load = index.select_and_load().unwrap();
        assert!(!load.rows.is_empty());
        assert!(index.cache_stats().misses > 0, "private loader cache used");
    }

    #[test]
    fn defer_swaps_holds_current_region_when_loads_are_slow() {
        let (store, _, _dir) = build_store("defer", 2000);
        // τ will exceed σ immediately: every region load on modeled NVMe
        // takes > 1 ns threshold.
        let config = UeiConfig {
            cells_per_dim: 4,
            defer_swaps: true,
            latency_threshold_secs: 1e-9,
            chunk_cache_bytes: 0, // no cache: every load pays I/O
            ..UeiConfig::default()
        };
        let mut index = UeiIndex::build(Arc::clone(&store), config).unwrap();

        index.update_uncertainty(&boundary_model(20.0));
        let first = index.select_and_load().unwrap();
        assert_eq!(index.deferred_swaps(), 0, "first load cannot be deferred");

        // Move the boundary: the ranking now prefers a different cell, but
        // the swap is deferred because τ > σ and nothing is prefetched.
        index.update_uncertainty(&boundary_model(80.0));
        let second = index.select_and_load().unwrap();
        assert_eq!(second.cell, first.cell, "swap deferred, same region served");
        assert_eq!(index.deferred_swaps(), 1);
    }

    #[test]
    fn defer_swaps_noop_when_loads_are_fast() {
        let (store, _, _dir) = build_store("nodefer", 2000);
        let config = UeiConfig {
            cells_per_dim: 4,
            defer_swaps: true,
            latency_threshold_secs: 10.0, // σ far above any load time
            ..UeiConfig::default()
        };
        let mut index = UeiIndex::build(Arc::clone(&store), config).unwrap();
        index.update_uncertainty(&boundary_model(20.0));
        let first = index.select_and_load().unwrap();
        index.update_uncertainty(&boundary_model(80.0));
        let second = index.select_and_load().unwrap();
        assert_ne!(second.cell, first.cell, "fast loads never defer");
        assert_eq!(index.deferred_swaps(), 0);
    }
}
