//! The Uncertainty Estimation Index facade.
//!
//! Ties the components together behind the per-iteration API the
//! exploration loop needs (Algorithm 2):
//!
//! - [`UeiIndex::build`] — lines 7–11: grid, symbolic index points, and the
//!   mapping `m` over an already-initialized column store;
//! - [`UeiIndex::sample_unlabeled`] — line 12: the uniform sample that
//!   seeds the unlabeled cache `U`;
//! - [`UeiIndex::update_uncertainty`] — line 17;
//! - [`UeiIndex::select_and_load`] — lines 18–19: pick `p*`, fetch `g*`
//!   (from the prefetcher when it got there first, otherwise
//!   synchronously), and queue the θ next-most-uncertain cells for
//!   background prefetch.
//!
//! The facade is thin composition: ranking lives on
//! [`crate::points::IndexPoints`] (sharded per DESIGN.md §14, merged by
//! [`crate::select`]), region fetching and the degradation ladder on
//! [`crate::load::RegionFetcher`].

use std::sync::Arc;

use uei_learn::strategy::UncertaintyMeasure;
use uei_learn::Classifier;
use uei_obs::{FlightEventKind, Phase, SessionTelemetry};
use uei_storage::cache::SharedChunkCache;
use uei_storage::io::IoStats;
use uei_storage::merge::MergeStats;
use uei_storage::source::ChunkSource;
use uei_storage::store::ColumnStore;
use uei_types::{DataPoint, Result, Rng};

use crate::config::UeiConfig;
use crate::grid::{CellId, Grid};
use crate::load::RegionFetcher;
use crate::loader::{LoadStats, RegionLoader};
use crate::mapping::ChunkMapping;
use crate::points::{IndexPoints, RescoreStats};
use crate::prefetch::Prefetcher;

// Split out of this facade; re-exported so `uei::…` paths keep working.
pub use crate::load::{LoadSource, RegionLoad};
pub use crate::select::DegradeCounters;

/// The Uncertainty Estimation Index.
pub struct UeiIndex {
    store: Arc<ColumnStore>,
    grid: Arc<Grid>,
    mapping: Arc<ChunkMapping>,
    points: IndexPoints,
    fetcher: RegionFetcher,
    /// The cache shared between loader and prefetcher, when enabled —
    /// kept here so stats stay readable regardless of loader internals.
    shared_cache: Option<Arc<SharedChunkCache>>,
    config: UeiConfig,
    measure: UncertaintyMeasure,
    /// Cumulative rescoring work (model-scored vs cache-served points).
    rescore_stats: RescoreStats,
    /// Phase spans + flight recorder for this session; inert unless
    /// [`UeiConfig::telemetry`] enables it. Only ever *reads* the virtual
    /// clock, so modeled traces stay bit-identical either way.
    telemetry: SessionTelemetry,
    /// Rescoring passes so far — the iteration stamp on rescore-side
    /// flight events.
    rescore_passes: u64,
}

impl UeiIndex {
    /// Builds the index over an initialized column store (the in-memory
    /// half of the initialization phase; the on-disk half is
    /// [`ColumnStore::create`]).
    pub fn build(store: Arc<ColumnStore>, config: UeiConfig) -> Result<UeiIndex> {
        Self::build_with_measure(store, config, UncertaintyMeasure::LeastConfidence)
    }

    /// [`UeiIndex::build`] with an explicit uncertainty measure.
    pub fn build_with_measure(
        store: Arc<ColumnStore>,
        config: UeiConfig,
        measure: UncertaintyMeasure,
    ) -> Result<UeiIndex> {
        config.validate(store.schema().dims())?;
        let grid = Arc::new(Grid::new(store.schema(), config.cells_per_dim)?);
        let mapping = Arc::new(ChunkMapping::build(&grid, store.manifest())?);
        let points = IndexPoints::from_grid_with_shards(&grid, config.shards)?;
        let source: Arc<dyn ChunkSource> = Arc::clone(&store) as Arc<dyn ChunkSource>;
        let shared_cache = config.shared_cache.then(|| {
            Arc::new(SharedChunkCache::new(config.chunk_cache_bytes, config.cache_shards))
        });
        let mut loader = match &shared_cache {
            Some(cache) => RegionLoader::with_shared(
                Arc::clone(&source),
                Arc::clone(cache),
                config.delta_reconstruction,
            ),
            None => {
                let mut l = RegionLoader::new(Arc::clone(&source), config.chunk_cache_bytes);
                l.set_delta(config.delta_reconstruction);
                l
            }
        };
        loader.set_retry_policy(config.retry);
        let prefetcher = if config.prefetch {
            Some(Prefetcher::spawn_with_cache(
                store.dir(),
                store.tracker().profile(),
                Grid::clone(&grid),
                ChunkMapping::clone(&mapping),
                shared_cache.as_ref().map(Arc::clone),
            )?)
        } else {
            None
        };
        let telemetry = SessionTelemetry::standalone(
            config.telemetry,
            Some(store.tracker().as_virtual_clock()),
        );
        let mut fetcher = RegionFetcher::new(loader, prefetcher);
        fetcher.set_telemetry(telemetry.clone());
        Ok(UeiIndex {
            store,
            grid,
            mapping,
            points,
            fetcher,
            shared_cache,
            config,
            measure,
            rescore_stats: RescoreStats::default(),
            telemetry,
            rescore_passes: 0,
        })
    }

    /// Assembles an index from pre-built parts. Used by
    /// [`crate::engine::EngineCore::open_session`], which shares the grid,
    /// mapping, and chunk cache across sessions; the legacy
    /// [`UeiIndex::build`] path constructs everything itself.
    ///
    /// `shared_cache` here is the *stats-reporting* handle: engine sessions
    /// pass `None` so [`UeiIndex::cache_stats`] reads the session's own
    /// deterministic ghost ledger instead of the cross-session shared
    /// counters (which remain reachable via [`UeiIndex::shared_cache`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        store: Arc<ColumnStore>,
        grid: Arc<Grid>,
        mapping: Arc<ChunkMapping>,
        points: IndexPoints,
        loader: RegionLoader,
        prefetcher: Option<Prefetcher>,
        shared_cache: Option<Arc<SharedChunkCache>>,
        config: UeiConfig,
        measure: UncertaintyMeasure,
        telemetry: SessionTelemetry,
    ) -> UeiIndex {
        let mut fetcher = RegionFetcher::new(loader, prefetcher);
        fetcher.set_telemetry(telemetry.clone());
        UeiIndex {
            store,
            grid,
            mapping,
            points,
            fetcher,
            shared_cache,
            config,
            measure,
            rescore_stats: RescoreStats::default(),
            telemetry,
            rescore_passes: 0,
        }
    }

    /// The grid of subspaces.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The symbolic index points with their current scores.
    pub fn points(&self) -> &IndexPoints {
        &self.points
    }

    /// The chunk mapping `m`.
    pub fn mapping(&self) -> &ChunkMapping {
        &self.mapping
    }

    /// The underlying column store.
    pub fn store(&self) -> &Arc<ColumnStore> {
        &self.store
    }

    /// The active configuration.
    pub fn config(&self) -> &UeiConfig {
        &self.config
    }

    /// The background prefetcher, when enabled (the load-ladder tests
    /// reach it through here).
    #[cfg(test)]
    pub(crate) fn prefetcher(&self) -> Option<&Prefetcher> {
        self.fetcher.prefetcher()
    }

    /// Uniformly samples `gamma` rows for the unlabeled cache `U`
    /// (Algorithm 2 line 12).
    pub fn sample_unlabeled(&self, gamma: usize, rng: &mut Rng) -> Result<Vec<DataPoint>> {
        self.store.sample_rows(gamma, rng)
    }

    /// Re-scores every index point with the freshly trained model
    /// (Algorithm 2 line 17). Also invalidates prefetched regions older
    /// than the model — the ranking that justified them is gone; keeping
    /// them would serve regions chosen by a stale boundary.
    pub fn update_uncertainty(&mut self, model: &dyn Classifier) {
        let _span = self.telemetry.span(Phase::Rescore);
        self.rescore_passes += 1;
        let stats = if !self.config.parallel {
            self.points.update_sequential(model, self.measure);
            RescoreStats { points_rescored: self.points.len() as u64, points_cached: 0 }
        } else if self.config.incremental_rescore {
            // Full pass, but through the tracked path so the influence
            // radii are captured and the *next* incremental call can prune.
            self.points.update_tracked(model, self.measure)
        } else {
            self.points.update(model, self.measure);
            RescoreStats { points_rescored: self.points.len() as u64, points_cached: 0 }
        };
        self.rescore_stats.accumulate(stats);
        // Note: ready-but-untaken prefetches remain valid as *data* (cell
        // contents do not change), so they are kept; only their priority
        // was stale, and `select_and_load` re-ranks every iteration anyway.
    }

    /// [`UeiIndex::update_uncertainty`] with locality-pruned invalidation:
    /// `added` are the raw-space training examples labeled since the last
    /// rescoring pass, and only the index points inside their influence
    /// balls (per the model's [`uei_learn::ModelDelta`]) are rescored — the
    /// rest are served from the score cache. Selection is bit-identical to
    /// a full rescore; see [`IndexPoints::update_incremental`].
    ///
    /// Falls back to the full paths of [`UeiIndex::update_uncertainty`]
    /// when incremental rescoring (or the batch path) is disabled.
    pub fn update_uncertainty_incremental(&mut self, model: &dyn Classifier, added: &[&[f64]]) {
        if !self.config.parallel || !self.config.incremental_rescore {
            self.update_uncertainty(model);
            return;
        }
        let _span = self.telemetry.span(Phase::Rescore);
        self.rescore_passes += 1;
        let pruned_before = self.points.shards_pruned();
        let stats = self.points.update_incremental(
            model,
            self.measure,
            added,
            self.config.rescore_margin,
            self.config.full_rescore_every,
        );
        self.rescore_stats.accumulate(stats);
        let pruned = self.points.shards_pruned() - pruned_before;
        if pruned > 0 {
            self.telemetry.event(FlightEventKind::ShardPrune, self.rescore_passes, || {
                format!("{pruned} shards pruned, {} points served from cache", stats.points_cached)
            });
        }
    }

    /// Cumulative rescoring work counters: how many index points were
    /// scored through the model versus served from the score cache, summed
    /// over all rescoring passes. Snapshot before an iteration and
    /// [`RescoreStats::since`] after it for per-iteration deltas.
    pub fn rescore_counters(&self) -> RescoreStats {
        self.rescore_stats
    }

    /// Cumulative count of shards recomputed by rescoring passes — the
    /// shard-parallel analogue of [`UeiIndex::rescore_counters`]. Snapshot
    /// and subtract for per-iteration deltas.
    pub fn shards_touched(&self) -> u64 {
        self.points.shards_touched()
    }

    /// This session's telemetry handle: phase spans, flight events, and
    /// (when engine-opened) the shared metrics registry. Disabled-mode
    /// handles are inert and free to clone.
    pub fn telemetry(&self) -> &SessionTelemetry {
        &self.telemetry
    }

    /// Picks the most uncertain cell and loads its subspace (Algorithm 2
    /// lines 18–19), preferring a completed prefetch; afterwards queues
    /// the θ = ⌈τ/σ⌉ next-most-uncertain cells for background loading.
    /// Swap deferral and the storage-fault fallback ladder are documented
    /// on [`RegionFetcher::select_and_load`].
    pub fn select_and_load(&mut self) -> Result<RegionLoad> {
        self.fetcher.select_and_load(&self.grid, &self.mapping, &self.config, &mut self.points)
    }

    /// How many region swaps were deferred to hold the latency threshold.
    pub fn deferred_swaps(&self) -> u64 {
        self.fetcher.deferred_swaps()
    }

    /// Cumulative graceful-degradation counters (retries, fallbacks,
    /// σ-deadline misses, exhausted selections).
    pub fn degrade_counters(&self) -> DegradeCounters {
        self.fetcher.degrade_counters()
    }

    /// All-time average region load time in virtual seconds (diagnostic).
    pub fn average_load_secs(&self) -> f64 {
        self.fetcher.loader().average_load_secs()
    }

    /// Exponentially weighted recent region load time τ in virtual
    /// seconds — what the prefetch horizon and swap deferral consult.
    pub fn recent_load_secs(&self) -> f64 {
        self.fetcher.loader().recent_load_secs()
    }

    /// Chunk-cache statistics: of the shared cache when sharing is on
    /// (hits include the prefetcher's), of the private loader cache
    /// otherwise. Engine-opened sessions report their own deterministic
    /// ghost-ledger stats; the engine-wide aggregate lives on
    /// [`crate::engine::EngineCore::cache_stats`].
    pub fn cache_stats(&self) -> uei_storage::cache::CacheStats {
        match &self.shared_cache {
            Some(c) => c.stats(),
            None => self.fetcher.loader().cache_stats(),
        }
    }

    /// The cache shared between loader and prefetcher, when enabled. For
    /// engine-opened sessions this is the engine-wide shared cache reached
    /// through the session's ghost view.
    pub fn shared_cache(&self) -> Option<&Arc<SharedChunkCache>> {
        self.shared_cache.as_ref().or_else(|| self.fetcher.loader().shared_cache())
    }

    /// Background I/O accumulated by the prefetcher, if enabled.
    pub fn background_io(&self) -> Option<IoStats> {
        self.fetcher.prefetcher().map(|p| p.background_io())
    }

    /// Directly loads one cell (diagnostics / ablations).
    pub fn load_cell(&mut self, cell: CellId) -> Result<(Vec<DataPoint>, LoadStats)> {
        self.fetcher.loader_mut().load_cell(&self.grid, &self.mapping, cell)
    }

    /// Merge statistics of the last N loads are not retained; this exposes
    /// the per-cell chunk count for complexity reporting instead.
    pub fn chunks_for_cell(&self, cell: CellId) -> Result<usize> {
        self.mapping.chunk_count_for_cell(&self.grid, cell)
    }
}

/// Re-exported merge counters for downstream reporting.
pub type RegionMergeStats = MergeStats;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{boundary_model, build_store, small_config};
    use std::time::Duration;

    #[test]
    fn build_and_basic_accessors() {
        let (store, _, _dir) = build_store("accessors", 1000);
        let index = UeiIndex::build(Arc::clone(&store), small_config()).unwrap();
        assert_eq!(index.grid().num_cells(), 16);
        assert_eq!(index.points().len(), 16);
        assert!(index.chunks_for_cell(0).unwrap() > 0);
        assert!(index.background_io().is_none(), "prefetch disabled by default");
    }

    #[test]
    fn select_and_load_returns_boundary_cell() {
        let (store, rows, _dir) = build_store("boundary", 2000);
        let mut index = UeiIndex::build(Arc::clone(&store), small_config()).unwrap();
        // Boundary at x = 50: most uncertain cells are the two middle
        // columns; with 4 columns, centers at 12.5/37.5/62.5/87.5 the
        // nearest to 50 are columns 1 and 2.
        index.update_uncertainty(&boundary_model(50.0));
        let load = index.select_and_load().unwrap();
        let coords = index.grid().id_to_coords(load.cell).unwrap();
        assert!(coords[0] == 1 || coords[0] == 2, "x-column {} not near boundary", coords[0]);
        assert_eq!(load.source, LoadSource::Synchronous);
        // Loaded rows are exactly the population of the cell.
        let region = index.grid().cell_region(load.cell).unwrap();
        let expected: usize = rows.iter().filter(|p| region.contains(&p.values).unwrap()).count();
        assert_eq!(load.rows.len(), expected);
        assert!(load.stats.virtual_time > Duration::ZERO);
    }

    #[test]
    fn sharded_sessions_select_identically() {
        // The headline determinism claim at the facade level: the same
        // store and model produce the same selection at every shard count.
        let (store, _, _dir) = build_store("shardsel", 2000);
        let mut reference =
            UeiIndex::build(Arc::clone(&store), UeiConfig { shards: 1, ..small_config() }).unwrap();
        reference.update_uncertainty(&boundary_model(42.0));
        let want = reference.select_and_load().unwrap().cell;
        let ranked = reference.points().ranked_top(16).unwrap();
        for shards in [2, 4, 8] {
            let mut index =
                UeiIndex::build(Arc::clone(&store), UeiConfig { shards, ..small_config() })
                    .unwrap();
            index.update_uncertainty(&boundary_model(42.0));
            assert_eq!(index.select_and_load().unwrap().cell, want, "{shards} shards");
            assert_eq!(index.points().ranked_top(16).unwrap(), ranked, "{shards} shards");
        }
    }

    #[test]
    fn loading_a_region_costs_a_fraction_of_full_scan() {
        let (store, _, _dir) = build_store("fraction", 4000);
        let mut index = UeiIndex::build(Arc::clone(&store), small_config()).unwrap();
        index.update_uncertainty(&boundary_model(50.0));
        let before = store.tracker().snapshot();
        index.select_and_load().unwrap();
        let region_bytes = store.tracker().delta(&before).stats.bytes_read;
        let full_bytes = store.manifest().total_chunk_bytes() + store.rows_file_bytes();
        assert!(
            region_bytes * 3 < full_bytes,
            "one region read {region_bytes} B, full dataset is {full_bytes} B"
        );
    }

    #[test]
    fn cannot_load_before_scoring() {
        let (store, _, _dir) = build_store("unscored", 300);
        let mut index = UeiIndex::build(store, small_config()).unwrap();
        assert!(index.select_and_load().is_err());
    }

    #[test]
    fn sample_unlabeled_draws_from_whole_space() {
        let (store, _, _dir) = build_store("sample", 2000);
        let index = UeiIndex::build(store, small_config()).unwrap();
        let mut rng = Rng::new(1);
        let sample = index.sample_unlabeled(200, &mut rng).unwrap();
        assert_eq!(sample.len(), 200);
        // Sample should span many cells, not cluster in one.
        let mut cells = std::collections::HashSet::new();
        for p in &sample {
            cells.insert(index.grid().cell_of(&p.values).unwrap());
        }
        assert!(cells.len() > 8, "uniform sample covers the grid ({} cells)", cells.len());
    }

    #[test]
    fn uncertainty_moves_with_model() {
        let (store, _, _dir) = build_store("moves", 1000);
        let mut index = UeiIndex::build(store, small_config()).unwrap();
        index.update_uncertainty(&boundary_model(10.0));
        let left = index.grid().id_to_coords(index.points().most_uncertain().unwrap()).unwrap();
        index.update_uncertainty(&boundary_model(90.0));
        let right = index.grid().id_to_coords(index.points().most_uncertain().unwrap()).unwrap();
        assert!(left[0] < right[0], "boundary shift moves the chosen column");
    }

    #[test]
    fn incremental_rescoring_prunes_and_matches_full() {
        use uei_learn::Dwknn;
        use uei_types::Label;
        let (store, _, _dir) = build_store("increscore", 1500);
        let mut inc = UeiIndex::build(Arc::clone(&store), small_config()).unwrap();
        let full_cfg = UeiConfig { incremental_rescore: false, ..small_config() };
        let mut full = UeiIndex::build(Arc::clone(&store), full_cfg).unwrap();

        // Labeled examples spread across the whole 0..100 domain.
        let mut examples: Vec<(Vec<f64>, Label)> = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                let p = vec![i as f64 * 20.0 + 10.0, j as f64 * 20.0 + 10.0];
                examples.push((p, Label::from_bool((i + j) % 2 == 0)));
            }
        }
        let mut last_added: Option<Vec<f64>> = None;
        for step in 0..5 {
            let model = Dwknn::fit(3, &examples).unwrap();
            match &last_added {
                None => inc.update_uncertainty(&model),
                Some(p) => {
                    let added: Vec<&[f64]> = vec![p.as_slice()];
                    inc.update_uncertainty_incremental(&model, &added);
                }
            }
            full.update_uncertainty(&model);
            assert_eq!(
                inc.points().ranked_top(16).unwrap(),
                full.points().ranked_top(16).unwrap(),
                "step {step}: incremental selection must be bit-identical"
            );
            // One new label near the middle of the domain each step.
            let p = vec![48.0 + step as f64, 52.0 - step as f64];
            examples.push((p.clone(), Label::from_bool(step % 2 == 0)));
            last_added = Some(p);
        }
        let counters = inc.rescore_counters();
        assert!(counters.points_cached > 0, "locality pruning served some points: {counters:?}");
        assert_eq!(counters.points_rescored + counters.points_cached, 5 * 16);
        assert_eq!(full.rescore_counters().points_cached, 0, "full mode never caches");
    }

    #[test]
    fn shared_cache_off_restores_private_layout() {
        let (store, _, _dir) = build_store("nosharing", 800);
        let config =
            UeiConfig { shared_cache: false, delta_reconstruction: false, ..small_config() };
        let mut index = UeiIndex::build(Arc::clone(&store), config).unwrap();
        assert!(index.shared_cache().is_none());
        index.update_uncertainty(&boundary_model(50.0));
        let load = index.select_and_load().unwrap();
        assert!(!load.rows.is_empty());
        assert!(index.cache_stats().misses > 0, "private loader cache used");
    }
}
