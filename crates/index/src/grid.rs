//! The equilateral grid of subspaces and their symbolic index points.
//!
//! UEI "divide\[s\] the exploration space D into equal-size subspaces (i.e.,
//! d-dimensional grids) g_i of D, and build\[s\] a set of symbolic (virtual)
//! index points P = {p_1, … p_c}, such that each index point p_i represents
//! a subspace g_i" (§3.1), with p_i at "the coordinates of the 'virtual'
//! center point of g_i".
//!
//! Cells are half-open `[lo, hi)` along every dimension — so the grid is a
//! true partition — except that the topmost cell of each dimension extends
//! its upper bound by one ULP past the domain maximum, so points exactly at
//! the maximum belong to the last cell.

use uei_types::{Region, Result, Schema, UeiError};

/// A cell (subspace) identifier: the row-major linearization of the cell's
/// per-dimension coordinates.
pub type CellId = usize;

/// The grid over the data space.
///
/// ```
/// use uei_index::Grid;
/// use uei_types::Schema;
///
/// // Table 1's configuration: 5 cells per dimension over the 5-D SDSS
/// // space gives 3125 symbolic index points.
/// let grid = Grid::new(&Schema::sdss(), 5).unwrap();
/// assert_eq!(grid.num_cells(), 3125);
/// let cell = grid.cell_of(&[100.0, 100.0, 10.0, -80.0, 5.0]).unwrap();
/// let p = grid.cell_center(cell).unwrap();          // the symbolic point
/// assert_eq!(grid.cell_of(&p).unwrap(), cell);      // it represents its cell
/// ```
#[derive(Debug, Clone)]
pub struct Grid {
    lo: Vec<f64>,
    hi: Vec<f64>,
    cells_per_dim: usize,
    dims: usize,
}

impl Grid {
    /// Builds a grid of `cells_per_dim^dims` cells over the schema's data
    /// space.
    pub fn new(schema: &Schema, cells_per_dim: usize) -> Result<Grid> {
        if cells_per_dim == 0 {
            return Err(UeiError::invalid_config("cells_per_dim must be >= 1"));
        }
        let space = schema.data_space();
        Ok(Grid { lo: space.lo.clone(), hi: space.hi.clone(), cells_per_dim, dims: space.dims() })
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Cells per dimension.
    pub fn cells_per_dim(&self) -> usize {
        self.cells_per_dim
    }

    /// Total number of cells (= number of symbolic index points).
    pub fn num_cells(&self) -> usize {
        self.cells_per_dim.pow(self.dims as u32)
    }

    /// Per-dimension cell width.
    pub fn cell_width(&self, dim: usize) -> f64 {
        (self.hi[dim] - self.lo[dim]) / self.cells_per_dim as f64
    }

    /// Converts per-dimension coordinates to a cell id (row-major).
    pub fn coords_to_id(&self, coords: &[usize]) -> Result<CellId> {
        if coords.len() != self.dims {
            return Err(UeiError::DimensionMismatch { expected: self.dims, actual: coords.len() });
        }
        let mut id = 0usize;
        for &c in coords {
            if c >= self.cells_per_dim {
                return Err(UeiError::invalid_config(format!(
                    "cell coordinate {c} out of range (< {})",
                    self.cells_per_dim
                )));
            }
            id = id * self.cells_per_dim + c;
        }
        Ok(id)
    }

    /// Converts a cell id back to per-dimension coordinates.
    pub fn id_to_coords(&self, id: CellId) -> Result<Vec<usize>> {
        if id >= self.num_cells() {
            return Err(UeiError::not_found(format!("cell {id} (grid has {})", self.num_cells())));
        }
        let mut coords = vec![0usize; self.dims];
        let mut rest = id;
        for d in (0..self.dims).rev() {
            coords[d] = rest % self.cells_per_dim;
            rest /= self.cells_per_dim;
        }
        Ok(coords)
    }

    /// The subspace `g_i` of a cell as a half-open region (topmost cells
    /// extended one ULP to include the domain maximum).
    pub fn cell_region(&self, id: CellId) -> Result<Region> {
        let coords = self.id_to_coords(id)?;
        let mut lo = Vec::with_capacity(self.dims);
        let mut hi = Vec::with_capacity(self.dims);
        for d in 0..self.dims {
            let w = self.cell_width(d);
            let cell_lo = self.lo[d] + coords[d] as f64 * w;
            let mut cell_hi = self.lo[d] + (coords[d] + 1) as f64 * w;
            if coords[d] + 1 == self.cells_per_dim {
                // Close the top edge: make `hi` exactly one ULP above the
                // domain max so `[lo, hi)` admits the max itself.
                cell_hi = self.hi[d].next_up();
            }
            lo.push(cell_lo);
            hi.push(cell_hi);
        }
        Region::new(lo, hi)
    }

    /// The symbolic index point of a cell — the center of `g_i`.
    pub fn cell_center(&self, id: CellId) -> Result<Vec<f64>> {
        let coords = self.id_to_coords(id)?;
        Ok((0..self.dims)
            .map(|d| {
                let w = self.cell_width(d);
                self.lo[d] + (coords[d] as f64 + 0.5) * w
            })
            .collect())
    }

    /// The cell containing a point; coordinates are clamped into the data
    /// space, so every point maps to exactly one cell.
    pub fn cell_of(&self, point: &[f64]) -> Result<CellId> {
        if point.len() != self.dims {
            return Err(UeiError::DimensionMismatch { expected: self.dims, actual: point.len() });
        }
        let mut coords = Vec::with_capacity(self.dims);
        for d in 0..self.dims {
            let w = self.cell_width(d);
            let c = if w > 0.0 {
                (((point[d] - self.lo[d]) / w).floor() as isize)
                    .clamp(0, self.cells_per_dim as isize - 1) as usize
            } else {
                0
            };
            coords.push(c);
        }
        self.coords_to_id(&coords)
    }

    /// Iterates every cell id.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> {
        0..self.num_cells()
    }

    /// Ids of cells orthogonally adjacent to `id` (±1 along each single
    /// dimension) — used by the prefetcher's runner-up heuristics.
    pub fn neighbors(&self, id: CellId) -> Result<Vec<CellId>> {
        let coords = self.id_to_coords(id)?;
        let mut out = Vec::with_capacity(2 * self.dims);
        for d in 0..self.dims {
            if coords[d] > 0 {
                let mut c = coords.clone();
                c[d] -= 1;
                out.push(self.coords_to_id(&c)?);
            }
            if coords[d] + 1 < self.cells_per_dim {
                let mut c = coords.clone();
                c[d] += 1;
                out.push(self.coords_to_id(&c)?);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uei_types::{AttributeDef, Rng};

    fn schema2() -> Schema {
        Schema::new(vec![
            AttributeDef::new("x", 0.0, 10.0).unwrap(),
            AttributeDef::new("y", -5.0, 5.0).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn sdss_grid_matches_table_1() {
        let grid = Grid::new(&Schema::sdss(), 5).unwrap();
        assert_eq!(grid.num_cells(), 3125);
        assert_eq!(grid.dims(), 5);
    }

    #[test]
    fn id_coords_round_trip() {
        let grid = Grid::new(&schema2(), 4).unwrap();
        assert_eq!(grid.num_cells(), 16);
        for id in grid.cell_ids() {
            let coords = grid.id_to_coords(id).unwrap();
            assert_eq!(grid.coords_to_id(&coords).unwrap(), id);
        }
        assert!(grid.id_to_coords(16).is_err());
        assert!(grid.coords_to_id(&[4, 0]).is_err());
        assert!(grid.coords_to_id(&[0]).is_err());
    }

    #[test]
    fn cells_partition_the_space() {
        // Every random point belongs to exactly one cell region.
        let grid = Grid::new(&schema2(), 3).unwrap();
        let regions: Vec<Region> =
            grid.cell_ids().map(|id| grid.cell_region(id).unwrap()).collect();
        let mut rng = Rng::new(5);
        for _ in 0..2000 {
            let p = vec![rng.range_f64(0.0, 10.0), rng.range_f64(-5.0, 5.0)];
            let containing: Vec<usize> = regions
                .iter()
                .enumerate()
                .filter(|(_, r)| r.contains(&p).unwrap())
                .map(|(i, _)| i)
                .collect();
            assert_eq!(containing.len(), 1, "point {p:?} in cells {containing:?}");
            assert_eq!(containing[0], grid.cell_of(&p).unwrap());
        }
    }

    #[test]
    fn domain_max_belongs_to_top_cell() {
        let grid = Grid::new(&schema2(), 3).unwrap();
        let top = grid.cell_of(&[10.0, 5.0]).unwrap();
        assert_eq!(grid.id_to_coords(top).unwrap(), vec![2, 2]);
        let region = grid.cell_region(top).unwrap();
        assert!(region.contains(&[10.0, 5.0]).unwrap(), "domain max inside top cell");
    }

    #[test]
    fn out_of_domain_points_clamp() {
        let grid = Grid::new(&schema2(), 3).unwrap();
        assert_eq!(grid.cell_of(&[-100.0, 0.0]).unwrap(), grid.cell_of(&[0.0, 0.0]).unwrap());
        assert_eq!(grid.cell_of(&[100.0, 100.0]).unwrap(), grid.cell_of(&[10.0, 5.0]).unwrap());
    }

    #[test]
    fn centers_are_inside_their_cells() {
        let grid = Grid::new(&schema2(), 4).unwrap();
        for id in grid.cell_ids() {
            let center = grid.cell_center(id).unwrap();
            let region = grid.cell_region(id).unwrap();
            assert!(region.contains(&center).unwrap(), "center of cell {id}");
            assert_eq!(grid.cell_of(&center).unwrap(), id);
        }
    }

    #[test]
    fn cell_widths_are_equal_per_dimension() {
        let grid = Grid::new(&schema2(), 5).unwrap();
        assert!((grid.cell_width(0) - 2.0).abs() < 1e-12);
        assert!((grid.cell_width(1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_cell_grid() {
        let grid = Grid::new(&schema2(), 1).unwrap();
        assert_eq!(grid.num_cells(), 1);
        assert_eq!(grid.cell_of(&[3.0, 3.0]).unwrap(), 0);
        let r = grid.cell_region(0).unwrap();
        assert!(r.contains(&[0.0, -5.0]).unwrap());
        assert!(r.contains(&[10.0, 5.0]).unwrap());
    }

    #[test]
    fn neighbors_are_orthogonal() {
        let grid = Grid::new(&schema2(), 3).unwrap();
        // Center cell (1,1) has 4 neighbours in 2-D.
        let center = grid.coords_to_id(&[1, 1]).unwrap();
        let mut n = grid.neighbors(center).unwrap();
        n.sort_unstable();
        let mut want = vec![
            grid.coords_to_id(&[0, 1]).unwrap(),
            grid.coords_to_id(&[2, 1]).unwrap(),
            grid.coords_to_id(&[1, 0]).unwrap(),
            grid.coords_to_id(&[1, 2]).unwrap(),
        ];
        want.sort_unstable();
        assert_eq!(n, want);
        // Corner cell has 2.
        let corner = grid.coords_to_id(&[0, 0]).unwrap();
        assert_eq!(grid.neighbors(corner).unwrap().len(), 2);
    }

    #[test]
    fn rejects_zero_cells() {
        assert!(Grid::new(&schema2(), 0).is_err());
    }

    #[test]
    fn cell_of_dim_mismatch() {
        let grid = Grid::new(&schema2(), 3).unwrap();
        assert!(grid.cell_of(&[1.0]).is_err());
    }
}
