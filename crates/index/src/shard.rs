//! Contiguous cell-range sharding of the index-point plane.
//!
//! The symbolic index points live in one flat SoA (scores, influence
//! radii); a [`ShardLayout`] partitions that array into `S` contiguous
//! ranges so rescoring can fan out shard-parallel and selection can merge
//! per-shard top-θ lists deterministically (DESIGN.md §14). The layout is
//! pure geometry — it owns no scores — so one `Arc<ShardLayout>` is shared
//! between the engine core and every session it opens.
//!
//! Invariants:
//!
//! - shard ranges are contiguous, ascending, non-empty (except in the
//!   degenerate zero-cell layout), and partition `0..num_cells` exactly;
//! - because ranges are ascending in cell id, any per-shard list sorted by
//!   `(score desc, id asc)` merges into the identical global order that
//!   [`uei_learn::strategy::top_k_desc`] produces over the whole array —
//!   the determinism argument selection rests on.

use std::ops::Range;

use uei_types::ShardId;

/// Upper bound on the configured shard count ([`crate::config::UeiConfig`]
/// validation). Far above any sensible value — shards beyond the core
/// count only add merge overhead — but bounds the per-shard bookkeeping.
pub const MAX_SHARDS: usize = 1024;

/// Cells per shard the automatic sizing aims for. Small enough that the
/// paper-scale grid (3125 cells) stays single-shard — sharding overhead is
/// pure waste there — while six-figure grids fan out.
const AUTO_CELLS_PER_SHARD: usize = 4096;

/// Largest shard count the automatic sizing will pick on its own.
const AUTO_MAX_SHARDS: usize = 16;

/// An immutable partition of `0..num_cells` into contiguous shard ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLayout {
    /// Range fenceposts: shard `s` owns `bounds[s]..bounds[s + 1]`.
    /// `bounds[0] == 0`, `bounds.last() == num_cells`, strictly ascending
    /// (non-strict only when `num_cells == 0`).
    bounds: Vec<usize>,
}

impl ShardLayout {
    /// Builds a layout of `shards` near-even contiguous ranges over
    /// `num_cells` cells. `shards == 0` picks the count automatically via
    /// [`ShardLayout::auto_shards`]; explicit counts are clamped to
    /// `[1, num_cells]` so every shard is non-empty.
    pub fn new(num_cells: usize, shards: usize) -> ShardLayout {
        let shards = if shards == 0 { Self::auto_shards(num_cells) } else { shards };
        let shards = shards.clamp(1, num_cells.max(1));
        let base = num_cells / shards;
        let rem = num_cells % shards;
        let mut bounds = Vec::with_capacity(shards + 1);
        bounds.push(0);
        let mut next = 0;
        for s in 0..shards {
            // The first `rem` shards absorb the remainder, one cell each.
            next += base + usize::from(s < rem);
            bounds.push(next);
        }
        debug_assert_eq!(*bounds.last().expect("at least one shard"), num_cells);
        ShardLayout { bounds }
    }

    /// The shard count the `shards: 0` config default resolves to:
    /// one shard per ~`AUTO_CELLS_PER_SHARD` cells, clamped to
    /// `[1, AUTO_MAX_SHARDS]`.
    pub fn auto_shards(num_cells: usize) -> usize {
        (num_cells / AUTO_CELLS_PER_SHARD).clamp(1, AUTO_MAX_SHARDS)
    }

    /// Number of shards in the layout.
    pub fn num_shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total number of cells partitioned.
    pub fn num_cells(&self) -> usize {
        *self.bounds.last().expect("bounds is never empty")
    }

    /// The contiguous cell-id range shard `s` owns.
    ///
    /// # Panics
    /// If `s` is out of range.
    pub fn range(&self, s: usize) -> Range<usize> {
        self.bounds[s]..self.bounds[s + 1]
    }

    /// Iterates the shard ranges in ascending cell order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.num_shards()).map(|s| self.range(s))
    }

    /// The shard that owns `cell`.
    ///
    /// # Panics
    /// If `cell >= num_cells`.
    pub fn shard_of(&self, cell: usize) -> ShardId {
        assert!(cell < self.num_cells(), "cell {cell} outside layout");
        // bounds is ascending: the owning shard is the last fencepost <= cell.
        let s = match self.bounds.binary_search(&cell) {
            Ok(exact) => exact,
            Err(insert) => insert - 1,
        };
        ShardId::from(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_partitions_exactly() {
        for num_cells in [1usize, 2, 9, 100, 3125, 4097] {
            for shards in [1usize, 2, 3, 8, 16, 1000] {
                let layout = ShardLayout::new(num_cells, shards);
                assert_eq!(layout.num_cells(), num_cells);
                assert!(layout.num_shards() <= num_cells.max(1));
                let mut covered = 0;
                let mut prev_end = 0;
                for r in layout.ranges() {
                    assert_eq!(r.start, prev_end, "ranges are contiguous");
                    assert!(!r.is_empty(), "no empty shards");
                    covered += r.len();
                    prev_end = r.end;
                }
                assert_eq!(covered, num_cells, "{num_cells} cells / {shards} shards");
                // Near-even: sizes differ by at most one cell.
                let sizes: Vec<usize> = layout.ranges().map(|r| r.len()).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "uneven split {sizes:?}");
            }
        }
    }

    #[test]
    fn shard_of_inverts_ranges() {
        let layout = ShardLayout::new(100, 7);
        for s in 0..layout.num_shards() {
            for cell in layout.range(s) {
                assert_eq!(layout.shard_of(cell).as_usize(), s);
            }
        }
    }

    #[test]
    fn auto_sizing_keeps_paper_grid_single_shard() {
        assert_eq!(ShardLayout::auto_shards(3125), 1, "Table 1 grid stays unsharded");
        assert_eq!(ShardLayout::auto_shards(0), 1);
        assert!(ShardLayout::auto_shards(1 << 20) <= 16);
        assert!(ShardLayout::auto_shards(128 * 1024) >= 8, "big grids fan out");
        // shards: 0 routes through auto sizing.
        assert_eq!(ShardLayout::new(3125, 0).num_shards(), 1);
        assert_eq!(
            ShardLayout::new(128 * 1024, 0).num_shards(),
            ShardLayout::auto_shards(128 * 1024)
        );
    }

    #[test]
    fn explicit_counts_are_clamped_to_cells() {
        assert_eq!(ShardLayout::new(3, 8).num_shards(), 3, "no empty shards");
        assert_eq!(ShardLayout::new(0, 8).num_shards(), 1, "degenerate empty layout");
        assert_eq!(ShardLayout::new(0, 8).num_cells(), 0);
    }

    #[test]
    #[should_panic(expected = "outside layout")]
    fn shard_of_rejects_out_of_range() {
        ShardLayout::new(10, 2).shard_of(10);
    }
}
