//! # uei-index
//!
//! The **Uncertainty Estimation Index** — the paper's primary contribution
//! (§3). UEI lets an uncertainty-sampling exploration loop run over a
//! dataset far larger than memory by predicting *which on-disk subspace*
//! holds the most uncertain objects and loading only that subspace.
//!
//! The five components of §3.1 map onto this crate as follows:
//!
//! 1. the index set `P` of symbolic index points → [`grid::Grid`] +
//!    [`points::IndexPoints`];
//! 2. the mapping `m : p → {chunks}` → [`mapping::ChunkMapping`];
//! 3. the data cache `U` of uniformly sampled unlabeled data → sampled via
//!    [`uei::UeiIndex::sample_unlabeled`], held by the exploration session;
//! 4. the labeled set `L` → `uei_learn::LabeledSet`, held by the session;
//! 5. the dataset `D` in inverted columnar format → `uei_storage`.
//!
//! [`uei::UeiIndex`] is the facade: it owns the grid, the mapping, a
//! byte-budgeted chunk cache, and the optional background
//! [`prefetch::Prefetcher`] (the σ/θ tuning of §3.2).
//!
//! For concurrent multi-session exploration over one dataset,
//! [`engine::EngineCore`] owns the `Arc`-shared immutable half (store
//! handle, manifest, grid, mapping, shared chunk cache) and
//! [`engine::EngineCore::open_session`] stamps out independent per-session
//! `UeiIndex` drivers with private scores, ghost cache ledgers, and
//! virtual disk clocks.

#![warn(missing_docs)]
// Lint policy: `!(a <= b)` comparisons are deliberate — they reject NaN as
// well as inverted bounds, which `a > b` would silently accept. Indexed
// loops that clippy flags as `needless_range_loop` walk several parallel
// arrays by dimension; the index form keeps that symmetry readable.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]

pub mod config;
pub mod engine;
pub mod grid;
pub mod load;
pub mod loader;
pub mod mapping;
pub mod points;
pub mod prefetch;
pub mod select;
pub mod shard;
pub mod uei;

#[cfg(test)]
pub(crate) mod testutil;

pub use config::UeiConfig;
pub use engine::EngineCore;
pub use grid::{CellId, Grid};
pub use load::{LoadSource, RegionFetcher, RegionLoad};
pub use loader::{LoadStats, RegionLoader};
pub use mapping::ChunkMapping;
pub use points::{IndexPoints, RescoreStats};
pub use prefetch::{Ewma, Prefetcher};
pub use select::{DegradeCounters, ShardTops};
pub use shard::ShardLayout;
pub use uei::UeiIndex;
