//! Loading the chosen uncertain region into memory.
//!
//! Implements Algorithm 2 line 19: "load data region with m(p*_i)". The
//! loader resolves the cell's chunk set through the mapping, merges the
//! chunks into tuples (hash-table reconstruction, chunk-at-a-time within
//! the cache budget), and keeps a running average of the load time τ that
//! the prefetcher's horizon θ = ⌈τ/σ⌉ is derived from.

use std::sync::Arc;
use std::time::{Duration, Instant};

use uei_obs::{FlightEventKind, Phase, SessionTelemetry};
use uei_storage::cache::{CacheStats, ChunkCache, SessionChunkView, SharedChunkCache};
use uei_storage::fault::RetryPolicy;
use uei_storage::merge::{
    reconstruct_region_delta, reconstruct_region_with_chunks, ChunkFetch, MergeStats,
    RegionChunkSet,
};
use uei_storage::source::ChunkSource;
use uei_types::stats::Welford;
use uei_types::{DataPoint, Result};

use crate::grid::{CellId, Grid};
use crate::mapping::ChunkMapping;
use crate::prefetch::Ewma;

/// Measurements from one region load.
#[derive(Debug, Clone, Copy)]
pub struct LoadStats {
    /// Merge counters (chunks, bytes, entries — the `e` of O(ke)).
    pub merge: MergeStats,
    /// Modeled (virtual-clock) time the load's I/O cost.
    pub virtual_time: Duration,
    /// Wall-clock time of the load.
    pub wall_time: Duration,
    /// Rows materialized.
    pub rows: usize,
    /// Transient-error retries this load needed (0 = clean first attempt).
    pub retries: u64,
}

/// The cache behind a [`RegionLoader`]: a private single-owner LRU, a
/// handle to the concurrent cache shared with the prefetcher, or a
/// per-session view over an engine's shared cache (deterministic ghost
/// accounting).
#[derive(Debug)]
enum LoaderCache {
    Local(ChunkCache),
    Shared(Arc<SharedChunkCache>),
    Session(SessionChunkView),
}

/// Loads grid cells from a [`ChunkSource`] through a bounded chunk cache.
pub struct RegionLoader {
    source: Arc<dyn ChunkSource>,
    cache: LoaderCache,
    /// Reuse decoded chunks of the previously loaded region (delta
    /// reconstruction) instead of refetching the overlap.
    delta: bool,
    prev: Option<RegionChunkSet>,
    load_times: Welford,
    /// Exponentially weighted τ: what the horizon θ = ⌈τ/σ⌉ actually uses,
    /// so warm-cache steady state is not dragged by cold-start loads. The
    /// Welford mean above stays as the all-time diagnostic.
    recent_load: Ewma,
    retry: RetryPolicy,
    total_retries: u64,
    /// Region-load / chunk-merge spans and retry flight events (inert
    /// when telemetry is disabled).
    telemetry: SessionTelemetry,
}

impl std::fmt::Debug for RegionLoader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegionLoader")
            .field("cache", &self.cache)
            .field("delta", &self.delta)
            .field("loads", &self.load_times.count())
            .field("retry", &self.retry)
            .finish_non_exhaustive()
    }
}

impl RegionLoader {
    /// Creates a loader with a private chunk cache of the given byte
    /// budget and delta reconstruction off — the original layout.
    pub fn new(source: Arc<dyn ChunkSource>, cache_bytes: usize) -> RegionLoader {
        RegionLoader {
            source,
            cache: LoaderCache::Local(ChunkCache::new(cache_bytes)),
            delta: false,
            prev: None,
            load_times: Welford::new(),
            recent_load: Ewma::default(),
            retry: RetryPolicy::default(),
            total_retries: 0,
            telemetry: SessionTelemetry::disabled(),
        }
    }

    /// Creates a loader on a [`SharedChunkCache`] (typically also handed
    /// to the prefetcher), optionally with delta reconstruction.
    pub fn with_shared(
        source: Arc<dyn ChunkSource>,
        cache: Arc<SharedChunkCache>,
        delta: bool,
    ) -> RegionLoader {
        RegionLoader {
            source,
            cache: LoaderCache::Shared(cache),
            delta,
            prev: None,
            load_times: Welford::new(),
            recent_load: Ewma::default(),
            retry: RetryPolicy::default(),
            total_retries: 0,
            telemetry: SessionTelemetry::disabled(),
        }
    }

    /// Creates a per-session loader over an engine's shared cache:
    /// `source` is the session's handle (its tracker is billed the
    /// session's modeled I/O), `view` decides the billing with its ghost
    /// ledger and serves bytes from the shared cache.
    pub fn with_session_view(
        source: Arc<dyn ChunkSource>,
        view: SessionChunkView,
        delta: bool,
    ) -> RegionLoader {
        RegionLoader {
            source,
            cache: LoaderCache::Session(view),
            delta,
            prev: None,
            load_times: Welford::new(),
            recent_load: Ewma::default(),
            retry: RetryPolicy::default(),
            total_retries: 0,
            telemetry: SessionTelemetry::disabled(),
        }
    }

    /// Installs the session's telemetry handle (disabled by default).
    pub fn set_telemetry(&mut self, telemetry: SessionTelemetry) {
        self.telemetry = telemetry;
    }

    /// Sets the retry policy used for transient read failures during loads.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Cumulative transient-error retries across all loads.
    pub fn total_retries(&self) -> u64 {
        self.total_retries
    }

    /// Turns delta reconstruction on or off. Turning it off drops the
    /// retained chunk set.
    pub fn set_delta(&mut self, on: bool) {
        self.delta = on;
        if !on {
            self.prev = None;
        }
    }

    /// Whether delta reconstruction is active.
    pub fn delta_enabled(&self) -> bool {
        self.delta
    }

    /// The underlying chunk source.
    pub fn source(&self) -> &Arc<dyn ChunkSource> {
        &self.source
    }

    /// Chunk-cache statistics (of whichever cache backs this loader). For
    /// a session loader these are the deterministic ghost counters, not
    /// the shared cache's aggregate.
    pub fn cache_stats(&self) -> CacheStats {
        match &self.cache {
            LoaderCache::Local(c) => c.stats(),
            LoaderCache::Shared(c) => c.stats(),
            LoaderCache::Session(v) => v.stats(),
        }
    }

    /// The shared cache handle, when this loader runs on one (directly or
    /// through a session view).
    pub fn shared_cache(&self) -> Option<&Arc<SharedChunkCache>> {
        match &self.cache {
            LoaderCache::Local(_) => None,
            LoaderCache::Shared(c) => Some(c),
            LoaderCache::Session(v) => Some(v.shared()),
        }
    }

    /// All-time average region load time (virtual seconds) — a diagnostic;
    /// θ derivation uses [`Self::recent_load_secs`].
    pub fn average_load_secs(&self) -> f64 {
        self.load_times.mean()
    }

    /// Exponentially weighted recent region load time τ (virtual seconds),
    /// used for θ = ⌈τ/σ⌉ and swap deferral. Unlike the plain average it
    /// adapts to cache warm-up: a few warm loads pull it down even after an
    /// expensive cold start.
    pub fn recent_load_secs(&self) -> f64 {
        self.recent_load.value()
    }

    /// Number of loads performed.
    pub fn loads(&self) -> u64 {
        self.load_times.count()
    }

    /// Loads every tuple of cell `id` (Algorithm 2 line 19).
    pub fn load_cell(
        &mut self,
        grid: &Grid,
        mapping: &ChunkMapping,
        id: CellId,
    ) -> Result<(Vec<DataPoint>, LoadStats)> {
        let _load_span = self.telemetry.span(Phase::RegionLoad);
        let region = grid.cell_region(id)?;
        let chunks = mapping.chunks_for_cell(grid, id)?;
        let wall_start = Instant::now();
        let io_before = self.source.tracker().snapshot();
        // Delta mode: reuse the previous region's decoded chunks for the
        // overlap; only the chunk-ID delta goes through the fetch path. The
        // new region's set replaces the old one afterwards, whether the
        // load came from cache, disk, or reuse — chunks are immutable, so
        // retained copies never go stale. Taken once, before the retry
        // loop: if every attempt fails, the delta baseline is simply lost
        // and the next successful load starts cold.
        let prev = if self.delta { self.prev.take() } else { None };
        let policy = self.retry;
        let delta = self.delta;
        let source = self.source.as_ref();
        let tel = self.telemetry.clone();
        let cache = &mut self.cache;
        // Transient read errors (flaky device, injected fault) are retried
        // with backoff charged to the virtual clock; corruption and hard
        // I/O errors propagate immediately for the caller's fallback
        // ladder. Reconstruction has no partial side effects — the merge
        // table is rebuilt per attempt — so a retry is a clean re-run.
        let ((rows, merge, set), retries) = policy.run(source.tracker(), || {
            // One merge span per attempt: retried merges each count.
            let _merge_span = tel.span(Phase::ChunkMerge);
            let fetch = match cache {
                LoaderCache::Local(c) => ChunkFetch::Cached(c),
                LoaderCache::Shared(c) => ChunkFetch::Shared(c),
                LoaderCache::Session(v) => ChunkFetch::Session(v),
            };
            if delta {
                let (rows, merge, set) =
                    reconstruct_region_delta(source, &region, &chunks, prev.as_ref(), fetch)?;
                Ok((rows, merge, Some(set)))
            } else {
                let (rows, merge) =
                    reconstruct_region_with_chunks(source, &region, &chunks, fetch)?;
                Ok((rows, merge, None))
            }
        })?;
        if self.delta {
            self.prev = set;
        }
        self.total_retries += retries;
        if retries > 0 {
            self.telemetry.event(FlightEventKind::Retry, self.load_times.count(), || {
                format!("cell {id} needed {retries} transient-fault retries")
            });
        }
        let virtual_time = self.source.tracker().delta(&io_before).virtual_elapsed;
        let wall_time = wall_start.elapsed();
        self.load_times.push(virtual_time.as_secs_f64());
        self.recent_load.push(virtual_time.as_secs_f64());
        let stats = LoadStats { merge, virtual_time, wall_time, rows: rows.len(), retries };
        Ok((rows, stats))
    }

    /// Drops all cached chunks and the retained delta set (e.g. between
    /// experiment runs). On a shared cache this also evicts chunks the
    /// prefetcher warmed. A session loader only clears its *own* ghost
    /// ledger — the engine's shared cache belongs to every session and is
    /// never cleared from here.
    pub fn clear_cache(&mut self) {
        match &mut self.cache {
            LoaderCache::Local(c) => c.clear(),
            LoaderCache::Shared(c) => c.clear(),
            LoaderCache::Session(v) => v.clear_ghost(),
        }
        self.prev = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uei_storage::io::{DiskTracker, IoProfile};
    use uei_storage::store::{ColumnStore, StoreConfig};
    use uei_types::{AttributeDef, Rng, Schema};

    fn build(tag: &str, n: usize) -> (Arc<ColumnStore>, Vec<DataPoint>, uei_storage::TempDir) {
        let dir = uei_storage::TempDir::new(&format!("loader-{tag}"));
        let schema = Schema::new(vec![
            AttributeDef::new("x", 0.0, 100.0).unwrap(),
            AttributeDef::new("y", 0.0, 100.0).unwrap(),
        ])
        .unwrap();
        let mut rng = Rng::new(77);
        let rows: Vec<DataPoint> = (0..n)
            .map(|i| {
                DataPoint::new(i as u64, vec![rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)])
            })
            .collect();
        let tracker = DiskTracker::new(IoProfile::nvme());
        let store = ColumnStore::create(
            dir.path(),
            schema,
            &rows,
            StoreConfig { chunk_target_bytes: 512 },
            tracker,
        )
        .unwrap();
        (Arc::new(store), rows, dir)
    }

    fn src(store: &Arc<ColumnStore>) -> Arc<dyn ChunkSource> {
        Arc::clone(store) as Arc<dyn ChunkSource>
    }

    #[test]
    fn loads_exactly_the_cell_population() {
        let (store, rows, _dir) = build("population", 2000);
        let grid = Grid::new(store.schema(), 4).unwrap();
        let mapping = ChunkMapping::build(&grid, store.manifest()).unwrap();
        let mut loader = RegionLoader::new(src(&store), 32 << 20);
        let mut total = 0usize;
        for cell in grid.cell_ids() {
            let (loaded, stats) = loader.load_cell(&grid, &mapping, cell).unwrap();
            let region = grid.cell_region(cell).unwrap();
            let expected: Vec<u64> = rows
                .iter()
                .filter(|p| region.contains(&p.values).unwrap())
                .map(|p| p.id.as_u64())
                .collect();
            let got: Vec<u64> = loaded.iter().map(|p| p.id.as_u64()).collect();
            assert_eq!(got, expected, "cell {cell}");
            assert_eq!(stats.rows, expected.len());
            total += loaded.len();
        }
        assert_eq!(total, 2000, "cells partition the dataset");
    }

    #[test]
    fn tracks_average_load_time() {
        let (store, _, _dir) = build("tau", 1000);
        let grid = Grid::new(store.schema(), 3).unwrap();
        let mapping = ChunkMapping::build(&grid, store.manifest()).unwrap();
        let mut loader = RegionLoader::new(src(&store), 0); // no caching
        assert_eq!(loader.loads(), 0);
        for cell in [0usize, 4, 8] {
            loader.load_cell(&grid, &mapping, cell).unwrap();
        }
        assert_eq!(loader.loads(), 3);
        assert!(loader.average_load_secs() > 0.0, "NVMe-modeled loads take time");
    }

    #[test]
    fn recent_load_time_adapts_to_cache_warmup() {
        let (store, _, _dir) = build("ewmatau", 1000);
        let grid = Grid::new(store.schema(), 3).unwrap();
        let mapping = ChunkMapping::build(&grid, store.manifest()).unwrap();
        let mut loader = RegionLoader::new(src(&store), 256 << 20);
        loader.load_cell(&grid, &mapping, 4).unwrap(); // cold: pays I/O
        let cold = loader.recent_load_secs();
        assert!(cold > 0.0, "cold load has modeled cost");
        assert_eq!(cold, loader.average_load_secs(), "single sample: estimators agree");
        // Warm reloads are free (cache hits, zero virtual time): the EWMA
        // sheds the cold start geometrically while the all-time mean keeps
        // a full share of it.
        for _ in 0..10 {
            loader.load_cell(&grid, &mapping, 4).unwrap();
        }
        assert!(loader.recent_load_secs() < cold * 0.1, "EWMA forgets the cold start");
        assert!(loader.recent_load_secs() < loader.average_load_secs());
    }

    #[test]
    fn cache_makes_reloads_free() {
        let (store, _, _dir) = build("cachehit", 1500);
        let grid = Grid::new(store.schema(), 3).unwrap();
        let mapping = ChunkMapping::build(&grid, store.manifest()).unwrap();
        let mut loader = RegionLoader::new(src(&store), 256 << 20);
        let (first, _) = loader.load_cell(&grid, &mapping, 4).unwrap();
        let before = store.tracker().snapshot();
        let (second, stats) = loader.load_cell(&grid, &mapping, 4).unwrap();
        assert_eq!(first, second);
        assert_eq!(store.tracker().delta(&before).stats.bytes_read, 0);
        assert_eq!(stats.virtual_time, Duration::ZERO);
    }

    #[test]
    fn shared_cache_loader_matches_local() {
        let (store, _, _dir) = build("sharedmatch", 1500);
        let grid = Grid::new(store.schema(), 3).unwrap();
        let mapping = ChunkMapping::build(&grid, store.manifest()).unwrap();
        let shared = Arc::new(SharedChunkCache::new(64 << 20, 4));
        let mut a = RegionLoader::new(src(&store), 64 << 20);
        let mut b = RegionLoader::with_shared(src(&store), shared, false);
        for cell in [0usize, 4, 5, 8] {
            let (ra, _) = a.load_cell(&grid, &mapping, cell).unwrap();
            let (rb, _) = b.load_cell(&grid, &mapping, cell).unwrap();
            assert_eq!(ra, rb, "cell {cell}");
        }
        assert!(b.cache_stats().misses > 0);
        assert!(b.shared_cache().is_some());
        assert!(a.shared_cache().is_none());
    }

    #[test]
    fn delta_reload_of_same_cell_is_free_without_any_cache() {
        let (store, _, _dir) = build("deltafree", 1500);
        let grid = Grid::new(store.schema(), 3).unwrap();
        let mapping = ChunkMapping::build(&grid, store.manifest()).unwrap();
        // Zero cache budget: everything bypasses; only the delta set can
        // make the reload free.
        let shared = Arc::new(SharedChunkCache::new(0, 2));
        let mut loader = RegionLoader::with_shared(src(&store), shared, true);
        let (first, _) = loader.load_cell(&grid, &mapping, 4).unwrap();
        let before = store.tracker().snapshot();
        let (second, stats) = loader.load_cell(&grid, &mapping, 4).unwrap();
        assert_eq!(first, second);
        assert_eq!(store.tracker().delta(&before).stats.bytes_read, 0);
        assert_eq!(stats.merge.chunks_loaded, 0);
        assert!(stats.merge.chunks_reused > 0);
        assert_eq!(stats.virtual_time, Duration::ZERO);
        // Turning delta off drops the retained set: the next reload pays.
        loader.set_delta(false);
        let before = store.tracker().snapshot();
        let (third, stats) = loader.load_cell(&grid, &mapping, 4).unwrap();
        assert_eq!(first, third);
        assert!(store.tracker().delta(&before).stats.bytes_read > 0);
        assert_eq!(stats.merge.chunks_reused, 0);
    }

    #[test]
    fn delta_between_adjacent_cells_reads_only_the_difference() {
        let (store, rows, _dir) = build("deltaadj", 3000);
        let grid = Grid::new(store.schema(), 3).unwrap();
        let mapping = ChunkMapping::build(&grid, store.manifest()).unwrap();
        let shared = Arc::new(SharedChunkCache::new(0, 2)); // delta only
        let mut loader = RegionLoader::with_shared(src(&store), shared, true);
        loader.load_cell(&grid, &mapping, 0).unwrap();
        // Adjacent cell in x: shares the y-dimension chunk range entirely.
        let (got, stats) = loader.load_cell(&grid, &mapping, 1).unwrap();
        assert!(stats.merge.chunks_reused > 0, "adjacent cells share chunks");
        let region = grid.cell_region(1).unwrap();
        let expected: Vec<u64> = rows
            .iter()
            .filter(|p| region.contains(&p.values).unwrap())
            .map(|p| p.id.as_u64())
            .collect();
        let got_ids: Vec<u64> = got.iter().map(|p| p.id.as_u64()).collect();
        assert_eq!(got_ids, expected, "delta load is exact");
    }

    #[test]
    fn loading_a_cell_reads_less_than_the_whole_dataset() {
        // The paper's O(kn) → O(ke): one subspace costs a fraction of a
        // full pass over the inverted files.
        let (store, _, _dir) = build("fraction", 4000);
        let grid = Grid::new(store.schema(), 5).unwrap();
        let mapping = ChunkMapping::build(&grid, store.manifest()).unwrap();
        let mut loader = RegionLoader::new(src(&store), 0);
        let (_, stats) = loader.load_cell(&grid, &mapping, 12).unwrap();
        let all_chunk_bytes = store.manifest().total_chunk_bytes();
        assert!(
            stats.merge.chunk_bytes < all_chunk_bytes / 2,
            "one cell ({} B) should cost well under the full inverted set ({} B)",
            stats.merge.chunk_bytes,
            all_chunk_bytes
        );
    }
}
