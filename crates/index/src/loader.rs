//! Loading the chosen uncertain region into memory.
//!
//! Implements Algorithm 2 line 19: "load data region with m(p*_i)". The
//! loader resolves the cell's chunk set through the mapping, merges the
//! chunks into tuples (hash-table reconstruction, chunk-at-a-time within
//! the cache budget), and keeps a running average of the load time τ that
//! the prefetcher's horizon θ = ⌈τ/σ⌉ is derived from.

use std::sync::Arc;
use std::time::{Duration, Instant};

use uei_storage::cache::ChunkCache;
use uei_storage::merge::{reconstruct_region_with_chunks, MergeStats};
use uei_storage::store::ColumnStore;
use uei_types::stats::Welford;
use uei_types::{DataPoint, Result};

use crate::grid::{CellId, Grid};
use crate::mapping::ChunkMapping;

/// Measurements from one region load.
#[derive(Debug, Clone, Copy)]
pub struct LoadStats {
    /// Merge counters (chunks, bytes, entries — the `e` of O(ke)).
    pub merge: MergeStats,
    /// Modeled (virtual-clock) time the load's I/O cost.
    pub virtual_time: Duration,
    /// Wall-clock time of the load.
    pub wall_time: Duration,
    /// Rows materialized.
    pub rows: usize,
}

/// Loads grid cells from the column store through a bounded chunk cache.
#[derive(Debug)]
pub struct RegionLoader {
    store: Arc<ColumnStore>,
    cache: ChunkCache,
    load_times: Welford,
}

impl RegionLoader {
    /// Creates a loader with the given chunk-cache byte budget.
    pub fn new(store: Arc<ColumnStore>, cache_bytes: usize) -> RegionLoader {
        RegionLoader { store, cache: ChunkCache::new(cache_bytes), load_times: Welford::new() }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<ColumnStore> {
        &self.store
    }

    /// Chunk-cache statistics.
    pub fn cache_stats(&self) -> uei_storage::cache::CacheStats {
        self.cache.stats()
    }

    /// Average region load time τ (virtual seconds), used for θ = ⌈τ/σ⌉.
    pub fn average_load_secs(&self) -> f64 {
        self.load_times.mean()
    }

    /// Number of loads performed.
    pub fn loads(&self) -> u64 {
        self.load_times.count()
    }

    /// Loads every tuple of cell `id` (Algorithm 2 line 19).
    pub fn load_cell(
        &mut self,
        grid: &Grid,
        mapping: &ChunkMapping,
        id: CellId,
    ) -> Result<(Vec<DataPoint>, LoadStats)> {
        let region = grid.cell_region(id)?;
        let chunks = mapping.chunks_for_cell(grid, id)?;
        let wall_start = Instant::now();
        let io_before = self.store.tracker().snapshot();
        let (rows, merge) = reconstruct_region_with_chunks(
            &self.store,
            &region,
            &chunks,
            Some(&mut self.cache),
        )?;
        let virtual_time = self.store.tracker().delta(&io_before).virtual_elapsed;
        let wall_time = wall_start.elapsed();
        self.load_times.push(virtual_time.as_secs_f64());
        let stats = LoadStats { merge, virtual_time, wall_time, rows: rows.len() };
        Ok((rows, stats))
    }

    /// Drops all cached chunks (e.g. between experiment runs).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use uei_storage::io::{DiskTracker, IoProfile};
    use uei_storage::store::StoreConfig;
    use uei_types::{AttributeDef, Rng, Schema};

    fn build(tag: &str, n: usize) -> (Arc<ColumnStore>, Vec<DataPoint>, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "uei-loader-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let schema = Schema::new(vec![
            AttributeDef::new("x", 0.0, 100.0).unwrap(),
            AttributeDef::new("y", 0.0, 100.0).unwrap(),
        ])
        .unwrap();
        let mut rng = Rng::new(77);
        let rows: Vec<DataPoint> = (0..n)
            .map(|i| {
                DataPoint::new(
                    i as u64,
                    vec![rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)],
                )
            })
            .collect();
        let tracker = DiskTracker::new(IoProfile::nvme());
        let store = ColumnStore::create(
            &dir,
            schema,
            &rows,
            StoreConfig { chunk_target_bytes: 512 },
            tracker,
        )
        .unwrap();
        (Arc::new(store), rows, dir)
    }

    #[test]
    fn loads_exactly_the_cell_population() {
        let (store, rows, dir) = build("population", 2000);
        let grid = Grid::new(store.schema(), 4).unwrap();
        let mapping = ChunkMapping::build(&grid, store.manifest()).unwrap();
        let mut loader = RegionLoader::new(Arc::clone(&store), 32 << 20);
        let mut total = 0usize;
        for cell in grid.cell_ids() {
            let (loaded, stats) = loader.load_cell(&grid, &mapping, cell).unwrap();
            let region = grid.cell_region(cell).unwrap();
            let expected: Vec<u64> = rows
                .iter()
                .filter(|p| region.contains(&p.values).unwrap())
                .map(|p| p.id.as_u64())
                .collect();
            let got: Vec<u64> = loaded.iter().map(|p| p.id.as_u64()).collect();
            assert_eq!(got, expected, "cell {cell}");
            assert_eq!(stats.rows, expected.len());
            total += loaded.len();
        }
        assert_eq!(total, 2000, "cells partition the dataset");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tracks_average_load_time() {
        let (store, _, dir) = build("tau", 1000);
        let grid = Grid::new(store.schema(), 3).unwrap();
        let mapping = ChunkMapping::build(&grid, store.manifest()).unwrap();
        let mut loader = RegionLoader::new(Arc::clone(&store), 0); // no caching
        assert_eq!(loader.loads(), 0);
        for cell in [0usize, 4, 8] {
            loader.load_cell(&grid, &mapping, cell).unwrap();
        }
        assert_eq!(loader.loads(), 3);
        assert!(loader.average_load_secs() > 0.0, "NVMe-modeled loads take time");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_makes_reloads_free() {
        let (store, _, dir) = build("cachehit", 1500);
        let grid = Grid::new(store.schema(), 3).unwrap();
        let mapping = ChunkMapping::build(&grid, store.manifest()).unwrap();
        let mut loader = RegionLoader::new(Arc::clone(&store), 256 << 20);
        let (first, _) = loader.load_cell(&grid, &mapping, 4).unwrap();
        let before = store.tracker().snapshot();
        let (second, stats) = loader.load_cell(&grid, &mapping, 4).unwrap();
        assert_eq!(first, second);
        assert_eq!(store.tracker().delta(&before).stats.bytes_read, 0);
        assert_eq!(stats.virtual_time, Duration::ZERO);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loading_a_cell_reads_less_than_the_whole_dataset() {
        // The paper's O(kn) → O(ke): one subspace costs a fraction of a
        // full pass over the inverted files.
        let (store, _, dir) = build("fraction", 4000);
        let grid = Grid::new(store.schema(), 5).unwrap();
        let mapping = ChunkMapping::build(&grid, store.manifest()).unwrap();
        let mut loader = RegionLoader::new(Arc::clone(&store), 0);
        let (_, stats) = loader.load_cell(&grid, &mapping, 12).unwrap();
        let all_chunk_bytes = store.manifest().total_chunk_bytes();
        assert!(
            stats.merge.chunk_bytes < all_chunk_bytes / 2,
            "one cell ({} B) should cost well under the full inverted set ({} B)",
            stats.merge.chunk_bytes,
            all_chunk_bytes
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
