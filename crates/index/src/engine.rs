//! The shared engine core for concurrent multi-session exploration.
//!
//! The paper's experiments run one analyst against one UEI. Serving many
//! analysts over the *same* dataset does not need one index copy per
//! analyst: everything heavy is immutable after the initialization phase
//! (Algorithm 2 lines 2–11) — the on-disk chunk files, their manifest
//! catalog, the grid geometry, the point→chunk mapping `m` — and the
//! decoded-chunk cache is explicitly designed to be shared. [`EngineCore`]
//! owns exactly that immutable half behind `Arc`s, and
//! [`EngineCore::open_session`] stamps out independent per-session
//! [`UeiIndex`] drivers over it:
//!
//! - **shared, `Arc`-owned by the core**: the [`ColumnStore`] handle (chunk
//!   files + manifest), the [`SharedChunkCache`], the [`Grid`], and the
//!   [`ChunkMapping`];
//! - **private to each session**: the symbolic index-point scores, the
//!   region loader with its [ghost ledger](uei_storage::cache::SessionChunkView),
//!   the optional prefetcher, the degradation counters, and a fresh
//!   [`DiskTracker`] whose virtual clock models that session's disk alone.
//!
//! Sessions opened from one core may run concurrently on separate threads
//! with **zero copies of the store**: a session's store handle shares the
//! directory path and `Arc<Manifest>` of the core's and differs only in its
//! tracker. Physical chunk reads that fill the shared cache are billed to
//! the core's I/O ledger; each session's *modeled* I/O is decided by its
//! private ghost ledger, so a session's iteration traces are bit-identical
//! whether it runs alone or next to seven noisy neighbours.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use uei_learn::strategy::UncertaintyMeasure;
use uei_obs::EngineTelemetry;
use uei_storage::cache::{CacheStats, SessionChunkView, SharedChunkCache};
use uei_storage::io::DiskTracker;
use uei_storage::source::ChunkSource;
use uei_storage::store::ColumnStore;
use uei_types::Result;

use crate::config::UeiConfig;
use crate::grid::Grid;
use crate::loader::RegionLoader;
use crate::mapping::ChunkMapping;
use crate::points::IndexPoints;
use crate::prefetch::Prefetcher;
use crate::uei::UeiIndex;

/// The thread-safe shared core of a multi-session UEI deployment.
///
/// Owns the immutable resources every session reads — store handle,
/// manifest catalog, grid geometry, chunk mapping, shared decoded-chunk
/// cache — and opens independent [`UeiIndex`] sessions over them. See the
/// [module docs](self) for the ownership split.
pub struct EngineCore {
    /// The core's own store handle; its tracker is the engine I/O ledger
    /// that physical cache-fill reads are billed to.
    store: Arc<ColumnStore>,
    /// The same handle, pre-coerced to the trait object the read path uses.
    physical: Arc<dyn ChunkSource>,
    grid: Arc<Grid>,
    mapping: Arc<ChunkMapping>,
    /// Index-point template cloned into each new session. The immutable
    /// halves inside — cell centers and shard layout — are `Arc`-shared,
    /// so a clone copies only per-session score state.
    points_template: IndexPoints,
    /// The engine-wide decoded-chunk cache (None when
    /// [`UeiConfig::shared_cache`] is off — sessions then keep private
    /// caches and share only the immutable store).
    cache: Option<Arc<SharedChunkCache>>,
    config: UeiConfig,
    measure: UncertaintyMeasure,
    sessions_opened: AtomicU64,
    /// Engine-wide telemetry: one metrics registry shared by every
    /// session handle plus the per-session flight recorders. Inert (and
    /// near-free) unless [`UeiConfig::telemetry`] enables it.
    telemetry: Arc<EngineTelemetry>,
}

impl std::fmt::Debug for EngineCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineCore")
            .field("grid", &self.grid)
            .field("config", &self.config)
            .field("sessions_opened", &self.sessions_opened)
            .finish_non_exhaustive()
    }
}

impl EngineCore {
    /// Builds an engine core over an initialized column store with the
    /// default uncertainty measure.
    ///
    /// Validates `config` against the store's schema up front
    /// ([`UeiConfig::validate`]) so a degenerate knob fails here, once,
    /// rather than inside every session.
    pub fn new(store: Arc<ColumnStore>, config: UeiConfig) -> Result<EngineCore> {
        Self::with_measure(store, config, UncertaintyMeasure::LeastConfidence)
    }

    /// [`EngineCore::new`] with an explicit uncertainty measure.
    pub fn with_measure(
        store: Arc<ColumnStore>,
        config: UeiConfig,
        measure: UncertaintyMeasure,
    ) -> Result<EngineCore> {
        config.validate(store.schema().dims())?;
        let grid = Arc::new(Grid::new(store.schema(), config.cells_per_dim)?);
        let mapping = Arc::new(ChunkMapping::build(&grid, store.manifest())?);
        let points_template = IndexPoints::from_grid_with_shards(&grid, config.shards)?;
        let physical: Arc<dyn ChunkSource> = Arc::clone(&store) as Arc<dyn ChunkSource>;
        let cache = config.shared_cache.then(|| {
            Arc::new(SharedChunkCache::new(config.chunk_cache_bytes, config.cache_shards))
        });
        let telemetry = Arc::new(EngineTelemetry::new(config.telemetry));
        Ok(EngineCore {
            store,
            physical,
            grid,
            mapping,
            points_template,
            cache,
            config,
            measure,
            sessions_opened: AtomicU64::new(0),
            telemetry,
        })
    }

    /// Opens an independent exploration session against this core.
    ///
    /// The returned [`UeiIndex`] shares the core's store, grid, mapping,
    /// and decoded-chunk cache (all by `Arc` — no data is copied) but owns
    /// its index-point scores, region loader, ghost cache ledger, optional
    /// prefetcher, degradation counters, and a fresh virtual disk clock.
    /// Sessions are `Send` and safe to drive from separate threads.
    pub fn open_session(&self) -> Result<UeiIndex> {
        let profile = self.store.tracker().profile();
        let session_store = Arc::new(self.store.with_tracker(DiskTracker::new(profile)));
        let source: Arc<dyn ChunkSource> = Arc::clone(&session_store) as Arc<dyn ChunkSource>;
        let mut loader = match &self.cache {
            Some(cache) => RegionLoader::with_session_view(
                Arc::clone(&source),
                SessionChunkView::new(
                    Arc::clone(cache),
                    Arc::clone(&self.physical),
                    self.config.chunk_cache_bytes,
                ),
                self.config.delta_reconstruction,
            ),
            None => {
                let mut l = RegionLoader::new(Arc::clone(&source), self.config.chunk_cache_bytes);
                l.set_delta(self.config.delta_reconstruction);
                l
            }
        };
        loader.set_retry_policy(self.config.retry);
        let prefetcher = if self.config.prefetch {
            // The prefetcher's background I/O gets its own tracker so it
            // never perturbs the session's foreground virtual clock.
            let bg: Arc<dyn ChunkSource> =
                Arc::new(self.store.with_tracker(DiskTracker::new(profile)))
                    as Arc<dyn ChunkSource>;
            Some(Prefetcher::spawn_with_source(
                bg,
                Arc::clone(&self.grid),
                Arc::clone(&self.mapping),
                self.cache.as_ref().map(Arc::clone),
            )?)
        } else {
            None
        };
        self.sessions_opened.fetch_add(1, Ordering::Relaxed);
        // The session's telemetry reads (never charges) the session's own
        // virtual clock, so dual-duration spans stay per-session exact.
        let telemetry =
            self.telemetry.open_session(Some(session_store.tracker().as_virtual_clock()));
        Ok(UeiIndex::from_parts(
            session_store,
            Arc::clone(&self.grid),
            Arc::clone(&self.mapping),
            self.points_template.clone(),
            loader,
            prefetcher,
            // Sessions report their own ghost-ledger cache stats; the
            // engine-wide aggregate stays on `EngineCore::cache_stats`.
            None,
            self.config.clone(),
            self.measure,
            telemetry,
        ))
    }

    /// The shared column store handle (engine I/O ledger tracker).
    pub fn store(&self) -> &Arc<ColumnStore> {
        &self.store
    }

    /// The grid of subspaces shared by every session.
    pub fn grid(&self) -> &Arc<Grid> {
        &self.grid
    }

    /// The point→chunk mapping `m` shared by every session.
    pub fn mapping(&self) -> &Arc<ChunkMapping> {
        &self.mapping
    }

    /// The validated engine configuration.
    pub fn config(&self) -> &UeiConfig {
        &self.config
    }

    /// The uncertainty measure sessions are opened with.
    pub fn measure(&self) -> UncertaintyMeasure {
        self.measure
    }

    /// The engine-wide decoded-chunk cache, when sharing is enabled.
    pub fn shared_cache(&self) -> Option<&Arc<SharedChunkCache>> {
        self.cache.as_ref()
    }

    /// Aggregate statistics of the engine-wide chunk cache across all
    /// sessions (zeros when sharing is off).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// The engine I/O ledger: every physical read that filled the shared
    /// cache, regardless of which session triggered it.
    pub fn io_ledger(&self) -> &DiskTracker {
        self.store.tracker()
    }

    /// How many sessions have been opened over this core so far.
    pub fn sessions_opened(&self) -> u64 {
        self.sessions_opened.load(Ordering::Relaxed)
    }

    /// The engine-wide telemetry hub: metrics registry, per-session phase
    /// breakdowns, and the merged flight-recorder view that
    /// [`EngineTelemetry::postmortem`] dumps.
    pub fn telemetry(&self) -> &Arc<EngineTelemetry> {
        &self.telemetry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uei_storage::io::IoProfile;
    use uei_storage::store::StoreConfig;
    use uei_storage::TempDir;
    use uei_types::{AttributeDef, DataPoint, Rng, Schema};

    fn build_store(tag: &str, n: usize) -> (Arc<ColumnStore>, TempDir) {
        let dir = TempDir::new(&format!("engine-{tag}"));
        let schema = Schema::new(vec![
            AttributeDef::new("x", 0.0, 100.0).unwrap(),
            AttributeDef::new("y", 0.0, 100.0).unwrap(),
        ])
        .unwrap();
        let mut rng = Rng::new(11);
        let rows: Vec<DataPoint> = (0..n)
            .map(|i| {
                DataPoint::new(i as u64, vec![rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)])
            })
            .collect();
        let tracker = DiskTracker::new(IoProfile::nvme());
        let store = ColumnStore::create(
            dir.path(),
            schema,
            &rows,
            StoreConfig { chunk_target_bytes: 512 },
            tracker,
        )
        .unwrap();
        (Arc::new(store), dir)
    }

    fn test_config() -> UeiConfig {
        UeiConfig {
            cells_per_dim: 3,
            chunk_cache_bytes: 1 << 20,
            prefetch: false,
            parallel: false,
            ..UeiConfig::default()
        }
    }

    #[test]
    fn rejects_degenerate_config_at_construction() {
        let (store, _dir) = build_store("validate", 64);
        let cfg = UeiConfig { cells_per_dim: 0, ..test_config() };
        assert!(EngineCore::new(store, cfg).is_err());
    }

    #[test]
    fn sessions_share_store_and_cache_but_not_clocks() {
        let (store, _dir) = build_store("share", 256);
        let engine = EngineCore::new(Arc::clone(&store), test_config()).unwrap();
        let mut a = engine.open_session().unwrap();
        let mut b = engine.open_session().unwrap();
        assert_eq!(engine.sessions_opened(), 2);

        // Both sessions resolve the same shared cache instance.
        let ca = Arc::as_ptr(a.shared_cache().unwrap());
        let cb = Arc::as_ptr(b.shared_cache().unwrap());
        assert_eq!(ca, cb, "sessions must share one cache");
        assert_eq!(ca, Arc::as_ptr(engine.shared_cache().unwrap()));

        // Both share the manifest (no store copies), but have distinct
        // trackers: loading in one session leaves the other's clock at 0.
        let cell = a.grid().cell_of(&[10.0, 10.0]).unwrap();
        a.load_cell(cell).unwrap();
        assert!(a.store().tracker().virtual_elapsed() > std::time::Duration::ZERO);
        assert_eq!(
            b.store().tracker().virtual_elapsed(),
            std::time::Duration::ZERO,
            "session B's modeled clock must be untouched by session A"
        );

        // The physical fill was billed to the engine ledger, once.
        let engine_bytes = engine.io_ledger().stats().bytes_read;
        assert!(engine_bytes > 0);

        // B loading the same cell hits the shared cache: no new physical
        // bytes, but B's modeled clock is charged exactly like A's was.
        b.load_cell(cell).unwrap();
        assert_eq!(engine.io_ledger().stats().bytes_read, engine_bytes);
        assert_eq!(
            a.store().tracker().stats().bytes_read,
            b.store().tracker().stats().bytes_read,
            "both sessions must model identical I/O for the same access"
        );
    }

    #[test]
    fn session_traces_match_standalone_index() {
        // A session over a shared engine must behave exactly like a
        // standalone index built over its own store handle.
        let (store, _dir) = build_store("parity", 256);
        let engine = EngineCore::new(Arc::clone(&store), test_config()).unwrap();
        let mut session = engine.open_session().unwrap();

        let solo_tracker = DiskTracker::new(store.tracker().profile());
        let solo_store = Arc::new(store.with_tracker(solo_tracker));
        let mut solo = UeiIndex::build(solo_store, test_config()).unwrap();

        for probe in [[10.0, 10.0], [50.0, 50.0], [90.0, 90.0], [10.0, 10.0]] {
            let cell = solo.grid().cell_of(&probe).unwrap();
            let (rows_solo, _) = solo.load_cell(cell).unwrap();
            let (rows_sess, _) = session.load_cell(cell).unwrap();
            assert_eq!(rows_solo, rows_sess, "region contents must match");
        }
        let st = solo.store().tracker();
        let se = session.store().tracker();
        assert_eq!(st.stats(), se.stats());
        assert_eq!(st.virtual_elapsed(), se.virtual_elapsed());
        assert_eq!(solo.cache_stats(), session.cache_stats());
    }
}
