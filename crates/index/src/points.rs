//! The symbolic index points and their uncertainty scores.
//!
//! "In each iteration, UEI updates the uncertainty of all index points
//! p_i ∈ P based on the most recently trained predictive model M_{t−1},
//! which serves as the uncertainty estimator. […] Then, the index point
//! p*_i for which the current exploration model is most uncertain will be
//! chosen" (§3.2, Eq. 3).
//!
//! The score plane is sharded (DESIGN.md §14): a [`ShardLayout`] partitions
//! the flat score/radius arrays into contiguous cell ranges, rescoring fans
//! out shard-parallel, and each shard keeps a cached top-θ candidate list
//! ([`ShardTops`]) that selection merges deterministically. Scores and
//! selection are **bit-identical at every shard count**.

use std::sync::Arc;

use rayon::prelude::*;
use uei_learn::strategy::UncertaintyMeasure;
use uei_learn::{Classifier, ModelDelta, ScoredBatch};
use uei_types::{PointMatrix, Result, ShardId, UeiError};

use crate::grid::{CellId, Grid};
use crate::select::ShardTops;
use crate::shard::ShardLayout;

/// Work accounting of one rescoring pass: how many index points were
/// actually pushed through the model versus served from the score cache.
///
/// The counters are plain sums, so the same type doubles as a cumulative
/// tally (see [`Self::since`] for window deltas).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RescoreStats {
    /// Points scored through the model this pass (dirty or full).
    pub points_rescored: u64,
    /// Points whose cached score was provably still valid and kept.
    pub points_cached: u64,
}

impl RescoreStats {
    /// Adds another pass's counts into this tally.
    pub fn accumulate(&mut self, other: RescoreStats) {
        self.points_rescored += other.points_rescored;
        self.points_cached += other.points_cached;
    }

    /// The counter deltas accumulated since `earlier` (saturating, so a
    /// stale snapshot cannot underflow).
    pub fn since(&self, earlier: &RescoreStats) -> RescoreStats {
        RescoreStats {
            points_rescored: self.points_rescored.saturating_sub(earlier.points_rescored),
            points_cached: self.points_cached.saturating_sub(earlier.points_cached),
        }
    }
}

/// Shard-granular locality-prune state derived from one full tracked
/// pass: each shard's axis-aligned bounding box of center positions in
/// the model's influence space ([`Classifier::influence_position`]),
/// plus its largest cached squared influence radius. Incremental passes
/// skip the delta sweep of every shard whose inflated max radius cannot
/// reach any added example — the shard is provably all-clean, so the
/// result stays bit-identical (DESIGN.md §14).
///
/// Center positions are computed once per full pass and reused across
/// the retrained successor models of the session (the
/// [`Classifier::influence_position`] contract requires the embedding of
/// a fixed input to be training-set-independent); `max_r2` is
/// re-derived for a shard whenever dirty rescoring patches its radii.
#[derive(Debug, Clone)]
struct ShardPrune {
    /// Influence-space dimensionality of the cached boxes.
    dims: usize,
    /// Per-shard box corners, shard `s` occupying `s*dims..(s+1)*dims`.
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Per-shard maximum cached squared radius; `+∞` (some radius
    /// non-finite, hence unconditionally dirty) keeps the shard
    /// unprunable.
    max_r2: Vec<f64>,
    /// Shards containing a center the model could not position.
    opaque: Vec<bool>,
}

impl ShardPrune {
    /// Whether shard `s` is provably untouched: every added example's
    /// influence-space position sits at least the shard's inflated max
    /// radius away from the shard's bounding box, so no (margin-inflated)
    /// influence ball in the shard can contain it.
    fn shard_is_clean(&self, s: usize, added_pos: &[Vec<f64>], inflate: f64) -> bool {
        if self.opaque[s] {
            return false;
        }
        let bound = self.max_r2[s] * inflate;
        if !bound.is_finite() {
            return false;
        }
        let lo = &self.lo[s * self.dims..(s + 1) * self.dims];
        let hi = &self.hi[s * self.dims..(s + 1) * self.dims];
        added_pos.iter().all(|a| dist2_to_box(a, lo, hi) >= bound)
    }
}

/// Squared Euclidean distance from `p` to the axis-aligned box `[lo, hi]`
/// (zero inside the box).
fn dist2_to_box(p: &[f64], lo: &[f64], hi: &[f64]) -> f64 {
    let mut acc = 0.0;
    for d in 0..p.len() {
        let gap = if p[d] < lo[d] {
            lo[d] - p[d]
        } else if p[d] > hi[d] {
            p[d] - hi[d]
        } else {
            0.0
        };
        acc += gap * gap;
    }
    acc
}

/// Maximum of a shard's cached squared radii; any non-finite entry (an
/// unconditionally dirty point) collapses to `+∞`, disabling pruning.
fn max_radius2(radii2: &[f64]) -> f64 {
    let mut max = f64::NEG_INFINITY;
    for &r in radii2 {
        if !r.is_finite() {
            return f64::INFINITY;
        }
        if r > max {
            max = r;
        }
    }
    max
}

/// The index set `P`: one symbolic point (cell center) per grid cell, with
/// the current uncertainty estimate of each.
///
/// The uncertainty vector doubles as a **score cache**: each full tracked
/// rescore also captures per-point influence radii, and subsequent
/// [`Self::update_incremental`] passes consult the model's
/// [`ModelDelta`] to rescore only the points whose score may have changed,
/// keeping every other score verbatim. `model_version` tags the cache with
/// the (monotonically increasing) generation of the model that produced
/// it.
///
/// The immutable halves — cell centers and shard layout — sit behind
/// `Arc`s, so cloning an `IndexPoints` (one clone per engine session)
/// shares the geometry and copies only the per-session score state.
#[derive(Debug, Clone)]
pub struct IndexPoints {
    /// Cell centers in one flat row-major matrix: batch scoring and the
    /// influence-ball delta sweep it linearly, no per-center allocation.
    centers: Arc<PointMatrix>,
    /// The contiguous-range shard partition of `0..len`.
    layout: Arc<ShardLayout>,
    uncertainty: Vec<f64>,
    updated: bool,
    /// Squared influence radii from the last tracked rescore; `None` when
    /// the last pass was untracked or the model does not report radii.
    radii2: Option<Vec<f64>>,
    /// Per-shard cached top-θ candidate lists for selection.
    tops: ShardTops,
    /// Shard-granular locality-prune cache; rebuilt lazily after every
    /// full pass, `None` while radii are absent.
    prune: Option<ShardPrune>,
    /// Cumulative shards whose delta sweep the locality prune skipped.
    shards_pruned: u64,
    /// Generation counter of the cached scores: bumped on every rescoring
    /// pass, of any kind.
    model_version: u64,
    /// Incremental passes since the last full rescore — drives the
    /// periodic-full-rescore staleness bound.
    incremental_passes: usize,
    /// Cumulative shards whose scores a rescoring pass recomputed (full
    /// passes count every shard; incremental passes only the dirty ones).
    shards_touched: u64,
}

impl IndexPoints {
    /// Materializes the index points of a grid (Algorithm 2 lines 7–11)
    /// with the shard count sized automatically from the cell count.
    pub fn from_grid(grid: &Grid) -> Result<IndexPoints> {
        Self::from_grid_with_shards(grid, 0)
    }

    /// [`Self::from_grid`] with an explicit shard count (`0` = auto, other
    /// values clamped to `[1, num_cells]` — see [`ShardLayout::new`]).
    pub fn from_grid_with_shards(grid: &Grid, shards: usize) -> Result<IndexPoints> {
        let mut centers = PointMatrix::with_capacity(grid.num_cells(), grid.dims());
        for id in grid.cell_ids() {
            centers.push_row(&grid.cell_center(id)?)?;
        }
        let n = centers.len();
        let layout = ShardLayout::new(n, shards);
        let tops = ShardTops::new(layout.num_shards());
        Ok(IndexPoints {
            centers: Arc::new(centers),
            layout: Arc::new(layout),
            uncertainty: vec![0.0; n],
            updated: false,
            radii2: None,
            tops,
            prune: None,
            shards_pruned: 0,
            model_version: 0,
            incremental_passes: 0,
            shards_touched: 0,
        })
    }

    /// Number of index points (`|P|`).
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// Whether the set is empty (never true for a valid grid).
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }

    /// The shard partition of the score plane.
    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    /// Number of shards the score plane is partitioned into.
    pub fn num_shards(&self) -> usize {
        self.layout.num_shards()
    }

    /// Cumulative count of shards recomputed across all rescoring passes
    /// (full passes add every shard, incremental passes only the dirty
    /// ones). Snapshot-and-subtract for per-iteration deltas.
    pub fn shards_touched(&self) -> u64 {
        self.shards_touched
    }

    /// Cumulative count of shards whose delta sweep the locality prune
    /// skipped outright (the shard was provably beyond every added
    /// example's inflated influence ball).
    pub fn shards_pruned(&self) -> u64 {
        self.shards_pruned
    }

    /// The symbolic point of cell `id`.
    pub fn center(&self, id: CellId) -> Result<&[f64]> {
        if id < self.centers.len() {
            Ok(self.centers.row(id))
        } else {
            Err(UeiError::not_found(format!("index point {id}")))
        }
    }

    /// The last computed uncertainty of cell `id`.
    pub fn uncertainty(&self, id: CellId) -> Result<f64> {
        self.uncertainty
            .get(id)
            .copied()
            .ok_or_else(|| UeiError::not_found(format!("index point {id}")))
    }

    /// Re-scores every index point with the current model
    /// (`updateUncertainty(P, M)`, Algorithm 2 line 17).
    ///
    /// Scoring fans out shard-parallel, each shard batching its slice
    /// through [`Classifier::predict_proba_batch`]; the batch contract is
    /// element-wise, so the resulting scores are bit-identical to
    /// [`Self::update_sequential`] at any shard count.
    pub fn update(&mut self, model: &dyn Classifier, measure: UncertaintyMeasure) {
        let layout = Arc::clone(&self.layout);
        let centers = Arc::clone(&self.centers);
        let parts: Vec<Vec<f64>> = (0..layout.num_shards())
            .into_par_iter()
            .map(|s| {
                let range = layout.range(s);
                let refs: Vec<&[f64]> = range.map(|i| centers.row(i)).collect();
                measure.score_points(model, &refs)
            })
            .collect();
        self.uncertainty = parts.concat();
        self.finish_full_pass(None);
    }

    /// The pre-batching scoring loop: one independent `predict_proba` call
    /// per index point. Kept as the baseline the scoring benchmark (and
    /// the `parallel: false` config knob) compares against.
    pub fn update_sequential(&mut self, model: &dyn Classifier, measure: UncertaintyMeasure) {
        for (i, center) in self.centers.rows().enumerate() {
            self.uncertainty[i] = measure.score(model.predict_proba(center));
        }
        self.finish_full_pass(None);
    }

    /// Full rescore through the tracked batch path: same bit-identical
    /// scores as [`Self::update`], but also captures each point's influence
    /// radius so the next [`Self::update_incremental`] pass can prune.
    pub fn update_tracked(
        &mut self,
        model: &dyn Classifier,
        measure: UncertaintyMeasure,
    ) -> RescoreStats {
        let layout = Arc::clone(&self.layout);
        let centers = Arc::clone(&self.centers);
        let parts: Vec<(Vec<f64>, Option<Vec<f64>>)> = (0..layout.num_shards())
            .into_par_iter()
            .map(|s| {
                let range = layout.range(s);
                let refs: Vec<&[f64]> = range.map(|i| centers.row(i)).collect();
                let scored = model.predict_proba_batch_tracked(&refs);
                let mut probs = scored.probs;
                for u in &mut probs {
                    *u = measure.score(*u);
                }
                (probs, scored.radii2)
            })
            .collect();
        let n = self.centers.len();
        // Radii survive only if every shard reported them (models either
        // always report radii or never do, so mixed shards mean a bug —
        // treated conservatively as "no radii").
        let mut radii2 = parts.iter().all(|(_, r)| r.is_some()).then(|| Vec::with_capacity(n));
        let mut uncertainty = Vec::with_capacity(n);
        for (probs, fresh) in parts {
            uncertainty.extend(probs);
            if let (Some(acc), Some(fresh)) = (radii2.as_mut(), fresh) {
                acc.extend(fresh);
            }
        }
        self.uncertainty = uncertainty;
        self.finish_full_pass(radii2);
        RescoreStats { points_rescored: n as u64, points_cached: 0 }
    }

    /// Rescores only the points the model reports as possibly changed by
    /// the `added` training examples; every other score (and influence
    /// radius — a clean point's neighbour set is unchanged, so its radius
    /// is still exact) is kept verbatim from the cache.
    ///
    /// The dirty test runs shard-parallel through
    /// [`Classifier::model_delta_matrix_range`]: the delta predicate is
    /// per-point, so the concatenated per-shard masks equal the full-matrix
    /// mask, and any shard reporting a global delta escalates the whole
    /// pass to a full tracked rescore (global-ness is range-independent).
    /// Dirty shards then rescore their own dirty points in parallel and
    /// invalidate only their own cached top-θ lists.
    ///
    /// Scores are **bit-identical** to a full rescore: the delta contract
    /// guarantees clean points would reproduce their cached value, and the
    /// batch path is element-wise independent, so scoring the dirty subset
    /// equals scoring those points inside a full batch. `margin ≥ 0`
    /// inflates the influence radii (more dirty points, never fewer);
    /// `full_every` forces a full tracked rescore after that many
    /// consecutive incremental passes, bounding drift in long sessions.
    /// Falls back to a full tracked rescore whenever the cache is cold, the
    /// model reports a global delta, or the delta is malformed.
    ///
    /// Debug builds cross-check the result against a from-scratch full
    /// rescore and assert bit equality.
    pub fn update_incremental(
        &mut self,
        model: &dyn Classifier,
        measure: UncertaintyMeasure,
        added: &[&[f64]],
        margin: f64,
        full_every: usize,
    ) -> RescoreStats {
        let full_due = full_every > 0 && self.incremental_passes + 1 >= full_every;
        let stats = if !self.updated || full_due || self.radii2.is_none() {
            self.update_tracked(model, measure)
        } else {
            let n = self.centers.len();
            let layout = Arc::clone(&self.layout);
            let centers = Arc::clone(&self.centers);
            if self.prune.is_none() {
                self.prune = Some(self.build_prune(model));
            }
            let pruned = self.pruned_shards(model, added, margin);
            self.shards_pruned += pruned.iter().filter(|&&p| p).count() as u64;
            let deltas: Vec<ModelDelta> = {
                let radii2 = self.radii2.as_deref().expect("checked above");
                (0..layout.num_shards())
                    .into_par_iter()
                    .map(|s| {
                        let range = layout.range(s);
                        if pruned[s] {
                            // Provably clean: the prune geometry implies
                            // the delta's all-false mask without the sweep.
                            return ModelDelta::Dirty(vec![false; range.len()]);
                        }
                        model.model_delta_matrix_range(
                            &centers,
                            range.clone(),
                            &radii2[range],
                            added,
                            margin,
                        )
                    })
                    .collect()
            };
            let well_formed = deltas.iter().enumerate().all(|(s, d)| match d {
                ModelDelta::Dirty(mask) => mask.len() == layout.range(s).len(),
                ModelDelta::Global => false,
            });
            if !well_formed {
                // Any shard going global (or malformed): full rescore.
                self.update_tracked(model, measure)
            } else {
                // Global cell ids of each shard's dirty points.
                let dirty_shards: Vec<(usize, Vec<usize>)> = deltas
                    .iter()
                    .enumerate()
                    .filter_map(|(s, d)| {
                        let ModelDelta::Dirty(mask) = d else { unreachable!() };
                        let base = layout.range(s).start;
                        let dirty: Vec<usize> = mask
                            .iter()
                            .enumerate()
                            .filter_map(|(j, &m)| m.then_some(base + j))
                            .collect();
                        (!dirty.is_empty()).then_some((s, dirty))
                    })
                    .collect();
                let rescored: Vec<(usize, Vec<usize>, ScoredBatch)> = dirty_shards
                    .into_par_iter()
                    .map(|(s, dirty)| {
                        let refs: Vec<&[f64]> = dirty.iter().map(|&i| centers.row(i)).collect();
                        let scored = model.predict_proba_batch_tracked(&refs);
                        (s, dirty, scored)
                    })
                    .collect();
                let mut rescored_total = 0u64;
                let mut drop_radii = false;
                for (s, dirty, scored) in rescored {
                    rescored_total += dirty.len() as u64;
                    for (j, &i) in dirty.iter().enumerate() {
                        self.uncertainty[i] = measure.score(scored.probs[j]);
                    }
                    match (self.radii2.as_mut(), scored.radii2) {
                        (Some(cached), Some(fresh)) => {
                            for (j, &i) in dirty.iter().enumerate() {
                                cached[i] = fresh[j];
                            }
                        }
                        // The model stopped reporting radii mid-flight:
                        // drop the cache so the next pass goes full.
                        _ => drop_radii = true,
                    }
                    // Patched radii change the shard's reach: refresh its
                    // prune bound from the updated cache.
                    if let (Some(prune), Some(cached)) =
                        (self.prune.as_mut(), self.radii2.as_deref())
                    {
                        prune.max_r2[s] = max_radius2(&cached[layout.range(s)]);
                    }
                    self.tops.invalidate(ShardId::from(s));
                    self.shards_touched += 1;
                }
                if drop_radii {
                    self.radii2 = None;
                    self.prune = None;
                }
                self.model_version += 1;
                self.incremental_passes += 1;
                RescoreStats {
                    points_rescored: rescored_total,
                    points_cached: n as u64 - rescored_total,
                }
            }
        };
        #[cfg(debug_assertions)]
        self.debug_cross_check(model, measure);
        stats
    }

    /// Derives the locality-prune cache from the current radii and the
    /// model's influence-space embedding of the centers. Requires cached
    /// radii (only the incremental path builds it). A model without
    /// positions yields an all-opaque cache in `O(1)`.
    fn build_prune(&self, model: &dyn Classifier) -> ShardPrune {
        let radii2 = self.radii2.as_deref().expect("prune is built only while radii are cached");
        let shards = self.layout.num_shards();
        let dims = match self.centers.rows().next().and_then(|c| model.influence_position(c)) {
            Some(p) => p.len(),
            None => {
                // All-opaque sentinel: never prunes, but keeps full-size
                // per-shard vectors so the dirty-rescore bookkeeping can
                // still index it.
                return ShardPrune {
                    dims: 0,
                    lo: Vec::new(),
                    hi: Vec::new(),
                    max_r2: vec![f64::INFINITY; shards],
                    opaque: vec![true; shards],
                };
            }
        };
        let mut prune = ShardPrune {
            dims,
            lo: vec![f64::INFINITY; shards * dims],
            hi: vec![f64::NEG_INFINITY; shards * dims],
            max_r2: vec![f64::INFINITY; shards],
            opaque: vec![false; shards],
        };
        for s in 0..shards {
            let range = self.layout.range(s);
            for i in range.clone() {
                match model.influence_position(self.centers.row(i)) {
                    Some(p) if p.len() == dims && p.iter().all(|v| v.is_finite()) => {
                        for (d, &v) in p.iter().enumerate() {
                            let at = s * dims + d;
                            prune.lo[at] = prune.lo[at].min(v);
                            prune.hi[at] = prune.hi[at].max(v);
                        }
                    }
                    _ => {
                        prune.opaque[s] = true;
                        break;
                    }
                }
            }
            prune.max_r2[s] = max_radius2(&radii2[range]);
        }
        prune
    }

    /// Which shards this pass's added examples provably cannot dirty.
    /// Conservative on every edge the delta path treats specially: an
    /// invalid margin, an unmappable added example, or a position of the
    /// wrong shape disables pruning for the whole pass (all-false).
    fn pruned_shards(&self, model: &dyn Classifier, added: &[&[f64]], margin: f64) -> Vec<bool> {
        let shards = self.layout.num_shards();
        let no_prune = vec![false; shards];
        let Some(prune) = self.prune.as_ref() else {
            return no_prune;
        };
        if !(margin >= 0.0) || !margin.is_finite() {
            return no_prune;
        }
        let mut added_pos = Vec::with_capacity(added.len());
        for a in added {
            match model.influence_position(a) {
                Some(p) if p.len() == prune.dims && p.iter().all(|v| v.is_finite()) => {
                    added_pos.push(p)
                }
                _ => return no_prune,
            }
        }
        let inflate = (1.0 + margin) * (1.0 + margin);
        (0..shards).map(|s| prune.shard_is_clean(s, &added_pos, inflate)).collect()
    }

    /// Bookkeeping shared by all full-rescore variants.
    fn finish_full_pass(&mut self, radii2: Option<Vec<f64>>) {
        self.updated = true;
        self.radii2 = radii2;
        // Full passes replace every radius; the prune boxes and bounds are
        // rebuilt lazily by the next incremental pass.
        self.prune = None;
        self.model_version += 1;
        self.incremental_passes = 0;
        self.tops.invalidate_all();
        self.shards_touched += self.layout.num_shards() as u64;
    }

    /// Generation counter of the cached scores: increases by one on every
    /// rescoring pass (full or incremental), never decreases.
    pub fn model_version(&self) -> u64 {
        self.model_version
    }

    /// Asserts that the cached scores equal a from-scratch full rescore,
    /// bit for bit. Debug builds run this after every incremental pass.
    #[cfg(debug_assertions)]
    fn debug_cross_check(&self, model: &dyn Classifier, measure: UncertaintyMeasure) {
        let refs = self.centers.row_refs();
        let full = measure.score_points(model, &refs);
        for (i, (got, want)) in self.uncertainty.iter().zip(&full).enumerate() {
            debug_assert!(
                got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
                "incremental rescore diverged at point {i} (model version \
                 {}): cached {got:?} vs full {want:?}",
                self.model_version,
            );
        }
    }

    /// The most uncertain index point `p*` (Eq. 3); ties break toward the
    /// lowest cell id. Errors if [`Self::update`] has never run.
    pub fn most_uncertain(&self) -> Result<CellId> {
        self.ranked_top(1).map(|v| v[0])
    }

    /// The `n` most uncertain cells, descending (ties toward lower ids).
    /// Used by the prefetcher to pick the likely next region.
    ///
    /// This is the uncached reference path: it re-partitions the full
    /// score array every call. The selection hot loop uses
    /// [`Self::ranked_top_cached`], which returns bit-identical results.
    pub fn ranked_top(&self, n: usize) -> Result<Vec<CellId>> {
        if !self.updated {
            return Err(UeiError::invalid_state(
                "index points have not been scored yet; call update() first",
            ));
        }
        if self.centers.is_empty() || n == 0 {
            return Err(UeiError::invalid_state("no index points to rank"));
        }
        // Partial top-n selection (O(|P| + n log n), not a full sort); a
        // NaN score ranks last instead of panicking the comparator.
        Ok(uei_learn::strategy::top_k_desc(&self.uncertainty, n))
    }

    /// [`Self::ranked_top`] through the per-shard candidate caches: shards
    /// untouched since the last ranking reuse their cached top lists, so
    /// after an incremental rescore only the dirty shards re-rank. The
    /// deterministic merge makes the result bit-identical to
    /// [`Self::ranked_top`] at any shard count (DESIGN.md §14).
    pub fn ranked_top_cached(&mut self, n: usize) -> Result<Vec<CellId>> {
        if !self.updated {
            return Err(UeiError::invalid_state(
                "index points have not been scored yet; call update() first",
            ));
        }
        if self.centers.is_empty() || n == 0 {
            return Err(UeiError::invalid_state("no index points to rank"));
        }
        let ranked = self.tops.top_k(&self.layout, &self.uncertainty, n);
        debug_assert_eq!(
            ranked,
            uei_learn::strategy::top_k_desc(&self.uncertainty, n),
            "cached ranking must be bit-identical to the global reference",
        );
        Ok(ranked)
    }

    /// Mean uncertainty across all points (a convergence diagnostic: it
    /// shrinks as the model sharpens).
    pub fn mean_uncertainty(&self) -> f64 {
        if self.uncertainty.is_empty() {
            0.0
        } else {
            self.uncertainty.iter().sum::<f64>() / self.uncertainty.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uei_types::{AttributeDef, Schema};

    fn grid3() -> Grid {
        let schema = Schema::new(vec![
            AttributeDef::new("x", 0.0, 3.0).unwrap(),
            AttributeDef::new("y", 0.0, 3.0).unwrap(),
        ])
        .unwrap();
        Grid::new(&schema, 3).unwrap()
    }

    /// Uncertainty peaks where x ≈ 1.5 (posterior crosses 0.5 there).
    struct BoundaryAtX(f64);
    impl Classifier for BoundaryAtX {
        fn predict_proba(&self, x: &[f64]) -> f64 {
            (1.0 / (1.0 + (-(x[0] - self.0) * 4.0).exp())).clamp(0.0, 1.0)
        }
        fn dims(&self) -> usize {
            2
        }
    }

    #[test]
    fn centers_match_grid() {
        let grid = grid3();
        let points = IndexPoints::from_grid(&grid).unwrap();
        assert_eq!(points.len(), 9);
        for id in grid.cell_ids() {
            assert_eq!(points.center(id).unwrap(), grid.cell_center(id).unwrap().as_slice());
        }
        assert!(points.center(9).is_err());
    }

    #[test]
    fn must_update_before_ranking() {
        let mut points = IndexPoints::from_grid(&grid3()).unwrap();
        assert!(points.most_uncertain().is_err());
        assert!(points.ranked_top_cached(3).is_err());
    }

    #[test]
    fn most_uncertain_tracks_the_boundary() {
        let grid = grid3();
        let mut points = IndexPoints::from_grid(&grid).unwrap();
        // Boundary at x = 1.5: middle column (cells with x-coord 1) has
        // centers at x = 1.5 where p = 0.5.
        points.update(&BoundaryAtX(1.5), UncertaintyMeasure::LeastConfidence);
        let best = points.most_uncertain().unwrap();
        let coords = grid.id_to_coords(best).unwrap();
        assert_eq!(coords[0], 1, "most uncertain cell sits on the boundary column");
        assert!((points.uncertainty(best).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ranking_is_descending_and_deterministic() {
        let grid = grid3();
        let mut points = IndexPoints::from_grid(&grid).unwrap();
        points.update(&BoundaryAtX(0.5), UncertaintyMeasure::LeastConfidence);
        let top = points.ranked_top(9).unwrap();
        assert_eq!(top.len(), 9);
        for w in top.windows(2) {
            let (a, b) = (points.uncertainty(w[0]).unwrap(), points.uncertainty(w[1]).unwrap());
            assert!(a > b || (a == b && w[0] < w[1]));
        }
        // Deterministic.
        assert_eq!(points.ranked_top(3).unwrap(), points.ranked_top(9).unwrap()[..3]);
    }

    #[test]
    fn sharded_scoring_and_ranking_match_single_shard() {
        let grid = grid3();
        let mut reference = IndexPoints::from_grid_with_shards(&grid, 1).unwrap();
        reference.update(&BoundaryAtX(1.2), UncertaintyMeasure::Entropy);
        for shards in [2, 3, 8, 9] {
            let mut points = IndexPoints::from_grid_with_shards(&grid, shards).unwrap();
            assert_eq!(points.num_shards(), shards.min(9));
            points.update(&BoundaryAtX(1.2), UncertaintyMeasure::Entropy);
            for id in 0..points.len() {
                assert_eq!(
                    points.uncertainty(id).unwrap().to_bits(),
                    reference.uncertainty(id).unwrap().to_bits(),
                    "cell {id}, {shards} shards"
                );
            }
            for n in [1, 3, 9] {
                assert_eq!(
                    points.ranked_top_cached(n).unwrap(),
                    reference.ranked_top(n).unwrap(),
                    "n={n}, {shards} shards"
                );
            }
        }
    }

    #[test]
    fn boundary_moves_as_model_changes() {
        let grid = grid3();
        let mut points = IndexPoints::from_grid(&grid).unwrap();
        points.update(&BoundaryAtX(0.5), UncertaintyMeasure::LeastConfidence);
        let early = grid.id_to_coords(points.most_uncertain().unwrap()).unwrap()[0];
        points.update(&BoundaryAtX(2.5), UncertaintyMeasure::LeastConfidence);
        let late = grid.id_to_coords(points.most_uncertain().unwrap()).unwrap()[0];
        assert_eq!(early, 0);
        assert_eq!(late, 2, "re-scoring follows the moving decision boundary");
    }

    #[test]
    fn batch_update_matches_sequential() {
        let grid = grid3();
        let mut batch = IndexPoints::from_grid(&grid).unwrap();
        let mut seq = IndexPoints::from_grid(&grid).unwrap();
        batch.update(&BoundaryAtX(1.2), UncertaintyMeasure::Entropy);
        seq.update_sequential(&BoundaryAtX(1.2), UncertaintyMeasure::Entropy);
        for id in 0..batch.len() {
            assert_eq!(
                batch.uncertainty(id).unwrap().to_bits(),
                seq.uncertainty(id).unwrap().to_bits(),
                "cell {id}"
            );
        }
        assert_eq!(batch.ranked_top(9).unwrap(), seq.ranked_top(9).unwrap());
    }

    #[test]
    fn nan_scores_rank_last_instead_of_panicking() {
        /// Emits NaN for the bottom-left cells (x < 1), a real score elsewhere.
        struct PartiallyNan;
        impl Classifier for PartiallyNan {
            fn predict_proba(&self, x: &[f64]) -> f64 {
                if x[0] < 1.0 {
                    f64::NAN
                } else {
                    0.5
                }
            }
            fn dims(&self) -> usize {
                2
            }
        }
        let grid = grid3();
        let mut points = IndexPoints::from_grid_with_shards(&grid, 3).unwrap();
        points.update(&PartiallyNan, UncertaintyMeasure::LeastConfidence);
        let ranked = points.ranked_top(9).unwrap();
        assert_eq!(ranked.len(), 9);
        // The three NaN-scored cells (x-coord 0 → ids 0, 3, 6 in row-major
        // y-x order, whichever layout: exactly three cells have center x <
        // 1) come last, in id order.
        let nan_cells: Vec<CellId> =
            (0..9).filter(|&id| points.uncertainty(id).unwrap().is_nan()).collect();
        assert_eq!(nan_cells.len(), 3);
        assert_eq!(ranked[6..], nan_cells[..]);
        // The winner is a real-scored cell.
        assert!(!points.uncertainty(points.most_uncertain().unwrap()).unwrap().is_nan());
        // The sharded merge ranks NaNs identically.
        assert_eq!(points.ranked_top_cached(9).unwrap(), ranked);
    }

    #[test]
    fn incremental_rescore_is_bit_identical_and_skips_work() {
        use uei_learn::Dwknn;
        use uei_types::Label;
        // Training points spread across the 0..3 domain so every index
        // point has a saturated (finite-radius) neighbourhood.
        let mut examples = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                let p = vec![x as f64 * 0.8 + 0.2, y as f64 * 0.8 + 0.2];
                examples.push((p, Label::from_bool((x + y) % 2 == 0)));
            }
        }
        let grid = grid3();
        let model_a = Dwknn::fit(3, &examples).unwrap();
        let mut inc = IndexPoints::from_grid_with_shards(&grid, 3).unwrap();
        inc.update_tracked(&model_a, UncertaintyMeasure::LeastConfidence);
        let v0 = inc.model_version();
        assert_eq!(inc.shards_touched(), 3, "full pass touches every shard");

        // One new label near the (0, 0) corner: far cells must stay clean.
        let new_point = vec![0.1, 0.1];
        let mut extended = examples.clone();
        extended.push((new_point.clone(), Label::Positive));
        let model_b = Dwknn::fit(3, &extended).unwrap();
        let added_refs: Vec<&[f64]> = vec![new_point.as_slice()];
        let stats = inc.update_incremental(
            &model_b,
            UncertaintyMeasure::LeastConfidence,
            &added_refs,
            0.0,
            0,
        );

        let mut full = IndexPoints::from_grid(&grid).unwrap();
        full.update(&model_b, UncertaintyMeasure::LeastConfidence);
        for id in 0..9 {
            assert_eq!(
                inc.uncertainty(id).unwrap().to_bits(),
                full.uncertainty(id).unwrap().to_bits(),
                "cell {id}"
            );
        }
        assert_eq!(inc.ranked_top(9).unwrap(), full.ranked_top(9).unwrap());
        assert_eq!(inc.ranked_top_cached(9).unwrap(), full.ranked_top(9).unwrap());
        assert_eq!(stats.points_rescored + stats.points_cached, 9);
        assert!(stats.points_cached > 0, "a corner insertion must leave far cells cached");
        assert!(inc.model_version() > v0, "every pass bumps the version");
        assert!(
            inc.shards_touched() < 6,
            "a corner insertion must leave some shards untouched: {}",
            inc.shards_touched()
        );
        assert!(
            inc.shards_pruned() >= 1,
            "shards beyond the insertion's influence reach must skip their \
             delta sweep entirely: pruned {}",
            inc.shards_pruned()
        );
    }

    #[test]
    fn models_without_influence_space_skip_pruning_but_stay_exact() {
        use uei_learn::knn_influence_delta;
        /// Reports kNN-style influence radii but exposes no influence
        /// space — the locality prune must stay disabled while incremental
        /// rescoring still works off the delta masks.
        struct OpaqueRadii;
        impl Classifier for OpaqueRadii {
            fn predict_proba(&self, x: &[f64]) -> f64 {
                ((x[0] * 0.17 + x[1] * 0.05).sin() * 0.5 + 0.5).clamp(0.0, 1.0)
            }
            fn predict_proba_batch_tracked(&self, xs: &[&[f64]]) -> ScoredBatch {
                ScoredBatch {
                    probs: xs.iter().map(|x| self.predict_proba(x)).collect(),
                    radii2: Some(vec![0.5; xs.len()]),
                }
            }
            fn model_delta(
                &self,
                points: &[&[f64]],
                radii2: &[f64],
                added: &[&[f64]],
                margin: f64,
            ) -> ModelDelta {
                knn_influence_delta(points, radii2, added, margin, usize::MAX)
            }
            fn dims(&self) -> usize {
                2
            }
        }
        let grid = grid3();
        let mut points = IndexPoints::from_grid_with_shards(&grid, 3).unwrap();
        points.update_tracked(&OpaqueRadii, UncertaintyMeasure::LeastConfidence);
        let added = [0.1f64, 0.1];
        let added_refs: Vec<&[f64]> = vec![&added];
        let stats = points.update_incremental(
            &OpaqueRadii,
            UncertaintyMeasure::LeastConfidence,
            &added_refs,
            0.0,
            0,
        );
        assert_eq!(points.shards_pruned(), 0, "no influence space, no pruning");
        // The per-point delta still prunes the far cells individually.
        assert!(stats.points_cached > 0);
        assert!(stats.points_rescored > 0, "the corner cell sits inside its influence ball");
    }

    #[test]
    fn cold_cache_and_global_deltas_rescore_fully() {
        let grid = grid3();
        let mut points = IndexPoints::from_grid(&grid).unwrap();
        // Cold cache: nothing to prune against.
        let stats = points.update_incremental(
            &BoundaryAtX(1.5),
            UncertaintyMeasure::LeastConfidence,
            &[],
            0.0,
            0,
        );
        assert_eq!(stats, RescoreStats { points_rescored: 9, points_cached: 0 });
        // BoundaryAtX uses the default (Global) delta: full again, even
        // though no examples were added.
        let stats = points.update_incremental(
            &BoundaryAtX(1.5),
            UncertaintyMeasure::LeastConfidence,
            &[],
            0.0,
            0,
        );
        assert_eq!(stats, RescoreStats { points_rescored: 9, points_cached: 0 });
    }

    #[test]
    fn periodic_full_rescore_bounds_staleness() {
        use uei_learn::Dwknn;
        use uei_types::Label;
        let mut examples = Vec::new();
        for i in 0..8 {
            let p = vec![i as f64 * 0.4, 3.0 - i as f64 * 0.4];
            examples.push((p, Label::from_bool(i % 2 == 0)));
        }
        let model = Dwknn::fit(3, &examples).unwrap();
        let grid = grid3();
        let mut points = IndexPoints::from_grid(&grid).unwrap();
        points.update_tracked(&model, UncertaintyMeasure::LeastConfidence);
        // No added examples: the first incremental pass keeps everything…
        let stats =
            points.update_incremental(&model, UncertaintyMeasure::LeastConfidence, &[], 0.0, 2);
        assert_eq!(stats, RescoreStats { points_rescored: 0, points_cached: 9 });
        // …and the second hits the full_every = 2 staleness bound.
        let stats =
            points.update_incremental(&model, UncertaintyMeasure::LeastConfidence, &[], 0.0, 2);
        assert_eq!(stats, RescoreStats { points_rescored: 9, points_cached: 0 });
    }

    #[test]
    fn clean_incremental_pass_touches_no_shards() {
        use uei_learn::Dwknn;
        use uei_types::Label;
        let mut examples = Vec::new();
        for i in 0..12 {
            let p = vec![(i % 4) as f64 * 0.9 + 0.2, (i / 4) as f64 * 1.1 + 0.3];
            examples.push((p, Label::from_bool(i % 2 == 0)));
        }
        let model = Dwknn::fit(3, &examples).unwrap();
        let grid = grid3();
        let mut points = IndexPoints::from_grid_with_shards(&grid, 3).unwrap();
        points.update_tracked(&model, UncertaintyMeasure::LeastConfidence);
        let after_full = points.shards_touched();
        let stats =
            points.update_incremental(&model, UncertaintyMeasure::LeastConfidence, &[], 0.0, 0);
        assert_eq!(stats.points_rescored, 0, "nothing added, nothing dirty");
        assert_eq!(points.shards_touched(), after_full, "no shard recomputed");
        // The cached ranking survives the clean pass verbatim.
        assert_eq!(points.ranked_top_cached(5).unwrap(), points.ranked_top(5).unwrap());
    }

    #[test]
    fn rescore_stats_windows() {
        let mut total = RescoreStats::default();
        total.accumulate(RescoreStats { points_rescored: 5, points_cached: 4 });
        let snapshot = total;
        total.accumulate(RescoreStats { points_rescored: 2, points_cached: 7 });
        assert_eq!(total.since(&snapshot), RescoreStats { points_rescored: 2, points_cached: 7 });
        assert_eq!(snapshot.since(&total), RescoreStats::default(), "saturates, never underflows");
    }

    #[test]
    fn mean_uncertainty_shrinks_with_confidence() {
        struct Confident(f64);
        impl Classifier for Confident {
            fn predict_proba(&self, _: &[f64]) -> f64 {
                self.0
            }
            fn dims(&self) -> usize {
                2
            }
        }
        let grid = grid3();
        let mut points = IndexPoints::from_grid(&grid).unwrap();
        points.update(&Confident(0.5), UncertaintyMeasure::LeastConfidence);
        let vague = points.mean_uncertainty();
        points.update(&Confident(0.99), UncertaintyMeasure::LeastConfidence);
        let sharp = points.mean_uncertainty();
        assert!(vague > sharp);
    }
}
