//! The symbolic index points and their uncertainty scores.
//!
//! "In each iteration, UEI updates the uncertainty of all index points
//! p_i ∈ P based on the most recently trained predictive model M_{t−1},
//! which serves as the uncertainty estimator. […] Then, the index point
//! p*_i for which the current exploration model is most uncertain will be
//! chosen" (§3.2, Eq. 3).

use uei_learn::strategy::UncertaintyMeasure;
use uei_learn::Classifier;
use uei_types::{Result, UeiError};

use crate::grid::{CellId, Grid};

/// The index set `P`: one symbolic point (cell center) per grid cell, with
/// the current uncertainty estimate of each.
#[derive(Debug, Clone)]
pub struct IndexPoints {
    centers: Vec<Vec<f64>>,
    uncertainty: Vec<f64>,
    updated: bool,
}

impl IndexPoints {
    /// Materializes the index points of a grid (Algorithm 2 lines 7–11).
    pub fn from_grid(grid: &Grid) -> Result<IndexPoints> {
        let mut centers = Vec::with_capacity(grid.num_cells());
        for id in grid.cell_ids() {
            centers.push(grid.cell_center(id)?);
        }
        let n = centers.len();
        Ok(IndexPoints { centers, uncertainty: vec![0.0; n], updated: false })
    }

    /// Number of index points (`|P|`).
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// Whether the set is empty (never true for a valid grid).
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }

    /// The symbolic point of cell `id`.
    pub fn center(&self, id: CellId) -> Result<&[f64]> {
        self.centers
            .get(id)
            .map(|c| c.as_slice())
            .ok_or_else(|| UeiError::not_found(format!("index point {id}")))
    }

    /// The last computed uncertainty of cell `id`.
    pub fn uncertainty(&self, id: CellId) -> Result<f64> {
        self.uncertainty
            .get(id)
            .copied()
            .ok_or_else(|| UeiError::not_found(format!("index point {id}")))
    }

    /// Re-scores every index point with the current model
    /// (`updateUncertainty(P, M)`, Algorithm 2 line 17).
    ///
    /// Scoring goes through [`Classifier::predict_proba_batch`], so a grid
    /// of thousands of index points is rescored across cores (and with
    /// per-worker traversal scratch) each iteration; the resulting scores
    /// are bit-identical to [`Self::update_sequential`].
    pub fn update(&mut self, model: &dyn Classifier, measure: UncertaintyMeasure) {
        let refs: Vec<&[f64]> = self.centers.iter().map(|c| c.as_slice()).collect();
        self.uncertainty = measure.score_points(model, &refs);
        self.updated = true;
    }

    /// The pre-batching scoring loop: one independent `predict_proba` call
    /// per index point. Kept as the baseline the scoring benchmark (and
    /// the `parallel: false` config knob) compares against.
    pub fn update_sequential(&mut self, model: &dyn Classifier, measure: UncertaintyMeasure) {
        for (i, center) in self.centers.iter().enumerate() {
            self.uncertainty[i] = measure.score(model.predict_proba(center));
        }
        self.updated = true;
    }

    /// The most uncertain index point `p*` (Eq. 3); ties break toward the
    /// lowest cell id. Errors if [`Self::update`] has never run.
    pub fn most_uncertain(&self) -> Result<CellId> {
        self.ranked_top(1).map(|v| v[0])
    }

    /// The `n` most uncertain cells, descending (ties toward lower ids).
    /// Used by the prefetcher to pick the likely next region.
    pub fn ranked_top(&self, n: usize) -> Result<Vec<CellId>> {
        if !self.updated {
            return Err(UeiError::invalid_state(
                "index points have not been scored yet; call update() first",
            ));
        }
        if self.centers.is_empty() || n == 0 {
            return Err(UeiError::invalid_state("no index points to rank"));
        }
        // Partial top-n selection (O(|P| + n log n), not a full sort); a
        // NaN score ranks last instead of panicking the comparator.
        Ok(uei_learn::strategy::top_k_desc(&self.uncertainty, n))
    }

    /// Mean uncertainty across all points (a convergence diagnostic: it
    /// shrinks as the model sharpens).
    pub fn mean_uncertainty(&self) -> f64 {
        if self.uncertainty.is_empty() {
            0.0
        } else {
            self.uncertainty.iter().sum::<f64>() / self.uncertainty.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uei_types::{AttributeDef, Schema};

    fn grid3() -> Grid {
        let schema = Schema::new(vec![
            AttributeDef::new("x", 0.0, 3.0).unwrap(),
            AttributeDef::new("y", 0.0, 3.0).unwrap(),
        ])
        .unwrap();
        Grid::new(&schema, 3).unwrap()
    }

    /// Uncertainty peaks where x ≈ 1.5 (posterior crosses 0.5 there).
    struct BoundaryAtX(f64);
    impl Classifier for BoundaryAtX {
        fn predict_proba(&self, x: &[f64]) -> f64 {
            (1.0 / (1.0 + (-(x[0] - self.0) * 4.0).exp())).clamp(0.0, 1.0)
        }
        fn dims(&self) -> usize {
            2
        }
    }

    #[test]
    fn centers_match_grid() {
        let grid = grid3();
        let points = IndexPoints::from_grid(&grid).unwrap();
        assert_eq!(points.len(), 9);
        for id in grid.cell_ids() {
            assert_eq!(points.center(id).unwrap(), grid.cell_center(id).unwrap().as_slice());
        }
        assert!(points.center(9).is_err());
    }

    #[test]
    fn must_update_before_ranking() {
        let points = IndexPoints::from_grid(&grid3()).unwrap();
        assert!(points.most_uncertain().is_err());
    }

    #[test]
    fn most_uncertain_tracks_the_boundary() {
        let grid = grid3();
        let mut points = IndexPoints::from_grid(&grid).unwrap();
        // Boundary at x = 1.5: middle column (cells with x-coord 1) has
        // centers at x = 1.5 where p = 0.5.
        points.update(&BoundaryAtX(1.5), UncertaintyMeasure::LeastConfidence);
        let best = points.most_uncertain().unwrap();
        let coords = grid.id_to_coords(best).unwrap();
        assert_eq!(coords[0], 1, "most uncertain cell sits on the boundary column");
        assert!((points.uncertainty(best).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ranking_is_descending_and_deterministic() {
        let grid = grid3();
        let mut points = IndexPoints::from_grid(&grid).unwrap();
        points.update(&BoundaryAtX(0.5), UncertaintyMeasure::LeastConfidence);
        let top = points.ranked_top(9).unwrap();
        assert_eq!(top.len(), 9);
        for w in top.windows(2) {
            let (a, b) = (points.uncertainty(w[0]).unwrap(), points.uncertainty(w[1]).unwrap());
            assert!(a > b || (a == b && w[0] < w[1]));
        }
        // Deterministic.
        assert_eq!(points.ranked_top(3).unwrap(), points.ranked_top(9).unwrap()[..3]);
    }

    #[test]
    fn boundary_moves_as_model_changes() {
        let grid = grid3();
        let mut points = IndexPoints::from_grid(&grid).unwrap();
        points.update(&BoundaryAtX(0.5), UncertaintyMeasure::LeastConfidence);
        let early = grid.id_to_coords(points.most_uncertain().unwrap()).unwrap()[0];
        points.update(&BoundaryAtX(2.5), UncertaintyMeasure::LeastConfidence);
        let late = grid.id_to_coords(points.most_uncertain().unwrap()).unwrap()[0];
        assert_eq!(early, 0);
        assert_eq!(late, 2, "re-scoring follows the moving decision boundary");
    }

    #[test]
    fn batch_update_matches_sequential() {
        let grid = grid3();
        let mut batch = IndexPoints::from_grid(&grid).unwrap();
        let mut seq = IndexPoints::from_grid(&grid).unwrap();
        batch.update(&BoundaryAtX(1.2), UncertaintyMeasure::Entropy);
        seq.update_sequential(&BoundaryAtX(1.2), UncertaintyMeasure::Entropy);
        for id in 0..batch.len() {
            assert_eq!(
                batch.uncertainty(id).unwrap().to_bits(),
                seq.uncertainty(id).unwrap().to_bits(),
                "cell {id}"
            );
        }
        assert_eq!(batch.ranked_top(9).unwrap(), seq.ranked_top(9).unwrap());
    }

    #[test]
    fn nan_scores_rank_last_instead_of_panicking() {
        /// Emits NaN for the bottom-left cells (x < 1), a real score elsewhere.
        struct PartiallyNan;
        impl Classifier for PartiallyNan {
            fn predict_proba(&self, x: &[f64]) -> f64 {
                if x[0] < 1.0 {
                    f64::NAN
                } else {
                    0.5
                }
            }
            fn dims(&self) -> usize {
                2
            }
        }
        let grid = grid3();
        let mut points = IndexPoints::from_grid(&grid).unwrap();
        points.update(&PartiallyNan, UncertaintyMeasure::LeastConfidence);
        let ranked = points.ranked_top(9).unwrap();
        assert_eq!(ranked.len(), 9);
        // The three NaN-scored cells (x-coord 0 → ids 0, 3, 6 in row-major
        // y-x order, whichever layout: exactly three cells have center x <
        // 1) come last, in id order.
        let nan_cells: Vec<CellId> =
            (0..9).filter(|&id| points.uncertainty(id).unwrap().is_nan()).collect();
        assert_eq!(nan_cells.len(), 3);
        assert_eq!(ranked[6..], nan_cells[..]);
        // The winner is a real-scored cell.
        assert!(!points.uncertainty(points.most_uncertain().unwrap()).unwrap().is_nan());
    }

    #[test]
    fn mean_uncertainty_shrinks_with_confidence() {
        struct Confident(f64);
        impl Classifier for Confident {
            fn predict_proba(&self, _: &[f64]) -> f64 {
                self.0
            }
            fn dims(&self) -> usize {
                2
            }
        }
        let grid = grid3();
        let mut points = IndexPoints::from_grid(&grid).unwrap();
        points.update(&Confident(0.5), UncertaintyMeasure::LeastConfidence);
        let vague = points.mean_uncertainty();
        points.update(&Confident(0.99), UncertaintyMeasure::LeastConfidence);
        let sharp = points.mean_uncertainty();
        assert!(vague > sharp);
    }
}
