//! The symbolic index points and their uncertainty scores.
//!
//! "In each iteration, UEI updates the uncertainty of all index points
//! p_i ∈ P based on the most recently trained predictive model M_{t−1},
//! which serves as the uncertainty estimator. […] Then, the index point
//! p*_i for which the current exploration model is most uncertain will be
//! chosen" (§3.2, Eq. 3).

use uei_learn::strategy::UncertaintyMeasure;
use uei_learn::{Classifier, ModelDelta};
use uei_types::{PointMatrix, Result, UeiError};

use crate::grid::{CellId, Grid};

/// Work accounting of one rescoring pass: how many index points were
/// actually pushed through the model versus served from the score cache.
///
/// The counters are plain sums, so the same type doubles as a cumulative
/// tally (see [`Self::since`] for window deltas).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RescoreStats {
    /// Points scored through the model this pass (dirty or full).
    pub points_rescored: u64,
    /// Points whose cached score was provably still valid and kept.
    pub points_cached: u64,
}

impl RescoreStats {
    /// Adds another pass's counts into this tally.
    pub fn accumulate(&mut self, other: RescoreStats) {
        self.points_rescored += other.points_rescored;
        self.points_cached += other.points_cached;
    }

    /// The counter deltas accumulated since `earlier` (saturating, so a
    /// stale snapshot cannot underflow).
    pub fn since(&self, earlier: &RescoreStats) -> RescoreStats {
        RescoreStats {
            points_rescored: self.points_rescored.saturating_sub(earlier.points_rescored),
            points_cached: self.points_cached.saturating_sub(earlier.points_cached),
        }
    }
}

/// The index set `P`: one symbolic point (cell center) per grid cell, with
/// the current uncertainty estimate of each.
///
/// The uncertainty vector doubles as a **score cache**: each full tracked
/// rescore also captures per-point influence radii, and subsequent
/// [`Self::update_incremental`] passes consult the model's
/// [`ModelDelta`] to rescore only the points whose score may have changed,
/// keeping every other score verbatim. `model_version` tags the cache with
/// the (monotonically increasing) generation of the model that produced
/// it.
#[derive(Debug, Clone)]
pub struct IndexPoints {
    /// Cell centers in one flat row-major matrix: batch scoring and the
    /// influence-ball delta sweep it linearly, no per-center allocation.
    centers: PointMatrix,
    uncertainty: Vec<f64>,
    updated: bool,
    /// Squared influence radii from the last tracked rescore; `None` when
    /// the last pass was untracked or the model does not report radii.
    radii2: Option<Vec<f64>>,
    /// Generation counter of the cached scores: bumped on every rescoring
    /// pass, of any kind.
    model_version: u64,
    /// Incremental passes since the last full rescore — drives the
    /// periodic-full-rescore staleness bound.
    incremental_passes: usize,
}

impl IndexPoints {
    /// Materializes the index points of a grid (Algorithm 2 lines 7–11).
    pub fn from_grid(grid: &Grid) -> Result<IndexPoints> {
        let mut centers = PointMatrix::with_capacity(grid.num_cells(), grid.dims());
        for id in grid.cell_ids() {
            centers.push_row(&grid.cell_center(id)?)?;
        }
        let n = centers.len();
        Ok(IndexPoints {
            centers,
            uncertainty: vec![0.0; n],
            updated: false,
            radii2: None,
            model_version: 0,
            incremental_passes: 0,
        })
    }

    /// Number of index points (`|P|`).
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// Whether the set is empty (never true for a valid grid).
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }

    /// The symbolic point of cell `id`.
    pub fn center(&self, id: CellId) -> Result<&[f64]> {
        if id < self.centers.len() {
            Ok(self.centers.row(id))
        } else {
            Err(UeiError::not_found(format!("index point {id}")))
        }
    }

    /// The last computed uncertainty of cell `id`.
    pub fn uncertainty(&self, id: CellId) -> Result<f64> {
        self.uncertainty
            .get(id)
            .copied()
            .ok_or_else(|| UeiError::not_found(format!("index point {id}")))
    }

    /// Re-scores every index point with the current model
    /// (`updateUncertainty(P, M)`, Algorithm 2 line 17).
    ///
    /// Scoring goes through [`Classifier::predict_proba_batch`], so a grid
    /// of thousands of index points is rescored across cores (and with
    /// per-worker traversal scratch) each iteration; the resulting scores
    /// are bit-identical to [`Self::update_sequential`].
    pub fn update(&mut self, model: &dyn Classifier, measure: UncertaintyMeasure) {
        let refs = self.centers.row_refs();
        self.uncertainty = measure.score_points(model, &refs);
        self.finish_full_pass(None);
    }

    /// The pre-batching scoring loop: one independent `predict_proba` call
    /// per index point. Kept as the baseline the scoring benchmark (and
    /// the `parallel: false` config knob) compares against.
    pub fn update_sequential(&mut self, model: &dyn Classifier, measure: UncertaintyMeasure) {
        for (i, center) in self.centers.rows().enumerate() {
            self.uncertainty[i] = measure.score(model.predict_proba(center));
        }
        self.finish_full_pass(None);
    }

    /// Full rescore through the tracked batch path: same bit-identical
    /// scores as [`Self::update`], but also captures each point's influence
    /// radius so the next [`Self::update_incremental`] pass can prune.
    pub fn update_tracked(
        &mut self,
        model: &dyn Classifier,
        measure: UncertaintyMeasure,
    ) -> RescoreStats {
        let refs = self.centers.row_refs();
        let scored = model.predict_proba_batch_tracked(&refs);
        self.uncertainty = scored.probs;
        for u in &mut self.uncertainty {
            *u = measure.score(*u);
        }
        self.finish_full_pass(scored.radii2);
        RescoreStats { points_rescored: self.centers.len() as u64, points_cached: 0 }
    }

    /// Rescores only the points the model reports as possibly changed by
    /// the `added` training examples; every other score (and influence
    /// radius — a clean point's neighbour set is unchanged, so its radius
    /// is still exact) is kept verbatim from the cache.
    ///
    /// Scores are **bit-identical** to a full rescore: the delta contract
    /// guarantees clean points would reproduce their cached value, and the
    /// batch path is element-wise independent, so scoring the dirty subset
    /// equals scoring those points inside a full batch. `margin ≥ 0`
    /// inflates the influence radii (more dirty points, never fewer);
    /// `full_every` forces a full tracked rescore after that many
    /// consecutive incremental passes, bounding drift in long sessions.
    /// Falls back to a full tracked rescore whenever the cache is cold, the
    /// model reports a global delta, or the delta is malformed.
    ///
    /// Debug builds cross-check the result against a from-scratch full
    /// rescore and assert bit equality.
    pub fn update_incremental(
        &mut self,
        model: &dyn Classifier,
        measure: UncertaintyMeasure,
        added: &[&[f64]],
        margin: f64,
        full_every: usize,
    ) -> RescoreStats {
        let full_due = full_every > 0 && self.incremental_passes + 1 >= full_every;
        let stats = if !self.updated || full_due || self.radii2.is_none() {
            self.update_tracked(model, measure)
        } else {
            let n = self.centers.len();
            let radii2 = self.radii2.as_ref().expect("checked above");
            // The delta runs over the flat matrix directly — no Vec of row
            // refs is materialized unless some points actually go dirty.
            match model.model_delta_matrix(&self.centers, radii2, added, margin) {
                ModelDelta::Dirty(mask) if mask.len() == n => {
                    let dirty: Vec<usize> = (0..n).filter(|&i| mask[i]).collect();
                    let dirty_refs: Vec<&[f64]> =
                        dirty.iter().map(|&i| self.centers.row(i)).collect();
                    let scored = model.predict_proba_batch_tracked(&dirty_refs);
                    for (j, &i) in dirty.iter().enumerate() {
                        self.uncertainty[i] = measure.score(scored.probs[j]);
                    }
                    match (self.radii2.as_mut(), scored.radii2) {
                        (Some(cached), Some(fresh)) => {
                            for (j, &i) in dirty.iter().enumerate() {
                                cached[i] = fresh[j];
                            }
                        }
                        // The model stopped reporting radii mid-flight:
                        // drop the cache so the next pass goes full.
                        _ => self.radii2 = None,
                    }
                    self.model_version += 1;
                    self.incremental_passes += 1;
                    RescoreStats {
                        points_rescored: dirty.len() as u64,
                        points_cached: (n - dirty.len()) as u64,
                    }
                }
                // Global delta, or a mask of the wrong length: full rescore.
                _ => self.update_tracked(model, measure),
            }
        };
        #[cfg(debug_assertions)]
        self.debug_cross_check(model, measure);
        stats
    }

    /// Bookkeeping shared by all full-rescore variants.
    fn finish_full_pass(&mut self, radii2: Option<Vec<f64>>) {
        self.updated = true;
        self.radii2 = radii2;
        self.model_version += 1;
        self.incremental_passes = 0;
    }

    /// Generation counter of the cached scores: increases by one on every
    /// rescoring pass (full or incremental), never decreases.
    pub fn model_version(&self) -> u64 {
        self.model_version
    }

    /// Asserts that the cached scores equal a from-scratch full rescore,
    /// bit for bit. Debug builds run this after every incremental pass.
    #[cfg(debug_assertions)]
    fn debug_cross_check(&self, model: &dyn Classifier, measure: UncertaintyMeasure) {
        let refs = self.centers.row_refs();
        let full = measure.score_points(model, &refs);
        for (i, (got, want)) in self.uncertainty.iter().zip(&full).enumerate() {
            debug_assert!(
                got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
                "incremental rescore diverged at point {i} (model version \
                 {}): cached {got:?} vs full {want:?}",
                self.model_version,
            );
        }
    }

    /// The most uncertain index point `p*` (Eq. 3); ties break toward the
    /// lowest cell id. Errors if [`Self::update`] has never run.
    pub fn most_uncertain(&self) -> Result<CellId> {
        self.ranked_top(1).map(|v| v[0])
    }

    /// The `n` most uncertain cells, descending (ties toward lower ids).
    /// Used by the prefetcher to pick the likely next region.
    pub fn ranked_top(&self, n: usize) -> Result<Vec<CellId>> {
        if !self.updated {
            return Err(UeiError::invalid_state(
                "index points have not been scored yet; call update() first",
            ));
        }
        if self.centers.is_empty() || n == 0 {
            return Err(UeiError::invalid_state("no index points to rank"));
        }
        // Partial top-n selection (O(|P| + n log n), not a full sort); a
        // NaN score ranks last instead of panicking the comparator.
        Ok(uei_learn::strategy::top_k_desc(&self.uncertainty, n))
    }

    /// Mean uncertainty across all points (a convergence diagnostic: it
    /// shrinks as the model sharpens).
    pub fn mean_uncertainty(&self) -> f64 {
        if self.uncertainty.is_empty() {
            0.0
        } else {
            self.uncertainty.iter().sum::<f64>() / self.uncertainty.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uei_types::{AttributeDef, Schema};

    fn grid3() -> Grid {
        let schema = Schema::new(vec![
            AttributeDef::new("x", 0.0, 3.0).unwrap(),
            AttributeDef::new("y", 0.0, 3.0).unwrap(),
        ])
        .unwrap();
        Grid::new(&schema, 3).unwrap()
    }

    /// Uncertainty peaks where x ≈ 1.5 (posterior crosses 0.5 there).
    struct BoundaryAtX(f64);
    impl Classifier for BoundaryAtX {
        fn predict_proba(&self, x: &[f64]) -> f64 {
            (1.0 / (1.0 + (-(x[0] - self.0) * 4.0).exp())).clamp(0.0, 1.0)
        }
        fn dims(&self) -> usize {
            2
        }
    }

    #[test]
    fn centers_match_grid() {
        let grid = grid3();
        let points = IndexPoints::from_grid(&grid).unwrap();
        assert_eq!(points.len(), 9);
        for id in grid.cell_ids() {
            assert_eq!(points.center(id).unwrap(), grid.cell_center(id).unwrap().as_slice());
        }
        assert!(points.center(9).is_err());
    }

    #[test]
    fn must_update_before_ranking() {
        let points = IndexPoints::from_grid(&grid3()).unwrap();
        assert!(points.most_uncertain().is_err());
    }

    #[test]
    fn most_uncertain_tracks_the_boundary() {
        let grid = grid3();
        let mut points = IndexPoints::from_grid(&grid).unwrap();
        // Boundary at x = 1.5: middle column (cells with x-coord 1) has
        // centers at x = 1.5 where p = 0.5.
        points.update(&BoundaryAtX(1.5), UncertaintyMeasure::LeastConfidence);
        let best = points.most_uncertain().unwrap();
        let coords = grid.id_to_coords(best).unwrap();
        assert_eq!(coords[0], 1, "most uncertain cell sits on the boundary column");
        assert!((points.uncertainty(best).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ranking_is_descending_and_deterministic() {
        let grid = grid3();
        let mut points = IndexPoints::from_grid(&grid).unwrap();
        points.update(&BoundaryAtX(0.5), UncertaintyMeasure::LeastConfidence);
        let top = points.ranked_top(9).unwrap();
        assert_eq!(top.len(), 9);
        for w in top.windows(2) {
            let (a, b) = (points.uncertainty(w[0]).unwrap(), points.uncertainty(w[1]).unwrap());
            assert!(a > b || (a == b && w[0] < w[1]));
        }
        // Deterministic.
        assert_eq!(points.ranked_top(3).unwrap(), points.ranked_top(9).unwrap()[..3]);
    }

    #[test]
    fn boundary_moves_as_model_changes() {
        let grid = grid3();
        let mut points = IndexPoints::from_grid(&grid).unwrap();
        points.update(&BoundaryAtX(0.5), UncertaintyMeasure::LeastConfidence);
        let early = grid.id_to_coords(points.most_uncertain().unwrap()).unwrap()[0];
        points.update(&BoundaryAtX(2.5), UncertaintyMeasure::LeastConfidence);
        let late = grid.id_to_coords(points.most_uncertain().unwrap()).unwrap()[0];
        assert_eq!(early, 0);
        assert_eq!(late, 2, "re-scoring follows the moving decision boundary");
    }

    #[test]
    fn batch_update_matches_sequential() {
        let grid = grid3();
        let mut batch = IndexPoints::from_grid(&grid).unwrap();
        let mut seq = IndexPoints::from_grid(&grid).unwrap();
        batch.update(&BoundaryAtX(1.2), UncertaintyMeasure::Entropy);
        seq.update_sequential(&BoundaryAtX(1.2), UncertaintyMeasure::Entropy);
        for id in 0..batch.len() {
            assert_eq!(
                batch.uncertainty(id).unwrap().to_bits(),
                seq.uncertainty(id).unwrap().to_bits(),
                "cell {id}"
            );
        }
        assert_eq!(batch.ranked_top(9).unwrap(), seq.ranked_top(9).unwrap());
    }

    #[test]
    fn nan_scores_rank_last_instead_of_panicking() {
        /// Emits NaN for the bottom-left cells (x < 1), a real score elsewhere.
        struct PartiallyNan;
        impl Classifier for PartiallyNan {
            fn predict_proba(&self, x: &[f64]) -> f64 {
                if x[0] < 1.0 {
                    f64::NAN
                } else {
                    0.5
                }
            }
            fn dims(&self) -> usize {
                2
            }
        }
        let grid = grid3();
        let mut points = IndexPoints::from_grid(&grid).unwrap();
        points.update(&PartiallyNan, UncertaintyMeasure::LeastConfidence);
        let ranked = points.ranked_top(9).unwrap();
        assert_eq!(ranked.len(), 9);
        // The three NaN-scored cells (x-coord 0 → ids 0, 3, 6 in row-major
        // y-x order, whichever layout: exactly three cells have center x <
        // 1) come last, in id order.
        let nan_cells: Vec<CellId> =
            (0..9).filter(|&id| points.uncertainty(id).unwrap().is_nan()).collect();
        assert_eq!(nan_cells.len(), 3);
        assert_eq!(ranked[6..], nan_cells[..]);
        // The winner is a real-scored cell.
        assert!(!points.uncertainty(points.most_uncertain().unwrap()).unwrap().is_nan());
    }

    #[test]
    fn incremental_rescore_is_bit_identical_and_skips_work() {
        use uei_learn::Dwknn;
        use uei_types::Label;
        // Training points spread across the 0..3 domain so every index
        // point has a saturated (finite-radius) neighbourhood.
        let mut examples = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                let p = vec![x as f64 * 0.8 + 0.2, y as f64 * 0.8 + 0.2];
                examples.push((p, Label::from_bool((x + y) % 2 == 0)));
            }
        }
        let grid = grid3();
        let model_a = Dwknn::fit(3, &examples).unwrap();
        let mut inc = IndexPoints::from_grid(&grid).unwrap();
        inc.update_tracked(&model_a, UncertaintyMeasure::LeastConfidence);
        let v0 = inc.model_version();

        // One new label near the (0, 0) corner: far cells must stay clean.
        let new_point = vec![0.1, 0.1];
        let mut extended = examples.clone();
        extended.push((new_point.clone(), Label::Positive));
        let model_b = Dwknn::fit(3, &extended).unwrap();
        let added_refs: Vec<&[f64]> = vec![new_point.as_slice()];
        let stats = inc.update_incremental(
            &model_b,
            UncertaintyMeasure::LeastConfidence,
            &added_refs,
            0.0,
            0,
        );

        let mut full = IndexPoints::from_grid(&grid).unwrap();
        full.update(&model_b, UncertaintyMeasure::LeastConfidence);
        for id in 0..9 {
            assert_eq!(
                inc.uncertainty(id).unwrap().to_bits(),
                full.uncertainty(id).unwrap().to_bits(),
                "cell {id}"
            );
        }
        assert_eq!(inc.ranked_top(9).unwrap(), full.ranked_top(9).unwrap());
        assert_eq!(stats.points_rescored + stats.points_cached, 9);
        assert!(stats.points_cached > 0, "a corner insertion must leave far cells cached");
        assert!(inc.model_version() > v0, "every pass bumps the version");
    }

    #[test]
    fn cold_cache_and_global_deltas_rescore_fully() {
        let grid = grid3();
        let mut points = IndexPoints::from_grid(&grid).unwrap();
        // Cold cache: nothing to prune against.
        let stats = points.update_incremental(
            &BoundaryAtX(1.5),
            UncertaintyMeasure::LeastConfidence,
            &[],
            0.0,
            0,
        );
        assert_eq!(stats, RescoreStats { points_rescored: 9, points_cached: 0 });
        // BoundaryAtX uses the default (Global) delta: full again, even
        // though no examples were added.
        let stats = points.update_incremental(
            &BoundaryAtX(1.5),
            UncertaintyMeasure::LeastConfidence,
            &[],
            0.0,
            0,
        );
        assert_eq!(stats, RescoreStats { points_rescored: 9, points_cached: 0 });
    }

    #[test]
    fn periodic_full_rescore_bounds_staleness() {
        use uei_learn::Dwknn;
        use uei_types::Label;
        let mut examples = Vec::new();
        for i in 0..8 {
            let p = vec![i as f64 * 0.4, 3.0 - i as f64 * 0.4];
            examples.push((p, Label::from_bool(i % 2 == 0)));
        }
        let model = Dwknn::fit(3, &examples).unwrap();
        let grid = grid3();
        let mut points = IndexPoints::from_grid(&grid).unwrap();
        points.update_tracked(&model, UncertaintyMeasure::LeastConfidence);
        // No added examples: the first incremental pass keeps everything…
        let stats =
            points.update_incremental(&model, UncertaintyMeasure::LeastConfidence, &[], 0.0, 2);
        assert_eq!(stats, RescoreStats { points_rescored: 0, points_cached: 9 });
        // …and the second hits the full_every = 2 staleness bound.
        let stats =
            points.update_incremental(&model, UncertaintyMeasure::LeastConfidence, &[], 0.0, 2);
        assert_eq!(stats, RescoreStats { points_rescored: 9, points_cached: 0 });
    }

    #[test]
    fn rescore_stats_windows() {
        let mut total = RescoreStats::default();
        total.accumulate(RescoreStats { points_rescored: 5, points_cached: 4 });
        let snapshot = total;
        total.accumulate(RescoreStats { points_rescored: 2, points_cached: 7 });
        assert_eq!(total.since(&snapshot), RescoreStats { points_rescored: 2, points_cached: 7 });
        assert_eq!(snapshot.since(&total), RescoreStats::default(), "saturates, never underflows");
    }

    #[test]
    fn mean_uncertainty_shrinks_with_confidence() {
        struct Confident(f64);
        impl Classifier for Confident {
            fn predict_proba(&self, _: &[f64]) -> f64 {
                self.0
            }
            fn dims(&self) -> usize {
                2
            }
        }
        let grid = grid3();
        let mut points = IndexPoints::from_grid(&grid).unwrap();
        points.update(&Confident(0.5), UncertaintyMeasure::LeastConfidence);
        let vague = points.mean_uncertainty();
        points.update(&Confident(0.99), UncertaintyMeasure::LeastConfidence);
        let sharp = points.mean_uncertainty();
        assert!(vague > sharp);
    }
}
