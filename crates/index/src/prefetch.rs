//! Background prefetching of the predicted next uncertain region.
//!
//! Paper §3.2, "Tuning Interactive Exploration": the user sets a response
//! latency threshold σ; when loading a whole subspace within σ is not
//! possible, "UEI would start fetching the corresponding data chunks that
//! \[are\] associated with g*_{i+1} (in the background) θ iterations before
//! g*_{i+1} is loaded into the memory", with θ = ⌈τ/σ⌉ derived from the
//! average region load time τ.
//!
//! The prefetcher runs on its own thread with its **own** [`DiskTracker`]:
//! background I/O overlaps the user's labeling think-time, so its modeled
//! latency does not count against the iteration response time. Its bytes
//! are still reported separately so experiments can account for total I/O.
//!
//! Prediction of "the next region" uses the uncertainty ranking: after the
//! top cell is served, the runner-up cells (the θ next-most-uncertain) are
//! queued, since the boundary — and therefore the ranking — moves slowly
//! between consecutive iterations.

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};
use uei_storage::cache::SharedChunkCache;
use uei_storage::io::{DiskTracker, IoProfile, IoStats};
use uei_storage::merge::{reconstruct_region_with_chunks, ChunkFetch, MergeStats};
use uei_storage::source::ChunkSource;
use uei_storage::store::ColumnStore;
use uei_types::{DataPoint, Result, UeiError};

use crate::grid::{CellId, Grid};
use crate::mapping::ChunkMapping;

/// Prefetch horizon θ = ⌈τ/σ⌉ (at least 1 when τ > 0).
pub fn horizon(tau_secs: f64, sigma_secs: f64) -> usize {
    if !(sigma_secs > 0.0) || tau_secs <= 0.0 {
        return 1;
    }
    (tau_secs / sigma_secs).ceil().max(1.0) as usize
}

/// Smoothing factor of the τ estimator: each new load contributes 30%,
/// so roughly the last ~6 loads dominate the estimate. High enough to
/// shed cold-start loads within a handful of iterations, low enough that
/// one outlier load does not whipsaw θ.
pub const TAU_EWMA_ALPHA: f64 = 0.3;

/// An exponentially weighted moving average.
///
/// The θ = ⌈τ/σ⌉ horizon wants the *current* region-load cost, but a plain
/// running mean is dragged indefinitely by cold-start loads: once the
/// chunk cache is warm (or delta reconstruction kicks in), real loads are
/// far cheaper than the mean suggests, and θ stays pinned too high. The
/// EWMA forgets old samples geometrically, so τ tracks the warmed-up
/// steady state after a few loads.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    count: u64,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`; values
    /// outside that range are clamped. `alpha = 1` degenerates to
    /// "latest sample wins".
    pub fn new(alpha: f64) -> Ewma {
        let alpha = if alpha.is_finite() { alpha.clamp(f64::MIN_POSITIVE, 1.0) } else { 1.0 };
        Ewma { alpha, value: 0.0, count: 0 }
    }

    /// Folds in one sample. The first sample initializes the average
    /// directly (no bias toward zero).
    pub fn push(&mut self, sample: f64) {
        self.count += 1;
        if self.count == 1 {
            self.value = sample;
        } else {
            self.value = self.alpha * sample + (1.0 - self.alpha) * self.value;
        }
    }

    /// The current average, or 0 before any sample.
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.value
        }
    }

    /// Samples folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl Default for Ewma {
    /// The τ-estimator configuration: [`TAU_EWMA_ALPHA`].
    fn default() -> Ewma {
        Ewma::new(TAU_EWMA_ALPHA)
    }
}

enum Request {
    Load(CellId),
    Shutdown,
}

/// Cap on the `failed` map: without one it grows monotonically over a long
/// exploration session (every cell that ever failed stays resident). The
/// map is diagnostic — a new request for the cell clears its entry anyway —
/// so on overflow an arbitrary older entry is evicted; the cumulative
/// `failed_total` counter is what experiments report.
const MAX_FAILED_CELLS: usize = 64;

#[derive(Default)]
struct Shared {
    ready: HashMap<CellId, (Vec<DataPoint>, MergeStats)>,
    pending: HashSet<CellId>,
    failed: HashMap<CellId, String>,
    failed_total: u64,
}

/// A background region prefetcher.
pub struct Prefetcher {
    tx: Sender<Request>,
    shared: Arc<(Mutex<Shared>, Condvar)>,
    tracker: DiskTracker,
    handle: Option<JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawns the worker with no chunk cache — the background thread
    /// streams chunk-at-a-time, the original layout.
    pub fn spawn(
        store_dir: &Path,
        profile: IoProfile,
        grid: Grid,
        mapping: ChunkMapping,
    ) -> Result<Prefetcher> {
        Prefetcher::spawn_with_cache(store_dir, profile, grid, mapping, None)
    }

    /// Spawns the worker. It opens its own handle to the store directory
    /// (same data, separate I/O accounting with `profile`). With `cache`,
    /// every chunk the worker reads lands in the shared cache, so the
    /// foreground loader finds a prefetched region's chunks already
    /// decoded and resident — and chunks the foreground loaded earlier
    /// serve the worker as hits, charging zero background I/O.
    pub fn spawn_with_cache(
        store_dir: &Path,
        profile: IoProfile,
        grid: Grid,
        mapping: ChunkMapping,
        cache: Option<Arc<SharedChunkCache>>,
    ) -> Result<Prefetcher> {
        let tracker = DiskTracker::new(profile);
        let store: Arc<dyn ChunkSource> = Arc::new(ColumnStore::open(store_dir, tracker)?);
        Prefetcher::spawn_with_source(store, Arc::new(grid), Arc::new(mapping), cache)
    }

    /// Spawns the worker over any [`ChunkSource`] handle. The source's own
    /// tracker becomes the background ledger, and the grid and mapping are
    /// shared by `Arc` — this is the constructor an `EngineCore` uses to
    /// give each session a prefetcher without copying any store data.
    pub fn spawn_with_source(
        source: Arc<dyn ChunkSource>,
        grid: Arc<Grid>,
        mapping: Arc<ChunkMapping>,
        cache: Option<Arc<SharedChunkCache>>,
    ) -> Result<Prefetcher> {
        let tracker = source.tracker().clone();
        let shared: Arc<(Mutex<Shared>, Condvar)> = Arc::new(Default::default());
        let (tx, rx) = unbounded::<Request>();
        let worker_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("uei-prefetch".into())
            .spawn(move || {
                while let Ok(req) = rx.recv() {
                    let cell = match req {
                        Request::Shutdown => break,
                        Request::Load(c) => c,
                    };
                    let outcome =
                        load_cell_raw(source.as_ref(), &grid, &mapping, cell, cache.as_deref());
                    let (lock, cvar) = &*worker_shared;
                    let mut s = lock.lock();
                    s.pending.remove(&cell);
                    match outcome {
                        Ok(pair) => {
                            s.ready.insert(cell, pair);
                        }
                        Err(e) => {
                            s.failed_total += 1;
                            if s.failed.len() >= MAX_FAILED_CELLS && !s.failed.contains_key(&cell) {
                                if let Some(&evict) = s.failed.keys().next() {
                                    s.failed.remove(&evict);
                                }
                            }
                            s.failed.insert(cell, e.to_string());
                        }
                    }
                    cvar.notify_all();
                }
            })
            .map_err(|e| UeiError::invalid_state(format!("cannot spawn prefetcher: {e}")))?;
        Ok(Prefetcher { tx, shared, tracker, handle: Some(handle) })
    }

    /// Queues a cell for background loading; a no-op if it is already
    /// pending or ready.
    pub fn request(&self, cell: CellId) {
        {
            let (lock, _) = &*self.shared;
            let mut s = lock.lock();
            if s.ready.contains_key(&cell) || !s.pending.insert(cell) {
                return;
            }
            s.failed.remove(&cell);
        }
        // A send failure means the worker is gone; the caller falls back to
        // the synchronous path, so it is safe to ignore.
        let _ = self.tx.send(Request::Load(cell));
    }

    /// Takes a finished prefetch for `cell` without blocking.
    pub fn take(&self, cell: CellId) -> Option<(Vec<DataPoint>, MergeStats)> {
        let (lock, _) = &*self.shared;
        lock.lock().ready.remove(&cell)
    }

    /// Waits up to `timeout` for `cell` to finish, then takes it.
    pub fn take_blocking(
        &self,
        cell: CellId,
        timeout: std::time::Duration,
    ) -> Option<(Vec<DataPoint>, MergeStats)> {
        let deadline = std::time::Instant::now() + timeout;
        let (lock, cvar) = &*self.shared;
        let mut s = lock.lock();
        loop {
            if let Some(pair) = s.ready.remove(&cell) {
                return Some(pair);
            }
            if !s.pending.contains(&cell) {
                return None; // never requested, or failed
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            cvar.wait_for(&mut s, deadline - now);
        }
    }

    /// Whether `cell` is queued or in flight.
    pub fn is_pending(&self, cell: CellId) -> bool {
        let (lock, _) = &*self.shared;
        lock.lock().pending.contains(&cell)
    }

    /// Whether a completed result for `cell` is buffered (without taking it).
    pub fn has_ready(&self, cell: CellId) -> bool {
        let (lock, _) = &*self.shared;
        lock.lock().ready.contains_key(&cell)
    }

    /// Error message of a failed background load, if any.
    pub fn failure(&self, cell: CellId) -> Option<String> {
        let (lock, _) = &*self.shared;
        lock.lock().failed.get(&cell).cloned()
    }

    /// How many distinct cells currently have a recorded failure (bounded
    /// by `MAX_FAILED_CELLS`).
    pub fn failure_count(&self) -> usize {
        let (lock, _) = &*self.shared;
        lock.lock().failed.len()
    }

    /// Cumulative background-load failures since spawn. Unlike the failure
    /// map this never shrinks — it is the counter experiments report.
    pub fn total_failures(&self) -> u64 {
        let (lock, _) = &*self.shared;
        lock.lock().failed_total
    }

    /// Drops every recorded failure message (the cumulative counter is
    /// unaffected). Call between experiment phases to reset diagnostics.
    pub fn clear_failures(&self) {
        let (lock, _) = &*self.shared;
        lock.lock().failed.clear();
    }

    /// The background worker's private I/O tracker. Exposed so a fault
    /// harness can attach an injector to the prefetcher's read path (its
    /// store handle is separate from the foreground one).
    pub fn background_tracker(&self) -> &DiskTracker {
        &self.tracker
    }

    /// Drops every buffered result (regions go stale when the model moves).
    pub fn clear_ready(&self) {
        let (lock, _) = &*self.shared;
        lock.lock().ready.clear();
    }

    /// Cumulative background I/O (reported separately from foreground).
    pub fn background_io(&self) -> IoStats {
        self.tracker.stats()
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        let _ = self.tx.send(Request::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn load_cell_raw(
    source: &dyn ChunkSource,
    grid: &Grid,
    mapping: &ChunkMapping,
    cell: CellId,
    cache: Option<&SharedChunkCache>,
) -> Result<(Vec<DataPoint>, MergeStats)> {
    let region = grid.cell_region(cell)?;
    let chunks = mapping.chunks_for_cell(grid, cell)?;
    let fetch = match cache {
        // Shared mode: fill the cache the foreground also reads from.
        Some(c) => ChunkFetch::Shared(c),
        // No cache: the background thread streams chunk-at-a-time.
        None => ChunkFetch::Uncached,
    };
    reconstruct_region_with_chunks(source, &region, &chunks, fetch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use uei_storage::store::StoreConfig;
    use uei_storage::TempDir;
    use uei_types::{AttributeDef, Rng, Schema};

    fn build(tag: &str, n: usize) -> (Arc<ColumnStore>, Grid, ChunkMapping, TempDir) {
        let dir = TempDir::new(&format!("prefetch-{tag}"));
        let schema = Schema::new(vec![
            AttributeDef::new("x", 0.0, 100.0).unwrap(),
            AttributeDef::new("y", 0.0, 100.0).unwrap(),
        ])
        .unwrap();
        let mut rng = Rng::new(2);
        let rows: Vec<DataPoint> = (0..n)
            .map(|i| {
                DataPoint::new(i as u64, vec![rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)])
            })
            .collect();
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.path(),
            schema,
            &rows,
            StoreConfig { chunk_target_bytes: 512 },
            tracker,
        )
        .unwrap();
        let grid = Grid::new(store.schema(), 3).unwrap();
        let mapping = ChunkMapping::build(&grid, store.manifest()).unwrap();
        (Arc::new(store), grid, mapping, dir)
    }

    #[test]
    fn horizon_formula() {
        assert_eq!(horizon(1.0, 0.5), 2, "θ = ⌈τ/σ⌉");
        assert_eq!(horizon(0.4, 0.5), 1);
        assert_eq!(horizon(1.3, 0.5), 3);
        assert_eq!(horizon(0.0, 0.5), 1);
        assert_eq!(horizon(1.0, 0.0), 1);
    }

    #[test]
    fn ewma_sheds_cold_start_loads() {
        // Three expensive cold loads, then a warm steady state of 0.1 s.
        // The plain mean stays dragged by the cold start; the EWMA
        // converges onto the recent cost, so θ = ⌈τ/σ⌉ shrinks with it.
        let mut ewma = Ewma::default();
        let mut sum = 0.0;
        let samples = [2.0, 2.0, 2.0, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1];
        for s in samples {
            ewma.push(s);
            sum += s;
        }
        let mean = sum / samples.len() as f64;
        assert_eq!(ewma.count(), samples.len() as u64);
        assert!(ewma.value() < 0.3, "EWMA tracks the warm cost: {}", ewma.value());
        assert!(mean > 0.6, "plain mean stays dragged: {mean}");
        assert!(horizon(ewma.value(), 0.5) < horizon(mean, 0.5));
    }

    #[test]
    fn ewma_edge_cases() {
        assert_eq!(Ewma::default().value(), 0.0, "no samples yet");
        // First sample initializes directly.
        let mut e = Ewma::new(0.25);
        e.push(4.0);
        assert_eq!(e.value(), 4.0);
        e.push(0.0);
        assert_eq!(e.value(), 3.0, "0.25·0 + 0.75·4");
        // α = 1 degenerates to latest-sample-wins; invalid α clamps there.
        for alpha in [1.0, f64::NAN, 7.0] {
            let mut e = Ewma::new(alpha);
            e.push(5.0);
            e.push(1.0);
            assert_eq!(e.value(), 1.0, "alpha {alpha}");
        }
    }

    #[test]
    fn prefetch_matches_synchronous_load() {
        let (store, grid, mapping, _dir) = build("match", 1500);
        let pre =
            Prefetcher::spawn(store.dir(), IoProfile::instant(), grid.clone(), mapping.clone())
                .unwrap();
        pre.request(4);
        let (rows, stats) =
            pre.take_blocking(4, Duration::from_secs(10)).expect("prefetch completes");
        let (sync_rows, sync_stats) =
            load_cell_raw(store.as_ref(), &grid, &mapping, 4, None).unwrap();
        assert_eq!(rows, sync_rows);
        assert_eq!(stats.result_rows, sync_stats.result_rows);
        assert!(stats.result_rows > 0);
    }

    #[test]
    fn background_io_is_tracked_separately() {
        let (store, grid, mapping, _dir) = build("separate", 1000);
        let foreground_before = store.tracker().stats();
        let pre = Prefetcher::spawn(store.dir(), IoProfile::instant(), grid, mapping).unwrap();
        pre.request(0);
        pre.take_blocking(0, Duration::from_secs(10)).unwrap();
        assert!(pre.background_io().bytes_read > 0);
        // Foreground tracker untouched by the background load.
        assert_eq!(store.tracker().stats().bytes_read, foreground_before.bytes_read);
    }

    #[test]
    fn take_is_one_shot_and_duplicate_requests_coalesce() {
        let (store, grid, mapping, _dir) = build("oneshot", 800);
        let pre = Prefetcher::spawn(store.dir(), IoProfile::instant(), grid, mapping).unwrap();
        pre.request(1);
        pre.request(1);
        pre.request(1);
        assert!(pre.take_blocking(1, Duration::from_secs(10)).is_some());
        assert!(pre.take(1).is_none(), "result consumed");
    }

    #[test]
    fn take_unrequested_cell_returns_none() {
        let (store, grid, mapping, _dir) = build("unreq", 500);
        let pre = Prefetcher::spawn(store.dir(), IoProfile::instant(), grid, mapping).unwrap();
        assert!(pre.take(7).is_none());
        assert!(pre.take_blocking(7, Duration::from_millis(50)).is_none());
        assert!(!pre.is_pending(7));
    }

    #[test]
    fn clear_ready_drops_stale_regions() {
        let (store, grid, mapping, _dir) = build("stale", 800);
        let pre = Prefetcher::spawn(store.dir(), IoProfile::instant(), grid, mapping).unwrap();
        pre.request(2);
        // Wait for completion, then clear without taking.
        while pre.is_pending(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        pre.clear_ready();
        assert!(pre.take(2).is_none());
    }

    #[test]
    fn take_blocking_times_out_on_stuck_pending_cell() {
        let (store, grid, mapping, _dir) = build("timeout", 400);
        let pre = Prefetcher::spawn(store.dir(), IoProfile::instant(), grid, mapping).unwrap();
        // Mark a cell pending by hand, bypassing the worker queue: no load
        // will ever complete it, so take_blocking must hit its deadline
        // (deterministically — no race against a real load).
        {
            let (lock, _) = &*pre.shared;
            lock.lock().pending.insert(999);
        }
        let start = std::time::Instant::now();
        let got = pre.take_blocking(999, Duration::from_millis(80));
        assert!(got.is_none(), "stuck cell can only time out");
        assert!(
            start.elapsed() >= Duration::from_millis(80),
            "returned before the deadline: {:?}",
            start.elapsed()
        );
        assert!(pre.is_pending(999), "timeout does not cancel the request");
    }

    #[test]
    fn failed_background_load_reports_failure_and_unblocks() {
        let (store, grid, mapping, dir) = build("fail", 600);
        let pre =
            Prefetcher::spawn(store.dir(), IoProfile::instant(), grid.clone(), mapping.clone())
                .unwrap();
        // Remove every chunk file: any background load must error.
        for entry in std::fs::read_dir(dir.path()).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "uei") {
                std::fs::remove_file(&path).unwrap();
            }
        }
        pre.request(3);
        // take_blocking returns None (the cell left pending via failure,
        // not ready) rather than hanging until the deadline.
        let start = std::time::Instant::now();
        assert!(pre.take_blocking(3, Duration::from_secs(10)).is_none());
        assert!(start.elapsed() < Duration::from_secs(10), "failure unblocks before the deadline");
        assert!(pre.failure(3).is_some(), "error message recorded");
        assert!(!pre.is_pending(3));
        assert!(!pre.has_ready(3));
        // A new request for the failed cell clears the stale error.
        pre.request(3);
        while pre.is_pending(3) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(pre.failure(3).is_some(), "still failing: files are gone");
    }

    #[test]
    fn failure_map_is_capped_and_counter_is_cumulative() {
        let (store, grid, mapping, _dir) = build("cap", 300);
        let pre = Prefetcher::spawn(store.dir(), IoProfile::instant(), grid, mapping).unwrap();
        // Out-of-range cells fail immediately in the worker, giving an
        // unbounded supply of distinct failures without touching disk.
        let total = MAX_FAILED_CELLS + 40;
        for cell in 0..total {
            pre.request(1_000 + cell);
        }
        while (0..total).any(|c| pre.is_pending(1_000 + c)) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pre.total_failures(), total as u64);
        assert!(
            pre.failure_count() <= MAX_FAILED_CELLS,
            "failure map stays bounded: {} entries",
            pre.failure_count()
        );
        pre.clear_failures();
        assert_eq!(pre.failure_count(), 0);
        assert_eq!(pre.total_failures(), total as u64, "counter survives clear");
    }

    #[test]
    fn shared_cache_keeps_foreground_reads_at_zero() {
        let (store, grid, mapping, _dir) = build("warm", 1500);
        let cache = Arc::new(SharedChunkCache::new(64 << 20, 4));
        let pre = Prefetcher::spawn_with_cache(
            store.dir(),
            IoProfile::instant(),
            grid.clone(),
            mapping.clone(),
            Some(Arc::clone(&cache)),
        )
        .unwrap();
        pre.request(4);
        let (pre_rows, _) = pre.take_blocking(4, Duration::from_secs(10)).unwrap();
        assert!(pre.background_io().bytes_read > 0, "worker paid the reads");
        // Foreground load of the same cell through the shared cache: every
        // chunk is already resident, so zero foreground chunk reads.
        let before = store.tracker().snapshot();
        let (fg_rows, stats) =
            load_cell_raw(store.as_ref(), &grid, &mapping, 4, Some(&cache)).unwrap();
        assert_eq!(fg_rows, pre_rows);
        assert!(stats.chunks_loaded > 0, "chunks came through the cache");
        assert_eq!(
            store.tracker().delta(&before).stats.bytes_read,
            0,
            "prefetcher-warmed chunks cost the foreground nothing"
        );
    }

    #[test]
    fn shutdown_on_drop_is_clean() {
        let (store, grid, mapping, _dir) = build("drop", 300);
        {
            let pre = Prefetcher::spawn(store.dir(), IoProfile::instant(), grid, mapping).unwrap();
            pre.request(0);
            // Drop immediately; worker must exit without deadlock.
        }
    }
}
