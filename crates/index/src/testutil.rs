//! Shared fixtures for the crate's unit tests: a small on-disk store over
//! a 2-D 0..100 domain and a sigmoid boundary model.

use std::sync::Arc;

use uei_learn::Classifier;
use uei_storage::io::{DiskTracker, IoProfile};
use uei_storage::store::{ColumnStore, StoreConfig};
use uei_storage::TempDir;
use uei_types::{AttributeDef, DataPoint, Rng, Schema};

use crate::config::UeiConfig;

/// Builds a 2-D column store of `n` uniform rows under a fresh temp dir.
pub(crate) fn build_store(tag: &str, n: usize) -> (Arc<ColumnStore>, Vec<DataPoint>, TempDir) {
    let dir = TempDir::new(&format!("facade-{tag}"));
    let schema = Schema::new(vec![
        AttributeDef::new("x", 0.0, 100.0).unwrap(),
        AttributeDef::new("y", 0.0, 100.0).unwrap(),
    ])
    .unwrap();
    let mut rng = Rng::new(6);
    let rows: Vec<DataPoint> = (0..n)
        .map(|i| {
            DataPoint::new(i as u64, vec![rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)])
        })
        .collect();
    let tracker = DiskTracker::new(IoProfile::nvme());
    let store = ColumnStore::create(
        dir.path(),
        schema,
        &rows,
        StoreConfig { chunk_target_bytes: 512 },
        tracker,
    )
    .unwrap();
    (Arc::new(store), rows, dir)
}

/// A sigmoid classifier whose decision boundary sits at `x = x_split`.
pub(crate) fn boundary_model(x_split: f64) -> impl Classifier {
    struct M(f64);
    impl Classifier for M {
        fn predict_proba(&self, x: &[f64]) -> f64 {
            1.0 / (1.0 + (-(x[0] - self.0) * 0.5).exp())
        }
        fn dims(&self) -> usize {
            2
        }
    }
    M(x_split)
}

/// The 4×4-cell configuration most facade tests run with.
pub(crate) fn small_config() -> UeiConfig {
    UeiConfig { cells_per_dim: 4, ..UeiConfig::default() }
}
