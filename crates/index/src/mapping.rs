//! The mapping method `m : p → {chunks}`.
//!
//! "UEI employed a hash-based mapping method m that records for each
//! symbolic index point p_i, the set of chunks that are needed to construct
//! g_i" (§3.1). Because chunk key ranges are sorted and disjoint per
//! dimension, the set of chunks a cell needs factorizes: it depends only on
//! the cell's *slice index* along each dimension. The mapping therefore
//! precomputes, for every dimension and every slice, the contiguous chunk
//! range overlapping that slice — `dims × cells_per_dim` entries instead of
//! `cells_per_dim^dims` — and materializes a cell's chunk set on demand.

use uei_storage::chunk::ChunkId;
use uei_storage::manifest::Manifest;
use uei_types::{Result, UeiError};

use crate::grid::{CellId, Grid};

/// Precomputed chunk ranges per (dimension, grid slice).
#[derive(Debug, Clone)]
pub struct ChunkMapping {
    /// `slices[d][s]` = the `seq` range of chunks of dimension `d`
    /// overlapping grid slice `s` (start..end, possibly empty).
    slices: Vec<Vec<(u32, u32)>>,
    cells_per_dim: usize,
}

impl ChunkMapping {
    /// Builds the mapping for a grid over a store manifest.
    pub fn build(grid: &Grid, manifest: &Manifest) -> Result<ChunkMapping> {
        if manifest.schema.dims() != grid.dims() {
            return Err(UeiError::DimensionMismatch {
                expected: grid.dims(),
                actual: manifest.schema.dims(),
            });
        }
        let mut slices = Vec::with_capacity(grid.dims());
        for d in 0..grid.dims() {
            let mut per_slice = Vec::with_capacity(grid.cells_per_dim());
            for s in 0..grid.cells_per_dim() {
                // The slice's key range along dimension d. Use a cell in
                // this slice (coordinates 0 elsewhere) to get exact bounds.
                let mut coords = vec![0usize; grid.dims()];
                coords[d] = s;
                let cell = grid.coords_to_id(&coords)?;
                let region = grid.cell_region(cell)?;
                let overlapping = manifest.chunks_overlapping(d, region.lo[d], region.hi[d])?;
                let range = match (overlapping.first(), overlapping.last()) {
                    (Some(first), Some(last)) => (first.seq, last.seq + 1),
                    _ => (0, 0),
                };
                per_slice.push(range);
            }
            slices.push(per_slice);
        }
        Ok(ChunkMapping { slices, cells_per_dim: grid.cells_per_dim() })
    }

    /// The chunk ids needed to reconstruct cell `id`, grouped by dimension.
    pub fn chunks_for_cell(&self, grid: &Grid, id: CellId) -> Result<Vec<Vec<ChunkId>>> {
        let coords = grid.id_to_coords(id)?;
        let mut out = Vec::with_capacity(coords.len());
        for (d, &slice) in coords.iter().enumerate() {
            let (start, end) = self.slices[d][slice];
            out.push((start..end).map(|seq| ChunkId::new(d as u32, seq)).collect());
        }
        Ok(out)
    }

    /// Total number of chunk files a cell's reconstruction touches.
    pub fn chunk_count_for_cell(&self, grid: &Grid, id: CellId) -> Result<usize> {
        Ok(self.chunks_for_cell(grid, id)?.iter().map(|v| v.len()).sum())
    }

    /// The chunk `seq` range of dimension `d`, slice `s` (for diagnostics).
    pub fn slice_range(&self, d: usize, s: usize) -> Result<(u32, u32)> {
        self.slices
            .get(d)
            .and_then(|v| v.get(s))
            .copied()
            .ok_or_else(|| UeiError::not_found(format!("slice ({d}, {s})")))
    }

    /// Cells per dimension this mapping was built for.
    pub fn cells_per_dim(&self) -> usize {
        self.cells_per_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uei_storage::io::{DiskTracker, IoProfile};
    use uei_storage::store::{ColumnStore, StoreConfig};
    use uei_storage::TempDir;
    use uei_types::{AttributeDef, DataPoint, Rng, Schema};

    fn build_store(tag: &str, n: usize) -> (ColumnStore, TempDir) {
        let dir = TempDir::new(&format!("mapping-{tag}"));
        let schema = Schema::new(vec![
            AttributeDef::new("x", 0.0, 100.0).unwrap(),
            AttributeDef::new("y", 0.0, 100.0).unwrap(),
        ])
        .unwrap();
        let mut rng = Rng::new(3);
        let rows: Vec<DataPoint> = (0..n)
            .map(|i| {
                DataPoint::new(i as u64, vec![rng.range_f64(0.0, 100.0), rng.range_f64(0.0, 100.0)])
            })
            .collect();
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.path(),
            schema,
            &rows,
            StoreConfig { chunk_target_bytes: 256 },
            tracker,
        )
        .unwrap();
        (store, dir)
    }

    #[test]
    fn mapping_covers_exactly_the_overlapping_chunks() {
        let (store, _dir) = build_store("cover", 1000);
        let grid = Grid::new(store.schema(), 4).unwrap();
        let mapping = ChunkMapping::build(&grid, store.manifest()).unwrap();
        for cell in grid.cell_ids() {
            let region = grid.cell_region(cell).unwrap();
            let chunks = mapping.chunks_for_cell(&grid, cell).unwrap();
            for d in 0..2 {
                let expected: Vec<ChunkId> = store
                    .manifest()
                    .chunks_overlapping(d, region.lo[d], region.hi[d])
                    .unwrap()
                    .iter()
                    .map(|m| m.id())
                    .collect();
                assert_eq!(chunks[d], expected, "cell {cell} dim {d}");
            }
        }
    }

    #[test]
    fn every_chunk_is_reachable_from_some_cell() {
        let (store, _dir) = build_store("reach", 800);
        let grid = Grid::new(store.schema(), 3).unwrap();
        let mapping = ChunkMapping::build(&grid, store.manifest()).unwrap();
        let mut reachable = std::collections::HashSet::new();
        for cell in grid.cell_ids() {
            for ids in mapping.chunks_for_cell(&grid, cell).unwrap() {
                reachable.extend(ids);
            }
        }
        let total: usize = store.manifest().total_chunks();
        assert_eq!(reachable.len(), total, "all chunks reachable through the mapping");
    }

    #[test]
    fn finer_grid_touches_fewer_chunks_per_cell() {
        let (store, _dir) = build_store("finer", 3000);
        let coarse = Grid::new(store.schema(), 2).unwrap();
        let fine = Grid::new(store.schema(), 8).unwrap();
        let map_coarse = ChunkMapping::build(&coarse, store.manifest()).unwrap();
        let map_fine = ChunkMapping::build(&fine, store.manifest()).unwrap();
        let avg = |grid: &Grid, m: &ChunkMapping| -> f64 {
            let total: usize =
                grid.cell_ids().map(|c| m.chunk_count_for_cell(grid, c).unwrap()).sum();
            total as f64 / grid.num_cells() as f64
        };
        assert!(
            avg(&fine, &map_fine) < avg(&coarse, &map_coarse),
            "finer cells need fewer chunks each"
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (store, _dir) = build_store("mismatch", 100);
        let other_schema = Schema::new(vec![
            AttributeDef::new("a", 0.0, 1.0).unwrap(),
            AttributeDef::new("b", 0.0, 1.0).unwrap(),
            AttributeDef::new("c", 0.0, 1.0).unwrap(),
        ])
        .unwrap();
        let grid = Grid::new(&other_schema, 3).unwrap();
        assert!(ChunkMapping::build(&grid, store.manifest()).is_err());
    }

    #[test]
    fn slice_range_accessor() {
        let (store, _dir) = build_store("slice", 500);
        let grid = Grid::new(store.schema(), 4).unwrap();
        let mapping = ChunkMapping::build(&grid, store.manifest()).unwrap();
        assert_eq!(mapping.cells_per_dim(), 4);
        let (start, end) = mapping.slice_range(0, 0).unwrap();
        assert!(end >= start);
        assert!(mapping.slice_range(5, 0).is_err());
        assert!(mapping.slice_range(0, 99).is_err());
    }
}
