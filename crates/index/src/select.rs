//! Selection and ranking over the sharded index-point plane.
//!
//! Each shard keeps a cached list of its own top-scoring cells, sorted by
//! the same total order the global ranking uses (`score` descending via
//! NaN-last `total_cmp`, ties toward the lower cell id). Ranking the whole
//! plane is then a deterministic k-way merge of the per-shard lists —
//! bit-identical to [`uei_learn::strategy::top_k_desc`] over the full score
//! array at **any** shard count, because the shard ranges partition the
//! cell ids and every list is sorted by the identical total order
//! (DESIGN.md §14).
//!
//! The payoff is incremental: a rescoring pass that dirtied only some
//! shards invalidates only their lists, so selection re-ranks the dirty
//! slices and merges against the cached rest instead of re-partitioning
//! all `|P|` scores every iteration.

use uei_learn::strategy::{cmp_score_desc, top_k_desc};
use uei_types::ShardId;

use crate::grid::CellId;
use crate::shard::ShardLayout;

/// Floor on the per-shard list length: computing a handful of extra slots
/// per refresh is nearly free and lets later, slightly deeper rankings
/// (the prefetch horizon grows with τ) reuse the cache instead of
/// recomputing it.
const MIN_CACHED: usize = 16;

/// One shard's cached ranking.
#[derive(Debug, Clone, Default)]
struct ShardTop {
    /// Cell ids of this shard, best first, sorted by
    /// `(score desc, id asc)` — the global selection order.
    ids: Vec<CellId>,
    /// The list holds the shard's top `min(k_computed, shard_len)` cells.
    k_computed: usize,
    /// False after the shard's scores changed; the list must be rebuilt
    /// before the next merge.
    valid: bool,
}

/// Per-shard top-θ candidate caches plus the deterministic merge.
///
/// Owned by [`crate::points::IndexPoints`]; rescoring passes invalidate the
/// shards they touched and [`ShardTops::top_k`] lazily rebuilds exactly
/// those before merging.
#[derive(Debug, Clone)]
pub struct ShardTops {
    per_shard: Vec<ShardTop>,
}

impl ShardTops {
    /// Empty (all-invalid) caches for `num_shards` shards.
    pub fn new(num_shards: usize) -> ShardTops {
        ShardTops { per_shard: vec![ShardTop::default(); num_shards] }
    }

    /// Invalidates every shard's cached list (full rescore).
    pub fn invalidate_all(&mut self) {
        for top in &mut self.per_shard {
            top.valid = false;
        }
    }

    /// Invalidates one shard's cached list (incremental rescore).
    pub fn invalidate(&mut self, shard: ShardId) {
        self.per_shard[shard.as_usize()].valid = false;
    }

    /// How many shard lists are currently valid (diagnostics/tests).
    pub fn valid_count(&self) -> usize {
        self.per_shard.iter().filter(|t| t.valid).count()
    }

    /// The `k` highest-scoring cells across all shards, descending, ties
    /// toward the lower cell id — bit-identical to
    /// `top_k_desc(scores, k)` regardless of the shard count.
    ///
    /// `scores` must be the full score array the `layout` partitions.
    pub fn top_k(&mut self, layout: &ShardLayout, scores: &[f64], k: usize) -> Vec<CellId> {
        debug_assert_eq!(layout.num_shards(), self.per_shard.len());
        debug_assert_eq!(layout.num_cells(), scores.len());
        let k = k.min(scores.len());
        if k == 0 {
            return Vec::new();
        }
        for s in 0..self.per_shard.len() {
            self.ensure(layout, scores, s, k);
        }
        let lists: Vec<&[CellId]> = self.per_shard.iter().map(|t| t.ids.as_slice()).collect();
        merge_top_k(&lists, scores, k)
    }

    /// Rebuilds shard `s`'s list if it is invalid or shallower than `k`.
    fn ensure(&mut self, layout: &ShardLayout, scores: &[f64], s: usize, k: usize) {
        let range = layout.range(s);
        let top = &mut self.per_shard[s];
        if top.valid && (top.k_computed >= k || top.k_computed >= range.len()) {
            return;
        }
        // Compute a little deeper than asked (MIN_CACHED floor) so the
        // cache survives the prefetch horizon wobbling between iterations.
        let depth = k.max(MIN_CACHED);
        let local = top_k_desc(&scores[range.clone()], depth);
        top.ids.clear();
        top.ids.extend(local.into_iter().map(|i| i + range.start));
        top.k_computed = depth;
        top.valid = true;
    }
}

/// Deterministic k-way merge of per-shard rankings.
///
/// Each list must be sorted by `(score desc, id asc)` and the lists must
/// hold disjoint cell ids (a shard partition). The merge repeatedly takes
/// the best head under the same order, so the output equals the global
/// `top_k_desc` prefix — see DESIGN.md §14 for the argument.
pub fn merge_top_k(lists: &[&[CellId]], scores: &[f64], k: usize) -> Vec<CellId> {
    let mut cursors = vec![0usize; lists.len()];
    let mut out = Vec::with_capacity(k);
    while out.len() < k {
        let mut best: Option<(usize, CellId)> = None;
        for (l, &cur) in cursors.iter().enumerate() {
            let Some(&cand) = lists[l].get(cur) else { continue };
            best = match best {
                None => Some((l, cand)),
                Some((_, b))
                    if cmp_score_desc(scores[cand], scores[b]).then(cand.cmp(&b)).is_lt() =>
                {
                    Some((l, cand))
                }
                keep => keep,
            };
        }
        let Some((l, cell)) = best else { break };
        cursors[l] += 1;
        out.push(cell);
    }
    out
}

/// Cumulative graceful-degradation counters of an index.
///
/// Every counter only grows; take a snapshot before an iteration and
/// [`DegradeCounters::since`] after it to get per-iteration deltas.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DegradeCounters {
    /// Transient storage errors absorbed by the foreground retry policy.
    pub retries: u64,
    /// Candidate ranks skipped past storage-faulted cells (each successful
    /// fallback adds its rank, so one iteration can add more than 1).
    pub fallback_cells: u64,
    /// Iterations whose synchronous load exceeded the σ threshold.
    pub sigma_deadline_misses: u64,
    /// Iterations where every ranked candidate failed with a storage fault
    /// (the caller must degrade further, e.g. sample from the resident
    /// cache `U`).
    pub failed_selections: u64,
}

impl DegradeCounters {
    /// The counter deltas accumulated since an `earlier` snapshot.
    ///
    /// The counters are monotone by construction, so `earlier` exceeding
    /// `self` means the snapshots were swapped (or taken from different
    /// indexes) — debug builds assert instead of silently saturating;
    /// release builds still clamp at zero rather than underflow.
    pub fn since(&self, earlier: &DegradeCounters) -> DegradeCounters {
        debug_assert!(
            self.retries >= earlier.retries
                && self.fallback_cells >= earlier.fallback_cells
                && self.sigma_deadline_misses >= earlier.sigma_deadline_misses
                && self.failed_selections >= earlier.failed_selections,
            "degrade counters are monotone: snapshot {earlier:?} is newer than {self:?}",
        );
        DegradeCounters {
            retries: self.retries.saturating_sub(earlier.retries),
            fallback_cells: self.fallback_cells.saturating_sub(earlier.fallback_cells),
            sigma_deadline_misses: self
                .sigma_deadline_misses
                .saturating_sub(earlier.sigma_deadline_misses),
            failed_selections: self.failed_selections.saturating_sub(earlier.failed_selections),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uei_types::Rng;

    fn check_against_global(scores: &[f64], shards: usize) {
        let layout = ShardLayout::new(scores.len(), shards);
        let mut tops = ShardTops::new(layout.num_shards());
        for k in [0, 1, 3, scores.len() / 2, scores.len(), scores.len() + 5] {
            assert_eq!(
                tops.top_k(&layout, scores, k),
                top_k_desc(scores, k),
                "k={k} shards={shards}"
            );
        }
    }

    #[test]
    fn merged_ranking_matches_global_at_any_shard_count() {
        let mut rng = Rng::new(0xC0FFEE);
        let mut scores: Vec<f64> = (0..257).map(|_| rng.range_f64(0.0, 1.0)).collect();
        // Ties and NaNs exercise the id tie-break and the NaN-last rule.
        scores[13] = scores[200];
        scores[77] = f64::NAN;
        scores[78] = f64::NAN;
        for shards in [1, 2, 3, 8, 16, 257] {
            check_against_global(&scores, shards);
        }
    }

    #[test]
    fn uniform_scores_rank_by_id_across_shards() {
        let scores = vec![0.5; 64];
        for shards in [1, 2, 7] {
            check_against_global(&scores, shards);
        }
    }

    #[test]
    fn invalidation_tracks_score_mutations() {
        let mut rng = Rng::new(7);
        let mut scores: Vec<f64> = (0..100).map(|_| rng.range_f64(0.0, 1.0)).collect();
        let layout = ShardLayout::new(scores.len(), 4);
        let mut tops = ShardTops::new(4);
        assert_eq!(tops.top_k(&layout, &scores, 5), top_k_desc(&scores, 5));
        assert_eq!(tops.valid_count(), 4);
        // Promote a mid-pack cell to the global maximum, invalidating only
        // its shard: the merge must still see the change.
        scores[42] = 2.0;
        tops.invalidate(layout.shard_of(42));
        assert_eq!(tops.valid_count(), 3);
        let ranked = tops.top_k(&layout, &scores, 5);
        assert_eq!(ranked, top_k_desc(&scores, 5));
        assert_eq!(ranked[0], 42);
    }

    #[test]
    fn deeper_requests_refresh_shallow_caches() {
        let mut rng = Rng::new(9);
        let scores: Vec<f64> = (0..200).map(|_| rng.range_f64(0.0, 1.0)).collect();
        let layout = ShardLayout::new(scores.len(), 2);
        let mut tops = ShardTops::new(2);
        assert_eq!(tops.top_k(&layout, &scores, 2), top_k_desc(&scores, 2));
        // 150 > the MIN_CACHED floor: the shard lists must deepen.
        assert_eq!(tops.top_k(&layout, &scores, 150), top_k_desc(&scores, 150));
    }

    #[test]
    fn degrade_counter_deltas() {
        let a = DegradeCounters { retries: 2, fallback_cells: 1, ..Default::default() };
        let b = DegradeCounters {
            retries: 5,
            fallback_cells: 1,
            sigma_deadline_misses: 3,
            failed_selections: 0,
        };
        let d = b.since(&a);
        assert_eq!(d.retries, 3);
        assert_eq!(d.fallback_cells, 0);
        assert_eq!(d.sigma_deadline_misses, 3);
        assert_eq!(d.failed_selections, 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "monotone")]
    fn swapped_snapshots_are_a_bug_not_a_zero() {
        let newer = DegradeCounters { retries: 5, ..Default::default() };
        let older = DegradeCounters { retries: 2, ..Default::default() };
        let _ = older.since(&newer);
    }
}
