//! Region loading for one exploration session: the prefetch-preferring
//! fetch path, the σ-driven swap deferral, and the storage-fault fallback
//! ladder (Algorithm 2 lines 18–19 plus §3.2's graceful degradation).
//!
//! [`RegionFetcher`] owns the mutable I/O half of a session — the
//! [`RegionLoader`], the optional background [`Prefetcher`], and the
//! degradation counters — while ranking stays on
//! [`crate::points::IndexPoints`]. The [`crate::uei::UeiIndex`] facade
//! composes the two.

use std::time::Duration;

use uei_obs::{FlightEventKind, Phase, SessionTelemetry};
use uei_storage::merge::MergeStats;
use uei_types::{DataPoint, Result};

use crate::config::UeiConfig;
use crate::grid::{CellId, Grid};
use crate::loader::{LoadStats, RegionLoader};
use crate::mapping::ChunkMapping;
use crate::points::IndexPoints;
use crate::prefetch::{horizon, Prefetcher};
use crate::select::DegradeCounters;

/// How the region of one iteration was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadSource {
    /// Read synchronously from disk during the iteration.
    Synchronous,
    /// Served from a completed background prefetch (no foreground I/O).
    Prefetched,
    /// A deferred swap: the previously served region is still current, so
    /// nothing was read — the caller keeps using the rows it already holds
    /// (`rows` is empty in the [`RegionLoad`]).
    Retained,
}

/// The result of one `select_and_load` iteration step.
#[derive(Debug)]
pub struct RegionLoad {
    /// The chosen most-uncertain cell `p*`.
    pub cell: CellId,
    /// Every tuple of the subspace `g*`.
    pub rows: Vec<DataPoint>,
    /// Load measurements (virtual time is zero for prefetched regions).
    pub stats: LoadStats,
    /// Where the region came from.
    pub source: LoadSource,
    /// How many better-ranked candidates failed with a storage fault
    /// before this cell loaded (0 = the true `p*` was served).
    pub fallback_rank: u64,
}

/// The region-fetch half of a session: loader + prefetcher + the
/// degradation ladder's counters.
pub struct RegionFetcher {
    loader: RegionLoader,
    prefetcher: Option<Prefetcher>,
    /// The most recently served cell (for σ-driven swap deferral).
    last_cell: Option<CellId>,
    /// Swaps deferred so far (diagnostics).
    deferred_swaps: u64,
    /// Candidate ranks skipped past failed cells (degradation ladder).
    fallback_cells: u64,
    /// Iterations whose synchronous load blew the σ threshold.
    sigma_deadline_misses: u64,
    /// Iterations where every ranked candidate failed.
    failed_selections: u64,
    /// Phase spans + flight events for the select/load path (inert when
    /// telemetry is disabled).
    telemetry: SessionTelemetry,
}

impl RegionFetcher {
    /// Wraps a loader and an optional prefetcher with fresh counters.
    pub fn new(loader: RegionLoader, prefetcher: Option<Prefetcher>) -> RegionFetcher {
        RegionFetcher {
            loader,
            prefetcher,
            last_cell: None,
            deferred_swaps: 0,
            fallback_cells: 0,
            sigma_deadline_misses: 0,
            failed_selections: 0,
            telemetry: SessionTelemetry::disabled(),
        }
    }

    /// Installs the session's telemetry handle here and on the loader.
    pub fn set_telemetry(&mut self, telemetry: SessionTelemetry) {
        self.loader.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Picks the most uncertain cell from `points` and loads its subspace,
    /// preferring a completed prefetch; afterwards queues the θ = ⌈τ/σ⌉
    /// next-most-uncertain cells for background loading.
    ///
    /// With [`UeiConfig::defer_swaps`] on, a swap to a *new* cell is
    /// deferred for this iteration when loading it would be expected to
    /// exceed σ and no prefetched copy is ready — the current region is
    /// served again instead (§3.2 "Tuning Interactive Exploration").
    ///
    /// Storage faults degrade gracefully instead of aborting the iteration:
    /// when loading the top-ranked cell fails with a retryable-or-corrupt
    /// storage error (transient errors are already retried inside the
    /// loader per [`UeiConfig::retry`]), the next-ranked index point is
    /// tried, up to [`UeiConfig::fallback_candidates`] in total. Only when
    /// every candidate fails does the call return the last storage error —
    /// the caller's final rung is to uncertainty-sample from the resident
    /// cache `U` instead of a fresh region.
    pub fn select_and_load(
        &mut self,
        grid: &Grid,
        mapping: &ChunkMapping,
        config: &UeiConfig,
        points: &mut IndexPoints,
    ) -> Result<RegionLoad> {
        let want = config.fallback_candidates.min(points.len());
        let candidates = {
            let _span = self.telemetry.span(Phase::ShardSelect);
            points.ranked_top_cached(want)?
        };
        let cell = candidates[0];
        if config.defer_swaps {
            if let Some(last) = self.last_cell {
                let would_swap = cell != last;
                if would_swap && !self.prefetched_ready(cell) {
                    let tau = self.loader.recent_load_secs();
                    if tau > config.latency_threshold_secs {
                        // Defer: the last-served region stays current; the
                        // caller already holds its rows, so no I/O at all.
                        self.deferred_swaps += 1;
                        self.telemetry.event(
                            FlightEventKind::DeferredSwap,
                            self.loader.loads(),
                            || format!("swap to cell {cell} deferred (τ = {tau:.3}s); cell {last} retained"),
                        );
                        self.queue_prefetches(config, points, last)?;
                        return Ok(RegionLoad {
                            cell: last,
                            rows: Vec::new(),
                            stats: LoadStats {
                                merge: MergeStats::default(),
                                virtual_time: Duration::ZERO,
                                wall_time: Duration::ZERO,
                                rows: 0,
                                retries: 0,
                            },
                            source: LoadSource::Retained,
                            fallback_rank: 0,
                        });
                    }
                }
            }
        }
        let mut last_err: Option<uei_types::UeiError> = None;
        for (rank, &candidate) in candidates.iter().enumerate() {
            let mut load = match self.fetch_cell(grid, mapping, candidate) {
                Ok(load) => load,
                // Storage faults fall through to the next-ranked index
                // point; anything else (config/state bugs) aborts as usual.
                Err(e) if e.is_storage_fault() => {
                    last_err = Some(e);
                    continue;
                }
                Err(e) => return Err(e),
            };
            load.fallback_rank = rank as u64;
            self.fallback_cells += rank as u64;
            if rank > 0 {
                self.telemetry.event(FlightEventKind::Fallback, self.loader.loads(), || {
                    format!("cell {candidate} served at fallback rank {rank}")
                });
            }
            if load.stats.virtual_time.as_secs_f64() > config.latency_threshold_secs {
                self.sigma_deadline_misses += 1;
                self.telemetry.event(
                    FlightEventKind::SigmaDeadlineMiss,
                    self.loader.loads(),
                    || {
                        format!(
                            "cell {candidate} load took {:.3}s > σ = {:.3}s",
                            load.stats.virtual_time.as_secs_f64(),
                            config.latency_threshold_secs
                        )
                    },
                );
            }
            self.last_cell = Some(candidate);
            self.queue_prefetches(config, points, candidate)?;
            return Ok(load);
        }
        self.failed_selections += 1;
        self.telemetry.event(FlightEventKind::Fallback, self.loader.loads(), || {
            format!("selection exhausted: all {} ranked candidates failed", candidates.len())
        });
        Err(last_err.unwrap_or_else(|| {
            uei_types::UeiError::invalid_state("no candidate cells to select from")
        }))
    }

    /// Loads one cell, preferring a ready prefetched copy.
    pub fn fetch_cell(
        &mut self,
        grid: &Grid,
        mapping: &ChunkMapping,
        cell: CellId,
    ) -> Result<RegionLoad> {
        if let Some(pre) = &self.prefetcher {
            if let Some((rows, merge)) = pre.take(cell) {
                let stats = LoadStats {
                    merge,
                    virtual_time: Duration::ZERO,
                    wall_time: Duration::ZERO,
                    rows: rows.len(),
                    retries: 0,
                };
                return Ok(RegionLoad {
                    cell,
                    rows,
                    stats,
                    source: LoadSource::Prefetched,
                    fallback_rank: 0,
                });
            }
        }
        let (rows, stats) = self.loader.load_cell(grid, mapping, cell)?;
        Ok(RegionLoad { cell, rows, stats, source: LoadSource::Synchronous, fallback_rank: 0 })
    }

    fn prefetched_ready(&self, cell: CellId) -> bool {
        // `take` is destructive; peek via is_pending + failure bookkeeping
        // is not enough, so ask cheaply: a ready result is one that is
        // neither pending nor failed after having been requested. The
        // prefetcher exposes take() only, so probe pending state — a cell
        // that is still pending is certainly not ready.
        match &self.prefetcher {
            None => false,
            Some(p) => !p.is_pending(cell) && p.has_ready(cell),
        }
    }

    fn queue_prefetches(
        &mut self,
        config: &UeiConfig,
        points: &mut IndexPoints,
        just_loaded: CellId,
    ) -> Result<()> {
        let Some(pre) = &self.prefetcher else {
            return Ok(());
        };
        let tau = self.loader.recent_load_secs();
        let theta = horizon(tau, config.latency_threshold_secs);
        // The likely next regions are the runners-up of the current
        // ranking (the boundary moves slowly between iterations).
        let top = {
            let _span = self.telemetry.span(Phase::ShardSelect);
            points.ranked_top_cached((theta + 1).min(points.len()))?
        };
        for cell in top {
            if cell != just_loaded {
                pre.request(cell);
            }
        }
        Ok(())
    }

    /// How many region swaps were deferred to hold the latency threshold.
    pub fn deferred_swaps(&self) -> u64 {
        self.deferred_swaps
    }

    /// Cumulative graceful-degradation counters (retries, fallbacks,
    /// σ-deadline misses, exhausted selections).
    pub fn degrade_counters(&self) -> DegradeCounters {
        DegradeCounters {
            retries: self.loader.total_retries(),
            fallback_cells: self.fallback_cells,
            sigma_deadline_misses: self.sigma_deadline_misses,
            failed_selections: self.failed_selections,
        }
    }

    /// The underlying region loader.
    pub fn loader(&self) -> &RegionLoader {
        &self.loader
    }

    /// Mutable access to the region loader (direct cell loads).
    pub fn loader_mut(&mut self) -> &mut RegionLoader {
        &mut self.loader
    }

    /// The background prefetcher, when enabled.
    pub fn prefetcher(&self) -> Option<&Prefetcher> {
        self.prefetcher.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{boundary_model, build_store, small_config};
    use crate::uei::UeiIndex;
    use std::sync::Arc;
    use uei_storage::fault::{FaultConfig, FaultInjector, RetryPolicy};

    impl UeiIndex {
        /// Test helper: whether a prefetched region is ready for `cell`.
        fn load_prefetched_for_test(&self, cell: CellId) -> Option<bool> {
            self.prefetcher().map(|p| p.take(cell).is_some())
        }
    }

    #[test]
    fn prefetch_serves_second_iteration() {
        let (store, _, _dir) = build_store("prefetch", 2000);
        let config = UeiConfig { prefetch: true, ..small_config() };
        let mut index = UeiIndex::build(Arc::clone(&store), config).unwrap();
        index.update_uncertainty(&boundary_model(50.0));
        let first = index.select_and_load().unwrap();
        assert_eq!(first.source, LoadSource::Synchronous);

        // Give the background worker time to finish the runner-up.
        std::thread::sleep(Duration::from_millis(300));

        // Same model → same ranking; the previous top cell is cheap to
        // reload (cache) but the point of this test is the runner-up: force
        // selection of it by re-scoring and loading twice.
        index.update_uncertainty(&boundary_model(50.0));
        let second = index.select_and_load().unwrap();
        let third_cell_candidates = index.points().ranked_top(3).unwrap();
        // At least one of the next loads should be served by prefetch.
        let mut served = second.source == LoadSource::Prefetched;
        for cell in third_cell_candidates {
            if served {
                break;
            }
            if let Some(pre_rows) = index.load_prefetched_for_test(cell) {
                served = pre_rows;
            }
        }
        assert!(
            served || index.background_io().unwrap().bytes_read > 0,
            "prefetcher did background work"
        );
    }

    #[test]
    fn transient_faults_are_absorbed_by_retries() {
        let (store, _, _dir) = build_store("retrysess", 2000);
        let config = UeiConfig {
            chunk_cache_bytes: 0, // every load pays real reads → injector fires
            ..small_config()
        };
        let mut index = UeiIndex::build(Arc::clone(&store), config).unwrap();
        let injector = FaultInjector::new(FaultConfig {
            seed: 11,
            transient_prob: 0.05,
            ..FaultConfig::off()
        })
        .unwrap();
        store.tracker().set_fault_injector(Some(injector));
        for split in [20.0, 35.0, 50.0, 65.0, 80.0] {
            index.update_uncertainty(&boundary_model(split));
            index.select_and_load().expect("retries absorb transient faults");
        }
        let counters = index.degrade_counters();
        assert!(counters.retries > 0, "some reads must have been retried: {counters:?}");
        assert_eq!(counters.failed_selections, 0);
    }

    #[test]
    fn corrupt_top_cell_falls_back_to_next_ranked() {
        let (store, _, dir) = build_store("fallback", 2000);
        let config = UeiConfig {
            chunk_cache_bytes: 0,
            fallback_candidates: 16, // allow walking the whole ranking
            ..small_config()
        };
        let mut index = UeiIndex::build(Arc::clone(&store), config).unwrap();
        index.update_uncertainty(&boundary_model(50.0));
        let top = index.points().most_uncertain().unwrap();
        // Corrupt every chunk file the top cell needs: its load now fails
        // the catalog checksum, so selection must fall through the ranking.
        for ids in index.mapping().chunks_for_cell(index.grid(), top).unwrap() {
            for id in ids {
                let path = dir.path().join(id.file_name());
                let mut bytes = std::fs::read(&path).unwrap();
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x01;
                std::fs::write(&path, &bytes).unwrap();
            }
        }
        let load = index.select_and_load().expect("a clean lower-ranked cell exists");
        assert_ne!(load.cell, top, "corrupt p* cannot be served");
        assert!(load.fallback_rank > 0);
        let counters = index.degrade_counters();
        assert_eq!(counters.fallback_cells, load.fallback_rank);
        assert_eq!(counters.failed_selections, 0);
    }

    #[test]
    fn exhausted_candidates_surface_the_storage_error() {
        let (store, _, _dir) = build_store("exhaust", 1500);
        let config =
            UeiConfig { chunk_cache_bytes: 0, retry: RetryPolicy::none(), ..small_config() };
        let mut index = UeiIndex::build(Arc::clone(&store), config).unwrap();
        let injector =
            FaultInjector::new(FaultConfig { seed: 3, transient_prob: 1.0, ..FaultConfig::off() })
                .unwrap();
        store.tracker().set_fault_injector(Some(injector));
        index.update_uncertainty(&boundary_model(50.0));
        let err = index.select_and_load().unwrap_err();
        assert!(err.is_storage_fault(), "ladder exhaustion returns the last fault: {err}");
        assert_eq!(index.degrade_counters().failed_selections, 1);
        // Detaching the injector heals the next selection.
        store.tracker().set_fault_injector(None);
        index.select_and_load().expect("selection recovers once faults stop");
        assert_eq!(index.degrade_counters().failed_selections, 1);
    }

    #[test]
    fn sigma_deadline_misses_are_counted() {
        let (store, _, _dir) = build_store("sigma", 2000);
        let config = UeiConfig {
            chunk_cache_bytes: 0,
            latency_threshold_secs: 1e-9, // modeled NVMe always exceeds 1 ns
            ..small_config()
        };
        let mut index = UeiIndex::build(Arc::clone(&store), config).unwrap();
        index.update_uncertainty(&boundary_model(50.0));
        index.select_and_load().unwrap();
        assert!(index.degrade_counters().sigma_deadline_misses >= 1);
    }

    #[test]
    fn ready_prefetch_survives_model_update() {
        // The invalidation rule: a model update re-ranks the cells, but a
        // ready-but-untaken prefetched region stays valid as *data* (cell
        // contents never change), so update_uncertainty must keep it.
        let (store, _, _dir) = build_store("survive", 1500);
        let config = UeiConfig { prefetch: true, ..small_config() };
        let mut index = UeiIndex::build(Arc::clone(&store), config).unwrap();
        let pre = index.prefetcher().unwrap();
        pre.request(9);
        assert!(pre.take_blocking(9, Duration::from_secs(10)).is_some(), "prefetch completes");
        // Buffer it again (take was destructive) and leave it untaken.
        pre.request(9);
        while index.prefetcher().unwrap().is_pending(9) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(index.prefetcher().unwrap().has_ready(9));

        index.update_uncertainty(&boundary_model(50.0));
        assert!(
            index.prefetcher().unwrap().has_ready(9),
            "model update must not drop ready prefetches"
        );
        // And the retained result is actually served on selection.
        assert_eq!(index.load_prefetched_for_test(9), Some(true));
    }

    #[test]
    fn prefetcher_warmed_chunks_cost_foreground_nothing() {
        // Acceptance: a prefetched-then-swapped region performs zero
        // foreground chunk reads for chunks the prefetcher already loaded.
        let (store, _, _dir) = build_store("warmzero", 1500);
        let config = UeiConfig { prefetch: true, ..small_config() };
        let mut index = UeiIndex::build(Arc::clone(&store), config).unwrap();
        let pre = index.prefetcher().unwrap();
        pre.request(5);
        pre.take_blocking(5, Duration::from_secs(10)).expect("prefetch completes");
        // The ready buffer is now empty for cell 5, so this foreground
        // load goes through the loader — but every chunk is resident in
        // the shared cache the prefetcher filled.
        let before = store.tracker().snapshot();
        let (rows, stats) = index.load_cell(5).unwrap();
        assert!(!rows.is_empty());
        assert!(stats.merge.chunks_loaded > 0);
        assert_eq!(
            store.tracker().delta(&before).stats.bytes_read,
            0,
            "zero foreground chunk reads for prefetcher-warmed chunks"
        );
        assert_eq!(stats.virtual_time, Duration::ZERO);
    }

    #[test]
    fn defer_swaps_holds_current_region_when_loads_are_slow() {
        let (store, _, _dir) = build_store("defer", 2000);
        // τ will exceed σ immediately: every region load on modeled NVMe
        // takes > 1 ns threshold.
        let config = UeiConfig {
            defer_swaps: true,
            latency_threshold_secs: 1e-9,
            chunk_cache_bytes: 0, // no cache: every load pays I/O
            ..small_config()
        };
        let mut index = UeiIndex::build(Arc::clone(&store), config).unwrap();

        index.update_uncertainty(&boundary_model(20.0));
        let first = index.select_and_load().unwrap();
        assert_eq!(index.deferred_swaps(), 0, "first load cannot be deferred");

        // Move the boundary: the ranking now prefers a different cell, but
        // the swap is deferred because τ > σ and nothing is prefetched.
        index.update_uncertainty(&boundary_model(80.0));
        let second = index.select_and_load().unwrap();
        assert_eq!(second.cell, first.cell, "swap deferred, same region served");
        assert_eq!(index.deferred_swaps(), 1);
    }

    #[test]
    fn defer_swaps_noop_when_loads_are_fast() {
        let (store, _, _dir) = build_store("nodefer", 2000);
        let config = UeiConfig {
            defer_swaps: true,
            latency_threshold_secs: 10.0, // σ far above any load time
            ..small_config()
        };
        let mut index = UeiIndex::build(Arc::clone(&store), config).unwrap();
        index.update_uncertainty(&boundary_model(20.0));
        let first = index.select_and_load().unwrap();
        index.update_uncertainty(&boundary_model(80.0));
        let second = index.select_and_load().unwrap();
        assert_ne!(second.cell, first.cell, "fast loads never defer");
        assert_eq!(index.deferred_swaps(), 0);
    }
}
