//! UEI configuration.

use uei_obs::TelemetryConfig;
use uei_storage::fault::RetryPolicy;
use uei_storage::journal::JournalConfig;
use uei_types::{Result, UeiError};

/// Tunables of the Uncertainty Estimation Index.
///
/// Defaults follow the paper's Table 1 where applicable: 5 cells per
/// dimension (5⁵ = 3125 symbolic index points for the 5-attribute SDSS
/// schema) and a 500 ms latency threshold σ.
#[derive(Debug, Clone)]
pub struct UeiConfig {
    /// Grid resolution: cells per dimension. The number of symbolic index
    /// points is `cells_per_dim ^ dims` ("the number of symbolic index
    /// point can be adjusted based on the size of the dataset and the
    /// available hardware resources", §3.1).
    pub cells_per_dim: usize,
    /// Byte budget of the in-memory chunk cache. The paper's default
    /// behaviour (exactly one region's chunks resident, each dropped after
    /// the merge) corresponds to a small budget; a larger budget lets
    /// chunks shared between adjacent cells stay resident.
    pub chunk_cache_bytes: usize,
    /// Lock stripes of the shared chunk cache. Each shard owns an
    /// independent LRU and `chunk_cache_bytes / cache_shards` of the
    /// budget, so foreground and prefetcher threads touching different
    /// chunks rarely contend. Ignored when [`UeiConfig::shared_cache`] is
    /// off.
    pub cache_shards: usize,
    /// Share one concurrent chunk cache between the foreground loader and
    /// the background prefetcher. A prefetched region's chunks are then
    /// already decoded and resident when the foreground swaps to it, so
    /// the swap performs zero foreground chunk reads. Off reverts to the
    /// pre-sharing layout: a private foreground LRU and an uncached
    /// chunk-at-a-time prefetcher.
    pub shared_cache: bool,
    /// Reconstruct each region incrementally against the previously loaded
    /// one: chunks both regions share are reused decoded (zero I/O, zero
    /// CPU), only the chunk-ID delta is fetched. Consecutive uncertain
    /// regions overlap heavily — the boundary moves slowly, the same
    /// premise the σ/θ prefetch machinery rests on (§3.2) — so this is the
    /// common case, and results are bit-identical either way.
    pub delta_reconstruction: bool,
    /// Response-latency threshold σ between iterations, in seconds
    /// (Table 1: 500 ms). Drives the prefetch horizon θ = ⌈τ/σ⌉.
    pub latency_threshold_secs: f64,
    /// Whether the background prefetcher is enabled (§3.2 "Tuning
    /// Interactive Exploration").
    pub prefetch: bool,
    /// How many recently loaded uncertain regions the unlabeled cache `U`
    /// keeps resident. The paper's default is 1 ("to reduce memory usage,
    /// by default UEI kept only one uncertain data region g* in the memory
    /// at any given time", §3.2); larger values trade memory for a wider
    /// candidate pool.
    pub regions_in_memory: usize,
    /// Defer region swaps that would blow the latency threshold: when the
    /// ranking moves to a new cell but the expected load time τ exceeds σ
    /// and no prefetched copy is ready, keep serving the current region
    /// this iteration ("UEI determines whether or not to defer the swap
    /// between the current in-memory uncertain region g*_i and the next
    /// uncertain region g*_{i+1}", §3.2). Off by default.
    pub defer_swaps: bool,
    /// Whether index-point rescoring uses the batch scoring path
    /// (multi-core fan-out plus per-worker traversal scratch). Batches
    /// below [`uei_learn::batch::PARALLEL_THRESHOLD`] stay sequential
    /// either way, and results are bit-identical in both modes, so this
    /// knob exists for benchmarking and for pinning down scheduler
    /// interference — not for correctness.
    pub parallel: bool,
    /// Retry policy for foreground region loads: transient storage errors
    /// are retried up to `max_attempts` with exponential backoff charged to
    /// the virtual clock. Corruption is never retried — a corrupt chunk
    /// stays corrupt, so the loader falls through to the next candidate
    /// instead.
    pub retry: RetryPolicy,
    /// How many of the top-ranked uncertain cells `select_and_load` is
    /// willing to try before declaring the iteration degraded. Rank 0 is
    /// the true p*; each further rank is a graceful-degradation fallback
    /// taken only when every better-ranked cell failed with a storage
    /// fault.
    pub fallback_candidates: usize,
    /// Incremental index-point rescoring: consult the model's
    /// [`uei_learn::ModelDelta`] each iteration and rescore only the index
    /// points whose score may have changed (for kNN-family models, those
    /// inside the influence balls of the newly labeled examples), keeping
    /// every other cached score verbatim. Scores — and therefore region
    /// selection — are bit-identical to a full rescore; the win is skipped
    /// work. Models with global updates (NB, SVM, committees) fall back to
    /// full rescoring automatically. Requires `parallel` (the batch path);
    /// ignored when `parallel` is off.
    pub incremental_rescore: bool,
    /// Safety margin on the kNN influence radii used for incremental
    /// rescoring: each radius is inflated by `(1 + rescore_margin)` before
    /// the dirty test. Any non-negative margin preserves soundness (it can
    /// only mark *more* points dirty); the default 0 is already exact.
    pub rescore_margin: f64,
    /// Force a full (tracked) rescore after this many consecutive
    /// incremental passes — a belt-and-braces staleness bound for long
    /// sessions. Must be ≥ 1; 1 disables incremental reuse entirely.
    pub full_rescore_every: usize,
    /// Durability knobs for sessions that attach a write-ahead journal:
    /// fsync policy for record appends, segment rotation size, and the
    /// snapshot cadence in iterations (DESIGN.md §13). Sessions without a
    /// journal directory ignore this entirely.
    pub journal: JournalConfig,
    /// Number of contiguous cell-range shards the index-point plane is
    /// partitioned into (DESIGN.md §14). Each shard owns its slice of the
    /// score/radius arrays, its own dirty set, and its own cached top-θ
    /// candidate list; rescoring fans out across shards and selection is a
    /// deterministic k-way merge of the per-shard lists, so scores and
    /// selection are **bit-identical at every shard count**. `0` (the
    /// default) sizes the shard count automatically from the cell count;
    /// explicit values are clamped to `[1, num_cells]`.
    pub shards: usize,
    /// Telemetry gate (DESIGN.md §15): phase spans, the metrics registry,
    /// and the per-session flight recorder. Off by default; modeled
    /// counters and traces are bit-identical either way — telemetry only
    /// *reads* the virtual clock, never charges it.
    pub telemetry: TelemetryConfig,
}

impl Default for UeiConfig {
    fn default() -> Self {
        UeiConfig {
            cells_per_dim: 5,
            chunk_cache_bytes: 64 << 20,
            cache_shards: uei_storage::DEFAULT_CACHE_SHARDS,
            shared_cache: true,
            delta_reconstruction: true,
            latency_threshold_secs: 0.5,
            prefetch: false,
            regions_in_memory: 1,
            defer_swaps: false,
            parallel: true,
            retry: RetryPolicy::default(),
            fallback_candidates: 4,
            incremental_rescore: true,
            rescore_margin: 0.0,
            full_rescore_every: 50,
            journal: JournalConfig::default(),
            shards: 0,
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl UeiConfig {
    /// Validates the configuration against a schema dimensionality.
    pub fn validate(&self, dims: usize) -> Result<()> {
        if self.cells_per_dim < 1 {
            return Err(UeiError::invalid_config("cells_per_dim must be >= 1"));
        }
        if dims == 0 {
            return Err(UeiError::invalid_config("schema must have >= 1 dimension"));
        }
        // Guard the cell count against overflow / absurd sizes.
        let mut cells: u128 = 1;
        for _ in 0..dims {
            cells = cells.saturating_mul(self.cells_per_dim as u128);
            if cells > 50_000_000 {
                return Err(UeiError::invalid_config(format!(
                    "grid of {}^{dims} cells is too large",
                    self.cells_per_dim
                )));
            }
        }
        if !(self.latency_threshold_secs > 0.0) {
            return Err(UeiError::invalid_config("latency threshold must be positive"));
        }
        if self.regions_in_memory == 0 {
            return Err(UeiError::invalid_config("regions_in_memory must be >= 1"));
        }
        if self.cache_shards == 0 {
            return Err(UeiError::invalid_config("cache_shards must be >= 1"));
        }
        if self.fallback_candidates == 0 {
            return Err(UeiError::invalid_config("fallback_candidates must be >= 1"));
        }
        if !(self.rescore_margin >= 0.0) || !self.rescore_margin.is_finite() {
            return Err(UeiError::invalid_config("rescore_margin must be finite and >= 0"));
        }
        if self.full_rescore_every == 0 {
            return Err(UeiError::invalid_config("full_rescore_every must be >= 1"));
        }
        if self.shards > crate::shard::MAX_SHARDS {
            return Err(UeiError::invalid_config(format!(
                "shards must be <= {} (0 = auto)",
                crate::shard::MAX_SHARDS
            )));
        }
        self.retry.validate()?;
        self.journal.validate()?;
        self.telemetry.validate()?;
        Ok(())
    }

    /// Total number of symbolic index points for `dims` dimensions.
    pub fn num_cells(&self, dims: usize) -> usize {
        self.cells_per_dim.pow(dims as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let c = UeiConfig::default();
        assert_eq!(c.cells_per_dim, 5);
        assert_eq!(c.num_cells(5), 3125, "Table 1: 3125 symbolic index points");
        assert_eq!(c.latency_threshold_secs, 0.5, "Table 1: 500 ms threshold");
        c.validate(5).unwrap();
    }

    #[test]
    fn rejects_degenerate_configs() {
        let c = UeiConfig { cells_per_dim: 0, ..UeiConfig::default() };
        assert!(c.validate(5).is_err());

        let c = UeiConfig { latency_threshold_secs: 0.0, ..UeiConfig::default() };
        assert!(c.validate(5).is_err());

        let c = UeiConfig { regions_in_memory: 0, ..UeiConfig::default() };
        assert!(c.validate(5).is_err());

        let c = UeiConfig { cache_shards: 0, ..UeiConfig::default() };
        assert!(c.validate(5).is_err());

        let c = UeiConfig { fallback_candidates: 0, ..UeiConfig::default() };
        assert!(c.validate(5).is_err());

        let c = UeiConfig { rescore_margin: -0.1, ..UeiConfig::default() };
        assert!(c.validate(5).is_err());

        let c = UeiConfig { rescore_margin: f64::NAN, ..UeiConfig::default() };
        assert!(c.validate(5).is_err());

        let c = UeiConfig { rescore_margin: f64::INFINITY, ..UeiConfig::default() };
        assert!(c.validate(5).is_err());

        let c = UeiConfig { full_rescore_every: 0, ..UeiConfig::default() };
        assert!(c.validate(5).is_err());

        let c = UeiConfig {
            retry: RetryPolicy { max_attempts: 0, ..RetryPolicy::default() },
            ..UeiConfig::default()
        };
        assert!(c.validate(5).is_err());

        let c = UeiConfig {
            journal: JournalConfig { snapshot_every: 0, ..JournalConfig::default() },
            ..UeiConfig::default()
        };
        assert!(c.validate(5).is_err());

        let c = UeiConfig {
            journal: JournalConfig { segment_bytes: 0, ..JournalConfig::default() },
            ..UeiConfig::default()
        };
        assert!(c.validate(5).is_err());

        let c = UeiConfig {
            telemetry: TelemetryConfig { enabled: true, flight_capacity: 0 },
            ..UeiConfig::default()
        };
        assert!(c.validate(5).is_err());

        assert!(UeiConfig::default().validate(0).is_err());
    }

    #[test]
    fn shard_knob_defaults_to_auto_and_rejects_absurd_counts() {
        let c = UeiConfig::default();
        assert_eq!(c.shards, 0, "0 = auto-sized from the cell count");
        c.validate(5).unwrap();
        let c = UeiConfig { shards: 8, ..UeiConfig::default() };
        c.validate(5).unwrap();
        let c = UeiConfig { shards: crate::shard::MAX_SHARDS + 1, ..UeiConfig::default() };
        assert!(c.validate(5).is_err());
    }

    #[test]
    fn rejects_explosive_grids() {
        let mut c = UeiConfig { cells_per_dim: 100, ..UeiConfig::default() };
        assert!(c.validate(10).is_err(), "100^10 cells must be rejected");
        c.cells_per_dim = 2;
        c.validate(20).unwrap();
    }
}
