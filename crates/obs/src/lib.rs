//! # uei-obs
//!
//! Engine-wide observability for the UEI stack (DESIGN.md §15). Three
//! pillars, all vendored-deps-only and network-free:
//!
//! - [`metrics`] — a registry of atomic counters, gauges, and log₂-bucket
//!   histograms, mergeable across threads and sessions, with two
//!   exporters: Prometheus text format and a diffable serde JSON
//!   [`metrics::MetricsSnapshot`];
//! - [`span`] — zero-alloc scoped phase timers ([`span::Span`]) that
//!   accumulate dual wall/virtual-clock durations per iteration
//!   [`span::Phase`], surfaced as the `phase_ms` breakdown on traces;
//! - [`flight`] — a fixed-capacity ring of recent structured events
//!   ([`flight::FlightEvent`]) per session, dumped by the multi-session
//!   supervisor as a JSON [`flight::Postmortem`] on panic, recovery, or a
//!   degraded run.
//!
//! The layer is configuration-gated by [`TelemetryConfig`]: a disabled
//! [`span::SessionTelemetry`] handle is a `None` behind an `Option` —
//! entering a span is one branch, no clock read, no allocation — so the
//! modeled counters and traces of a session are bit-identical whether
//! telemetry is on, off, or (as before this layer existed) absent.

pub mod counters;
pub mod flight;
pub mod metrics;
pub mod span;

pub use counters::ObsCounters;
pub use flight::{FlightEvent, FlightEventKind, FlightRecorder, Postmortem};
pub use metrics::{
    Counter, CounterSample, Gauge, GaugeSample, Histogram, HistogramSample, MetricsRegistry,
    MetricsSnapshot,
};
pub use span::{
    EngineTelemetry, Phase, PhaseMs, PhaseSnapshot, PhaseStats, SessionTelemetry, Span,
    VirtualClock, PHASES,
};

use serde::{Deserialize, Serialize};
use uei_types::{Result, UeiError};

/// Telemetry knobs, carried inside `UeiConfig { telemetry }`.
///
/// Off by default: the baseline exploration loop pays nothing beyond one
/// branch per instrumented call site (measured by `obs_bench`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Master switch for spans, metrics, and the flight recorder.
    #[serde(default)]
    pub enabled: bool,
    /// Events retained per session flight ring (oldest overwritten).
    #[serde(default)]
    pub flight_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { enabled: false, flight_capacity: 256 }
    }
}

impl TelemetryConfig {
    /// Telemetry on with the default ring capacity.
    pub fn on() -> Self {
        TelemetryConfig { enabled: true, ..TelemetryConfig::default() }
    }

    /// Validates the knobs.
    pub fn validate(&self) -> Result<()> {
        if self.enabled && self.flight_capacity == 0 {
            return Err(UeiError::invalid_config(
                "telemetry.flight_capacity must be >= 1 when telemetry is enabled",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off_and_valid() {
        let config = TelemetryConfig::default();
        assert!(!config.enabled);
        config.validate().unwrap();
        TelemetryConfig::on().validate().unwrap();
    }

    #[test]
    fn enabled_requires_ring_capacity() {
        let config = TelemetryConfig { enabled: true, flight_capacity: 0 };
        assert!(config.validate().is_err());
        let off = TelemetryConfig { enabled: false, flight_capacity: 0 };
        off.validate().unwrap();
    }
}
