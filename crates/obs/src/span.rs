//! Phase spans: zero-alloc scoped timers accumulating dual wall +
//! virtual-clock durations for the seven hot phases of an exploration
//! iteration, plus the engine/session telemetry handles that own them.
//!
//! A [`Span`] is a guard: enter with [`SessionTelemetry::span`], drop to
//! record. When telemetry is disabled the handle holds no state and
//! `span()` is a single branch — no clock read, no allocation — which is
//! what keeps disabled-mode cost near zero (measured by `obs_bench`).
//! Spans nest; each phase accumulates its own *inclusive* time, so a
//! [`Phase::ChunkMerge`] span inside a [`Phase::RegionLoad`] span counts
//! toward both.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::flight::{FlightEvent, FlightEventKind, FlightRecorder, Postmortem};
use crate::metrics::{Counter, Histogram, MetricsRegistry, MetricsSnapshot};
use crate::TelemetryConfig;

/// Number of instrumented phases.
pub const PHASES: usize = 7;

/// The seven hot phases of one exploration iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Retraining the classifier on the labeled set.
    ModelRefit = 0,
    /// Rescoring index points (full or incremental).
    Rescore = 1,
    /// Ranking/merging shard index planes and picking candidates.
    ShardSelect = 2,
    /// Loading the chosen region (cache, prefetch, or disk).
    RegionLoad = 3,
    /// Decoding and merging chunks into tuples.
    ChunkMerge = 4,
    /// Estimating the F-measure on the evaluation sample.
    Eval = 5,
    /// Appending the iteration to the write-ahead journal.
    JournalAppend = 6,
}

impl Phase {
    /// Every phase, in enum order.
    pub const ALL: [Phase; PHASES] = [
        Phase::ModelRefit,
        Phase::Rescore,
        Phase::ShardSelect,
        Phase::RegionLoad,
        Phase::ChunkMerge,
        Phase::Eval,
        Phase::JournalAppend,
    ];

    /// Stable snake_case name used in trace breakdowns and metric names.
    pub fn name(self) -> &'static str {
        match self {
            Phase::ModelRefit => "model_refit",
            Phase::Rescore => "rescore",
            Phase::ShardSelect => "shard_select",
            Phase::RegionLoad => "region_load",
            Phase::ChunkMerge => "chunk_merge",
            Phase::Eval => "eval",
            Phase::JournalAppend => "journal_append",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// One phase's share of a breakdown window (serialized into
/// `IterationTrace::phase_ms` and summed into `RunSummary`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseMs {
    /// [`Phase::name`] of the phase.
    pub phase: String,
    /// Wall-clock milliseconds spent in the phase.
    pub wall_ms: f64,
    /// Virtual-clock (modeled I/O) milliseconds spent in the phase.
    pub virtual_ms: f64,
    /// Spans recorded.
    pub count: u64,
}

/// Per-phase accumulators (relaxed atomics, shared by value snapshots).
#[derive(Debug, Default)]
pub struct PhaseStats {
    wall_nanos: [AtomicU64; PHASES],
    virtual_nanos: [AtomicU64; PHASES],
    counts: [AtomicU64; PHASES],
}

/// A point-in-time copy of [`PhaseStats`], used to window per-iteration
/// breakdowns out of cumulative per-session accumulators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseSnapshot {
    wall_nanos: [u64; PHASES],
    virtual_nanos: [u64; PHASES],
    counts: [u64; PHASES],
}

impl PhaseStats {
    /// Fresh, zeroed accumulators.
    pub fn new() -> PhaseStats {
        PhaseStats::default()
    }

    /// Adds one span's durations to `phase`.
    pub fn record(&self, phase: Phase, wall_nanos: u64, virtual_nanos: u64) {
        let i = phase.index();
        self.wall_nanos[i].fetch_add(wall_nanos, Ordering::Relaxed);
        self.virtual_nanos[i].fetch_add(virtual_nanos, Ordering::Relaxed);
        self.counts[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current totals.
    pub fn snapshot(&self) -> PhaseSnapshot {
        PhaseSnapshot {
            wall_nanos: std::array::from_fn(|i| self.wall_nanos[i].load(Ordering::Relaxed)),
            virtual_nanos: std::array::from_fn(|i| self.virtual_nanos[i].load(Ordering::Relaxed)),
            counts: std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
        }
    }

    /// The per-phase deltas since `earlier`, skipping phases with no
    /// spans in the window.
    pub fn breakdown_since(&self, earlier: &PhaseSnapshot) -> Vec<PhaseMs> {
        let now = self.snapshot();
        Phase::ALL
            .iter()
            .filter_map(|&p| {
                let i = p.index();
                let count = now.counts[i].saturating_sub(earlier.counts[i]);
                if count == 0 {
                    return None;
                }
                Some(PhaseMs {
                    phase: p.name().to_string(),
                    wall_ms: now.wall_nanos[i].saturating_sub(earlier.wall_nanos[i]) as f64 / 1e6,
                    virtual_ms: now.virtual_nanos[i].saturating_sub(earlier.virtual_nanos[i])
                        as f64
                        / 1e6,
                    count,
                })
            })
            .collect()
    }

    /// The all-time per-phase breakdown.
    pub fn breakdown(&self) -> Vec<PhaseMs> {
        self.breakdown_since(&PhaseSnapshot::default())
    }
}

/// A source of virtual-clock readings (implemented by the storage
/// layer's `DiskTracker`), letting spans report modeled I/O time next to
/// wall time without this crate depending on the storage layer.
pub trait VirtualClock: Send + Sync {
    /// Nanoseconds elapsed on the virtual clock.
    fn virtual_nanos(&self) -> u64;
}

struct SessionInner {
    ordinal: u64,
    phases: PhaseStats,
    phase_wall_us: [Arc<Histogram>; PHASES],
    phase_virtual_us: [Arc<Counter>; PHASES],
    flight: FlightRecorder,
    registry: Arc<MetricsRegistry>,
    clock: Option<Arc<dyn VirtualClock>>,
}

impl std::fmt::Debug for SessionInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionInner")
            .field("ordinal", &self.ordinal)
            .field("flight_recorded", &self.flight.total_recorded())
            .finish_non_exhaustive()
    }
}

/// The per-session telemetry handle: cheap to clone (one `Arc`), inert
/// when telemetry is disabled.
#[derive(Debug, Clone, Default)]
pub struct SessionTelemetry {
    inner: Option<Arc<SessionInner>>,
}

impl SessionTelemetry {
    /// An inert handle: every operation is a no-op behind one branch.
    pub fn disabled() -> SessionTelemetry {
        SessionTelemetry { inner: None }
    }

    /// A handle recording into `registry`; inert unless `config.enabled`.
    pub fn new(
        config: TelemetryConfig,
        ordinal: u64,
        registry: Arc<MetricsRegistry>,
        clock: Option<Arc<dyn VirtualClock>>,
    ) -> SessionTelemetry {
        if !config.enabled {
            return SessionTelemetry::disabled();
        }
        let phase_wall_us = std::array::from_fn(|i| {
            registry.histogram(&format!("uei_phase_wall_us_{}", Phase::ALL[i].name()))
        });
        let phase_virtual_us = std::array::from_fn(|i| {
            registry.counter(&format!("uei_phase_virtual_us_{}", Phase::ALL[i].name()))
        });
        SessionTelemetry {
            inner: Some(Arc::new(SessionInner {
                ordinal,
                phases: PhaseStats::new(),
                phase_wall_us,
                phase_virtual_us,
                flight: FlightRecorder::new(config.flight_capacity),
                registry,
                clock,
            })),
        }
    }

    /// A handle with its own private registry (sessions built outside an
    /// `EngineCore`).
    pub fn standalone(
        config: TelemetryConfig,
        clock: Option<Arc<dyn VirtualClock>>,
    ) -> SessionTelemetry {
        SessionTelemetry::new(config, 0, Arc::new(MetricsRegistry::new()), clock)
    }

    /// Whether spans and events are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The session's ordinal within its engine (0 when disabled or
    /// standalone).
    pub fn ordinal(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.ordinal)
    }

    /// The registry this session records into, when enabled.
    pub fn registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.inner.as_ref().map(|i| &i.registry)
    }

    /// Enters a phase span; the drop of the returned guard records it.
    #[inline]
    pub fn span(&self, phase: Phase) -> Span<'_> {
        match &self.inner {
            None => Span { active: None },
            Some(inner) => Span {
                active: Some(ActiveSpan {
                    inner,
                    phase,
                    wall_start: Instant::now(),
                    virtual_start: inner.clock.as_ref().map_or(0, |c| c.virtual_nanos()),
                }),
            },
        }
    }

    /// Records a flight event; `detail` is only rendered when enabled.
    pub fn event(&self, kind: FlightEventKind, iteration: u64, detail: impl FnOnce() -> String) {
        if let Some(inner) = &self.inner {
            inner.flight.record(FlightEvent {
                seq: 0,
                session: inner.ordinal,
                iteration,
                kind,
                detail: detail(),
            });
        }
    }

    /// The resident flight events (empty when disabled).
    pub fn flight_events(&self) -> Vec<FlightEvent> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.flight.events())
    }

    /// Snapshot of the cumulative per-phase accumulators (zeroed when
    /// disabled, so windowing code stays branch-free).
    pub fn phase_snapshot(&self) -> PhaseSnapshot {
        self.inner.as_ref().map_or_else(PhaseSnapshot::default, |i| i.phases.snapshot())
    }

    /// Per-phase deltas since `earlier` (empty when disabled).
    pub fn breakdown_since(&self, earlier: &PhaseSnapshot) -> Vec<PhaseMs> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.phases.breakdown_since(earlier))
    }

    /// The all-time per-phase breakdown (empty when disabled).
    pub fn breakdown(&self) -> Vec<PhaseMs> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.phases.breakdown())
    }
}

struct ActiveSpan<'a> {
    inner: &'a SessionInner,
    phase: Phase,
    wall_start: Instant,
    virtual_start: u64,
}

/// A scoped phase timer; records into the session's accumulators and the
/// registry's per-phase instruments on drop. Inert (zero state) when the
/// owning [`SessionTelemetry`] is disabled.
pub struct Span<'a> {
    active: Option<ActiveSpan<'a>>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(span) = self.active.take() {
            let wall = span.wall_start.elapsed().as_nanos() as u64;
            let virt = span
                .inner
                .clock
                .as_ref()
                .map_or(0, |c| c.virtual_nanos().saturating_sub(span.virtual_start));
            span.inner.phases.record(span.phase, wall, virt);
            let i = span.phase.index();
            span.inner.phase_wall_us[i].record(wall / 1_000);
            span.inner.phase_virtual_us[i].add(virt / 1_000);
        }
    }
}

/// Engine-wide telemetry: owns the shared [`MetricsRegistry`] and tracks
/// every session handle it has opened so the supervisor can merge their
/// flight recorders into one [`Postmortem`].
pub struct EngineTelemetry {
    config: TelemetryConfig,
    registry: Arc<MetricsRegistry>,
    sessions: Mutex<Vec<SessionTelemetry>>,
    next_ordinal: AtomicU64,
}

impl std::fmt::Debug for EngineTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineTelemetry").field("config", &self.config).finish_non_exhaustive()
    }
}

impl EngineTelemetry {
    /// A fresh engine-wide registry under `config`.
    pub fn new(config: TelemetryConfig) -> EngineTelemetry {
        EngineTelemetry {
            config,
            registry: Arc::new(MetricsRegistry::new()),
            sessions: Mutex::new(Vec::new()),
            next_ordinal: AtomicU64::new(1),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> TelemetryConfig {
        self.config
    }

    /// Whether telemetry is recording.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// The engine-wide registry (usable even while disabled; it simply
    /// receives nothing from inert session handles).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Opens a per-session handle wired to the engine registry and the
    /// session's virtual clock; registered for post-mortem merging.
    pub fn open_session(&self, clock: Option<Arc<dyn VirtualClock>>) -> SessionTelemetry {
        if !self.config.enabled {
            return SessionTelemetry::disabled();
        }
        let ordinal = self.next_ordinal.fetch_add(1, Ordering::Relaxed);
        let session =
            SessionTelemetry::new(self.config, ordinal, Arc::clone(&self.registry), clock);
        self.registry.counter("uei_sessions_total").inc();
        self.sessions.lock().expect("telemetry sessions poisoned").push(session.clone());
        session
    }

    /// Exports every instrument as a diffable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Exports the registry in Prometheus text format.
    pub fn to_prometheus(&self) -> String {
        self.registry.to_prometheus()
    }

    /// The merged recent flight events of every session, ordered by
    /// (session, seq).
    pub fn flight_events(&self) -> Vec<FlightEvent> {
        let sessions = self.sessions.lock().expect("telemetry sessions poisoned");
        let mut events: Vec<FlightEvent> =
            sessions.iter().flat_map(|s| s.flight_events()).collect();
        events.sort_by_key(|e| (e.session, e.seq));
        events
    }

    /// Builds a post-mortem artifact from the merged flight recorders.
    pub fn postmortem(&self, cause: &str, reason: &str) -> Postmortem {
        let sessions = self.sessions.lock().expect("telemetry sessions poisoned").len() as u64;
        Postmortem {
            cause: cause.to_string(),
            reason: reason.to_string(),
            sessions,
            events: self.flight_events(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeClock(AtomicU64);

    impl VirtualClock for FakeClock {
        fn virtual_nanos(&self) -> u64 {
            // Every read advances the clock 1 ms, so a span observes
            // exactly one tick between enter and drop.
            self.0.fetch_add(1_000_000, Ordering::Relaxed)
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let tel = SessionTelemetry::disabled();
        assert!(!tel.enabled());
        {
            let _span = tel.span(Phase::Rescore);
        }
        tel.event(FlightEventKind::Retry, 1, || unreachable!("detail must not render"));
        assert!(tel.flight_events().is_empty());
        assert!(tel.breakdown().is_empty());
        assert_eq!(tel.phase_snapshot(), PhaseSnapshot::default());
    }

    #[test]
    fn spans_accumulate_wall_and_virtual_time() {
        let clock = Arc::new(FakeClock(AtomicU64::new(0)));
        let tel = SessionTelemetry::standalone(TelemetryConfig::on(), Some(clock));
        {
            let _outer = tel.span(Phase::RegionLoad);
            let _inner = tel.span(Phase::ChunkMerge);
        }
        let breakdown = tel.breakdown();
        assert_eq!(breakdown.len(), 2);
        let load = breakdown.iter().find(|p| p.phase == "region_load").unwrap();
        assert_eq!(load.count, 1);
        // The fake clock ticks 1 ms per read: the inner span's enter and
        // drop both land inside the outer window, so outer sees 3 ticks
        // and the nested span exactly 1.
        assert!((load.virtual_ms - 3.0).abs() < 1e-9, "virtual_ms={}", load.virtual_ms);
        let merge = breakdown.iter().find(|p| p.phase == "chunk_merge").unwrap();
        assert!((merge.virtual_ms - 1.0).abs() < 1e-9, "virtual_ms={}", merge.virtual_ms);
        let registry = tel.registry().unwrap();
        assert_eq!(registry.histogram("uei_phase_wall_us_region_load").count(), 1);
    }

    #[test]
    fn breakdown_windows_between_snapshots() {
        let tel = SessionTelemetry::standalone(TelemetryConfig::on(), None);
        {
            let _s = tel.span(Phase::Rescore);
        }
        let mark = tel.phase_snapshot();
        {
            let _s = tel.span(Phase::Eval);
        }
        let window = tel.breakdown_since(&mark);
        assert_eq!(window.len(), 1);
        assert_eq!(window[0].phase, "eval");
        assert_eq!(tel.breakdown().len(), 2);
    }

    #[test]
    fn engine_telemetry_merges_session_flight_events() {
        let engine = EngineTelemetry::new(TelemetryConfig::on());
        let a = engine.open_session(None);
        let b = engine.open_session(None);
        a.event(FlightEventKind::Fallback, 2, || "rank 1".to_string());
        b.event(FlightEventKind::Retry, 5, || "2 retries".to_string());
        let pm = engine.postmortem("panic", "boom");
        assert_eq!(pm.sessions, 2);
        assert_eq!(pm.events.len(), 2);
        assert!(pm.events[0].session < pm.events[1].session);
        assert_eq!(
            engine
                .snapshot()
                .counters
                .iter()
                .find(|c| c.name == "uei_sessions_total")
                .unwrap()
                .value,
            2
        );
    }

    #[test]
    fn disabled_engine_hands_out_inert_sessions() {
        let engine = EngineTelemetry::new(TelemetryConfig::default());
        let tel = engine.open_session(None);
        assert!(!tel.enabled());
        assert!(engine.flight_events().is_empty());
        assert_eq!(engine.postmortem("degraded", "x").events.len(), 0);
    }

    #[test]
    fn phase_names_are_stable_and_complete() {
        assert_eq!(Phase::ALL.len(), PHASES);
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "model_refit",
                "rescore",
                "shard_select",
                "region_load",
                "chunk_merge",
                "eval",
                "journal_append"
            ]
        );
    }
}
