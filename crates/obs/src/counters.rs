//! [`ObsCounters`]: the per-iteration counter block shared by
//! `SelectionInfo`, `IterationTrace`, and the report aggregation.
//!
//! Before this struct existed, every counter was threaded field-by-field
//! through `backend.rs` → `session.rs` → `report.rs` — four edits per new
//! counter. It is `#[serde(flatten)]`-ed into `IterationTrace` at exactly
//! the position the loose fields used to occupy, so pre-existing trace
//! JSON (including pre-shard fixtures without the newer fields) parses
//! unchanged and serializes byte-identically.

use serde::{Deserialize, Serialize};

/// Per-iteration observability counters, all modeled (deterministic)
/// quantities. Field order is serialization order — do not reorder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsCounters {
    /// Chunk-cache hits during the iteration.
    #[serde(default)]
    pub cache_hits: u64,
    /// Chunk-cache misses during the iteration.
    #[serde(default)]
    pub cache_misses: u64,
    /// Chunk-cache evictions during the iteration.
    #[serde(default)]
    pub cache_evictions: u64,
    /// Oversized chunks that bypassed the cache.
    #[serde(default)]
    pub cache_bypasses: u64,
    /// Bytes the background prefetcher read during the iteration.
    #[serde(default)]
    pub prefetch_bytes_read: u64,
    /// Transient-fault retries absorbed by the loader.
    #[serde(default)]
    pub retries: u64,
    /// Candidate ranks skipped past failed cells (fallback ladder).
    #[serde(default)]
    pub fallback_cells: u64,
    /// Whether the iteration ran degraded (retries or fallbacks fired).
    #[serde(default)]
    pub degraded: bool,
    /// Index points rescored this iteration.
    #[serde(default)]
    pub points_rescored: u64,
    /// Index-plane shards the rescore pass touched.
    #[serde(default)]
    pub shards_touched: u64,
    /// Index points served from the incremental-rescore cache.
    #[serde(default)]
    pub points_cached: u64,
}

impl ObsCounters {
    /// Adds `other` into `self` (used by per-run report sums).
    pub fn accumulate(&mut self, other: &ObsCounters) {
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.cache_bypasses += other.cache_bypasses;
        self.prefetch_bytes_read += other.prefetch_bytes_read;
        self.retries += other.retries;
        self.fallback_cells += other.fallback_cells;
        self.degraded |= other.degraded;
        self.points_rescored += other.points_rescored;
        self.shards_touched += other.shards_touched;
        self.points_cached += other.points_cached;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_in_the_legacy_trace_field_order() {
        let json = serde_json::to_string(&ObsCounters::default()).unwrap();
        let keys: Vec<&str> = json.split('"').skip(1).step_by(2).collect();
        assert_eq!(
            keys,
            vec![
                "cache_hits",
                "cache_misses",
                "cache_evictions",
                "cache_bypasses",
                "prefetch_bytes_read",
                "retries",
                "fallback_cells",
                "degraded",
                "points_rescored",
                "shards_touched",
                "points_cached"
            ]
        );
    }

    #[test]
    fn missing_fields_default_on_deserialize() {
        let partial = r#"{"cache_hits": 3, "retries": 1}"#;
        let c: ObsCounters = serde_json::from_str(partial).unwrap();
        assert_eq!(c.cache_hits, 3);
        assert_eq!(c.retries, 1);
        assert_eq!(c.points_rescored, 0);
        assert!(!c.degraded);
    }

    #[test]
    fn accumulate_sums_and_ors() {
        let mut a = ObsCounters { cache_hits: 1, degraded: false, ..ObsCounters::default() };
        let b = ObsCounters { cache_hits: 2, degraded: true, ..ObsCounters::default() };
        a.accumulate(&b);
        assert_eq!(a.cache_hits, 3);
        assert!(a.degraded);
    }
}
